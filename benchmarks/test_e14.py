"""Benchmark E14: Figure 1: per-role state table, analytic and observed.

Regenerates the E14 table of EXPERIMENTS.md; see DESIGN.md section 5.
"""


def test_e14(run_experiment):
    run_experiment("E14")
