"""Benchmark E2: SimpleAlgorithm parallel time vs k at bias 1 (Theorem 1(1)).

Regenerates the E2 table of EXPERIMENTS.md; see DESIGN.md section 5.
"""


def test_e02(run_experiment):
    run_experiment("E2")
