"""Benchmark E6: Initialization phase: Lemma 3 duration and role balance.

Regenerates the E6 table of EXPERIMENTS.md; see DESIGN.md section 5.
"""


def test_e06(run_experiment):
    run_experiment("E6")
