"""Benchmark EA2: the merge rule prevents cancel/split deadlock.

Regenerates the EA2 table of EXPERIMENTS.md; see DESIGN.md section 5.
"""


def test_ea2(run_experiment):
    run_experiment("EA2")
