"""Benchmark E10: Majority substrate: exact at bias 1; 3-state fails.

Regenerates the E10 table of EXPERIMENTS.md; see DESIGN.md section 5.
"""


def test_e10(run_experiment):
    run_experiment("E10")
