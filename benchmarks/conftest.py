"""Shared fixtures for the experiment benchmarks.

Every benchmark regenerates one experiment from DESIGN.md §5 through the
same registry the ``repro-experiments`` CLI uses, times it with
pytest-benchmark, prints the table (visible with ``-s`` and in the report
files), and asserts the experiment's shape checks.

Run with::

    pytest benchmarks/ --benchmark-only

Environment:
    REPRO_BENCH_SCALE: "quick" (default) or "full" — sweep sizing.
    REPRO_BENCH_TELEMETRY: "1" to run telemetry-enabled; the snapshot
        lands in the report JSON under "metrics" so perf_diff.py can
        compare hypergeometric draw mixes across runs.

Rendered tables are written to ``benchmarks/reports/<id>.txt`` so that
EXPERIMENTS.md can be refreshed from the last run, and a machine-readable
``benchmarks/reports/<id>.json`` (elapsed time, checks, stats) is written
alongside so CI can diff performance trajectories across commits.
"""

import json
import os
import pathlib
import time

import pytest

from repro import experiments

REPORT_DIR = pathlib.Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def bench_scale() -> str:
    scale = os.environ.get("REPRO_BENCH_SCALE", "quick")
    if scale not in ("quick", "full"):
        raise ValueError(f"REPRO_BENCH_SCALE must be quick|full, got {scale}")
    return scale


@pytest.fixture(scope="session")
def bench_telemetry() -> bool:
    return os.environ.get("REPRO_BENCH_TELEMETRY", "") not in ("", "0")


@pytest.fixture
def run_experiment(benchmark, bench_scale, bench_telemetry):
    """Run one experiment under the benchmark timer and check its shape."""

    def runner(name: str, must_pass: bool = True):
        started = time.perf_counter()
        report = benchmark.pedantic(
            experiments.run,
            args=(name, bench_scale),
            kwargs={"telemetry": bench_telemetry},
            rounds=1,
            iterations=1,
        )
        elapsed = time.perf_counter() - started
        text = report.render()
        print()
        print(text)
        REPORT_DIR.mkdir(exist_ok=True)
        (REPORT_DIR / f"{name}.txt").write_text(text + "\n")
        machine_readable = {
            "experiment": report.experiment,
            "title": report.title,
            "scale": bench_scale,
            "elapsed_seconds": elapsed,
            "checks": {key: bool(ok) for key, ok in report.checks.items()},
            "stats": {key: float(v) for key, v in report.stats.items()},
            "passed": report.passed,
        }
        if report.metrics is not None:
            machine_readable["metrics"] = report.metrics
        (REPORT_DIR / f"{name}.json").write_text(
            json.dumps(machine_readable, indent=2, sort_keys=True) + "\n"
        )
        if must_pass:
            failed = [k for k, ok in report.checks.items() if not ok]
            assert not failed, f"{name} shape checks failed: {failed}"
        return report

    return runner
