"""Diff benchmark reports across CI runs and flag perf regressions.

CI uploads ``benchmarks/reports/<id>.json`` (written by
``benchmarks/conftest.py``) as the ``benchmark-reports`` artifact on every
run.  The perf-trajectory job downloads the previous successful run's
artifact next to the current one and calls this script, which compares
``elapsed_seconds`` per experiment and emits one GitHub warning
annotation (``::warning ...``) per regression beyond the threshold.

Campaign rollups (``kind: "campaign"``, written by
``repro.campaign.rollup`` / ``repro-experiments campaign rollup``) are
diffed at two granularities: the top-level ``elapsed_seconds`` like any
other report, plus per-cell ``elapsed_seconds`` keyed by the stable cell
content hash under ``cells`` — cell hashes only match when the full cell
parameterization matches, so per-cell comparisons can never pair up two
different configurations.

Reports carrying a telemetry ``metrics`` block (runs with
``REPRO_BENCH_TELEMETRY=1`` or campaign rollups from ``--telemetry``
runs) additionally get their hypergeometric *draw mix* compared: the
share of ``sampler.draws.numpy`` / ``.splitting`` / ``.rejection`` among
all draws, and — for runs on the adaptive ``auto`` policy — the
``sampler.dispatch.numpy`` / ``.batched`` routing mix (how many work
units inside each draw went to numpy's C generator vs the level-batched
construction).  A share shift beyond ``--mix-threshold`` emits a notice
annotation — a silent change in which sampler serves the draws is
exactly the kind of routing regression wall-clock alone can hide.

Reports whose ``stats`` carry a ``replicas_per_second[...]`` family
(the EB7 ensemble-throughput benchmark) are additionally diffed on
*throughput*: a leg whose replicas/sec dropped below ``1 / threshold``
of the previous run gets a notice annotation.  Wall-clock
``elapsed_seconds`` on EB7 mixes all three legs into one number, so a
serial speedup can mask an ensemble regression — the per-leg throughput
family is the number the tentpole acceptance criterion is stated in.

Usage::

    python benchmarks/perf_diff.py PREVIOUS_DIR CURRENT_DIR [--threshold 1.5]

Exit status is always 0 unless ``--fail-on-regression`` is passed:
trajectory drift is advisory, the hard shape checks live in the
benchmarks themselves.  Mix shifts and throughput drops are always
advisory.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict, List, Optional

#: Ignore runs faster than this: timer noise dominates sub-100ms
#: experiments and would make the ratio check fire spuriously.
MIN_BASELINE_SECONDS = 0.1

#: Counter-name prefix identifying the per-method draw counters inside a
#: telemetry ``metrics`` block (see ``repro.telemetry.CATALOG``).
DRAW_PREFIX = "sampler.draws."

#: Counter-name prefix of the adaptive policy's per-unit dispatch
#: counters (numpy vs level-batched work units inside one draw/table).
DISPATCH_PREFIX = "sampler.dispatch."

#: Mix families diffed across runs: annotation label -> counter prefix.
#: The draw family keeps unprefixed method names (its annotations
#: predate the dispatch counters); dispatch shares are labelled
#: ``dispatch:<target>``.
MIX_FAMILIES = {"": DRAW_PREFIX, "dispatch:": DISPATCH_PREFIX}

#: Ignore draw mixes built from fewer total draws than this: a handful
#: of draws makes shares jump around without any routing change.
MIN_MIX_DRAWS = 100

#: Stats-key prefix of the per-leg ensemble throughput family written
#: by EB7 (``replicas_per_second[serial]`` etc.).
THROUGHPUT_PREFIX = "replicas_per_second["

#: Ignore throughput legs slower than this: sub-replica/sec legs are
#: dominated by per-run constants and make ratios meaningless.
MIN_THROUGHPUT = 1.0


def load_reports(directory: pathlib.Path) -> Dict[str, dict]:
    """Map experiment id -> parsed report for every ``*.json`` in a dir."""
    reports: Dict[str, dict] = {}
    if not directory.is_dir():
        return reports
    for path in sorted(directory.glob("*.json")):
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        name = payload.get("experiment", path.stem)
        if isinstance(payload.get("elapsed_seconds"), (int, float)):
            reports[name] = payload
    return reports


def diff_reports(
    previous: Dict[str, dict],
    current: Dict[str, dict],
    threshold: float = 1.5,
) -> List[dict]:
    """Regressions: experiments now slower than ``threshold`` × before.

    Scale mismatches (quick vs full) are not comparable and are skipped,
    as are experiments present in only one of the two runs.
    """
    if threshold <= 1.0:
        raise ValueError(f"threshold must be > 1, got {threshold}")
    regressions: List[dict] = []
    for name in sorted(set(previous) & set(current)):
        before, after = previous[name], current[name]
        if before.get("scale") != after.get("scale"):
            continue
        _compare(name, before["elapsed_seconds"], after["elapsed_seconds"],
                 threshold, regressions)
        regressions.extend(
            _diff_campaign_cells(name, before, after, threshold)
        )
    return regressions


def _compare(
    name: str, before, after, threshold: float, regressions: List[dict]
) -> None:
    baseline = float(before)
    measured = float(after)
    if baseline < MIN_BASELINE_SECONDS:
        return
    ratio = measured / baseline
    if ratio > threshold:
        regressions.append(
            {
                "experiment": name,
                "before_seconds": baseline,
                "after_seconds": measured,
                "ratio": ratio,
            }
        )


def _diff_campaign_cells(
    name: str, before: dict, after: dict, threshold: float
) -> List[dict]:
    """Per-cell regressions for campaign rollups (keyed by cell hash)."""
    cells_before = before.get("cells")
    cells_after = after.get("cells")
    if not isinstance(cells_before, dict) or not isinstance(cells_after, dict):
        return []
    regressions: List[dict] = []
    for cell in sorted(set(cells_before) & set(cells_after)):
        b, a = cells_before[cell], cells_after[cell]
        if not isinstance(b, dict) or not isinstance(a, dict):
            continue
        if not isinstance(b.get("elapsed_seconds"), (int, float)):
            continue
        if not isinstance(a.get("elapsed_seconds"), (int, float)):
            continue
        _compare(
            f"{name}[{cell}]",
            b["elapsed_seconds"],
            a["elapsed_seconds"],
            threshold,
            regressions,
        )
    return regressions


def draw_mix(
    report: dict, prefix: str = DRAW_PREFIX
) -> Optional[Dict[str, float]]:
    """Per-method share of one counter family from a ``metrics`` block.

    ``prefix`` selects the family (``sampler.draws.`` by default, or
    ``sampler.dispatch.`` for the adaptive policy's per-unit routing).
    Returns None when the report has no telemetry block, no counters
    under the prefix, or too few counts to be meaningful.
    """
    metrics = report.get("metrics")
    if not isinstance(metrics, dict):
        return None
    counters = metrics.get("counters")
    if not isinstance(counters, dict):
        return None
    draws = {
        name[len(prefix):]: float(value)
        for name, value in counters.items()
        if name.startswith(prefix) and isinstance(value, (int, float))
    }
    total = sum(draws.values())
    if total < MIN_MIX_DRAWS:
        return None
    return {method: count / total for method, count in draws.items()}


def diff_draw_mix(
    previous: Dict[str, dict],
    current: Dict[str, dict],
    mix_threshold: float = 0.1,
) -> List[dict]:
    """Mix shifts: methods whose share moved > ``mix_threshold``.

    Every family in :data:`MIX_FAMILIES` is diffed independently: the
    ``sampler.draws.*`` serving mix and the adaptive policy's
    ``sampler.dispatch.*`` routing mix (methods of the latter are
    labelled ``dispatch:<target>``).  Shares are absolute fractions
    within one family, so a threshold of 0.1 means "10 percentage
    points of that family changed method".  Methods present in only one
    run count from a zero share on the other side.
    """
    if not 0.0 < mix_threshold <= 1.0:
        raise ValueError(f"mix threshold must be in (0, 1], got {mix_threshold}")
    shifts: List[dict] = []
    for name in sorted(set(previous) & set(current)):
        before, after = previous[name], current[name]
        if before.get("scale") != after.get("scale"):
            continue
        for label, prefix in MIX_FAMILIES.items():
            mix_before = draw_mix(before, prefix)
            mix_after = draw_mix(after, prefix)
            if mix_before is None or mix_after is None:
                continue
            for method in sorted(set(mix_before) | set(mix_after)):
                share_before = mix_before.get(method, 0.0)
                share_after = mix_after.get(method, 0.0)
                if abs(share_after - share_before) > mix_threshold:
                    shifts.append(
                        {
                            "experiment": name,
                            "method": f"{label}{method}",
                            "before_share": share_before,
                            "after_share": share_after,
                        }
                    )
    return shifts


def diff_throughput(
    previous: Dict[str, dict],
    current: Dict[str, dict],
    threshold: float = 1.5,
) -> List[dict]:
    """Throughput drops: ``replicas_per_second[...]`` legs now slower.

    A leg regresses when its throughput fell below ``1 / threshold`` of
    the previous run's — the replicas/sec mirror of the elapsed-seconds
    ratio check, per leg instead of per whole benchmark.  Legs present
    in only one run, on mismatched scales, or below
    :data:`MIN_THROUGHPUT` on the baseline are skipped.
    """
    if threshold <= 1.0:
        raise ValueError(f"threshold must be > 1, got {threshold}")
    drops: List[dict] = []
    for name in sorted(set(previous) & set(current)):
        before, after = previous[name], current[name]
        if before.get("scale") != after.get("scale"):
            continue
        stats_before = before.get("stats")
        stats_after = after.get("stats")
        if not isinstance(stats_before, dict) or not isinstance(stats_after, dict):
            continue
        legs = sorted(
            key
            for key in set(stats_before) & set(stats_after)
            if key.startswith(THROUGHPUT_PREFIX)
        )
        for key in legs:
            baseline = stats_before[key]
            measured = stats_after[key]
            if not isinstance(baseline, (int, float)):
                continue
            if not isinstance(measured, (int, float)):
                continue
            if float(baseline) < MIN_THROUGHPUT:
                continue
            ratio = float(baseline) / max(float(measured), 1e-12)
            if ratio > threshold:
                drops.append(
                    {
                        "experiment": name,
                        "leg": key,
                        "before_rps": float(baseline),
                        "after_rps": float(measured),
                        "ratio": ratio,
                    }
                )
    return drops


def format_annotation(regression: dict, threshold: float) -> str:
    """One GitHub Actions warning annotation per regression."""
    return (
        f"::warning title=Perf regression in {regression['experiment']}::"
        f"{regression['experiment']} took {regression['after_seconds']:.2f}s, "
        f"was {regression['before_seconds']:.2f}s on the previous run "
        f"({regression['ratio']:.2f}x > {threshold:.2f}x threshold)"
    )


def format_throughput_annotation(drop: dict, threshold: float) -> str:
    """One GitHub Actions notice annotation per throughput drop."""
    return (
        f"::notice title=Throughput drop in {drop['experiment']}::"
        f"{drop['experiment']} {drop['leg']} now runs "
        f"{drop['after_rps']:.1f} replicas/s, was {drop['before_rps']:.1f} "
        f"on the previous run ({drop['ratio']:.2f}x slower > "
        f"{threshold:.2f}x threshold)"
    )


def format_mix_annotation(shift: dict, mix_threshold: float) -> str:
    """One GitHub Actions notice annotation per draw-mix shift."""
    return (
        f"::notice title=Draw-mix shift in {shift['experiment']}::"
        f"{shift['experiment']} now serves {shift['after_share']:.0%} of "
        f"hypergeometric draws via {shift['method']}, was "
        f"{shift['before_share']:.0%} on the previous run "
        f"(> {mix_threshold:.0%} threshold)"
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("previous", type=pathlib.Path)
    parser.add_argument("current", type=pathlib.Path)
    parser.add_argument("--threshold", type=float, default=1.5)
    parser.add_argument(
        "--mix-threshold",
        type=float,
        default=0.1,
        help=(
            "flag sampler methods whose share of hypergeometric draws "
            "shifted by more than this fraction (default: 0.1)"
        ),
    )
    parser.add_argument(
        "--fail-on-regression",
        action="store_true",
        help="exit 1 when any regression is found (default: warn only)",
    )
    args = parser.parse_args(argv)

    previous = load_reports(args.previous)
    current = load_reports(args.current)
    if not previous:
        print(f"no previous reports under {args.previous} - nothing to diff")
        return 0
    if not current:
        print(f"no current reports under {args.current} - nothing to diff")
        return 0

    regressions = diff_reports(previous, current, threshold=args.threshold)
    compared = len(set(previous) & set(current))
    print(f"compared {compared} experiments against the previous run")
    for regression in regressions:
        print(format_annotation(regression, args.threshold))
    if not regressions:
        print(f"no elapsed_seconds regressions beyond {args.threshold:.2f}x")
    shifts = diff_draw_mix(previous, current, mix_threshold=args.mix_threshold)
    for shift in shifts:
        print(format_mix_annotation(shift, args.mix_threshold))
    if not shifts:
        print(f"no draw-mix shifts beyond {args.mix_threshold:.0%}")
    drops = diff_throughput(previous, current, threshold=args.threshold)
    for drop in drops:
        print(format_throughput_annotation(drop, args.threshold))
    if not drops:
        print(f"no replica-throughput drops beyond {args.threshold:.2f}x")
    return 1 if (regressions and args.fail_on_regression) else 0


if __name__ == "__main__":
    sys.exit(main())
