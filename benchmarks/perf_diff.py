"""Diff benchmark reports across CI runs and flag perf regressions.

CI uploads ``benchmarks/reports/<id>.json`` (written by
``benchmarks/conftest.py``) as the ``benchmark-reports`` artifact on every
run.  The perf-trajectory job downloads the previous successful run's
artifact next to the current one and calls this script, which compares
``elapsed_seconds`` per experiment and emits one GitHub warning
annotation (``::warning ...``) per regression beyond the threshold.

Campaign rollups (``kind: "campaign"``, written by
``repro.campaign.rollup`` / ``repro-experiments campaign rollup``) are
diffed at two granularities: the top-level ``elapsed_seconds`` like any
other report, plus per-cell ``elapsed_seconds`` keyed by the stable cell
content hash under ``cells`` — cell hashes only match when the full cell
parameterization matches, so per-cell comparisons can never pair up two
different configurations.

Usage::

    python benchmarks/perf_diff.py PREVIOUS_DIR CURRENT_DIR [--threshold 1.5]

Exit status is always 0 unless ``--fail-on-regression`` is passed:
trajectory drift is advisory, the hard shape checks live in the
benchmarks themselves.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict, List, Optional

#: Ignore runs faster than this: timer noise dominates sub-100ms
#: experiments and would make the ratio check fire spuriously.
MIN_BASELINE_SECONDS = 0.1


def load_reports(directory: pathlib.Path) -> Dict[str, dict]:
    """Map experiment id -> parsed report for every ``*.json`` in a dir."""
    reports: Dict[str, dict] = {}
    if not directory.is_dir():
        return reports
    for path in sorted(directory.glob("*.json")):
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        name = payload.get("experiment", path.stem)
        if isinstance(payload.get("elapsed_seconds"), (int, float)):
            reports[name] = payload
    return reports


def diff_reports(
    previous: Dict[str, dict],
    current: Dict[str, dict],
    threshold: float = 1.5,
) -> List[dict]:
    """Regressions: experiments now slower than ``threshold`` × before.

    Scale mismatches (quick vs full) are not comparable and are skipped,
    as are experiments present in only one of the two runs.
    """
    if threshold <= 1.0:
        raise ValueError(f"threshold must be > 1, got {threshold}")
    regressions: List[dict] = []
    for name in sorted(set(previous) & set(current)):
        before, after = previous[name], current[name]
        if before.get("scale") != after.get("scale"):
            continue
        _compare(name, before["elapsed_seconds"], after["elapsed_seconds"],
                 threshold, regressions)
        regressions.extend(
            _diff_campaign_cells(name, before, after, threshold)
        )
    return regressions


def _compare(
    name: str, before, after, threshold: float, regressions: List[dict]
) -> None:
    baseline = float(before)
    measured = float(after)
    if baseline < MIN_BASELINE_SECONDS:
        return
    ratio = measured / baseline
    if ratio > threshold:
        regressions.append(
            {
                "experiment": name,
                "before_seconds": baseline,
                "after_seconds": measured,
                "ratio": ratio,
            }
        )


def _diff_campaign_cells(
    name: str, before: dict, after: dict, threshold: float
) -> List[dict]:
    """Per-cell regressions for campaign rollups (keyed by cell hash)."""
    cells_before = before.get("cells")
    cells_after = after.get("cells")
    if not isinstance(cells_before, dict) or not isinstance(cells_after, dict):
        return []
    regressions: List[dict] = []
    for cell in sorted(set(cells_before) & set(cells_after)):
        b, a = cells_before[cell], cells_after[cell]
        if not isinstance(b, dict) or not isinstance(a, dict):
            continue
        if not isinstance(b.get("elapsed_seconds"), (int, float)):
            continue
        if not isinstance(a.get("elapsed_seconds"), (int, float)):
            continue
        _compare(
            f"{name}[{cell}]",
            b["elapsed_seconds"],
            a["elapsed_seconds"],
            threshold,
            regressions,
        )
    return regressions


def format_annotation(regression: dict, threshold: float) -> str:
    """One GitHub Actions warning annotation per regression."""
    return (
        f"::warning title=Perf regression in {regression['experiment']}::"
        f"{regression['experiment']} took {regression['after_seconds']:.2f}s, "
        f"was {regression['before_seconds']:.2f}s on the previous run "
        f"({regression['ratio']:.2f}x > {threshold:.2f}x threshold)"
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("previous", type=pathlib.Path)
    parser.add_argument("current", type=pathlib.Path)
    parser.add_argument("--threshold", type=float, default=1.5)
    parser.add_argument(
        "--fail-on-regression",
        action="store_true",
        help="exit 1 when any regression is found (default: warn only)",
    )
    args = parser.parse_args(argv)

    previous = load_reports(args.previous)
    current = load_reports(args.current)
    if not previous:
        print(f"no previous reports under {args.previous} - nothing to diff")
        return 0
    if not current:
        print(f"no current reports under {args.current} - nothing to diff")
        return 0

    regressions = diff_reports(previous, current, threshold=args.threshold)
    compared = len(set(previous) & set(current))
    print(f"compared {compared} experiments against the previous run")
    for regression in regressions:
        print(format_annotation(regression, args.threshold))
    if not regressions:
        print(f"no elapsed_seconds regressions beyond {args.threshold:.2f}x")
    return 1 if (regressions and args.fail_on_regression) else 0


if __name__ == "__main__":
    sys.exit(main())
