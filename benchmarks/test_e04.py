"""Benchmark E4: UnorderedAlgorithm time: O(k log n + log^2 n) (Theorem 1(2)).

Regenerates the E4 table of EXPERIMENTS.md; see DESIGN.md section 5.
"""


def test_e04(run_experiment):
    run_experiment("E4")
