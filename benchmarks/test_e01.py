"""Benchmark E1: SimpleAlgorithm parallel time vs n at bias 1 (Theorem 1(1)).

Regenerates the E1 table of EXPERIMENTS.md; see DESIGN.md section 5.
"""


def test_e01(run_experiment):
    run_experiment("E1")
