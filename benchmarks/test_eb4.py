"""Benchmark EB4: the core tournament algorithm on the count backend.

Runs SimpleAlgorithm through the phase-quotiented count model
(``repro.core.quotient``) on count-native populations: full convergence
at n = 10^5 and 10^6, plus a fixed parallel-time slice at n = 10^9 with
the ``"splitting"`` sampler forced onto every draw — the regime beyond
numpy's multivariate-hypergeometric cap that only the custom
color-splitting sampler reaches.  The machine-readable timings land in
``benchmarks/reports/EB4.json`` so the CI ``perf-trajectory`` job tracks
the core algorithms' count path from this report onward; see
``src/repro/experiments/scaling.py``.
"""


def test_eb4(run_experiment):
    report = run_experiment("EB4")
    assert report.stats["seconds[n=1e9,splitting,budget(25pt)]"] < 600.0
