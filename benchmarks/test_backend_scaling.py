"""Benchmark EB2: count backend ≥10× faster than agent arrays at scale.

Runs the three-state majority protocol at n = 10^6 (quick) / 10^7 (full)
on both execution backends under matching-scheduler semantics and checks
the count path's wall-clock speedup; see
``src/repro/experiments/scaling.py`` and ``repro.engine.backends``.
"""


def test_eb2(run_experiment):
    report = run_experiment("EB2")
    assert report.stats["speedup"] >= 10.0
