"""Measure cold derivation vs warm replay through the table cache.

The cache design promise (docs/CACHING.md) is twofold: a warm run is
**bit-identical** to a cold one, and it skips the lift → interact →
project derivation entirely — the dominant fixed cost of putting a
tournament quotient on the count backend.  This script times the same
improved-era-quotient run both ways in one process:

* ``cold`` — ``table_cache=False``: every repeat derives its full
  transition table from scratch (each ``simulate`` builds a fresh
  model, so cold really is cold every time);
* ``warm`` — ``table_cache=<primed store>``: every repeat replays the
  persisted artifact and must perform **zero** derivations.

Repeats are interleaved and scored by minimum wall time (the stable
estimator under additive noise, as in ``telemetry_overhead.py``), and
the cold/warm results are compared for exact equality.  The summary is
written to ``benchmarks/reports/TABLE_CACHE.json`` in the shape
``perf_diff.py`` tracks across CI runs.

Usage::

    python benchmarks/table_cache.py                 # report only
    python benchmarks/table_cache.py --check         # assert the checks
    python benchmarks/table_cache.py --scale full    # n = 8192
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import tempfile
import time
from typing import Dict, List, Optional, Tuple

from repro import telemetry
from repro.cache import TableStore
from repro.core.improved import ImprovedAlgorithm
from repro.engine import PopulationConfig, simulate

REPORTS_DIR = pathlib.Path(__file__).parent / "reports"

#: population size and timed repeats per scale
SCALES = {"quick": (512, 3), "full": (8192, 3)}


def _run(n: int, table_cache, tel) -> object:
    config = PopulationConfig.from_counts(
        [int(n * 0.65), n - int(n * 0.65)], shuffle=False
    )
    return simulate(
        ImprovedAlgorithm(),
        config,
        seed=0,
        backend="counts",
        scheduler="matching",
        max_parallel_time=400.0,
        telemetry=tel,
        table_cache=table_cache,
    )


def measure(
    n: int, repeats: int, store: TableStore
) -> Tuple[Dict[str, List[float]], Dict[str, object], Dict[str, Dict[str, float]]]:
    """Interleaved cold/warm wall times, last results, per-mode metadata."""
    # Prime the store (and numpy) outside the measured window; this is
    # the one derivation a warm fleet would ever pay.
    _run(n, table_cache=store, tel=False)
    times: Dict[str, List[float]] = {"cold": [], "warm": []}
    results: Dict[str, object] = {}
    meta: Dict[str, Dict[str, float]] = {}
    for _ in range(repeats):
        for name, cache in (("cold", False), ("warm", store)):
            tel = telemetry.Telemetry(enabled=True)
            started = time.perf_counter()
            results[name] = _run(n, table_cache=cache, tel=tel)
            times[name].append(time.perf_counter() - started)
            meta[name] = dict(tel.meta)
    return times, results, meta


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=os.environ.get("REPRO_BENCH_SCALE", "quick"),
    )
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--check", action="store_true")
    parser.add_argument(
        "--out", default=None, help="report path (default reports/TABLE_CACHE.json)"
    )
    args = parser.parse_args(argv)

    n, default_repeats = SCALES[args.scale]
    repeats = args.repeats if args.repeats is not None else default_repeats

    started = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="table-cache-bench-") as tmp:
        times, results, meta = measure(n, repeats, TableStore(tmp))
    elapsed = time.perf_counter() - started

    cold, warm = min(times["cold"]), min(times["warm"])
    cold_meta, warm_meta = meta["cold"], meta["warm"]
    stats = {
        "n": n,
        "repeats": repeats,
        "cold_min_seconds": cold,
        "warm_min_seconds": warm,
        "speedup": cold / warm,
        "cold_derive_seconds": cold_meta.get("count_model.derive_seconds", 0.0),
        "derived_pairs": cold_meta.get("count_model.derived_pairs", 0.0),
        "warm_pairs": warm_meta.get("count_model.warm_pairs", 0.0),
    }
    checks = {
        "bit_identical": results["warm"] == results["cold"],
        "warm_derives_nothing": (
            warm_meta.get("count_model.cold_derivations", 1.0) == 0.0
        ),
        "warm_faster_than_cold": warm < cold,
    }
    payload = {
        "experiment": "TABLE_CACHE",
        "title": f"improved era quotient at n={n}: cold derivation vs warm replay",
        "scale": args.scale,
        "elapsed_seconds": elapsed,
        "stats": stats,
        "checks": checks,
        "passed": all(checks.values()),
    }

    print(
        f"cold {cold:.3f}s (derive {stats['cold_derive_seconds']:.3f}s, "
        f"{stats['derived_pairs']:.0f} pairs)  warm {warm:.3f}s  "
        f"speedup {stats['speedup']:.2f}x"
    )
    for name, ok in checks.items():
        print(f"{'ok' if ok else 'FAIL'}: {name}")

    out = pathlib.Path(args.out) if args.out else REPORTS_DIR / "TABLE_CACHE.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    if args.check and not payload["passed"]:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
