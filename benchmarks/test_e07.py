"""Benchmark E7: Junta clock hour length vs subpopulation size (Lemma 7).

Regenerates the E7 table of EXPERIMENTS.md; see DESIGN.md section 5.
"""


def test_e07(run_experiment):
    run_experiment("E7")
