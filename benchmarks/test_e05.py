"""Benchmark E5: ImprovedAlgorithm pruning speedup vs Simple/Unordered (Theorem 2).

Regenerates the E5 table of EXPERIMENTS.md; see DESIGN.md section 5.
"""


def test_e05(run_experiment):
    run_experiment("E5")
