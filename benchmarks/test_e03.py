"""Benchmark E3: State-count growth: Theta(k + log n) vs the Omega(k^2) stable bound.

Regenerates the E3 table of EXPERIMENTS.md; see DESIGN.md section 5.
"""


def test_e03(run_experiment):
    run_experiment("E3")
