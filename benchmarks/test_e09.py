"""Benchmark E9: Exactness at bias 1: paper protocols vs the USD baseline.

Regenerates the E9 table of EXPERIMENTS.md; see DESIGN.md section 5.
"""


def test_e09(run_experiment):
    run_experiment("E9")
