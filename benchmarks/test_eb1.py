"""Benchmark EB1: One-way epidemic broadcast completes in Theta(log n).

Regenerates the EB1 table of EXPERIMENTS.md; see DESIGN.md section 5.
"""


def test_eb1(run_experiment):
    run_experiment("EB1")
