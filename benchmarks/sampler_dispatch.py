"""Calibrate the adaptive sampler's per-row contingency dispatch.

The ``"auto"`` policy routes each contingency row (and each splitting
subtree of a single draw) to either numpy's C hypergeometric generator
or the level-batched rejection construction, following the measured
plan in :mod:`repro.engine.sampling.dispatch`.  This script re-measures
that plan's two load-bearing claims on the current machine:

* **in range, numpy wins at every width** — per-row numpy draws beat
  the level-batched ``table()`` construction across the width grid, so
  the shipped width crossover is ``None`` (route on pool totals only);
* **auto dominates** — at every (policy × cell) the adaptive policy is
  within run noise of the best single-minded policy, including the
  beyond-10^9 cell where numpy is unsupported outright.

Cells cover narrow/medium/wide square tables at in-range pool totals,
one beyond-numpy table, and one beyond-numpy multicolor draw.  Repeats
are scored by minimum wall time (the stable estimator under additive
noise, as in ``telemetry_overhead.py``) and the summary is written to
``benchmarks/reports/SAMPLER_DISPATCH.json`` in the shape
``perf_diff.py`` tracks across CI runs — including the adaptive
policy's ``sampler.dispatch.*`` routing counters.

Usage::

    python benchmarks/sampler_dispatch.py                 # report only
    python benchmarks/sampler_dispatch.py --check         # assert checks
    python benchmarks/sampler_dispatch.py --scale full    # wider grid
"""

from __future__ import annotations

import argparse
import json
import math
import os
import pathlib
import sys
import time
from typing import Dict, List, Optional

import numpy as np

from repro import telemetry
from repro.engine import sampling
from repro.engine.errors import SamplerUnsupported

REPORTS_DIR = pathlib.Path(__file__).parent / "reports"

#: A cell's adaptive time must stay within this factor of the best
#: single-minded policy — same noise allowance as EB6's dominance check.
NOISE_FACTOR = 1.5

#: Contingency cells per scale: (label, width, pool_total, rounds).
#: Square width × width tables; the ``beyond`` cell exceeds numpy's
#: 10^9 population bound, so the numpy policy is unsupported there.
CELLS = {
    "quick": [
        ("narrow", 8, 10**6, 4),
        ("medium", 64, 10**8, 2),
        ("wide", 256, 8 * 10**8, 1),
        ("beyond", 64, 4 * 10**9, 1),
    ],
    "full": [
        ("narrow", 8, 10**6, 8),
        ("medium", 64, 10**8, 4),
        ("wide", 512, 8 * 10**8, 2),
        ("xwide", 1024, 8 * 10**8, 1),
        ("beyond", 256, 4 * 10**9, 1),
    ],
}

#: Timed repeats per scale (minimum taken).
REPEATS = {"quick": 3, "full": 5}

#: The beyond-numpy draw cell: colors width, pool total, sample size.
DRAW_CELL = (64, 4 * 10**9, 10**9)


def _margins(width: int, total: int) -> np.ndarray:
    """A deterministic skewed composition of ``total`` into ``width``."""
    weights = np.arange(1, width + 1, dtype=np.float64)
    margins = np.floor(total * weights / weights.sum()).astype(np.int64)
    margins[-1] += total - int(margins.sum())
    return margins


def _time_contingency(
    policy, margins: np.ndarray, total: int, repeats: int, rounds: int
) -> Optional[float]:
    """Min wall seconds for ``rounds`` tables, or None if unsupported."""
    best = math.inf
    for repeat in range(repeats):
        rng = np.random.default_rng(1234 + repeat)
        started = time.perf_counter()
        try:
            for _ in range(rounds):
                policy.contingency(margins, margins, rng, total=total)
        except SamplerUnsupported:
            return None
        best = min(best, time.perf_counter() - started)
    return best


def _time_draw(
    policy, colors: np.ndarray, nsample: int, total: int, repeats: int
) -> Optional[float]:
    """Min wall seconds for one multicolor draw, or None if unsupported."""
    best = math.inf
    for repeat in range(repeats):
        rng = np.random.default_rng(4321 + repeat)
        started = time.perf_counter()
        try:
            policy.draw(colors, nsample, rng, total=total)
        except SamplerUnsupported:
            return None
        best = min(best, time.perf_counter() - started)
    return best


#: Policies timed per cell.  ``splitting`` is excluded on purpose: the
#: windowed-inversion oracle is strictly slower than ``rejection`` at
#: every cell here (EB6 measures it), and timing it would multiply the
#: CI cost of this step by ~3× without informing the crossover.
POLICIES = ("auto", "numpy", "rejection")


def measure(scale: str, repeats: int) -> dict:
    """Time every (cell × policy), plus the beyond-numpy draw cell."""
    tel = telemetry.Telemetry(enabled=True)
    policies = {name: sampling.resolve(name) for name in POLICIES}
    policies["auto"].attach_telemetry(tel)

    cells: Dict[str, Dict[str, Optional[float]]] = {}
    widths: Dict[str, int] = {}
    for label, width, total, rounds in CELLS[scale]:
        margins = _margins(width, total)
        widths[label] = width
        cells[label] = {
            name: _time_contingency(policy, margins, total, repeats, rounds)
            for name, policy in policies.items()
        }

    draw_width, draw_total, draw_nsample = DRAW_CELL
    colors = _margins(draw_width, draw_total)
    cells["draw_beyond"] = {
        name: _time_draw(policy, colors, draw_nsample, draw_total, repeats)
        for name, policy in policies.items()
    }
    counters = tel.metrics_block()["counters"]
    return {"cells": cells, "widths": widths, "counters": counters}


def _measured_width_crossover(measured: dict) -> Optional[int]:
    """Smallest in-range width where batched construction beats numpy.

    "Beats" means beyond the noise factor — a cell where the two are
    within noise of each other is not evidence for a crossover.  The
    level-batched construction is timed through the ``rejection``
    policy, whose contingency path *is* ``LargeNHypergeometric.table``.
    Returns None when numpy wins everywhere (the shipped default).
    """
    crossover = None
    for label, width in sorted(
        measured["widths"].items(), key=lambda item: item[1]
    ):
        cell = measured["cells"][label]
        numpy_s, batched_s = cell.get("numpy"), cell.get("rejection")
        if numpy_s is None or batched_s is None:
            continue
        if batched_s * NOISE_FACTOR < numpy_s:
            crossover = width if crossover is None else min(crossover, width)
    return crossover


def build_payload(scale: str, measured: dict, elapsed: float) -> dict:
    cells = measured["cells"]
    counters = measured["counters"]
    checks: Dict[str, bool] = {}
    for label, timings in cells.items():
        auto_s = timings.get("auto")
        rivals = [
            seconds
            for name, seconds in timings.items()
            if name != "auto" and seconds is not None
        ]
        checks[f"auto_within_noise[{label}]"] = (
            auto_s is not None
            and bool(rivals)
            and auto_s <= NOISE_FACTOR * min(rivals)
        )
    beyond = [label for label in cells if label.startswith("beyond")]
    checks["auto_covers_beyond_numpy"] = all(
        cells[label]["numpy"] is None and cells[label]["auto"] is not None
        for label in beyond + ["draw_beyond"]
    )
    checks["dispatch_mix_observed"] = (
        counters.get("sampler.dispatch.numpy", 0) > 0
        and counters.get("sampler.dispatch.batched", 0) > 0
    )
    measured_crossover = _measured_width_crossover(measured)
    shipped = sampling.CONTINGENCY_WIDTH_CROSSOVER
    checks["crossover_consistent"] = (measured_crossover is None) == (
        shipped is None
    )
    stats = {
        "cells": cells,
        "widths": measured["widths"],
        "measured_width_crossover": measured_crossover,
        "shipped_width_crossover": shipped,
        "dispatch_numpy_units": counters.get("sampler.dispatch.numpy", 0),
        "dispatch_batched_units": counters.get("sampler.dispatch.batched", 0),
        "noise_factor": NOISE_FACTOR,
    }
    return {
        "experiment": "SAMPLER_DISPATCH",
        "title": "adaptive contingency dispatch: per-cell policy times "
        "and the measured width crossover",
        "scale": scale,
        "elapsed_seconds": elapsed,
        "stats": stats,
        "checks": checks,
        "passed": all(checks.values()),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        choices=sorted(CELLS),
        default=os.environ.get("REPRO_BENCH_SCALE", "quick"),
    )
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--check", action="store_true")
    parser.add_argument(
        "--out",
        default=None,
        help="report path (default reports/SAMPLER_DISPATCH.json)",
    )
    args = parser.parse_args(argv)
    repeats = args.repeats if args.repeats is not None else REPEATS[args.scale]

    started = time.perf_counter()
    measured = measure(args.scale, repeats)
    payload = build_payload(
        args.scale, measured, time.perf_counter() - started
    )

    for label, timings in payload["stats"]["cells"].items():
        parts = ", ".join(
            f"{name} {'n/a' if s is None else f'{s * 1e3:.2f}ms'}"
            for name, s in sorted(timings.items())
        )
        print(f"{label}: {parts}")
    print(
        f"measured width crossover: "
        f"{payload['stats']['measured_width_crossover']} "
        f"(shipped {payload['stats']['shipped_width_crossover']})"
    )
    for name, ok in payload["checks"].items():
        print(f"{'ok' if ok else 'FAIL'}: {name}")

    out = (
        pathlib.Path(args.out)
        if args.out
        else REPORTS_DIR / "SAMPLER_DISPATCH.json"
    )
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    if args.check and not payload["passed"]:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
