"""Benchmark E12: Load balancing to constant discrepancy in Theta(log n).

Regenerates the E12 table of EXPERIMENTS.md; see DESIGN.md section 5.
"""


def test_e12(run_experiment):
    run_experiment("E12")
