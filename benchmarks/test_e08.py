"""Benchmark E8: Pruning outcome: Lemmas 9 + 10.

Regenerates the E8 table of EXPERIMENTS.md; see DESIGN.md section 5.
"""


def test_e08(run_experiment):
    run_experiment("E8")
