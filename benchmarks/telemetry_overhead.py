"""Measure the cost of the telemetry layer on the engine hot path.

The telemetry design promise (docs/OBSERVABILITY.md) is that the
*disabled* path is free: hot loops hold pre-resolved no-op handles and
pay at most one predicate per batch.  This script checks that promise
the only way that is trustworthy — by timing the same workload in the
same process under three configurations:

* ``baseline`` — ``telemetry=False`` (the module-level NULL sink, what
  every un-instrumented caller gets);
* ``disabled`` — an explicit ``Telemetry(enabled=False)`` instance
  threaded through ``simulate`` (handles resolve to no-ops);
* ``enabled`` — ``Telemetry(enabled=True)`` (live counters, gauges,
  histograms, timers on every batch).

Repeats are *interleaved* (baseline, disabled, enabled, baseline, ...)
so thermal and allocator drift hits all three configurations equally,
and each configuration is scored by its **minimum** wall time — under
additive noise the minimum is the stable estimator, and a 2% bound on
medians would be flake in shared CI runners.

Usage::

    python benchmarks/telemetry_overhead.py                  # report only
    python benchmarks/telemetry_overhead.py --check          # assert bounds
    python benchmarks/telemetry_overhead.py --n 1000000 --repeats 9

``--check`` exits 1 when disabled overhead exceeds ``--disabled-bound``
(default 2%) or enabled overhead exceeds ``--enabled-bound`` (default
10%).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable, Dict, List, Optional

from repro import telemetry
from repro.engine.population import PopulationConfig
from repro.engine.simulation import simulate
from repro.majority import ThreeStateMajority


def _run(n: int, seed: int, tel) -> None:
    # The instrumented hot path: counts backend, batched semantics.  The
    # initial split is biased so the run converges instead of hitting
    # the budget, keeping a repeat in the sub-second range at n = 10^6.
    config = PopulationConfig.from_counts(
        [int(n * 0.6), n - int(n * 0.6)], shuffle=False
    )
    simulate(
        ThreeStateMajority(),
        config,
        seed=seed,
        backend="counts",
        scheduler="birthday",
        max_parallel_time=500.0,
        telemetry=tel,
    )


def measure(n: int, repeats: int) -> Dict[str, List[float]]:
    """Interleaved wall times per configuration, in repeat order."""
    configurations: Dict[str, Callable[[], object]] = {
        "baseline": lambda: False,
        "disabled": lambda: telemetry.Telemetry(enabled=False),
        "enabled": lambda: telemetry.Telemetry(enabled=True),
    }
    times: Dict[str, List[float]] = {name: [] for name in configurations}
    # One throwaway pass per configuration warms numpy and the
    # count-model derivation cache out of the measured window.
    for name, make in configurations.items():
        _run(n, seed=0, tel=make())
    for repeat in range(repeats):
        for name, make in configurations.items():
            tel = make()
            started = time.perf_counter()
            _run(n, seed=repeat, tel=tel)
            times[name].append(time.perf_counter() - started)
    return times


def summarize(times: Dict[str, List[float]]) -> Dict[str, Dict[str, float]]:
    baseline = min(times["baseline"])
    summary: Dict[str, Dict[str, float]] = {}
    for name, samples in times.items():
        best = min(samples)
        summary[name] = {
            "min_seconds": best,
            "median_seconds": sorted(samples)[len(samples) // 2],
            "overhead": best / baseline - 1.0,
        }
    return summary


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=1_000_000)
    parser.add_argument("--repeats", type=int, default=7)
    parser.add_argument("--check", action="store_true")
    parser.add_argument("--disabled-bound", type=float, default=0.02)
    parser.add_argument("--enabled-bound", type=float, default=0.10)
    parser.add_argument(
        "--out", default=None, help="also write the summary JSON here"
    )
    args = parser.parse_args(argv)

    times = measure(args.n, args.repeats)
    summary = summarize(times)
    for name in ("baseline", "disabled", "enabled"):
        stats = summary[name]
        print(
            f"{name:>9}: min {stats['min_seconds']:.3f}s  "
            f"median {stats['median_seconds']:.3f}s  "
            f"overhead {stats['overhead']:+.2%}"
        )
    if args.out is not None:
        with open(args.out, "w") as fh:
            json.dump({"n": args.n, "repeats": args.repeats, **summary}, fh,
                      indent=2, sort_keys=True)
            fh.write("\n")

    if not args.check:
        return 0
    failures = []
    if summary["disabled"]["overhead"] > args.disabled_bound:
        failures.append(
            f"disabled overhead {summary['disabled']['overhead']:.2%} "
            f"exceeds {args.disabled_bound:.0%}"
        )
    if summary["enabled"]["overhead"] > args.enabled_bound:
        failures.append(
            f"enabled overhead {summary['enabled']['overhead']:.2%} "
            f"exceeds {args.enabled_bound:.0%}"
        )
    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print("overhead bounds hold")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
