"""Benchmark E13: Biased random-walk hitting-time bounds (Lemma 16).

Regenerates the E13 table of EXPERIMENTS.md; see DESIGN.md section 5.
"""


def test_e13(run_experiment):
    run_experiment("E13")
