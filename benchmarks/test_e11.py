"""Benchmark E11: Leader election: unique leader in O(log^2 n).

Regenerates the E11 table of EXPERIMENTS.md; see DESIGN.md section 5.
"""


def test_e11(run_experiment):
    run_experiment("E11")
