"""Benchmark EB3: batched count mode past numpy's population limit.

Runs the three-state majority protocol on count-native ``CountConfig``
populations at n = 10^8, 10^9 and 10^10 — the latter two beyond numpy's
multivariate-hypergeometric cap — through the ``auto`` sampler policy,
and checks every run converges correctly with the n = 10^10 run
finishing in seconds.  The machine-readable timings land in
``benchmarks/reports/EB3.json`` for the CI perf-trajectory diff; see
``src/repro/experiments/scaling.py`` and ``repro.engine.sampling``.
"""


def test_eb3(run_experiment):
    report = run_experiment("EB3")
    assert report.stats["seconds[n=1e10]"] < 120.0
