"""Benchmark EB5: the unordered/improved algorithms on the count backend.

Runs UnorderedAlgorithm and ImprovedAlgorithm through their era-quotiented
count models (``repro.core.era_quotient``) on count-native populations:
full convergence at n = 10^5, plus fixed parallel-time slices at n = 10^9
— the regime beyond numpy's multivariate-hypergeometric cap that the
``"auto"`` policy routes through the custom color-splitting sampler.  The
full scale adds unordered convergence legs at n = 10^6 and n = 10^9.  The
machine-readable timings land in ``benchmarks/reports/EB5.json`` so the CI
``perf-trajectory`` job tracks the variants' count path from this report
onward; see ``src/repro/experiments/scaling.py``.
"""


def test_eb5(run_experiment):
    report = run_experiment("EB5")
    assert (
        report.stats["seconds[unordered,n=1e9,auto,budget(15pt)]"] < 600.0
    )
