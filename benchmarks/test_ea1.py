"""Benchmark EA1: Ablation: synchronization cost vs oracle tournaments.

Regenerates the EA1 table of EXPERIMENTS.md; see DESIGN.md section 5.
"""


def test_ea1(run_experiment):
    run_experiment("EA1")
