"""Benchmark EB6: the scheduler × sampler grid on the count backend.

Re-runs the EB4/EB5 count-backend legs under the first-class scheduler
layer: the birthday scheduler (exact sequential semantics as count-space
batches of Θ(√n) interactions at O(|occupied states|²) each) across the
``"auto"``/``"numpy"``/``"rejection"``/``"splitting"`` sampler grid.
Since PR 9 the headline claim is *dominance*: the adaptive ``"auto"``
policy must match the best single-minded rival in every grid cell within
run noise (``auto_dominates[...]`` checks, noise factor ×1.5), routing
each contingency row to numpy's C generator or the level-batched
construction per the measured plan in
``repro.engine.sampling.dispatch``.  The full scale adds the headline
leg: UnorderedAlgorithm k = 2 at n = 10⁹ to full convergence — 6210 s
with PR 4's forced-splitting inversion, ≤ 600 s required here.  The
machine-readable timings land in ``benchmarks/reports/EB6.json`` so the
CI ``perf-trajectory`` job diffs the scheduler/sampler grid (and, with
telemetry, the ``sampler.dispatch.*`` routing mix) from this report
onward; see ``src/repro/experiments/scaling.py``.
"""

from repro.experiments.scaling import EB6_DOMINANCE_NOISE


def test_eb6(run_experiment):
    report = run_experiment("EB6")
    # The rejection slice that EB5 ran on the inversion sampler (~5 s
    # there for 30 batches) must not regress to inversion-like cost.
    rejection = report.stats[
        "seconds[unordered,n=1e9,matching,rejection,budget(15pt)]"
    ]
    assert rejection < 60.0
    # Adaptive dispatch must not give back the rejection win on the
    # forced-large-n leg (the conftest must_pass assertion already
    # covers every auto_dominates[...] check; this pins the headline
    # cell's ratio explicitly).
    auto = report.stats["seconds[unordered,n=1e9,matching,auto,budget(15pt)]"]
    assert auto <= EB6_DOMINANCE_NOISE * rejection
