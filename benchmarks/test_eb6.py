"""Benchmark EB6: the scheduler × sampler grid on the count backend.

Re-runs the EB4/EB5 count-backend legs under the first-class scheduler
layer: the birthday scheduler (exact sequential semantics as count-space
batches of Θ(√n) interactions at O(|occupied states|²) each) and the
``"rejection"`` sampler policy (O(1)-per-draw ratio-of-uniforms
univariate hypergeometric for every draw beyond numpy's 10⁹ bound).  The
full scale adds the headline leg: UnorderedAlgorithm k = 2 at n = 10⁹ to
full convergence — 6210 s with PR 4's forced-splitting inversion, ≤ 600 s
required here.  The machine-readable timings land in
``benchmarks/reports/EB6.json`` so the CI ``perf-trajectory`` job diffs
the scheduler/sampler grid from this report onward; see
``src/repro/experiments/scaling.py``.
"""


def test_eb6(run_experiment):
    report = run_experiment("EB6")
    # The rejection slice that EB5 ran on the inversion sampler (~5 s
    # there for 30 batches) must not regress to inversion-like cost.
    assert (
        report.stats[
            "seconds[unordered,n=1e9,matching,rejection,budget(15pt)]"
        ]
        < 60.0
    )
