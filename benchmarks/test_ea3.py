"""Benchmark EA3: scheduler fidelity (exact vs matching batches).

Regenerates the EA3 table of EXPERIMENTS.md; see DESIGN.md section 5.
"""


def test_ea3(run_experiment):
    run_experiment("EA3")
