"""Benchmark E15: Failure probability vs n (the w.h.p. headline).

Regenerates the E15 table of EXPERIMENTS.md; see DESIGN.md section 5.
"""


def test_e15(run_experiment):
    run_experiment("E15")
