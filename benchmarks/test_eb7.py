"""Benchmark EB7: ensemble replica throughput vs serial ``replicate()``.

Times three ways to run the same R-replica fleet of one experimental
point on the count backend: serial ``replicate()`` (one ``drive()`` loop
per replica), the PR 10 ensemble engine (``replicate(mode="ensemble")``
— all replicas advanced in lockstep through one vectorized ``(R,
num_states)`` loop), and the two-level ``replicate_parallel(
ensemble_size=...)`` (process pool × stack; stats-only on the
single-core CI runner).  The headline claim is the tentpole acceptance
criterion: at full scale (n = 10⁶, R = 64) the ensemble leg must hold
``ensemble_speedup_ge_3`` — at least 3× the serial replica throughput on
one core, from amortizing scheduler, dispatch, convergence-check, and
telemetry layers across the stack.  All three legs run the same seeds;
law-level equivalence (convergence-time KS, winner chi-square — the
contract is explicitly not bit-level) is asserted separately in
``tests/test_ensemble.py``.  The machine-readable timings land in
``benchmarks/reports/EB7.json`` so the CI ``perf-trajectory`` job diffs
the ``replicas_per_second[...]`` family from this report onward; see
``src/repro/experiments/scaling.py`` and ``docs/ENSEMBLE.md``.
"""


def test_eb7(run_experiment):
    report = run_experiment("EB7")
    # The ensemble leg must beat serial even at quick scale; the
    # conftest must_pass assertion already covers the scale-appropriate
    # ensemble_speedup check — this pins the throughput family's
    # presence for perf_diff.py.
    assert report.stats["replicas_per_second[ensemble]"] > 0
    assert report.stats["ensemble_speedup"] > 1.0
