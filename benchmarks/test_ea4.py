"""Benchmark EA4: the pruning survival threshold (Lemma 10's c_s).

Regenerates the EA4 table of EXPERIMENTS.md; see DESIGN.md section 5.
"""


def test_ea4(run_experiment):
    run_experiment("EA4")
