"""Command-line experiment runner.

Usage::

    repro-experiments list
    repro-experiments samplers
    repro-experiments schedulers
    repro-experiments run E1 [E2 ...] [--scale quick|full]
    repro-experiments run all --scale full
    repro-experiments run EB2 --backend counts
    repro-experiments run EB3 --backend counts --sampler splitting
    repro-experiments run EB6 --scheduler matching --sampler rejection
    repro-experiments run EB6 --telemetry --events-out events.jsonl
    repro-experiments run EB7 --ensemble-size 64
    repro-experiments telemetry
    repro-experiments campaign list
    repro-experiments campaign run usd_lower_bound --scale full --workers 4
    repro-experiments campaign run table_cache_smoke --table-cache
    repro-experiments campaign status usd_lower_bound --scale full
    repro-experiments campaign rollup usd_lower_bound --scale full \\
        --out benchmarks/reports/CAMPAIGN_usd_lower_bound.json
    repro-experiments cache list
    repro-experiments cache warm --n 256 --k 4
    repro-experiments cache info <signature>
    repro-experiments cache clear

Each experiment prints the table recorded in EXPERIMENTS.md and a PASS /
FAIL line per shape check (or a SKIPPED line when the requested
backend/sampler cannot execute it).  The same code paths back the pytest
benchmarks under ``benchmarks/``.  ``campaign`` drives the sharded,
checkpointed sweep layer (see docs/CAMPAIGNS.md): ``run`` is resumable
and incremental — rerun it after a crash and it skips every cell whose
checkpoint already exists.  ``cache`` manages the shared
transition-table store those runs read and write (see docs/CACHING.md).
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys
import time
from typing import List, Optional

from . import campaign as campaigns
from . import experiments
from . import telemetry as telemetry_module
from .cache import TABLE_CACHE_ENV, TableCacheError, TableStore, resolve_store
from .engine import backends, sampling
from .engine import scheduler as schedulers


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduction experiments for exact plurality consensus.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    sub.add_parser(
        "samplers",
        help="list registered count-space sampler policies and their ranges",
    )
    sub.add_parser(
        "schedulers",
        help="list registered interaction schedulers and their semantics",
    )
    sub.add_parser(
        "telemetry",
        help="list the metric catalogue and structured event kinds",
    )
    runner = sub.add_parser("run", help="run one or more experiments")
    runner.add_argument(
        "names",
        nargs="+",
        help="experiment ids (e.g. E1 E5), or 'all'",
    )
    runner.add_argument(
        "--scale",
        choices=("quick", "full"),
        default="quick",
        help="sweep sizing (default: quick)",
    )
    runner.add_argument(
        "--backend",
        choices=tuple(backends.available()),
        default=None,
        help=(
            "execution-backend override, forwarded to experiments that "
            "support it (e.g. EB2, EB3)"
        ),
    )
    runner.add_argument(
        "--sampler",
        choices=tuple(sampling.available()),
        default=None,
        help=(
            "count-space sampler-policy override, forwarded to experiments "
            "that support it (e.g. EB2, EB3); see 'samplers' for ranges"
        ),
    )
    runner.add_argument(
        "--scheduler",
        choices=tuple(schedulers.available()),
        default=None,
        help=(
            "interaction-scheduler override, forwarded to experiments "
            "that support it (e.g. EB6); see 'schedulers' for semantics"
        ),
    )
    runner.add_argument(
        "--ensemble-size",
        type=int,
        default=None,
        metavar="R",
        help=(
            "stacked-ensemble size override, forwarded to experiments "
            "that support it (e.g. EB7): advance R replicas per point in "
            "lockstep through the vectorized count engine "
            "(see docs/ENSEMBLE.md)"
        ),
    )
    runner.add_argument(
        "--telemetry",
        action="store_true",
        help=(
            "collect engine metrics during the run and print the "
            "summary block after each experiment (see 'telemetry')"
        ),
    )
    runner.add_argument(
        "--events-out",
        default=None,
        metavar="PATH",
        help=(
            "append structured run events (run start/end, heartbeats, "
            "guard trips) to this JSONL file"
        ),
    )
    runner.add_argument(
        "--table-cache",
        nargs="?",
        const=True,
        default=None,
        metavar="DIR",
        help=(
            "reuse derived transition tables from this shared store "
            "(no value: the default cache/ directory; see docs/CACHING.md)"
        ),
    )

    campaign = sub.add_parser(
        "campaign",
        help="sharded, checkpointed, resumable sweep campaigns",
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_command", required=True)
    campaign_sub.add_parser("list", help="list registered campaigns")

    def _campaign_common(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument("name", help="campaign name (see 'campaign list')")
        sub_parser.add_argument(
            "--scale",
            choices=("quick", "full"),
            default="quick",
            help="grid sizing (default: quick)",
        )
        sub_parser.add_argument(
            "--dir",
            dest="directory",
            default=None,
            help=(
                "checkpoint directory "
                "(default: campaigns/<name>-<scale> under the cwd)"
            ),
        )

    campaign_run = campaign_sub.add_parser(
        "run", help="run (or resume) a campaign to completion"
    )
    _campaign_common(campaign_run)
    campaign_run.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool width (default: executor's choice; 1 = inline)",
    )
    campaign_run.add_argument(
        "--max-cells",
        type=int,
        default=None,
        help="stop after checkpointing this many cells (partial run)",
    )
    campaign_run.add_argument(
        "--retries",
        type=int,
        default=2,
        help="extra attempts per failing cell (default: 2)",
    )
    campaign_run.add_argument(
        "--ensemble-size",
        type=int,
        default=None,
        metavar="R",
        help=(
            "advance up to R same-point cells per pool job through the "
            "stacked count engine (counts-backend cells with a batched "
            "scheduler; others run per-cell as before; see "
            "docs/ENSEMBLE.md)"
        ),
    )
    campaign_run.add_argument(
        "--telemetry",
        action="store_true",
        help=(
            "collect per-cell engine metrics into the checkpoints (and "
            "the rollup) and stream lifecycle events + heartbeats to "
            "events.jsonl in the campaign directory"
        ),
    )
    campaign_run.add_argument(
        "--table-cache",
        nargs="?",
        const=True,
        default=None,
        metavar="DIR",
        help=(
            "share derived transition tables across cells and restarts "
            "via this store (no value: the default cache/ directory; "
            "see docs/CACHING.md)"
        ),
    )

    status_parser = campaign_sub.add_parser(
        "status", help="report checkpoint progress without running"
    )
    _campaign_common(status_parser)

    rollup_parser = campaign_sub.add_parser(
        "rollup", help="aggregate checkpoints into one rollup report"
    )
    _campaign_common(rollup_parser)
    rollup_parser.add_argument(
        "--out",
        default=None,
        help=(
            "write the rollup JSON here (e.g. benchmarks/reports/"
            "CAMPAIGN_<name>.json); default prints the summary only"
        ),
    )
    rollup_parser.add_argument(
        "--allow-partial",
        action="store_true",
        help="roll up even when some cells have no checkpoint yet",
    )

    cache_parser = sub.add_parser(
        "cache",
        help="inspect and manage the shared transition-table store",
    )
    cache_sub = cache_parser.add_subparsers(dest="cache_command", required=True)

    def _cache_common(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument(
            "--dir",
            dest="directory",
            default=None,
            help=(
                "store directory (default: $REPRO_TABLE_CACHE if set, "
                "else cache/ under the cwd)"
            ),
        )

    _cache_common(cache_sub.add_parser("list", help="list stored table artifacts"))
    cache_info = cache_sub.add_parser(
        "info", help="load one artifact and show its entry counts"
    )
    cache_info.add_argument("signature", help="artifact signature (see 'cache list')")
    _cache_common(cache_info)
    _cache_common(
        cache_sub.add_parser(
            "clear", help="remove every artifact (tables and quarantine)"
        )
    )
    cache_warm = cache_sub.add_parser(
        "warm",
        help=(
            "derive and persist tournament transition tables ahead of a "
            "run (match --n/--k to the runs you plan)"
        ),
    )
    _cache_common(cache_warm)
    cache_warm.add_argument(
        "--protocol",
        dest="protocols",
        action="append",
        choices=("simple", "unordered", "improved"),
        default=None,
        help="protocol to warm (repeatable; default: all three)",
    )
    cache_warm.add_argument(
        "--n",
        dest="ns",
        type=int,
        action="append",
        default=None,
        help="population size to warm for (repeatable; default: 64)",
    )
    cache_warm.add_argument(
        "--k",
        dest="ks",
        type=int,
        action="append",
        default=None,
        help="opinion count to warm for (repeatable; default: 2)",
    )
    cache_warm.add_argument(
        "--budget",
        type=float,
        default=None,
        help=(
            "parallel-time budget per warm run (default: the protocol's "
            "own estimate — runs to convergence)"
        ),
    )
    return parser


def _campaign_dir(args) -> pathlib.Path:
    if args.directory is not None:
        return pathlib.Path(args.directory)
    return pathlib.Path("campaigns") / f"{args.name}-{args.scale}"


def _campaign_main(args) -> int:
    if args.campaign_command == "list":
        descriptions = campaigns.campaign_descriptions()
        for name in campaigns.campaign_names():
            print(f"{name:>16}  {descriptions[name]}")
        return 0
    try:
        grid = campaigns.get_campaign(args.name, scale=args.scale)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    directory = _campaign_dir(args)
    if args.campaign_command == "run":
        status = campaigns.run_campaign(
            grid,
            directory,
            workers=args.workers,
            max_cells=args.max_cells,
            retries=args.retries,
            progress=print,
            telemetry=args.telemetry,
            table_cache=args.table_cache,
            ensemble_size=args.ensemble_size,
        )
        print(status.describe())
        return 0 if not status.failed and (status.done or args.max_cells) else 1
    if args.campaign_command == "status":
        print(campaigns.campaign_status(grid, directory).describe())
        return 0
    # rollup
    try:
        rollup = campaigns.build_rollup(
            grid, directory, allow_partial=args.allow_partial
        )
    except campaigns.IncompleteCampaign as exc:
        print(exc, file=sys.stderr)
        return 1
    print(campaigns.render_rollup(rollup))
    if args.out is not None:
        path = campaigns.write_rollup(rollup, args.out)
        print(f"rollup written to {path}")
    return 0 if rollup["passed"] else 1


def _cache_store(args) -> TableStore:
    if args.directory is not None:
        return TableStore(args.directory)
    return resolve_store(None) or resolve_store(True)


def _cache_main(args) -> int:
    store = _cache_store(args)
    if args.cache_command == "list":
        entries = store.entries()
        if not entries:
            print(f"table cache {store.directory}: empty")
            return 0
        now = time.time()
        total = 0
        for entry in entries:
            total += entry["bytes"]
            age = max(now - entry["mtime"], 0.0)
            print(
                f"{entry['signature']}  {entry['bytes'] / 1024:8.1f} KiB  "
                f"touched {age:8.0f}s ago"
            )
        print(
            f"{len(entries)} artifacts, {total / 1024:.1f} KiB "
            f"in {store.directory}"
        )
        return 0
    if args.cache_command == "info":
        try:
            info = store.info(args.signature)
        except TableCacheError as exc:
            print(f"invalid artifact: {exc}", file=sys.stderr)
            return 1
        if info is None:
            print(
                f"no artifact {args.signature!r} in {store.directory}",
                file=sys.stderr,
            )
            return 1
        print(f"signature:    {info['signature']}")
        print(f"bytes:        {info['bytes']}")
        print(f"det entries:  {info['det_entries']}")
        print(f"rand entries: {info['rand_entries']}")
        return 0
    if args.cache_command == "clear":
        removed = store.clear()
        print(f"removed {removed} artifacts from {store.directory}")
        return 0
    # warm: run each requested (protocol, n, k) cell once against the
    # store so later runs (and campaigns) start from persisted tables.
    from .campaign.grid import CellSpec
    from .campaign.runner import _simulate_cell

    protocols = args.protocols or ["simple", "unordered", "improved"]
    ns = args.ns or [64]
    ks = args.ks or [2]
    saved = os.environ.get(TABLE_CACHE_ENV)
    os.environ[TABLE_CACHE_ENV] = str(store.directory)
    try:
        for protocol in protocols:
            for n in ns:
                for k in ks:
                    cell = CellSpec(
                        protocol=protocol,
                        workload="majority_counts",
                        n=n,
                        k=k,
                        seed=0,
                        backend="counts",
                        scheduler="matching",
                        workload_args={"bias": max(2, n // 8)},
                        max_parallel_time=args.budget,
                    )
                    started = time.perf_counter()
                    result = _simulate_cell(cell)
                    pairs = result.extras.get("count_model.derived_pairs", 0)
                    print(
                        f"warmed {protocol} n={n} k={k}: {pairs:.0f} pairs "
                        f"({time.perf_counter() - started:.1f}s)"
                    )
    finally:
        if saved is None:
            os.environ.pop(TABLE_CACHE_ENV, None)
        else:
            os.environ[TABLE_CACHE_ENV] = saved
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "campaign":
        return _campaign_main(args)
    if args.command == "cache":
        return _cache_main(args)
    if args.command == "list":
        titles = experiments.titles()
        for name in experiments.names():
            print(f"{name:>4}  {titles[name]}")
        return 0
    if args.command == "samplers":
        # Mirrors the backend registry listing: one line per policy.
        for name in sampling.available():
            policy = sampling.get(name)
            default = " (default)" if name == sampling.DEFAULT_SAMPLER else ""
            print(
                f"{name:>10}  {policy.population_range():<10}  "
                f"{policy.summary}{default}"
            )
        return 0
    if args.command == "schedulers":
        # One line per scheduler: exactness, count-space semantics, summary.
        for name in schedulers.available():
            entry = schedulers.get(name)
            default = " (default)" if name == schedulers.DEFAULT_SCHEDULER else ""
            exact = "exact" if entry.exact else "approx"
            semantics = entry.count_semantics or "agents-only"
            print(
                f"{name:>10}  {exact:<6}  counts:{semantics:<9}  "
                f"{entry.summary}{default}"
            )
        return 0
    if args.command == "telemetry":
        # The catalogue and event kinds, straight from repro.telemetry
        # (the same source docs/OBSERVABILITY.md documents).
        print("metrics:")
        for info in telemetry_module.CATALOG:
            print(f"  {info.name:<28} {info.kind:<9} {info.description}")
        print("events:")
        for kind, description in telemetry_module.EVENT_KINDS.items():
            print(f"  {kind:<28} {description}")
        return 0

    requested = args.names
    if len(requested) == 1 and requested[0].lower() == "all":
        requested = experiments.names()
    unknown = [name for name in requested if name not in experiments.names()]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(experiments.names())}", file=sys.stderr)
        return 2
    if args.backend is not None:
        unsupported = [
            name for name in requested if not experiments.supports_backend(name)
        ]
        if unsupported:
            print(
                f"--backend is not supported by: {', '.join(unsupported)}",
                file=sys.stderr,
            )
            return 2
    if args.sampler is not None:
        unsupported = [
            name for name in requested if not experiments.supports_sampler(name)
        ]
        if unsupported:
            print(
                f"--sampler is not supported by: {', '.join(unsupported)}",
                file=sys.stderr,
            )
            return 2
    if args.scheduler is not None:
        unsupported = [
            name for name in requested if not experiments.supports_scheduler(name)
        ]
        if unsupported:
            print(
                f"--scheduler is not supported by: {', '.join(unsupported)}",
                file=sys.stderr,
            )
            return 2
    if args.ensemble_size is not None:
        unsupported = [
            name for name in requested if not experiments.supports_ensemble(name)
        ]
        if unsupported:
            print(
                f"--ensemble-size is not supported by: {', '.join(unsupported)}",
                file=sys.stderr,
            )
            return 2

    events = (
        telemetry_module.EventLog(args.events_out)
        if args.events_out is not None
        else None
    )
    saved_cache_env = None
    if args.table_cache is not None:
        # Experiment functions never mention caching, so the store
        # travels to every simulate/replicate underneath by environment
        # — the same channel campaign workers use.
        cache_store = resolve_store(args.table_cache)
        saved_cache_env = os.environ.get(TABLE_CACHE_ENV)
        os.environ[TABLE_CACHE_ENV] = (
            str(cache_store.directory) if cache_store is not None else ""
        )
    all_passed = True
    for name in requested:
        telemetry = None
        if args.telemetry or events is not None:
            telemetry = telemetry_module.Telemetry(
                enabled=args.telemetry,
                events=events,
                context={"experiment": name},
            )
        # perf_counter, not time.time: experiment timings feed the
        # perf-trajectory diff and must be monotonic.
        started = time.perf_counter()
        report = experiments.run(
            name,
            scale=args.scale,
            backend=args.backend,
            sampler=args.sampler,
            scheduler=args.scheduler,
            ensemble=args.ensemble_size,
            telemetry=telemetry,
        )
        elapsed = time.perf_counter() - started
        print(report.render())
        if report.metrics is not None:
            print(telemetry_module.render_metrics(report.metrics))
        print(f"({elapsed:.1f}s)\n")
        all_passed &= report.passed
    if events is not None:
        events.close()
    if args.table_cache is not None:
        if saved_cache_env is None:
            os.environ.pop(TABLE_CACHE_ENV, None)
        else:
            os.environ[TABLE_CACHE_ENV] = saved_cache_env
    return 0 if all_passed else 1


if __name__ == "__main__":
    raise SystemExit(main())
