"""Command-line experiment runner.

Usage::

    repro-experiments list
    repro-experiments samplers
    repro-experiments schedulers
    repro-experiments run E1 [E2 ...] [--scale quick|full]
    repro-experiments run all --scale full
    repro-experiments run EB2 --backend counts
    repro-experiments run EB3 --backend counts --sampler splitting
    repro-experiments run EB6 --scheduler matching --sampler rejection

Each experiment prints the table recorded in EXPERIMENTS.md and a PASS /
FAIL line per shape check (or a SKIPPED line when the requested
backend/sampler cannot execute it).  The same code paths back the pytest
benchmarks under ``benchmarks/``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from . import experiments
from .engine import backends, sampling
from .engine import scheduler as schedulers


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduction experiments for exact plurality consensus.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    sub.add_parser(
        "samplers",
        help="list registered count-space sampler policies and their ranges",
    )
    sub.add_parser(
        "schedulers",
        help="list registered interaction schedulers and their semantics",
    )
    runner = sub.add_parser("run", help="run one or more experiments")
    runner.add_argument(
        "names",
        nargs="+",
        help="experiment ids (e.g. E1 E5), or 'all'",
    )
    runner.add_argument(
        "--scale",
        choices=("quick", "full"),
        default="quick",
        help="sweep sizing (default: quick)",
    )
    runner.add_argument(
        "--backend",
        choices=tuple(backends.available()),
        default=None,
        help=(
            "execution-backend override, forwarded to experiments that "
            "support it (e.g. EB2, EB3)"
        ),
    )
    runner.add_argument(
        "--sampler",
        choices=tuple(sampling.available()),
        default=None,
        help=(
            "count-space sampler-policy override, forwarded to experiments "
            "that support it (e.g. EB2, EB3); see 'samplers' for ranges"
        ),
    )
    runner.add_argument(
        "--scheduler",
        choices=tuple(schedulers.available()),
        default=None,
        help=(
            "interaction-scheduler override, forwarded to experiments "
            "that support it (e.g. EB6); see 'schedulers' for semantics"
        ),
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        titles = experiments.titles()
        for name in experiments.names():
            print(f"{name:>4}  {titles[name]}")
        return 0
    if args.command == "samplers":
        # Mirrors the backend registry listing: one line per policy.
        for name in sampling.available():
            policy = sampling.get(name)
            default = " (default)" if name == sampling.DEFAULT_SAMPLER else ""
            print(
                f"{name:>10}  {policy.population_range():<10}  "
                f"{policy.summary}{default}"
            )
        return 0
    if args.command == "schedulers":
        # One line per scheduler: exactness, count-space semantics, summary.
        for name in schedulers.available():
            entry = schedulers.get(name)
            default = " (default)" if name == schedulers.DEFAULT_SCHEDULER else ""
            exact = "exact" if entry.exact else "approx"
            semantics = entry.count_semantics or "agents-only"
            print(
                f"{name:>10}  {exact:<6}  counts:{semantics:<9}  "
                f"{entry.summary}{default}"
            )
        return 0

    requested = args.names
    if len(requested) == 1 and requested[0].lower() == "all":
        requested = experiments.names()
    unknown = [name for name in requested if name not in experiments.names()]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(experiments.names())}", file=sys.stderr)
        return 2
    if args.backend is not None:
        unsupported = [
            name for name in requested if not experiments.supports_backend(name)
        ]
        if unsupported:
            print(
                f"--backend is not supported by: {', '.join(unsupported)}",
                file=sys.stderr,
            )
            return 2
    if args.sampler is not None:
        unsupported = [
            name for name in requested if not experiments.supports_sampler(name)
        ]
        if unsupported:
            print(
                f"--sampler is not supported by: {', '.join(unsupported)}",
                file=sys.stderr,
            )
            return 2
    if args.scheduler is not None:
        unsupported = [
            name for name in requested if not experiments.supports_scheduler(name)
        ]
        if unsupported:
            print(
                f"--scheduler is not supported by: {', '.join(unsupported)}",
                file=sys.stderr,
            )
            return 2

    all_passed = True
    for name in requested:
        started = time.time()
        report = experiments.run(
            name,
            scale=args.scale,
            backend=args.backend,
            sampler=args.sampler,
            scheduler=args.scheduler,
        )
        elapsed = time.time() - started
        print(report.render())
        print(f"({elapsed:.1f}s)\n")
        all_passed &= report.passed
    return 0 if all_passed else 1


if __name__ == "__main__":
    raise SystemExit(main())
