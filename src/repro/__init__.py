"""repro - Population Protocols for Exact Plurality Consensus.

Reproduction of Bankhamer, Berenbrink, Biermeier, Elsaesser, Hosseinpour,
Kaaser, Kling: "Population Protocols for Exact Plurality Consensus"
(PODC 2022).  See README.md for a tour and DESIGN.md for the system map.

Quickstart::

    from repro import SimpleAlgorithm, simulate, workloads

    config = workloads.bias_one(n=1000, k=4, rng=1)
    result = simulate(SimpleAlgorithm(), config, seed=2,
                      max_parallel_time=20000)
    print(result.describe())
"""

from . import telemetry, workloads
from .core import (
    ImprovedParams,
    SimpleAlgorithm,
    SimpleParams,
    UnorderedParams,
)
from .engine import (
    MatchingScheduler,
    PopulationConfig,
    ProbeRecorder,
    Protocol,
    RunResult,
    SequentialScheduler,
    simulate,
)

__version__ = "1.0.0"

__all__ = [
    "ImprovedParams",
    "MatchingScheduler",
    "PopulationConfig",
    "ProbeRecorder",
    "Protocol",
    "RunResult",
    "SequentialScheduler",
    "SimpleAlgorithm",
    "SimpleParams",
    "UnorderedParams",
    "__version__",
    "simulate",
    "telemetry",
    "workloads",
]
