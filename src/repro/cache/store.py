"""Content-addressed on-disk store for transition-table artifacts.

Layout (everything under one cache directory, ``cache/`` by default —
a sibling of ``campaigns/``, gitignored)::

    <dir>/tables/<signature>.npz     one artifact per quotient shape
    <dir>/quarantine/<name>.npz      entries that failed validation
    <dir>/lock                       advisory flock for merge-writes

Concurrency: ``put`` runs read → merge → atomic ``tmp + os.replace``
under an exclusive ``fcntl`` flock, so parallel first-run workers
accumulate the *union* of their derived pairs instead of losing updates
(the campaign cache-reuse CI leg depends on that union being complete).
Reads never lock — they see either the old or the new complete artifact.

Robustness: any artifact that fails to load (truncated, foreign schema
version, signature mismatch) is moved to ``quarantine/`` and reported as
a miss; the writer then rebuilds it from scratch.  Hits touch the file
mtime, and when the store grows past its size cap the oldest-touched
artifacts are evicted (LRU).
"""

from __future__ import annotations

import os
import pathlib
import time
from typing import Any, Dict, List, Optional, Union

from .. import telemetry as telemetry_module
from .table import TableCacheError, TransitionTable

try:  # advisory locking is POSIX-only; degrade gracefully elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

#: Environment variable naming the store directory.  Campaign workers and
#: CLI runs inherit it the same way ``REPRO_CAMPAIGN_TELEMETRY`` travels.
TABLE_CACHE_ENV = "REPRO_TABLE_CACHE"

#: Environment override for the store size cap (bytes).
MAX_BYTES_ENV = "REPRO_TABLE_CACHE_MAX_BYTES"

#: Default size cap: far above any real table footprint (quotient tables
#: compress to kilobytes), small enough that a runaway store is bounded.
DEFAULT_MAX_BYTES = 512 * 1024 * 1024


def default_store_dir() -> pathlib.Path:
    """The default store location: a ``cache/`` sibling of ``campaigns/``."""
    return pathlib.Path("cache")


class TableStore:
    """Content-addressed store of :class:`TransitionTable` artifacts."""

    # Pre-resolved no-op handles; attach_telemetry rebinds per instance.
    _t_hits = telemetry_module.NULL_COUNTER
    _t_misses = telemetry_module.NULL_COUNTER
    _t_load_timer = telemetry_module.NULL_TIMER
    _t_bytes = telemetry_module.NULL_GAUGE

    def __init__(
        self,
        directory: Union[str, os.PathLike],
        *,
        max_bytes: Optional[int] = None,
    ) -> None:
        self.directory = pathlib.Path(directory)
        if max_bytes is None:
            max_bytes = int(os.environ.get(MAX_BYTES_ENV, DEFAULT_MAX_BYTES))
        self.max_bytes = int(max_bytes)

    def attach_telemetry(self, telemetry: telemetry_module.Telemetry) -> None:
        self._t_hits = telemetry.counter("cache.hit")
        self._t_misses = telemetry.counter("cache.miss")
        self._t_load_timer = telemetry.timer("cache.load_seconds")
        self._t_bytes = telemetry.gauge("cache.store_bytes")

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    @property
    def tables_dir(self) -> pathlib.Path:
        return self.directory / "tables"

    @property
    def quarantine_dir(self) -> pathlib.Path:
        return self.directory / "quarantine"

    def path_for(self, signature: str) -> pathlib.Path:
        return self.tables_dir / f"{signature}.npz"

    def contains(self, signature: str) -> bool:
        """Cheap existence probe (no load, no validation, no metering)."""
        return bool(signature) and self.path_for(signature).exists()

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def get(self, signature: str) -> Optional[TransitionTable]:
        """Load the artifact for ``signature``; None (and a miss) if absent.

        Invalid artifacts — torn writes, foreign schema versions, content
        whose signature disagrees with its filename — are quarantined and
        reported as misses rather than raised: a poisoned cache entry
        must never take down a run that can simply re-derive.
        """
        if not signature:
            return None
        path = self.path_for(signature)
        if not path.exists():
            self._t_misses.inc()
            return None
        try:
            with self._t_load_timer:
                table = TransitionTable.load(path, expected_signature=signature)
        except (TableCacheError, OSError):
            self._quarantine(path)
            self._t_misses.inc()
            return None
        try:
            os.utime(path)  # LRU touch
        except OSError:  # pragma: no cover - fs without utime permission
            pass
        self._t_hits.inc()
        return table

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def put(self, table: TransitionTable, *, merge: bool = True) -> Optional[pathlib.Path]:
        """Persist ``table``, merging into any existing entry by default.

        The read → merge → replace sequence runs under an exclusive
        advisory lock so concurrent writers union their entries instead
        of overwriting each other; the final write is atomic
        (``tmp + os.replace``), so readers never observe a torn file.
        """
        if not table.signature:
            return None
        self.tables_dir.mkdir(parents=True, exist_ok=True)
        path = self.path_for(table.signature)
        with self._locked():
            if merge and path.exists():
                try:
                    existing = TransitionTable.load(
                        path, expected_signature=table.signature
                    )
                except (TableCacheError, OSError):
                    self._quarantine(path)
                else:
                    before = len(existing)
                    merged = existing.merge(table)
                    # Nothing new: keep the artifact byte-stable.
                    table = None if len(merged) == before else merged
            if table is not None:
                tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
                try:
                    table.save(tmp)
                    os.replace(tmp, path)
                finally:
                    if tmp.exists():  # save/replace failed midway
                        tmp.unlink()
            self._t_bytes.set(float(self._total_bytes()))
            self._evict(keep=path)
        return path

    def _locked(self):
        return _StoreLock(self.directory / "lock")

    def _quarantine(self, path: pathlib.Path) -> None:
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, self.quarantine_dir / f"{int(time.time())}-{path.name}")
        except OSError:  # pragma: no cover - crossed with another process
            pass

    def _total_bytes(self) -> int:
        return sum(
            entry.stat().st_size for entry in self.tables_dir.glob("*.npz")
        )

    def _evict(self, *, keep: Optional[pathlib.Path] = None) -> None:
        """Drop the oldest-touched artifacts until under the size cap."""
        if self.max_bytes <= 0:
            return
        entries = sorted(
            (
                entry
                for entry in self.tables_dir.glob("*.npz")
                if keep is None or entry != keep
            ),
            key=lambda entry: entry.stat().st_mtime,
        )
        total = self._total_bytes()
        for entry in entries:
            if total <= self.max_bytes:
                break
            try:
                size = entry.stat().st_size
                entry.unlink()
                total -= size
            except OSError:  # pragma: no cover - crossed with another process
                pass

    # ------------------------------------------------------------------
    # Introspection (CLI `cache list/info/clear`)
    # ------------------------------------------------------------------
    def entries(self) -> List[Dict[str, Any]]:
        """One summary dict per stored artifact (no loads)."""
        rows = []
        if self.tables_dir.is_dir():
            for entry in sorted(self.tables_dir.glob("*.npz")):
                stat = entry.stat()
                rows.append(
                    {
                        "signature": entry.stem,
                        "bytes": int(stat.st_size),
                        "mtime": float(stat.st_mtime),
                    }
                )
        return rows

    def info(self, signature: str) -> Optional[Dict[str, Any]]:
        """Full entry stats (loads and validates the artifact)."""
        path = self.path_for(signature)
        if not path.exists():
            return None
        table = TransitionTable.load(path, expected_signature=signature)
        return {
            "signature": signature,
            "bytes": int(path.stat().st_size),
            "mtime": float(path.stat().st_mtime),
            "det_entries": len(table.det),
            "rand_entries": len(table.rand),
        }

    def clear(self) -> int:
        """Remove every artifact (tables and quarantine); return the count."""
        removed = 0
        for directory in (self.tables_dir, self.quarantine_dir):
            if not directory.is_dir():
                continue
            for entry in directory.glob("*.npz"):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:  # pragma: no cover
                    pass
        return removed


class _StoreLock:
    """Exclusive advisory flock on the store; a no-op where unsupported."""

    def __init__(self, path: pathlib.Path) -> None:
        self.path = path
        self._handle = None

    def __enter__(self) -> "_StoreLock":
        if fcntl is not None:
            try:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = open(self.path, "a+")
                fcntl.flock(self._handle.fileno(), fcntl.LOCK_EX)
            except OSError:  # pragma: no cover - fs without flock
                if self._handle is not None:
                    self._handle.close()
                self._handle = None
        return self

    def __exit__(self, *exc) -> None:
        if self._handle is not None:
            fcntl.flock(self._handle.fileno(), fcntl.LOCK_UN)
            self._handle.close()
            self._handle = None


StoreLike = Union[TableStore, str, os.PathLike, bool, None]


def resolve_store(spec: StoreLike) -> Optional[TableStore]:
    """Coerce a ``table_cache=`` argument to a :class:`TableStore`.

    ``None`` → the :data:`TABLE_CACHE_ENV` directory when set, else no
    store (caching stays opt-in); ``False`` → no store even when the env
    var is set; ``True`` → the default ``cache/`` directory; a string or
    path → a store rooted there; a :class:`TableStore` → itself.
    """
    if isinstance(spec, TableStore):
        return spec
    if spec is None:
        env = os.environ.get(TABLE_CACHE_ENV, "").strip()
        return TableStore(env) if env else None
    if spec is False:
        return None
    if spec is True:
        return TableStore(default_store_dir())
    return TableStore(spec)
