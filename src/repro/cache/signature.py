"""Content signatures for transition-table cache entries.

A signature identifies a *quotient shape*: everything that determines the
transition table a :class:`~repro.engine.backends.model.DynamicCountModel`
would derive, and nothing that does not.  Two models with equal signatures
derive byte-identical entries for any pair they both touch, so their
tables may be merged and exchanged freely.

What goes in:

* the table schema version (so a layout change invalidates every entry),
* a ``kind`` string naming the quotient family (``simple_quotient``,
  ``era_quotient``, ``improved_era_quotient``, ``static``),
* the raw algorithm parameter fields (``clock_gamma``, ``token_cap``,
  ``le_factor``, ...) — n-independent, and a superset of anything the
  production ``interact`` could consult,
* the n-*derived* quantities the quotient actually bakes into states and
  transitions (``psi``, ``init_threshold``, ``max_level``, ``rounds``,
  ``origin``, ``hour_m``, ``ell_max``) plus ``k``.

What stays out: ``n`` itself and the seed.  Transitions never read ``n``
directly (only through the derived quantities above — the remaining
``s.n`` uses in the core algorithms are rng-gated agent paths unreachable
under derivation guards, and invariant checks), so every run whose
derived parameters coincide shares one cache entry regardless of
population size or randomness.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict

#: Version of the on-disk table layout *and* the signature document.  A
#: bump orphans every existing store entry (loads reject the old version)
#: and changes every signature, so stale artifacts can never be replayed
#: into a newer model.
TABLE_SCHEMA_VERSION = 1


def _coerce(value: Any):
    """JSON fallback for numpy scalars inside parameter dicts."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    raise TypeError(f"unhashable signature field of type {type(value).__name__}")


def canonical_json(payload: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, numpy coerced."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), default=_coerce)


def signature_of(kind: str, params: Dict[str, Any]) -> str:
    """sha256 hex digest over the canonical signature document."""
    doc = {"schema": TABLE_SCHEMA_VERSION, "kind": str(kind), "params": params}
    return hashlib.sha256(canonical_json(doc).encode("utf-8")).hexdigest()
