"""Shared transition-table cache: content-addressed, persistent artifacts.

Derivation of a :class:`~repro.engine.backends.model.DynamicCountModel`'s
transition table is a pure function of the protocol/config *quotient
shape* — not of ``n``, the seed, or the process doing the deriving.  This
package turns that observation into infrastructure:

* :mod:`repro.cache.signature` — stable sha256 signatures over the
  quotient parameters (schema-versioned; never ``n`` or seed).
* :mod:`repro.cache.table` — :class:`TransitionTable`, the label-keyed,
  pickle-free (npz + JSON header) snapshot models export and warm-start
  from, bit-identically.
* :mod:`repro.cache.store` — :class:`TableStore`, the on-disk store
  (atomic merge-writes under an advisory lock, validation + quarantine
  on load, LRU size cap) shared across workers, runs, and campaigns via
  ``table_cache=`` / ``--table-cache`` / ``REPRO_TABLE_CACHE``.

See docs/CACHING.md for the signature scheme, store layout, and
invalidation rules.
"""

from .signature import TABLE_SCHEMA_VERSION, canonical_json, signature_of
from .store import (
    DEFAULT_MAX_BYTES,
    MAX_BYTES_ENV,
    TABLE_CACHE_ENV,
    TableStore,
    default_store_dir,
    resolve_store,
)
from .table import (
    TableCacheError,
    TableFormatError,
    TableSchemaError,
    TableSignatureError,
    TransitionTable,
)

__all__ = [
    "TABLE_SCHEMA_VERSION",
    "TABLE_CACHE_ENV",
    "MAX_BYTES_ENV",
    "DEFAULT_MAX_BYTES",
    "TableCacheError",
    "TableFormatError",
    "TableSchemaError",
    "TableSignatureError",
    "TableStore",
    "TransitionTable",
    "canonical_json",
    "default_store_dir",
    "resolve_store",
    "signature_of",
]
