"""The serializable transition-table artifact.

A :class:`TransitionTable` is the portable form of everything a
:class:`~repro.engine.backends.model.DynamicCountModel` derives lazily:
deterministic pair outcomes and randomized-pair entries (outcome
probabilities, outcome states, and the rng *factor* structure that count
mode needs for bit-exact agent parity).  Entries are keyed by **state
labels** (the quotient's hashable state tuples), never by interned ids —
ids are an artifact of interning order, labels are canonical — so tables
merge across processes and replay into any model of the same signature.

Serialization is pickle-free by construction: ``save`` writes a
compressed ``.npz`` whose only non-numeric member is a JSON header
(schema version, signature, label universe) stored as a ``uint8`` byte
array, and ``load`` passes ``allow_pickle=False``.  A cache directory can
therefore be shared between mutually untrusting runs: the worst a
corrupt or malicious entry can do is fail validation and be quarantined.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from .signature import TABLE_SCHEMA_VERSION

#: A hashable quotient state label (nested tuples of JSON scalars).
Label = Any

#: One randomized entry: (probs, out_u labels, out_v labels, factors),
#: ``factors`` being ``((group, cum), ...)`` per independent rng factor.
RandSpec = Tuple[np.ndarray, Tuple[Label, ...], Tuple[Label, ...],
                 Tuple[Tuple[int, np.ndarray], ...]]


class TableCacheError(Exception):
    """Base class for table-cache artifact problems."""


class TableSchemaError(TableCacheError):
    """The artifact was written under a different table schema version."""


class TableSignatureError(TableCacheError):
    """The artifact's signature does not match the expected one."""


class TableFormatError(TableCacheError):
    """The artifact is truncated, corrupt, or structurally invalid."""


def freeze_label(value: Any) -> Label:
    """Recursively convert JSON lists back into hashable tuples."""
    if isinstance(value, list):
        return tuple(freeze_label(item) for item in value)
    return value


def thaw_label(value: Label) -> Any:
    """Recursively convert label tuples into JSON-serializable lists."""
    if isinstance(value, tuple):
        return [thaw_label(item) for item in value]
    return value


class TransitionTable:
    """In-memory label-keyed transition snapshot for one quotient shape."""

    def __init__(self, signature: str = "") -> None:
        self.signature = str(signature)
        #: (label_u, label_v) -> (out_label_u, out_label_v)
        self.det: Dict[Tuple[Label, Label], Tuple[Label, Label]] = {}
        #: (label_u, label_v) -> RandSpec
        self.rand: Dict[Tuple[Label, Label], RandSpec] = {}

    def __len__(self) -> int:
        return len(self.det) + len(self.rand)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TransitionTable(signature={self.signature[:12]!r}..., "
            f"det={len(self.det)}, rand={len(self.rand)})"
        )

    def merge(self, other: "TransitionTable") -> "TransitionTable":
        """Fold ``other``'s entries into this table (same signature only).

        Entries present in both must be identical by construction (both
        were derived from the same quotient shape), so a plain union is
        exact; last writer wins on the overlap.
        """
        if other.signature != self.signature:
            raise TableSignatureError(
                f"cannot merge table {other.signature[:12]!r} "
                f"into {self.signature[:12]!r}"
            )
        self.det.update(other.det)
        self.rand.update(other.rand)
        return self

    # ------------------------------------------------------------------
    # Serialization (npz + JSON header, no pickle)
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Write the table as a compressed, pickle-free ``.npz``."""
        labels: List[Label] = []
        index: Dict[Label, int] = {}

        def intern(label: Label) -> int:
            found = index.get(label)
            if found is None:
                found = index[label] = len(labels)
                labels.append(label)
            return found

        # Deterministic artifact ordering keyed by repr: labels are
        # heterogeneous tuples (ints, bools, None) that Python refuses to
        # compare directly.
        det_items = sorted(self.det.items(), key=lambda kv: repr(kv[0]))
        rand_items = sorted(self.rand.items(), key=lambda kv: repr(kv[0]))
        det_pairs = np.array(
            [[intern(u), intern(v)] for (u, v), _ in det_items], dtype=np.int64
        ).reshape(len(det_items), 2)
        det_out = np.array(
            [[intern(ou), intern(ov)] for _, (ou, ov) in det_items], dtype=np.int64
        ).reshape(len(det_items), 2)

        rand_pairs = np.array(
            [[intern(u), intern(v)] for (u, v), _ in rand_items], dtype=np.int64
        ).reshape(len(rand_items), 2)
        probs_flat: List[np.ndarray] = []
        out_u_flat: List[int] = []
        out_v_flat: List[int] = []
        offsets = [0]
        factor_groups: List[int] = []
        factor_offsets = [0]
        factor_cum_flat: List[np.ndarray] = []
        factor_cum_offsets = [0]
        for _, (probs, out_u, out_v, factors) in rand_items:
            probs_flat.append(np.asarray(probs, dtype=np.float64))
            out_u_flat.extend(intern(label) for label in out_u)
            out_v_flat.extend(intern(label) for label in out_v)
            offsets.append(offsets[-1] + len(out_u))
            for group, cum in factors:
                factor_groups.append(int(group))
                cum_arr = np.asarray(cum, dtype=np.float64)
                factor_cum_flat.append(cum_arr)
                factor_cum_offsets.append(factor_cum_offsets[-1] + cum_arr.size)
            factor_offsets.append(len(factor_groups))

        header = {
            "schema_version": TABLE_SCHEMA_VERSION,
            "signature": self.signature,
            "labels": [thaw_label(label) for label in labels],
            "det_entries": len(det_items),
            "rand_entries": len(rand_items),
        }
        header_bytes = np.frombuffer(
            json.dumps(header, sort_keys=True).encode("utf-8"), dtype=np.uint8
        )
        with open(path, "wb") as handle:
            np.savez_compressed(
                handle,
                header=header_bytes,
                det_pairs=det_pairs,
                det_out=det_out,
                rand_pairs=rand_pairs,
                rand_probs=(
                    np.concatenate(probs_flat)
                    if probs_flat
                    else np.zeros(0, dtype=np.float64)
                ),
                rand_offsets=np.asarray(offsets, dtype=np.int64),
                rand_out_u=np.asarray(out_u_flat, dtype=np.int64),
                rand_out_v=np.asarray(out_v_flat, dtype=np.int64),
                rand_factor_groups=np.asarray(factor_groups, dtype=np.int64),
                rand_factor_offsets=np.asarray(factor_offsets, dtype=np.int64),
                rand_factor_cum=(
                    np.concatenate(factor_cum_flat)
                    if factor_cum_flat
                    else np.zeros(0, dtype=np.float64)
                ),
                rand_factor_cum_offsets=np.asarray(
                    factor_cum_offsets, dtype=np.int64
                ),
            )

    @classmethod
    def load(
        cls, path, *, expected_signature: Optional[str] = None
    ) -> "TransitionTable":
        """Read and validate an artifact written by :meth:`save`.

        Raises :class:`TableSchemaError` on a schema-version mismatch,
        :class:`TableSignatureError` when ``expected_signature`` is given
        and differs, and :class:`TableFormatError` for anything torn or
        structurally inconsistent.
        """
        try:
            with np.load(path, allow_pickle=False) as data:
                header = json.loads(bytes(data["header"]).decode("utf-8"))
                det_pairs = np.asarray(data["det_pairs"], dtype=np.int64)
                det_out = np.asarray(data["det_out"], dtype=np.int64)
                rand_pairs = np.asarray(data["rand_pairs"], dtype=np.int64)
                rand_probs = np.asarray(data["rand_probs"], dtype=np.float64)
                rand_offsets = np.asarray(data["rand_offsets"], dtype=np.int64)
                rand_out_u = np.asarray(data["rand_out_u"], dtype=np.int64)
                rand_out_v = np.asarray(data["rand_out_v"], dtype=np.int64)
                factor_groups = np.asarray(
                    data["rand_factor_groups"], dtype=np.int64
                )
                factor_offsets = np.asarray(
                    data["rand_factor_offsets"], dtype=np.int64
                )
                factor_cum = np.asarray(data["rand_factor_cum"], dtype=np.float64)
                factor_cum_offsets = np.asarray(
                    data["rand_factor_cum_offsets"], dtype=np.int64
                )
        except (TableCacheError, OSError):
            raise
        except Exception as exc:  # zip/json/key errors: a torn artifact
            raise TableFormatError(f"unreadable table artifact {path}: {exc}")

        if not isinstance(header, dict):
            raise TableFormatError(f"table header is not an object in {path}")
        version = header.get("schema_version")
        if version != TABLE_SCHEMA_VERSION:
            raise TableSchemaError(
                f"table schema version {version!r} != {TABLE_SCHEMA_VERSION} "
                f"in {path}"
            )
        signature = str(header.get("signature", ""))
        if expected_signature is not None and signature != expected_signature:
            raise TableSignatureError(
                f"table signature {signature[:12]!r} != expected "
                f"{expected_signature[:12]!r} in {path}"
            )

        try:
            labels = [freeze_label(raw) for raw in header["labels"]]
            table = cls(signature)
            for (iu, iv), (ou, ov) in zip(det_pairs, det_out):
                table.det[(labels[iu], labels[iv])] = (labels[ou], labels[ov])
            for m, (iu, iv) in enumerate(rand_pairs):
                lo, hi = int(rand_offsets[m]), int(rand_offsets[m + 1])
                flo, fhi = int(factor_offsets[m]), int(factor_offsets[m + 1])
                factors = tuple(
                    (
                        int(factor_groups[f]),
                        factor_cum[
                            int(factor_cum_offsets[f]):int(factor_cum_offsets[f + 1])
                        ].copy(),
                    )
                    for f in range(flo, fhi)
                )
                table.rand[(labels[iu], labels[iv])] = (
                    rand_probs[lo:hi].copy(),
                    tuple(labels[i] for i in rand_out_u[lo:hi]),
                    tuple(labels[i] for i in rand_out_v[lo:hi]),
                    factors,
                )
        except (IndexError, KeyError, ValueError, TypeError) as exc:
            raise TableFormatError(f"inconsistent table arrays in {path}: {exc}")
        expected_counts = (header.get("det_entries"), header.get("rand_entries"))
        if expected_counts != (len(table.det), len(table.rand)):
            raise TableFormatError(
                f"entry counts {len(table.det)}/{len(table.rand)} disagree "
                f"with header {expected_counts} in {path}"
            )
        return table


TableLike = Union[TransitionTable, None]
