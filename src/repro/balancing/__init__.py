"""Discrete load balancing by pairwise averaging."""

from .averaging import (
    LoadBalancingProtocol,
    LoadBalancingState,
    averaging_step,
    discrepancy,
)

__all__ = [
    "LoadBalancingProtocol",
    "LoadBalancingState",
    "averaging_step",
    "discrepancy",
]
