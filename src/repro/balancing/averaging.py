"""Discrete load balancing by pairwise averaging ([12, 28]).

Paper, Section 3.3 (cancellation phase): collector agents hold signed loads
``ℓ ∈ [−10, 10]`` and repeatedly replace a pair ``(ℓ_u, ℓ_v)`` by
``(⌊(ℓ_u + ℓ_v)/2⌋, ⌈(ℓ_u + ℓ_v)/2⌉)``.  The sum is preserved exactly, and
after Θ(log n) parallel time all loads are within ±1 of the average w.h.p.
(Mocquard et al. [28], Berenbrink et al. [12]).  Within the tournament this
cancels defender tokens against challenger tokens so the surviving loads
fit into the player population.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from ..engine.errors import ConfigurationError
from ..engine.population import PopulationConfig
from ..engine.protocol import Protocol


def averaging_step(loads: np.ndarray, u: np.ndarray, v: np.ndarray) -> None:
    """Replace each pair's loads by (floor, ceil) of their average.

    Uses floor division, which rounds toward −∞, matching the paper's
    ``(⌊·⌋, ⌈·⌉)`` convention for negative sums as well.
    """
    if u.size == 0:
        return
    total = loads[u] + loads[v]
    low = total >> 1 if np.issubdtype(loads.dtype, np.signedinteger) else total // 2
    loads[u] = low
    loads[v] = total - low


def discrepancy(loads: np.ndarray) -> int:
    """Max minus min load — the quantity [12] bounds."""
    return int(loads.max() - loads.min())


@dataclass
class LoadBalancingState:
    loads: np.ndarray
    target_discrepancy: int


class LoadBalancingProtocol(Protocol):
    """Standalone averaging protocol for benchmark E12.

    Initial loads come from ``loads_from_config`` (default: opinion 1 agents
    hold +cap, opinion 2 agents hold −cap, everyone else 0 — the shape the
    tournament's cancellation phase sees).  Convergence: discrepancy at most
    ``target_discrepancy``.  The default of 2 matches [12]'s guarantee
    (constant discrepancy in Θ(log n) time); reaching discrepancy 1 also
    requires annihilating the last opposite ±1 pair, a diffusive tail that
    costs Θ(n) time and that the tournament's match phase absorbs instead.
    """

    name = "load_balancing"

    def __init__(
        self,
        loads_from_config: Optional[Callable[[PopulationConfig], np.ndarray]] = None,
        target_discrepancy: int = 2,
        cap: int = 10,
    ):
        if target_discrepancy < 0:
            raise ConfigurationError("target_discrepancy must be >= 0")
        if cap < 1:
            raise ConfigurationError("cap must be >= 1")
        self._loads_from_config = loads_from_config
        self._target = target_discrepancy
        self._cap = cap

    def _default_loads(self, config: PopulationConfig) -> np.ndarray:
        loads = np.zeros(config.n, dtype=np.int64)
        loads[config.opinions == 1] = self._cap
        if config.k >= 2:
            loads[config.opinions == 2] = -self._cap
        return loads

    def init_state(
        self, config: PopulationConfig, rng: np.random.Generator
    ) -> LoadBalancingState:
        maker = self._loads_from_config or self._default_loads
        loads = np.asarray(maker(config), dtype=np.int64)
        if loads.shape != (config.n,):
            raise ConfigurationError("loads_from_config must return shape (n,)")
        return LoadBalancingState(loads=loads, target_discrepancy=self._target)

    def interact(
        self,
        state: LoadBalancingState,
        u: np.ndarray,
        v: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        averaging_step(state.loads, u, v)

    def has_converged(self, state: LoadBalancingState) -> bool:
        return discrepancy(state.loads) <= state.target_discrepancy

    def output(self, state: LoadBalancingState) -> np.ndarray:
        return np.ones_like(state.loads)

    def progress(self, state: LoadBalancingState) -> Dict[str, float]:
        return {
            "discrepancy": float(discrepancy(state.loads)),
            "sum": float(state.loads.sum()),
            "nonzero": float((state.loads != 0).sum()),
        }

    def check_invariants(self, state: LoadBalancingState) -> None:
        # Sum preservation is checked against the recorded progress by tests.
        pass
