"""Leader election with the interface the paper borrows from [23]."""

from .coin_race import (
    CoinRaceLeaderElection,
    CoinRaceState,
    le_enter_round,
    le_relay,
    le_rounds,
)

__all__ = [
    "CoinRaceLeaderElection",
    "CoinRaceState",
    "le_enter_round",
    "le_relay",
    "le_rounds",
]
