"""Leader election with the interface of Gąsieniec–Stachowiak [23].

Appendix B of the paper consumes a leader-election black box that produces
a *unique* leader among the tracker agents in O(log² n) parallel time
w.h.p., where the leader *knows* when the election has concluded.  This
module provides that interface via a synchronized coin race (DESIGN.md
§4.4):

* rounds are delimited by a phase clock (the standalone protocol below
  runs the leaderless clock on all agents; inside the tournament protocols
  the main clock's phases 0 .. R−1 are the rounds);
* at the start of each round every surviving candidate flips a fair coin;
* the round's maximum coin spreads by max-epidemic (``seen_max``);
* when a candidate moves to the next round it retires iff its own coin was
  below the maximum it heard.

Any two candidates are separated in a round with probability 1/2, so after
``R = ⌈factor · log₂ n⌉ + slack`` rounds the survivor is unique w.h.p.
(union bound: ``n² 2^(−R)``); a candidate holding the round maximum never
retires, so at least one survivor always remains.  Total time
Θ(R · log n) = Θ(log² n), matching how Theorem 1(2) consumes [23].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..clocks.leaderless import clock_psi, leaderless_clock_step
from ..engine.population import PopulationConfig
from ..engine.protocol import Protocol


def le_rounds(n: int, factor: float = 3.0, slack: int = 2) -> int:
    """Number of coin rounds ``R = ⌈factor · log₂ n⌉ + slack``."""
    return int(np.ceil(factor * np.log2(max(n, 2)))) + slack


#: Cumulative distribution of one fair leader-election coin.  Both the
#: agent path (:func:`flip_coins` below) and the era-quotiented count
#: model (:mod:`repro.core.era_quotient`) map one uniform variate through
#: this exact array with ``searchsorted(..., side="right")`` — sharing the
#: thresholds (and the draw order: one uniform per flipping tracker, in
#: batch order) is what lets the count backend's exact mode replay the
#: coin race bit-for-bit, the same contract
#: :data:`repro.core.common.ROLE_REROLL_CUM` provides for role re-rolls.
LE_COIN_CUM = np.array([0.5, 1.0])


def flip_coins(rng: np.random.Generator, size: int) -> np.ndarray:
    """Draw ``size`` fair coins (0/1) from the shared uniform stream."""
    return np.searchsorted(LE_COIN_CUM, rng.random(size), side="right")


def le_enter_round(
    agents: np.ndarray,
    new_round: np.ndarray,
    cand: np.ndarray,
    coin: np.ndarray,
    seen_max: np.ndarray,
    seen_round: np.ndarray,
    total_rounds: int,
    rng: np.random.Generator,
) -> None:
    """Move ``agents`` into ``new_round`` (per-agent round numbers).

    Finalizes each agent's previous round first: a candidate whose coin was
    below the maximum it heard retires.  Agents moving past the last round
    (``new_round >= total_rounds``) finalize without flipping again.
    """
    if agents.size == 0:
        return
    had_round = seen_round[agents] >= 0
    losers = cand[agents] & had_round & (coin[agents] < seen_max[agents])
    cand[agents[losers]] = False

    flipping = new_round < total_rounds
    flippers = agents[flipping]
    if flippers.size:
        # One uniform per flipper through the shared LE_COIN_CUM
        # thresholds; non-candidates still consume their draw (their coin
        # is forced to 0) so the rng stream does not depend on who is
        # still racing — the count backend's exact mode relies on this.
        flips = flip_coins(rng, flippers.size).astype(coin.dtype)
        coin[flippers] = np.where(cand[flippers], flips, 0)
        seen_max[flippers] = coin[flippers]
    finished = agents[~flipping]
    if finished.size:
        coin[finished] = 0
        seen_max[finished] = 0
    seen_round[agents] = np.minimum(new_round, total_rounds)


def le_relay(
    seen_max: np.ndarray,
    seen_round: np.ndarray,
    u: np.ndarray,
    v: np.ndarray,
) -> None:
    """Max-epidemic of the round's coin maximum among same-round pairs."""
    same = seen_round[u] == seen_round[v]
    su, sv = u[same], v[same]
    peak = np.maximum(seen_max[su], seen_max[sv])
    seen_max[su] = peak
    seen_max[sv] = peak


@dataclass
class CoinRaceState:
    count: np.ndarray
    phase: np.ndarray
    cand: np.ndarray
    coin: np.ndarray
    seen_max: np.ndarray
    seen_round: np.ndarray
    psi: int
    total_rounds: int


class CoinRaceLeaderElection(Protocol):
    """Standalone leader election among all ``n`` agents (benchmark E11).

    Every agent is both a clock agent and an initial candidate.  Converges
    when every agent has completed all rounds; success means exactly one
    candidate survived (a non-unique survivor is reported as failure by the
    run loop via a divergent output).
    """

    name = "coin_race_leader_election"

    def __init__(self, gamma: float = 2.0, factor: float = 3.0, slack: int = 2):
        self._gamma = gamma
        self._factor = factor
        self._slack = slack

    def init_state(
        self, config: PopulationConfig, rng: np.random.Generator
    ) -> CoinRaceState:
        n = config.n
        return CoinRaceState(
            count=np.zeros(n, dtype=np.int64),
            phase=np.zeros(n, dtype=np.int64),
            cand=np.ones(n, dtype=bool),
            coin=np.zeros(n, dtype=np.int8),
            seen_max=np.zeros(n, dtype=np.int8),
            seen_round=np.full(n, -1, dtype=np.int64),
            psi=clock_psi(n, self._gamma),
            total_rounds=le_rounds(n, self._factor, self._slack),
        )

    def interact(
        self,
        state: CoinRaceState,
        u: np.ndarray,
        v: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        leaderless_clock_step(state.count, state.phase, u, v, state.psi)
        for side in (u, v):
            behind = side[state.phase[side] > state.seen_round[side]]
            if behind.size:
                le_enter_round(
                    behind,
                    state.phase[behind],
                    state.cand,
                    state.coin,
                    state.seen_max,
                    state.seen_round,
                    state.total_rounds,
                    rng,
                )
        le_relay(state.seen_max, state.seen_round, u, v)

    def has_converged(self, state: CoinRaceState) -> bool:
        return bool(state.seen_round.min() >= state.total_rounds)

    def output(self, state: CoinRaceState) -> np.ndarray:
        leaders = int(state.cand.sum())
        value = 1 if leaders == 1 else 0
        return np.full(state.phase.shape, value, dtype=np.int64)

    def progress(self, state: CoinRaceState) -> Dict[str, float]:
        return {
            "candidates": float(state.cand.sum()),
            "round_min": float(state.seen_round.min()),
            "round_max": float(state.seen_round.max()),
        }

    @staticmethod
    def leader_count(state: CoinRaceState) -> int:
        """Number of surviving candidates (1 on success)."""
        return int(state.cand.sum())
