"""Biased random walks on the non-negative line (Appendix D, Lemma 16).

The paper's initialization analysis (Claim 5) couples the clock agents'
init counters with biased random walks and invokes Lemma 16:

* drift right (p > q): the hitting time of ``N`` is at most
  ``(2 / (p − q))² · N`` with probability ≥ 1 − exp(−N);
* drift left (p < q): the hitting time of ``N`` is at least
  ``(q/p)^(N/2)`` with probability ≥ 1 − (p/q)^(N/2).

This module provides a vectorized Monte-Carlo simulator of the walk (many
walkers at once) plus the two analytic bounds, which benchmark E13 checks
against each other.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..engine.rng import RngLike, make_rng


@dataclass(frozen=True)
class HittingTimeSample:
    """Monte-Carlo hitting times of level ``target`` for many walkers."""

    target: int
    p_right: float
    times: np.ndarray  # steps; np.inf where the budget was exhausted

    @property
    def completed_fraction(self) -> float:
        return float(np.isfinite(self.times).mean())

    def quantile(self, q: float) -> float:
        """Quantile over finished walkers; inf when none finished."""
        finished = self.times[np.isfinite(self.times)]
        if finished.size == 0:
            return float("inf")
        return float(np.quantile(finished, q))


def simulate_hitting_times(
    p_right: float,
    target: int,
    walkers: int,
    *,
    max_steps: int,
    rng: RngLike = None,
) -> HittingTimeSample:
    """Simulate ``walkers`` independent reflecting walks from 0.

    Each step moves right with probability ``p_right`` and left otherwise
    (staying at 0 when already there, matching Lemma 16's reflection).
    """
    if not 0 < p_right < 1:
        raise ValueError("p_right must be in (0, 1)")
    if target < 1:
        raise ValueError("target must be >= 1")
    if walkers < 1 or max_steps < 1:
        raise ValueError("walkers and max_steps must be >= 1")
    generator = make_rng(rng)
    position = np.zeros(walkers, dtype=np.int64)
    hit_at = np.full(walkers, np.inf)
    alive = np.arange(walkers)
    block = 1024
    step = 0
    while alive.size and step < max_steps:
        steps_now = min(block, max_steps - step)
        moves = generator.random((alive.size, steps_now)) < p_right
        for j in range(steps_now):
            position[alive] += np.where(moves[:, j], 1, -1)
            np.maximum(position[alive], 0, out=position[alive])
            hits = position[alive] >= target
            if hits.any():
                hit_at[alive[hits]] = step + j + 1
                keep = ~hits
                alive = alive[keep]
                moves = moves[keep]
        step += steps_now
    return HittingTimeSample(target=target, p_right=p_right, times=hit_at)


def lemma16_upper_bound(p_right: float, target: int) -> float:
    """Statement (1): hitting time ≤ (2/(p−q))² · N when p > q."""
    q = 1 - p_right
    if p_right <= q:
        raise ValueError("upper bound requires rightward drift (p > 1/2)")
    return (2.0 / (p_right - q)) ** 2 * target


def lemma16_lower_bound(p_right: float, target: int) -> float:
    """Statement (2): hitting time ≥ (q/p)^(N/2) when p < q."""
    q = 1 - p_right
    if p_right >= q:
        raise ValueError("lower bound requires leftward drift (p < 1/2)")
    return (q / p_right) ** (target / 2.0)


def lemma16_failure_probabilities(p_right: float, target: int) -> float:
    """Probability with which each bound may fail, per Lemma 16."""
    q = 1 - p_right
    if p_right > q:
        return float(np.exp(-target))
    if p_right < q:
        return float((p_right / q) ** (target / 2.0))
    raise ValueError("Lemma 16 requires p != 1/2")
