"""Analysis tools: theory predictions, fits, stats, sweeps, state accounting."""

from .fitting import LogLogFit, fit_loglog, ratio_spread, slope_against_driver
from .random_walk import (
    HittingTimeSample,
    lemma16_failure_probabilities,
    lemma16_lower_bound,
    lemma16_upper_bound,
    simulate_hitting_times,
)
from .state_space import (
    StateSpaceObserver,
    improved_state_breakdown,
    observed_state_counts,
    simple_state_breakdown,
    unordered_state_breakdown,
)
from .stats import (
    TimeSummary,
    failure_breakdown,
    success_rate,
    time_summary,
    wilson_interval,
)
from .parallel import replicate_parallel
from .sweep import format_table, replicate
from .trace import TournamentRecord, TournamentTraceRecorder
from . import theory

__all__ = [
    "HittingTimeSample",
    "LogLogFit",
    "StateSpaceObserver",
    "TimeSummary",
    "failure_breakdown",
    "fit_loglog",
    "format_table",
    "improved_state_breakdown",
    "lemma16_failure_probabilities",
    "lemma16_lower_bound",
    "lemma16_upper_bound",
    "observed_state_counts",
    "ratio_spread",
    "replicate",
    "simple_state_breakdown",
    "simulate_hitting_times",
    "replicate_parallel",
    "slope_against_driver",
    "success_rate",
    "TournamentRecord",
    "TournamentTraceRecorder",
    "theory",
    "time_summary",
    "unordered_state_breakdown",
    "wilson_interval",
]
