"""Scaling-shape fits for the experiment harness.

The reproduction criterion (DESIGN.md §5) is about *shape*, not absolute
numbers: fitted log-log slopes within a tolerance of the predicted
exponent, and measured/predicted ratios that stay within a bounded spread
across a sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class LogLogFit:
    """Least-squares fit of ``log y = slope · log x + intercept``."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: np.ndarray) -> np.ndarray:
        return np.exp(self.intercept) * np.asarray(x, dtype=float) ** self.slope


def fit_loglog(xs: Sequence[float], ys: Sequence[float]) -> LogLogFit:
    """Fit a power law through the points (requires positive data)."""
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.size != y.size or x.size < 2:
        raise ValueError("need at least two (x, y) points")
    if (x <= 0).any() or (y <= 0).any():
        raise ValueError("log-log fit needs positive data")
    lx, ly = np.log(x), np.log(y)
    slope, intercept = np.polyfit(lx, ly, 1)
    fitted = slope * lx + intercept
    ss_res = float(((ly - fitted) ** 2).sum())
    ss_tot = float(((ly - ly.mean()) ** 2).sum())
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return LogLogFit(slope=float(slope), intercept=float(intercept), r_squared=r2)


def ratio_spread(measured: Sequence[float], predicted: Sequence[float]) -> float:
    """Max/min of measured/predicted across a sweep (1.0 = perfect shape).

    A bounded spread certifies that ``measured = Θ(predicted)`` over the
    sweep range; the experiments assert spreads below workload-specific
    tolerances.
    """
    m = np.asarray(measured, dtype=float)
    p = np.asarray(predicted, dtype=float)
    if m.size != p.size or m.size == 0:
        raise ValueError("measured and predicted must have equal nonzero length")
    ratios = m / p
    if (ratios <= 0).any():
        raise ValueError("ratios must be positive")
    return float(ratios.max() / ratios.min())


def slope_against_driver(
    drivers: Sequence[float], measured: Sequence[float]
) -> LogLogFit:
    """Fit measured values against the theory driver.

    If the theory is exact up to constants, the slope is 1.0; the
    experiments check ``|slope − 1| <= tol``.
    """
    return fit_loglog(drivers, measured)
