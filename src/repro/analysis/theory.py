"""Theoretical predictions from the paper's theorems and related work.

These functions return the *driver* quantities that the theorems bound
(up to constants), used by the experiment harness to check measured
scaling shapes: e.g. Theorem 1(1) predicts parallel time Θ(k · log n), so
``measured_time / simple_time_driver(n, k)`` should be stable across a
sweep.  All logarithms are base 2 (constants are absorbed by the fits).
"""

from __future__ import annotations

import numpy as np


def log2n(n: float) -> float:
    """log₂ n, floored at 1 to keep drivers positive for tiny n."""
    return max(1.0, float(np.log2(max(n, 2))))


# ----------------------------------------------------------------------
# Parallel-time drivers (Theorems 1 and 2)
# ----------------------------------------------------------------------
def simple_time_driver(n: int, k: int) -> float:
    """Theorem 1(1): SimpleAlgorithm runs in O(k · log n) parallel time."""
    return k * log2n(n)


def unordered_time_driver(n: int, k: int) -> float:
    """Theorem 1(2): unordered variant, O(k · log n + log² n)."""
    return k * log2n(n) + log2n(n) ** 2


def improved_time_driver(n: int, x_max: int) -> float:
    """Theorem 2: ImprovedAlgorithm, O(n/x_max · log n + log² n)."""
    return (n / max(x_max, 1)) * log2n(n) + log2n(n) ** 2


def init_interactions_driver(n: int, k: int) -> float:
    """Lemma 3(1): initialization ends within O(n · (k + log n)) interactions."""
    return n * (k + log2n(n))


def subpopulation_hour_driver(n: int, x_j: int) -> float:
    """Lemma 7(3): one junta-clock hour costs Θ((n²/x_j) · log n) interactions."""
    return (n * n / max(x_j, 1)) * log2n(n)


def broadcast_time_driver(n: int) -> float:
    """One-way epidemic completes in Θ(log n) parallel time [5]."""
    return log2n(n)


def leader_election_time_driver(n: int) -> float:
    """[23]-style leader election: Θ(log² n) parallel time."""
    return log2n(n) ** 2


def usd_time_driver(n: int, k: int) -> float:
    """USD plurality-consensus driver, Θ̃(k · log n) parallel time.

    El-Hayek & Elsässer (arXiv:2505.02765) prove an almost tight lower
    bound for plurality consensus with undecided-state dynamics in the
    population model, matching the known O(k log n)-shaped upper bound
    up to lower-order factors.  The campaign layer fits measured USD
    convergence times against this driver across (n, k) grids; constants
    and the lower-order gap are absorbed by the fit.
    """
    return k * log2n(n)


# ----------------------------------------------------------------------
# State-space sizes (Section 1 comparison table and Figure 1)
# ----------------------------------------------------------------------
def simple_states_driver(n: int, k: int) -> float:
    """Theorem 1: O(k + log n) states per agent."""
    return k + log2n(n)


def improved_states_driver(n: int, k: int) -> float:
    """Theorem 2: O(k · log log n + log n) states per agent."""
    return k * max(1.0, np.log2(log2n(n))) + log2n(n)


def always_correct_lower_bound(k: int) -> float:
    """Natale & Ramezani [29]: any always-correct protocol needs Ω(k²) states."""
    return float(k) ** 2


def natale_ramezani_upper_bound(k: int) -> float:
    """[29]: the best known always-correct protocol uses O(k¹¹) states."""
    return float(k) ** 11


def ordered_always_correct_bound(k: int) -> float:
    """Gąsieniec et al. [22]: O(k⁶) states for ordered opinions."""
    return float(k) ** 6


def approximate_bias_threshold(n: int) -> float:
    """[4, 7]: approximate protocols need bias Ω(√(n log n)) to be correct."""
    return float(np.sqrt(n * log2n(n)))


def tournaments_driver(n: int, k: int, x_max: int) -> float:
    """Expected tournament counts: k−1 for Simple, O(n/x_max) for Improved."""
    return min(k - 1.0, n / max(x_max, 1))
