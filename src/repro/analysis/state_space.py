"""State-space accounting — the reproduction of Figure 1 and §3.4's proof.

Two views:

* **Analytic**: the exact per-role state counts of the paper's encoding
  (Figure 1), evaluated for concrete ``n`` and ``k``:
  ``|S| = |S_shared| · max{S_clock, S_tracker, S_collector, S_player}``.
  Functions return per-role breakdowns so benchmark E14 can print the
  Figure-1 table, and E3 can check the Θ(k + log n) growth.

* **Empirical**: distinct per-role states actually *observed* during a
  run of our implementation.  The simulator stores absolute phases and
  counters (DESIGN.md §4.2), so observation signatures reduce them to the
  paper's encoding (phase mod 10, counter mod Ψ) before counting.

Known deviations from the paper's asymptotic bounds, also reported here:
our leader election uses a Θ(log n)-valued round counter where [23]
achieves O(log log n) states, and our junta clock uses ``m = Θ(log n)``
(see ImprovedParams.hour_m_factor) where [11] keeps ``m`` constant.
Neither changes the O(k + log n) bound of Theorem 1; the Improved
algorithm's k·log log n term becomes k + log n·(const) in our encoding.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..core.common import (
    CLOCK,
    COLLECTOR,
    PHASES_PER_TOURNAMENT,
    PLAYER,
    TRACKER,
    ImprovedParams,
    SimpleParams,
    UnorderedParams,
)
from ..core.simple import SimpleState


# ----------------------------------------------------------------------
# Analytic counts (Figure 1)
# ----------------------------------------------------------------------
def shared_states() -> int:
    """|S_shared|: role (4) × phase mod 10 × do-once bits (2²)."""
    return 4 * PHASES_PER_TOURNAMENT * 4


def clock_states(n: int, params: SimpleParams) -> int:
    """Clock role: init counter up to 5 log n, then counter mod Ψ."""
    return params.init_threshold(n) + params.psi(n)


def tracker_states(k: int) -> int:
    """Tracker role: tcnt ∈ [k + 1]."""
    return k + 1


def collector_states(n: int, k: int, params: SimpleParams) -> int:
    """Collector: opinion × tokens × (defender, challenger, winner) × ℓ."""
    cap = params.token_cap
    return k * cap * (2 ** 3) * (2 * cap + 1)


def player_states(n: int, params: SimpleParams) -> int:
    """Player: playeropinion (3) × majority substate.

    Our cancel/split majority uses sign (3) × exponent (L + 1) × out (3);
    the paper's S_maj from [20] is likewise Θ(log n).
    """
    levels = params.max_level(n) + 1
    return 3 * (3 * levels * 3)


def simple_state_breakdown(n: int, k: int, params: SimpleParams = None) -> Dict[str, int]:
    """Figure 1's table for SimpleAlgorithm at concrete (n, k)."""
    params = params or SimpleParams()
    roles = {
        "clock": clock_states(n, params),
        "tracker": tracker_states(k),
        "collector": collector_states(n, k, params),
        "player": player_states(n, params),
    }
    shared = shared_states()
    return {
        "shared": shared,
        **roles,
        "total": shared * max(roles.values()),
    }


def unordered_state_breakdown(
    n: int, k: int, params: UnorderedParams = None
) -> Dict[str, int]:
    """Appendix B accounting: trackers add leader-election + candidate state."""
    params = params or UnorderedParams()
    base = simple_state_breakdown(n, k, params)
    # Coin race: cand (2) × coin (2) × seen_max (2) × round (R + 1); the
    # candidate store replaces tcnt: opinion (k + 1) × freshness bit.
    le = 8 * (params.rounds(n) + 1)
    base["tracker"] = max(le, 2 * (k + 1))
    roles = {r: base[r] for r in ("clock", "tracker", "collector", "player")}
    base["total"] = base["shared"] * max(roles.values())
    return base


def improved_state_breakdown(
    n: int, k: int, params: ImprovedParams = None
) -> Dict[str, int]:
    """Theorem 2 accounting: collectors add the junta-clock states.

    The paper's S_c is Θ(log log n) (constant m, junta x^0.98); our
    scaled-m encoding stores the position mod (m · hours), i.e. Θ(log n)
    values — reported as-implemented.
    """
    params = params or ImprovedParams()
    base = unordered_state_breakdown(n, k, params)
    from ..clocks.junta import junta_max_level

    levels = junta_max_level(n, params.junta_level_offset) + 1
    clock_positions = params.hour_m(n) * (params.phase_floor_c + 1)
    junta_clock = levels * 2 * 2 * clock_positions
    base["collector"] = base["collector"] + k * junta_clock
    roles = {r: base[r] for r in ("clock", "tracker", "collector", "player")}
    base["total"] = base["shared"] * max(roles.values())
    return base


# ----------------------------------------------------------------------
# Empirical observation
# ----------------------------------------------------------------------
def observed_state_counts(state: SimpleState) -> Dict[str, int]:
    """Distinct per-role states in a SimpleState snapshot.

    Signatures use the paper's encoding: phase mod 10 and clock counter
    mod Ψ (the simulator's absolute values reduce onto them).
    """
    phase_mod = np.where(
        state.phase >= 0, state.phase % PHASES_PER_TOURNAMENT, -1
    )
    signatures = {
        "collector": _distinct(
            state,
            COLLECTOR,
            phase_mod,
            state.opinion,
            state.tokens,
            state.defender,
            state.challenger,
            state.winner,
            state.ell,
        ),
        "clock": _distinct(state, CLOCK, phase_mod, state.count % max(state.psi, 1)),
        "tracker": _distinct(state, TRACKER, phase_mod, state.tcnt),
        "player": _distinct(
            state,
            PLAYER,
            phase_mod,
            state.popinion,
            state.msign,
            state.mexpo,
            state.mout,
        ),
    }
    return signatures


def _distinct(state: SimpleState, role: int, *columns: np.ndarray) -> int:
    members = state.role == role
    if not members.any():
        return 0
    stacked = np.stack([np.asarray(c)[members].astype(np.int64) for c in columns])
    return int(np.unique(stacked, axis=1).shape[1])


class StateSpaceObserver:
    """Accumulates the union of observed per-role signatures over a run.

    Use as a probe: call :meth:`observe` at a sampling cadence (e.g. from
    a recorder) and read :attr:`totals` at the end.  The union over
    samples lower-bounds the set of states the protocol visited.
    """

    def __init__(self) -> None:
        self._seen: Dict[str, set] = {}

    def observe(self, state: SimpleState) -> None:
        phase_mod = np.where(
            state.phase >= 0, state.phase % PHASES_PER_TOURNAMENT, -1
        )
        role_columns = {
            "collector": (
                COLLECTOR,
                phase_mod,
                state.opinion,
                state.tokens,
                state.defender,
                state.challenger,
                state.winner,
                state.ell,
            ),
            "clock": (CLOCK, phase_mod, state.count % max(state.psi, 1)),
            "tracker": (TRACKER, phase_mod, state.tcnt),
            "player": (
                PLAYER,
                phase_mod,
                state.popinion,
                state.msign,
                state.mexpo,
                state.mout,
            ),
        }
        for name, (role, *columns) in role_columns.items():
            members = state.role == role
            if not members.any():
                continue
            stacked = np.stack(
                [np.asarray(c)[members].astype(np.int64) for c in columns], axis=1
            )
            bucket = self._seen.setdefault(name, set())
            bucket.update(map(bytes, np.ascontiguousarray(stacked)))

    @property
    def totals(self) -> Dict[str, int]:
        return {name: len(seen) for name, seen in self._seen.items()}

    @property
    def max_per_agent(self) -> int:
        """The max over roles — the quantity §3.4's formula bounds."""
        totals = self.totals
        return max(totals.values()) if totals else 0
