"""Success-rate and run-time statistics for replicated runs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from ..engine.simulation import RunResult


def wilson_interval(
    successes: int, trials: int, z: float = 1.96
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Preferred over the normal approximation because failure counts in
    w.h.p. experiments are typically 0 or tiny.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must lie in [0, trials]")
    p_hat = successes / trials
    denom = 1 + z * z / trials
    centre = (p_hat + z * z / (2 * trials)) / denom
    margin = (
        z * np.sqrt(p_hat * (1 - p_hat) / trials + z * z / (4 * trials * trials))
    ) / denom
    return max(0.0, centre - margin), min(1.0, centre + margin)


def success_rate(results: Iterable[RunResult]) -> float:
    """Fraction of runs that converged to the correct plurality opinion."""
    results = list(results)
    if not results:
        raise ValueError("no results")
    return sum(r.succeeded for r in results) / len(results)


def failure_breakdown(results: Iterable[RunResult]) -> dict:
    """Histogram of failure reasons (empty when everything succeeded)."""
    counts: dict = {}
    for r in results:
        if not r.succeeded:
            key = r.failure or (
                "wrong_opinion" if r.converged else "not_converged"
            )
            counts[key] = counts.get(key, 0) + 1
    return counts


@dataclass(frozen=True)
class TimeSummary:
    """Parallel-time statistics over the successful runs of a sweep point."""

    count: int
    mean: float
    std: float
    median: float
    minimum: float
    maximum: float

    def describe(self) -> str:
        return (
            f"mean={self.mean:.1f} ± {self.std:.1f} "
            f"(median {self.median:.1f}, n={self.count})"
        )


def time_summary(
    results: Sequence[RunResult], successful_only: bool = True
) -> TimeSummary:
    """Summarize parallel times; by default over successful runs only."""
    times: List[float] = [
        r.parallel_time
        for r in results
        if (r.succeeded if successful_only else True)
    ]
    if not times:
        raise ValueError("no qualifying runs to summarize")
    arr = np.asarray(times)
    return TimeSummary(
        count=len(times),
        mean=float(arr.mean()),
        std=float(arr.std()),
        median=float(np.median(arr)),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
    )
