"""Tournament-level run tracing.

:class:`TournamentTraceRecorder` watches a SimpleAlgorithm-family run and
reconstructs the narrative the paper's proofs follow: when each tournament
started, which opinion defended, which challenged, who won, and when the
final broadcast fired.  Used by ``examples/tournament_trace.py`` and handy
when debugging protocol changes.

The recorder samples the state (it never mutates it), so attaching it does
not perturb the run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

import numpy as np

from ..core.common import COLLECTOR, PHASES_PER_TOURNAMENT
from ..engine.recorder import Recorder


@dataclass
class TournamentRecord:
    """What happened in one tournament."""

    index: int
    start_time: float
    defender: Optional[int] = None
    challenger: Optional[int] = None
    winner: Optional[int] = None
    end_time: Optional[float] = None

    def describe(self) -> str:
        challenger = self.challenger if self.challenger is not None else "-"
        winner = self.winner if self.winner is not None else "?"
        return (
            f"t{self.index}: defender {self.defender} vs challenger "
            f"{challenger} -> {winner}"
        )


def _modal_opinion(state: Any, mask: np.ndarray) -> Optional[int]:
    """Most common positive opinion among ``mask`` agents, None if empty."""
    opinions = state.opinion[mask]
    opinions = opinions[opinions > 0]
    if opinions.size == 0:
        return None
    counts = np.bincount(opinions)
    return int(counts.argmax())


class TournamentTraceRecorder(Recorder):
    """Reconstructs the tournament timeline of a run.

    Attributes after the run:
        tournaments: list of :class:`TournamentRecord`.
        winner_time: parallel time at which the first winner bit appeared.
        init_time: parallel time at which the first agent left phase −1.
    """

    def __init__(self, every_parallel_time: float = 2.0):
        self.every_parallel_time = every_parallel_time
        self.tournaments: List[TournamentRecord] = []
        self.winner_time: Optional[float] = None
        self.init_time: Optional[float] = None
        self._n = 0

    # ------------------------------------------------------------------
    def on_start(self, state: Any, n: int) -> None:
        self._n = n

    def on_sample(self, interactions: int, state: Any) -> None:
        self._observe(interactions / self._n, state)

    def on_end(self, interactions: int, state: Any) -> None:
        self._observe(interactions / self._n, state)
        self._finalize(state)

    # ------------------------------------------------------------------
    def _observe(self, time: float, state: Any) -> None:
        top_phase = int(state.phase.max())
        if top_phase < 0:
            return
        if self.init_time is None:
            self.init_time = time
        origin = state.origin
        if top_phase >= origin:
            index = (top_phase - origin) // PHASES_PER_TOURNAMENT
            while len(self.tournaments) <= index:
                record = TournamentRecord(
                    index=len(self.tournaments), start_time=time
                )
                if self.tournaments:
                    self.tournaments[-1].end_time = time
                self.tournaments.append(record)
            self._update_current(time, state)
        if self.winner_time is None and bool(state.winner.any()):
            self.winner_time = time

    def _update_current(self, time: float, state: Any) -> None:
        record = self.tournaments[-1]
        collectors = state.role == COLLECTOR
        defender = _modal_opinion(state, collectors & state.defender)
        challenger = _modal_opinion(state, collectors & state.challenger)
        if defender is not None:
            record.defender = defender
        if challenger is not None:
            record.challenger = challenger

    def _finalize(self, state: Any) -> None:
        # Winners: the defender surviving each tournament is the defender
        # observed at the start of the next one.
        for current, successor in zip(self.tournaments, self.tournaments[1:]):
            current.winner = successor.defender
        if self.tournaments:
            last = self.tournaments[-1]
            if bool(state.winner.any()):
                winners = state.opinion[state.winner]
                winners = winners[winners > 0]
                if winners.size:
                    last.winner = int(np.bincount(winners).argmax())

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Multi-line human-readable timeline."""
        lines = []
        if self.init_time is not None:
            lines.append(f"initialization ended at t={self.init_time:.0f}")
        for record in self.tournaments:
            span = (
                f"[{record.start_time:.0f}"
                + (f"..{record.end_time:.0f}]" if record.end_time else "..]")
            )
            lines.append(f"{span:>16}  {record.describe()}")
        if self.winner_time is not None:
            lines.append(f"winner broadcast began at t={self.winner_time:.0f}")
        return "\n".join(lines) if lines else "(no tournaments observed)"
