"""Replicated-run and parameter-sweep harness.

This is the layer the benchmarks and the CLI drive: run a protocol
factory over seeded replications (and over sweep points), collect
:class:`RunResult` lists, and print aligned summary tables.  Multi-cell
grids with checkpointing and resume live one layer up, in
``repro.campaign`` (see docs/CAMPAIGNS.md).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from .. import telemetry as telemetry_module
from ..engine.backends import BackendLike
from ..engine.population import BasePopulation
from ..engine.protocol import Protocol
from ..engine.rng import seeds_for
from ..engine.sampling import SamplerLike
from ..engine.scheduler import MatchingScheduler, Scheduler, SchedulerLike
from ..engine.simulation import RunResult, simulate

ProtocolFactory = Callable[[], Protocol]
ConfigFactory = Callable[[int], BasePopulation]


def replicate(
    protocol_factory: ProtocolFactory,
    config_factory: ConfigFactory,
    *,
    replications: int,
    base_seed: int = 0,
    scheduler: SchedulerLike = None,
    scheduler_factory: Optional[Callable[[], Scheduler]] = None,
    backend: BackendLike = None,
    sampler: SamplerLike = None,
    max_parallel_time: Optional[float] = None,
    check_every_parallel_time: float = 2.0,
    telemetry: "telemetry_module.TelemetryLike" = None,
    table_cache=None,
    mode: str = "serial",
) -> List[RunResult]:
    """Run ``replications`` seeded copies of one experimental point.

    ``config_factory`` receives a seed so that workloads with a random
    component (shuffled assignments) also vary across replications.  The
    time budget defaults to the protocol's own estimate when it provides
    ``default_max_time`` / ``params.default_max_time``.  ``scheduler``
    selects the interaction law per run (a registry name or instance,
    see :mod:`repro.engine.scheduler`; ``scheduler_factory`` is the
    per-run-instance alternative — pass at most one of the two; the
    default stays ``MatchingScheduler(0.25)``), ``backend`` the execution
    strategy (see :mod:`repro.engine.backends`) and ``sampler`` the
    count-space sampler policy (see :mod:`repro.engine.sampling`).
    ``telemetry`` threads a metrics/event registry through every run
    (all replications accumulate into the one registry; see
    docs/OBSERVABILITY.md).  ``table_cache`` names a shared
    transition-table store reused across the replications (see
    docs/CACHING.md); resolving it once here keeps every run against the
    same store handle.

    ``mode="ensemble"`` advances all replications in lockstep through
    the stacked count engine (:func:`repro.engine.ensemble.run_ensemble`)
    instead of one serial run per seed.  Same seed spawn, same
    defaulting; equivalence to serial runs is guaranteed at the law
    level (see docs/ENSEMBLE.md).  The count path is mandatory there, so
    ``backend`` must be unset or ``"counts"`` and the scheduler must
    carry a batched count law (matching/birthday).
    """
    if replications < 1:
        raise ValueError("replications must be >= 1")
    if scheduler is not None and scheduler_factory is not None:
        raise ValueError("pass scheduler or scheduler_factory, not both")
    if mode not in ("serial", "ensemble"):
        raise ValueError(f"unknown replicate mode {mode!r}")
    tel = telemetry_module.resolve(telemetry)
    from ..cache.store import resolve_store

    store = resolve_store(table_cache)
    if mode == "ensemble":
        backend_name = getattr(backend, "name", backend)
        if backend_name not in (None, "counts"):
            raise ValueError(
                f"mode='ensemble' runs the count backend only, "
                f"got backend={backend_name!r}"
            )
        from ..engine.ensemble import run_ensemble

        return run_ensemble(
            protocol_factory,
            config_factory,
            replications=replications,
            base_seed=base_seed,
            scheduler=scheduler,
            scheduler_factory=scheduler_factory,
            sampler=sampler,
            max_parallel_time=max_parallel_time,
            check_every_parallel_time=check_every_parallel_time,
            telemetry=tel,
            table_cache=store if store is not None else False,
        )
    results: List[RunResult] = []
    for i, seed in enumerate(seeds_for(base_seed, replications)):
        protocol = protocol_factory()
        config = config_factory(i)
        budget = max_parallel_time
        if budget is None:
            budget = _default_budget(protocol, config)
        run_scheduler = scheduler
        if run_scheduler is None:
            run_scheduler = (
                scheduler_factory() if scheduler_factory else MatchingScheduler(0.25)
            )
        results.append(
            simulate(
                protocol,
                config,
                seed=seed,
                scheduler=run_scheduler,
                backend=backend,
                sampler=sampler,
                max_parallel_time=budget,
                check_every_parallel_time=check_every_parallel_time,
                telemetry=tel,
                table_cache=store if store is not None else False,
            )
        )
    return results


def _default_budget(protocol: Protocol, config: BasePopulation) -> float:
    params = getattr(protocol, "params", None)
    if params is not None and hasattr(params, "default_max_time"):
        return float(params.default_max_time(config.n, config.k))
    # Flat in n by design: the convergence times this budget brackets are
    # already expressed in parallel time (interactions / n).
    return 500.0 * (config.k + 1) + 5000.0


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Plain-text aligned table (the benches print these)."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for idx, row in enumerate(cells):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)
