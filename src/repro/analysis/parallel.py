"""Process-parallel replication for large sweeps.

``replicate_parallel`` mirrors :func:`repro.analysis.sweep.replicate` but
fans the seeded runs out over a process pool.  Factories must be picklable
(module-level callables or functools.partial over picklable arguments);
results come back in replication order, so parallel and serial execution
produce identical result lists for the same arguments.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Optional

from ..engine.backends import BackendLike
from ..engine.population import BasePopulation
from ..engine.protocol import Protocol
from ..engine.rng import seeds_for
from ..engine.sampling import SamplerLike
from ..engine.scheduler import MatchingScheduler, Scheduler, SchedulerLike
from ..engine.simulation import RunResult, simulate
from .sweep import _default_budget


def _run_one(args) -> RunResult:
    (
        protocol_factory,
        config_factory,
        index,
        seed,
        scheduler,
        scheduler_factory,
        backend,
        sampler,
        max_parallel_time,
        check_every_parallel_time,
    ) = args
    protocol: Protocol = protocol_factory()
    config: BasePopulation = config_factory(index)
    budget = (
        max_parallel_time
        if max_parallel_time is not None
        else _default_budget(protocol, config)
    )
    if scheduler is None:
        scheduler = (
            scheduler_factory() if scheduler_factory else MatchingScheduler(0.25)
        )
    return simulate(
        protocol,
        config,
        seed=seed,
        scheduler=scheduler,
        backend=backend,
        sampler=sampler,
        max_parallel_time=budget,
        check_every_parallel_time=check_every_parallel_time,
    )


def replicate_parallel(
    protocol_factory: Callable[[], Protocol],
    config_factory: Callable[[int], BasePopulation],
    *,
    replications: int,
    base_seed: int = 0,
    workers: Optional[int] = None,
    scheduler: SchedulerLike = None,
    scheduler_factory: Optional[Callable[[], Scheduler]] = None,
    backend: BackendLike = None,
    sampler: SamplerLike = None,
    max_parallel_time: Optional[float] = None,
    check_every_parallel_time: float = 2.0,
) -> List[RunResult]:
    """Run seeded replications across a process pool.

    Semantics match :func:`repro.analysis.sweep.replicate`; only the
    execution strategy differs.  ``workers=None`` lets the executor pick.
    ``scheduler`` / ``backend`` should be registry names (or None) and
    ``sampler`` a sampler-policy name (or None) so that jobs stay
    picklable; ``scheduler_factory`` remains the per-run-instance
    alternative (pass at most one of the two).
    """
    if replications < 1:
        raise ValueError("replications must be >= 1")
    if scheduler is not None and scheduler_factory is not None:
        raise ValueError("pass scheduler or scheduler_factory, not both")
    jobs = [
        (
            protocol_factory,
            config_factory,
            index,
            seed,
            scheduler,
            scheduler_factory,
            backend,
            sampler,
            max_parallel_time,
            check_every_parallel_time,
        )
        for index, seed in enumerate(seeds_for(base_seed, replications))
    ]
    if replications == 1 or (workers is not None and workers <= 1):
        return [_run_one(job) for job in jobs]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_run_one, jobs))
