"""Process-parallel replication for large sweeps.

``replicate_parallel`` mirrors :func:`repro.analysis.sweep.replicate` but
fans the seeded runs out over a process pool.  Factories must be picklable
(module-level callables or functools.partial over picklable arguments);
results come back in replication order, so parallel and serial execution
produce identical result lists for the same arguments.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Optional, Tuple

from .. import telemetry as telemetry_module
from ..engine.backends import BackendLike
from ..engine.population import BasePopulation
from ..engine.protocol import Protocol
from ..engine.rng import seeds_for
from ..engine.sampling import SamplerLike
from ..engine.scheduler import MatchingScheduler, Scheduler, SchedulerLike
from ..engine.simulation import RunResult, simulate
from .sweep import _default_budget


def _run_one(args) -> Tuple[RunResult, Optional[dict]]:
    (
        protocol_factory,
        config_factory,
        index,
        seed,
        scheduler,
        scheduler_factory,
        backend,
        sampler,
        max_parallel_time,
        check_every_parallel_time,
        telemetry_spec,
        table_cache,
    ) = args
    protocol: Protocol = protocol_factory()
    config: BasePopulation = config_factory(index)
    budget = (
        max_parallel_time
        if max_parallel_time is not None
        else _default_budget(protocol, config)
    )
    if scheduler is None:
        scheduler = (
            scheduler_factory() if scheduler_factory else MatchingScheduler(0.25)
        )
    # ``telemetry_spec`` is (enabled, events_path) or None: a fresh
    # per-process registry is built here (instrument objects never cross
    # the pool boundary) and its snapshot rides back with the result for
    # the parent to merge.  Events append straight to the shared JSONL
    # file — EventLog writes whole O_APPEND lines, so worker and parent
    # records interleave without tearing.
    tel = None
    if telemetry_spec is not None:
        enabled, events_path = telemetry_spec
        events = telemetry_module.EventLog(events_path) if events_path else None
        tel = telemetry_module.Telemetry(
            enabled=enabled, events=events, context={"replication": index}
        )
    result = simulate(
        protocol,
        config,
        seed=seed,
        scheduler=scheduler,
        backend=backend,
        sampler=sampler,
        max_parallel_time=budget,
        check_every_parallel_time=check_every_parallel_time,
        telemetry=tel if tel is not None else False,
        table_cache=table_cache if table_cache is not None else False,
    )
    snapshot = tel.metrics_block() if tel is not None and tel.enabled else None
    if tel is not None and tel.events is not None:
        tel.events.close()
    return result, snapshot


def _run_ensemble_chunk(args) -> Tuple[List[RunResult], Optional[dict]]:
    (
        protocol_factory,
        config_factory,
        indices,
        seeds,
        scheduler,
        scheduler_factory,
        sampler,
        max_parallel_time,
        check_every_parallel_time,
        telemetry_spec,
        table_cache,
    ) = args
    tel = None
    if telemetry_spec is not None:
        enabled, events_path = telemetry_spec
        events = telemetry_module.EventLog(events_path) if events_path else None
        tel = telemetry_module.Telemetry(
            enabled=enabled, events=events, context={"replication": indices[0]}
        )
    from ..engine.ensemble import run_ensemble

    results = run_ensemble(
        protocol_factory,
        config_factory,
        seeds=seeds,
        indices=indices,
        scheduler=scheduler,
        scheduler_factory=scheduler_factory,
        sampler=sampler,
        max_parallel_time=max_parallel_time,
        check_every_parallel_time=check_every_parallel_time,
        telemetry=tel if tel is not None else False,
        table_cache=table_cache if table_cache is not None else False,
    )
    snapshot = tel.metrics_block() if tel is not None and tel.enabled else None
    if tel is not None and tel.events is not None:
        tel.events.close()
    return results, snapshot


def replicate_parallel(
    protocol_factory: Callable[[], Protocol],
    config_factory: Callable[[int], BasePopulation],
    *,
    replications: int,
    base_seed: int = 0,
    workers: Optional[int] = None,
    scheduler: SchedulerLike = None,
    scheduler_factory: Optional[Callable[[], Scheduler]] = None,
    backend: BackendLike = None,
    sampler: SamplerLike = None,
    max_parallel_time: Optional[float] = None,
    check_every_parallel_time: float = 2.0,
    telemetry: "telemetry_module.TelemetryLike" = None,
    table_cache=None,
    ensemble_size: Optional[int] = None,
) -> List[RunResult]:
    """Run seeded replications across a process pool.

    Semantics match :func:`repro.analysis.sweep.replicate`; only the
    execution strategy differs.  ``workers=None`` lets the executor pick.
    ``scheduler`` / ``backend`` should be registry names (or None) and
    ``sampler`` a sampler-policy name (or None) so that jobs stay
    picklable; ``scheduler_factory`` remains the per-run-instance
    alternative (pass at most one of the two).

    ``telemetry`` resolves like everywhere else (instance / True / the
    ambient registry).  Each worker process collects into a fresh
    registry and the per-run snapshots are merged back into the caller's
    one, so the combined counters match a serial :func:`replicate` run;
    an attached :class:`~repro.telemetry.EventLog` is shared by path —
    workers append to the same JSONL file.

    ``table_cache`` names a shared transition-table store (see
    docs/CACHING.md).  The store crosses the pool boundary by directory
    path; when the needed table is absent the first replication runs
    inline in the parent so it derives (and persists) the table exactly
    once, and the remaining workers start warm instead of all paying the
    same derivation.

    ``ensemble_size`` turns on two-level parallelism: the seed list is
    split into contiguous chunks of up to that many replicas and each
    pool job advances a whole chunk through the stacked count engine
    (:func:`repro.engine.ensemble.run_ensemble`) — processes multiply
    the ensemble's single-core throughput.  Per-replica seeds and the
    config-factory indices are identical to the flat layout, so results
    still come back in replication order and stay a pure function of
    ``(base_seed, index)``; equivalence to per-replica runs is at the
    law level (docs/ENSEMBLE.md).  ``backend`` must be unset or
    ``"counts"`` when chunking.
    """
    if replications < 1:
        raise ValueError("replications must be >= 1")
    if scheduler is not None and scheduler_factory is not None:
        raise ValueError("pass scheduler or scheduler_factory, not both")
    if ensemble_size is not None and ensemble_size < 1:
        raise ValueError("ensemble_size must be >= 1")
    tel = telemetry_module.resolve(telemetry)
    telemetry_spec = None
    if tel:
        events_path = str(tel.events.path) if tel.events is not None else None
        telemetry_spec = (tel.enabled, events_path)
    from ..cache.store import resolve_store

    store = resolve_store(table_cache)
    # The store crosses the pool boundary by path, not by handle:
    # TableStore holds no open files, so each worker rebuilds a cheap
    # handle on the same directory.
    store_spec = str(store.directory) if store is not None else None
    if ensemble_size is not None:
        backend_name = (
            backend if isinstance(backend, str) else getattr(backend, "name", None)
        )
        if backend_name not in (None, "counts"):
            raise ValueError(
                f"ensemble_size runs the count backend only, "
                f"got backend={backend_name!r}"
            )
        seeds = seeds_for(base_seed, replications)
        chunks = [
            (
                protocol_factory,
                config_factory,
                list(range(start, min(start + ensemble_size, replications))),
                seeds[start : start + ensemble_size],
                scheduler,
                scheduler_factory,
                sampler,
                max_parallel_time,
                check_every_parallel_time,
                telemetry_spec,
                store_spec,
            )
            for start in range(0, replications, ensemble_size)
        ]
        prime_chunk = False
        if store is not None and len(chunks) > 1 and not (
            workers is not None and workers <= 1
        ):
            from ..engine.backends.model import DynamicCountModel

            probe = protocol_factory().count_model(config_factory(0))
            if isinstance(probe, DynamicCountModel):
                sig = probe.quotient_signature()
                prime_chunk = bool(sig) and not store.contains(sig)
        if len(chunks) == 1 or (workers is not None and workers <= 1):
            chunk_outcomes = [_run_ensemble_chunk(chunk) for chunk in chunks]
        elif prime_chunk:
            head = _run_ensemble_chunk(chunks[0])
            with ProcessPoolExecutor(max_workers=workers) as pool:
                chunk_outcomes = [
                    head,
                    *pool.map(_run_ensemble_chunk, chunks[1:]),
                ]
        else:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                chunk_outcomes = list(pool.map(_run_ensemble_chunk, chunks))
        for _, snapshot in chunk_outcomes:
            tel.merge_block(snapshot)
        return [result for results, _ in chunk_outcomes for result in results]
    jobs = [
        (
            protocol_factory,
            config_factory,
            index,
            seed,
            scheduler,
            scheduler_factory,
            backend,
            sampler,
            max_parallel_time,
            check_every_parallel_time,
            telemetry_spec,
            store_spec,
        )
        for index, seed in enumerate(seeds_for(base_seed, replications))
    ]
    prime_first = False
    if store is not None and replications > 1 and not (
        workers is not None and workers <= 1
    ):
        backend_name = backend if isinstance(backend, str) else getattr(backend, "name", None)
        if backend_name == "counts":
            from ..engine.backends.model import DynamicCountModel

            probe = protocol_factory().count_model(config_factory(0))
            if isinstance(probe, DynamicCountModel):
                sig = probe.quotient_signature()
                # Derive once in the parent when the store has no table
                # yet: replication 0 runs inline and persists its table,
                # and every pooled worker then starts warm instead of all
                # racing through the same cold derivation.
                prime_first = bool(sig) and not store.contains(sig)
    if replications == 1 or (workers is not None and workers <= 1):
        outcomes = [_run_one(job) for job in jobs]
    elif prime_first:
        first = _run_one(jobs[0])
        with ProcessPoolExecutor(max_workers=workers) as pool:
            outcomes = [first, *pool.map(_run_one, jobs[1:])]
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            outcomes = list(pool.map(_run_one, jobs))
    for _, snapshot in outcomes:
        tel.merge_block(snapshot)
    return [result for result, _ in outcomes]
