"""Initial-opinion workload generators.

Each generator returns a :class:`repro.engine.PopulationConfig` whose count
vector realizes a scenario from the paper — or, with ``counts_only=True``,
a count-native :class:`repro.engine.CountConfig` that skips the O(n)
per-agent opinions build entirely (the right choice for the count
backend's n >= 10^9 sweeps; ``rng``/``shuffle`` are then ignored since a
count vector has no agent order):

* ``bias_one``          — the hard case of *exact* plurality consensus: the
                          plurality leads the runner-up by exactly 1.
* ``uniform_with_bias`` — near-uniform support with a chosen bias.
* ``one_large_many_small`` — Section 4's motivating case: x_max large, many
                          insignificant opinions (n / x_max ≪ k).
* ``two_block``         — two nearly-tied large opinions plus tiny ones.
* ``zipf``              — heavy-tailed supports.
* ``majority_counts``   — k = 2 workloads for the majority substrate.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..engine.errors import ConfigurationError
from ..engine.population import BasePopulation, CountConfig, PopulationConfig
from ..engine.rng import RngLike


def _finalize(
    counts: Sequence[int],
    rng: RngLike,
    shuffle: bool,
    name: str,
    counts_only: bool = False,
) -> BasePopulation:
    if counts_only:
        return CountConfig.from_counts(counts, name=name)
    return PopulationConfig.from_counts(counts, rng=rng, shuffle=shuffle, name=name)


def exact(
    counts: Sequence[int],
    *,
    rng: RngLike = None,
    shuffle: bool = True,
    counts_only: bool = False,
    name: str = "exact",
) -> BasePopulation:
    """Population with the given per-opinion counts (``counts[i]`` = x_{i+1})."""
    return _finalize(counts, rng, shuffle, name, counts_only)


def bias_one(
    n: int, k: int, *, rng: RngLike = None, shuffle: bool = True, counts_only: bool = False
) -> BasePopulation:
    """As-even-as-possible split of ``n`` into ``k`` opinions, minimum bias.

    Opinion 1 is the plurality and the bias is exactly 1 whenever that is
    arithmetically possible; the single exception is ``k == 2`` with even
    ``n`` (then ``x₁ − x₂`` is even, so the minimum bias of 2 is used).
    Requires ``n >= k + 1`` so that the transfer that creates the bias
    never drives a count negative.
    """
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    if k == 1:
        return _finalize([n], rng, shuffle, "bias_one", counts_only)
    if n < k + 1:
        raise ConfigurationError(f"bias_one needs n >= k + 1, got n={n}, k={k}")
    if k == 2:
        x2 = (n - 1) // 2
        counts = [n - x2, x2]
    else:
        q, r = divmod(n, k)
        if r == 1:
            counts = [q + 1] + [q] * (k - 1)
        elif r == 0:
            counts = [q + 1] + [q] * (k - 2) + [q - 1]
        else:
            counts = [q + 2] + [q + 1] * (r - 1) + [q] * (k - r - 1) + [q - 1]
    return _finalize(counts, rng, shuffle, "bias_one", counts_only)


def uniform_with_bias(
    n: int,
    k: int,
    bias: int,
    *,
    rng: RngLike = None,
    shuffle: bool = True,
    counts_only: bool = False,
) -> BasePopulation:
    """Near-uniform counts where opinion 1 leads the runner-up by ``bias``.

    The surplus is taken evenly from the non-plurality opinions.
    """
    if k < 2:
        raise ConfigurationError("uniform_with_bias needs k >= 2")
    if bias < 1:
        raise ConfigurationError(f"bias must be >= 1, got {bias}")
    base = bias_one(n, k, rng=rng, shuffle=False, counts_only=True)
    counts = base.counts().astype(np.int64)
    extra = bias - (counts[0] - counts[1:].max())
    moved = 0
    donor = k - 1
    while moved < extra:
        if counts[donor] <= 1:
            donor -= 1
            if donor == 0:
                raise ConfigurationError(
                    f"cannot realize bias={bias} with n={n}, k={k}"
                )
            continue
        counts[donor] -= 1
        counts[0] += 1
        moved += 1
    return _finalize(counts, rng, shuffle, f"uniform_bias_{bias}", counts_only)


def one_large_many_small(
    n: int,
    k: int,
    *,
    plurality_fraction: float = 0.5,
    rng: RngLike = None,
    shuffle: bool = True,
    counts_only: bool = False,
) -> BasePopulation:
    """One dominant opinion plus ``k - 1`` small, near-equal opinions.

    This is Section 4's favourable regime: ``n / x_max`` is a small constant
    while ``k`` may be large, so the ImprovedAlgorithm prunes almost all
    opinions before the tournaments.
    """
    if k < 2:
        raise ConfigurationError("one_large_many_small needs k >= 2")
    if not 0 < plurality_fraction < 1:
        raise ConfigurationError("plurality_fraction must be in (0, 1)")
    x_max = max(2, int(round(n * plurality_fraction)))
    rest = n - x_max
    if rest < k - 1:
        raise ConfigurationError(
            f"n={n} too small for k={k} at plurality_fraction={plurality_fraction}"
        )
    q, r = divmod(rest, k - 1)
    counts = [x_max] + [q + 1] * r + [q] * (k - 1 - r)
    if counts[1] >= counts[0]:
        raise ConfigurationError("plurality_fraction too small to dominate")
    return _finalize(counts, rng, shuffle, "one_large_many_small", counts_only)


def two_block(
    n: int,
    k: int,
    *,
    big_fraction: float = 0.8,
    rng: RngLike = None,
    shuffle: bool = True,
    counts_only: bool = False,
) -> BasePopulation:
    """Two big opinions separated by exactly 1, plus ``k - 2`` tiny ones.

    The hardest pruning case: the runner-up is *significant* and must
    survive pruning to lose its tournament fairly.
    """
    if k < 2:
        raise ConfigurationError("two_block needs k >= 2")
    big_total = int(round(n * big_fraction))
    rest = n - big_total
    if k == 2:
        if rest:
            big_total = n
            rest = 0
    elif rest < k - 2:
        raise ConfigurationError(f"n={n} too small for k={k} tiny opinions")
    x2 = (big_total - 1) // 2
    x1 = big_total - x2
    if x1 - x2 not in (1, 2):
        raise ConfigurationError("could not realize near-tied big block")
    counts = [x1, x2]
    if k > 2:
        q, r = divmod(rest, k - 2)
        counts += [q + 1] * r + [q] * (k - 2 - r)
    if max(counts[2:], default=0) >= x2:
        raise ConfigurationError("tiny opinions not smaller than the big block")
    return _finalize(counts, rng, shuffle, "two_block", counts_only)


def zipf(
    n: int,
    k: int,
    *,
    s: float = 1.0,
    rng: RngLike = None,
    shuffle: bool = True,
    counts_only: bool = False,
) -> BasePopulation:
    """Zipf-distributed supports: ``x_i`` proportional to ``1 / i**s``.

    Rounding residue is assigned to opinion 1, which also guarantees a
    unique plurality.
    """
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    if s < 0:
        raise ConfigurationError(f"s must be >= 0, got {s}")
    weights = 1.0 / np.arange(1, k + 1, dtype=np.float64) ** s
    raw = weights / weights.sum() * n
    counts = np.floor(raw).astype(np.int64)
    counts[0] += n - counts.sum()
    if k >= 2 and counts[0] <= counts[1:].max():
        counts[0] = counts[1:].max() + 1
        overflow = counts.sum() - n
        donor = k - 1
        while overflow > 0 and donor > 0:
            take = min(overflow, max(counts[donor] - 0, 0))
            counts[donor] -= take
            overflow -= take
            donor -= 1
        if overflow > 0:
            raise ConfigurationError(f"cannot realize zipf(s={s}) for n={n}, k={k}")
    return _finalize(counts, rng, shuffle, f"zipf_{s}", counts_only)


def geometric(
    n: int,
    k: int,
    *,
    ratio: float = 0.5,
    rng: RngLike = None,
    shuffle: bool = True,
    counts_only: bool = False,
) -> BasePopulation:
    """Geometrically decaying supports: ``x_i`` proportional to ``ratio^i``.

    Produces a cascade of significance levels — useful for probing the
    ImprovedAlgorithm's pruning threshold, since successive opinions fall
    off by a constant factor.  The rounding residue goes to opinion 1.
    """
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    if not 0 < ratio < 1:
        raise ConfigurationError(f"ratio must be in (0, 1), got {ratio}")
    weights = ratio ** np.arange(k, dtype=np.float64)
    raw = weights / weights.sum() * n
    counts = np.maximum(np.floor(raw).astype(np.int64), 0)
    counts[0] += n - counts.sum()
    if k >= 2 and counts[0] <= counts[1:].max():
        raise ConfigurationError(f"geometric({ratio}) degenerate for n={n}, k={k}")
    return _finalize(counts, rng, shuffle, f"geometric_{ratio}", counts_only)


def majority_counts(
    n: int,
    *,
    bias: int = 1,
    rng: RngLike = None,
    shuffle: bool = True,
    counts_only: bool = False,
) -> BasePopulation:
    """k = 2 population where opinion 1 leads opinion 2 by exactly ``bias``.

    Requires ``n`` and ``bias`` to have the same parity.
    """
    if bias < 0:
        raise ConfigurationError(f"bias must be >= 0, got {bias}")
    if (n - bias) % 2 != 0 or n < bias:
        raise ConfigurationError(
            f"majority_counts needs n >= bias with equal parity, got n={n}, bias={bias}"
        )
    x2 = (n - bias) // 2
    return _finalize([n - x2, x2], rng, shuffle, f"majority_bias_{bias}", counts_only)


def single_opinion(
    n: int, *, k: int = 1, counts_only: bool = False
) -> BasePopulation:
    """Everyone starts with opinion 1 (degenerate sanity-check workload)."""
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    counts = [n] + [0] * (k - 1)
    return _finalize(counts, None, False, "single_opinion", counts_only)
