"""Workload (initial opinion distribution) generators."""

from .distributions import (
    bias_one,
    exact,
    geometric,
    majority_counts,
    one_large_many_small,
    single_opinion,
    two_block,
    uniform_with_bias,
    zipf,
)

__all__ = [
    "bias_one",
    "exact",
    "geometric",
    "majority_counts",
    "one_large_many_small",
    "single_opinion",
    "two_block",
    "uniform_with_bias",
    "zipf",
]
