"""Process-local metrics and structured run events for the engine.

Two complementary observability channels share this module:

* **Metrics** — counters, gauges, log2-bucketed histograms, and timer
  contexts, collected in a :class:`Telemetry` registry and snapshotted
  into a schema-versioned ``"metrics"`` block (experiment reports,
  campaign checkpoints/rollups, ``perf_diff.py``).  This is the
  measurement substrate the adaptive-sampling and transition-table-cache
  ROADMAP items need: per-method draw counts, batch-size distributions,
  and lift→interact→project derivation timings.
* **Events** — an append-only JSONL stream of run lifecycle records
  (run start/end, heartbeats, guard trips, campaign cell/checkpoint/
  retry events) written by :class:`EventLog`.  One flushed ``write()``
  per line keeps concurrent appends from pool workers intact on POSIX
  (``O_APPEND``), which is what lets ``campaign status`` read per-cell
  heartbeat ages out of a live (or killed) campaign.

Overhead discipline — the contract the hot paths rely on:

* Telemetry is **off by default**.  A disabled :class:`Telemetry` (and
  the module-level :data:`NULL` sink) hands out the no-op singleton
  instruments below, so instrumented code holds *pre-resolved handles*:
  the per-iteration cost of a disabled counter is one attribute-free
  method call (or nothing at all where call sites guard on
  ``tel.enabled``), never a dict lookup.  ``benchmarks/
  telemetry_overhead.py`` pins the disabled path within 2% of an
  uninstrumented baseline and the enabled path within 10%.
* Instrumented classes default their handle attributes to the no-op
  singletons at *class* level and only rebind them per instance in
  ``attach_telemetry``, so never-attached objects pay zero setup.

Usage::

    from repro import telemetry

    tel = telemetry.Telemetry(events=telemetry.EventLog("events.jsonl"))
    result = simulate(protocol, config, seed=0, telemetry=tel)
    print(tel.metrics_block()["counters"])

    with telemetry.use(tel):        # ambient: experiments.run / replicate
        experiments.run("EB6")

See docs/OBSERVABILITY.md for the metric catalogue and event schema.
"""

from __future__ import annotations

import contextlib
import json
import math
import os
import pathlib
import time
from typing import Any, Dict, Iterator, List, NamedTuple, Optional, Union

#: Version of the ``metrics_block()`` layout (counters/gauges/histograms/
#: timers maps).  Bump on incompatible changes; consumers (rollups,
#: ``perf_diff.py``) skip blocks with versions they do not know.
METRICS_SCHEMA_VERSION = 1

#: Default seconds between ``heartbeat`` events inside a run (emitted at
#: the convergence-check cadence, so the effective period is the larger
#: of the two).
HEARTBEAT_SECONDS = 5.0


# ----------------------------------------------------------------------
# Instruments
# ----------------------------------------------------------------------
class Counter:
    """A monotonically increasing count (draws, batches, guard trips)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __bool__(self) -> bool:
        return True


class Gauge:
    """A last-value instrument (occupied states, interned states)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def __bool__(self) -> bool:
        return True


class Histogram:
    """A distribution sketch over fixed log-spaced (power-of-two) buckets.

    ``observe(v)`` files ``v`` under bucket ``⌊log2 v⌋`` (values < 1
    under bucket 0's lower bound 0), tracking count/sum/min/max exactly.
    Fixed log2 buckets need no configuration, merge trivially across
    processes, and resolve the quantities the batch loop cares about
    (does the birthday prefix law hold? how skewed are batch sizes?)
    without storing samples.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        #: exponent -> count; bucket e holds values in [2^e, 2^(e+1)).
        self.buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        exponent = math.frexp(value)[1] - 1 if value >= 1.0 else 0
        self.buckets[exponent] = self.buckets.get(exponent, 0) + 1

    def __bool__(self) -> bool:
        return True


class Timer:
    """Accumulates wall time over ``with`` blocks (derivation seconds)."""

    __slots__ = ("count", "seconds", "_started")

    def __init__(self) -> None:
        self.count = 0
        self.seconds = 0.0
        self._started = 0.0

    def __enter__(self) -> "Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.seconds += time.perf_counter() - self._started
        self.count += 1

    def __bool__(self) -> bool:
        return True


class _NullCounter:
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass

    def __bool__(self) -> bool:
        return False


class _NullGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def __bool__(self) -> bool:
        return False


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass

    def __bool__(self) -> bool:
        return False


class _NullTimer:
    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc) -> None:
        pass

    def __bool__(self) -> bool:
        return False


#: The no-op singletons disabled registries hand out.  Falsy, so call
#: sites can guard whole blocks with ``if handle:`` where even a no-op
#: call would be too much.
NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()
NULL_TIMER = _NullTimer()


# ----------------------------------------------------------------------
# Event sink
# ----------------------------------------------------------------------
class EventLog:
    """Append-only JSONL sink for run lifecycle events.

    One ``{"ts": ..., "pid": ..., "event": ..., **fields}`` object per
    line, written with a single flushed ``write()`` in append mode —
    POSIX ``O_APPEND`` keeps concurrent lines from pool workers whole,
    so one file can collect a whole campaign (parent and workers alike).
    """

    def __init__(self, path: Union[str, os.PathLike]) -> None:
        self.path = pathlib.Path(path)
        self._handle = None

    def emit(self, event: str, **fields: Any) -> None:
        record = {"ts": time.time(), "pid": os.getpid(), "event": event}
        record.update(fields)
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    #: EventLog instances cross process boundaries via the campaign env
    #: vars (path only), never via pickle; the handle is per-process.
    def __getstate__(self):
        return {"path": self.path}

    def __setstate__(self, state):
        self.path = state["path"]
        self._handle = None


def read_events(
    path: Union[str, os.PathLike], *, kinds: Optional[set] = None
) -> List[Dict[str, Any]]:
    """Parse an events JSONL file, skipping torn/foreign lines.

    ``kinds`` optionally filters by the ``event`` field.  Used by
    ``campaign status`` (heartbeat ages) and the tests; tolerant of
    partial trailing lines because a SIGKILL can land mid-append.
    """
    events: List[Dict[str, Any]] = []
    try:
        text = pathlib.Path(path).read_text(encoding="utf-8")
    except OSError:
        return events
    for line in text.splitlines():
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if not isinstance(record, dict) or "event" not in record:
            continue
        if kinds is not None and record["event"] not in kinds:
            continue
        events.append(record)
    return events


# ----------------------------------------------------------------------
# The registry
# ----------------------------------------------------------------------
class Telemetry:
    """One process-local metrics registry plus an optional event sink.

    Args:
        enabled: collect metrics (False = hand out no-op instruments;
            events still flow if a sink is attached).
        events: optional :class:`EventLog`; every :meth:`event` call
            appends one record, tagged with this registry's ``context``.
        context: constant fields stamped onto every event (e.g.
            ``{"cell": <hash>}`` inside a campaign worker).
        heartbeat_seconds: minimum period of ``heartbeat`` events inside
            the interaction loop.
    """

    def __init__(
        self,
        enabled: bool = True,
        events: Optional[EventLog] = None,
        context: Optional[Dict[str, Any]] = None,
        heartbeat_seconds: float = HEARTBEAT_SECONDS,
    ) -> None:
        self.enabled = enabled
        self.events = events
        self.context = dict(context or {})
        self.heartbeat_seconds = float(heartbeat_seconds)
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._timers: Dict[str, Timer] = {}
        #: Always-on report metadata (cold-path sums, e.g. the dynamic
        #: count model's derivation summary).  Collected even when metrics
        #: are disabled — ``experiments.run`` surfaces it in report
        #: metadata without requiring ``--telemetry`` — but never on the
        #: shared :data:`NULL` singleton.
        self.meta: Dict[str, float] = {}

    def __bool__(self) -> bool:
        """Truthy when *any* channel is live (metrics or events)."""
        return self.enabled or self.events is not None

    # ------------------------------------------------------------------
    # Instrument handles (resolve once, outside the hot loop)
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Union[Counter, _NullCounter]:
        if not self.enabled:
            return NULL_COUNTER
        found = self._counters.get(name)
        if found is None:
            found = self._counters[name] = Counter()
        return found

    def gauge(self, name: str) -> Union[Gauge, _NullGauge]:
        if not self.enabled:
            return NULL_GAUGE
        found = self._gauges.get(name)
        if found is None:
            found = self._gauges[name] = Gauge()
        return found

    def histogram(self, name: str) -> Union[Histogram, _NullHistogram]:
        if not self.enabled:
            return NULL_HISTOGRAM
        found = self._histograms.get(name)
        if found is None:
            found = self._histograms[name] = Histogram()
        return found

    def timer(self, name: str) -> Union[Timer, _NullTimer]:
        if not self.enabled:
            return NULL_TIMER
        found = self._timers.get(name)
        if found is None:
            found = self._timers[name] = Timer()
        return found

    def count(self, name: str, amount: int = 1) -> None:
        """Cold-path convenience: resolve + increment in one call."""
        self.counter(name).inc(amount)

    def meta_sum(self, name: str, value: float) -> None:
        """Accumulate a report-metadata value (cold path, always on).

        Unlike metric instruments, metadata flows even on a disabled
        registry — it feeds run reports, not the metrics block — except
        on the shared :data:`NULL` sink, which stays write-free so
        un-instrumented runs never accumulate cross-run state.
        """
        if self is NULL:
            return
        self.meta[name] = self.meta.get(name, 0.0) + float(value)

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def event(self, kind: str, **fields: Any) -> None:
        """Append one event record (no-op without an attached sink)."""
        if self.events is not None:
            self.events.emit(kind, **{**self.context, **fields})

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def metrics_block(self) -> Dict[str, Any]:
        """The schema-versioned JSON-safe ``"metrics"`` block."""
        return {
            "schema_version": METRICS_SCHEMA_VERSION,
            "counters": {
                name: int(c.value) for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: float(g.value) for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: {
                    "count": int(h.count),
                    "sum": float(h.total),
                    "min": float(h.min) if h.count else None,
                    "max": float(h.max) if h.count else None,
                    "buckets": {
                        str(e): int(n) for e, n in sorted(h.buckets.items())
                    },
                }
                for name, h in sorted(self._histograms.items())
            },
            "timers": {
                name: {"count": int(t.count), "seconds": float(t.seconds)}
                for name, t in sorted(self._timers.items())
            },
        }

    def merge_block(self, block: Optional[Dict[str, Any]]) -> None:
        """Fold another registry's :meth:`metrics_block` into this one.

        Counters, histogram buckets, and timers add; gauges keep the
        incoming value (last writer wins — the merge order is the
        completion order of child processes).  Unknown schema versions
        are skipped rather than misread.
        """
        if not self.enabled or not isinstance(block, dict):
            return
        if block.get("schema_version") != METRICS_SCHEMA_VERSION:
            return
        for name, value in block.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in block.get("gauges", {}).items():
            self.gauge(name).set(float(value))
        for name, data in block.get("histograms", {}).items():
            hist = self.histogram(name)
            assert isinstance(hist, Histogram)
            hist.count += int(data.get("count", 0))
            hist.total += float(data.get("sum", 0.0))
            if data.get("min") is not None:
                hist.min = min(hist.min, float(data["min"]))
            if data.get("max") is not None:
                hist.max = max(hist.max, float(data["max"]))
            for exponent, count in data.get("buckets", {}).items():
                e = int(exponent)
                hist.buckets[e] = hist.buckets.get(e, 0) + int(count)
        for name, data in block.get("timers", {}).items():
            timer = self.timer(name)
            assert isinstance(timer, Timer)
            timer.count += int(data.get("count", 0))
            timer.seconds += float(data.get("seconds", 0.0))


def merge_blocks(blocks: List[Optional[Dict[str, Any]]]) -> Optional[Dict[str, Any]]:
    """Merge metrics blocks (e.g. per-cell) into one; None when empty."""
    real = [b for b in blocks if isinstance(b, dict)]
    if not real:
        return None
    merged = Telemetry(enabled=True)
    for block in real:
        merged.merge_block(block)
    return merged.metrics_block()


#: The module-level disabled sink: no metrics, no events.  This is what
#: every ``telemetry=None`` resolves to outside a ``use()`` block.
NULL = Telemetry(enabled=False)

TelemetryLike = Union[Telemetry, bool, None]

_current: Telemetry = NULL


def current() -> Telemetry:
    """The ambient registry (:data:`NULL` unless inside :func:`use`)."""
    return _current


def resolve(value: TelemetryLike) -> Telemetry:
    """Coerce a ``telemetry=`` argument to a :class:`Telemetry`.

    ``None`` → the ambient registry (so ``experiments.run`` can thread
    one registry through call stacks that never mention telemetry);
    ``True`` → a fresh enabled registry; ``False`` → :data:`NULL`.
    """
    if value is None:
        return _current
    if isinstance(value, Telemetry):
        return value
    if value is True:
        return Telemetry(enabled=True)
    if value is False:
        return NULL
    raise TypeError(
        f"telemetry must be a Telemetry, bool, or None, got {type(value).__name__}"
    )


@contextlib.contextmanager
def use(tel: TelemetryLike) -> Iterator[Telemetry]:
    """Install a registry as the ambient one for the ``with`` block."""
    global _current
    previous = _current
    _current = resolve(tel)
    try:
        yield _current
    finally:
        _current = previous


# ----------------------------------------------------------------------
# Catalogue (drives `repro-experiments telemetry` and the docs)
# ----------------------------------------------------------------------
class MetricInfo(NamedTuple):
    name: str
    kind: str  # counter | gauge | histogram | timer
    description: str


CATALOG: List[MetricInfo] = [
    MetricInfo(
        "engine.interactions",
        "counter",
        "interactions applied by the run loop (any backend)",
    ),
    MetricInfo(
        "engine.batches",
        "counter",
        "count-space batches applied (margin draws + contingency table)",
    ),
    MetricInfo(
        "engine.batch_size",
        "histogram",
        "interactions per count-space batch (birthday prefix / matching size)",
    ),
    MetricInfo(
        "engine.pairs_per_batch",
        "histogram",
        "non-empty (initiator, responder) state-pair groups per batch",
    ),
    MetricInfo(
        "engine.occupied_states",
        "gauge",
        "occupied states in the count vector at the last convergence check",
    ),
    MetricInfo(
        "count_model.derivations",
        "counter",
        "state pairs derived (lift → interact → project) by DynamicCountModel",
    ),
    MetricInfo(
        "count_model.derive_seconds",
        "timer",
        "wall time spent deriving transition entries (cache-hit-rate denominator)",
    ),
    MetricInfo(
        "count_model.interned_states",
        "gauge",
        "states interned by the dynamic model so far",
    ),
    MetricInfo(
        "cache.hit",
        "counter",
        "transition-table store loads that served a valid artifact",
    ),
    MetricInfo(
        "cache.miss",
        "counter",
        "transition-table store lookups with no (valid) artifact",
    ),
    MetricInfo(
        "cache.load_seconds",
        "timer",
        "wall time loading transition-table artifacts from the store",
    ),
    MetricInfo(
        "cache.store_bytes",
        "gauge",
        "total bytes of table artifacts in the store after the last put",
    ),
    MetricInfo(
        "sampler.draws.numpy",
        "counter",
        "multivariate-hypergeometric draws served by numpy's generator",
    ),
    MetricInfo(
        "sampler.draws.splitting",
        "counter",
        "univariate draws served by the windowed exact inversion",
    ),
    MetricInfo(
        "sampler.draws.rejection",
        "counter",
        "univariate draws served by the ratio-of-uniforms rejection sampler",
    ),
    MetricInfo(
        "sampler.dispatch.numpy",
        "counter",
        "adaptive-policy work units (contingency rows / splitting sub-pools) "
        "routed to numpy's C generator",
    ),
    MetricInfo(
        "sampler.dispatch.batched",
        "counter",
        "adaptive-policy work units routed to the level-batched rejection "
        "construction (out-of-range pool totals / beyond-crossover tables)",
    ),
    MetricInfo(
        "sampler.fallback.small_range",
        "counter",
        "rejection-policy draws below REJECTION_MIN that fell back to inversion",
    ),
    MetricInfo(
        "sampler.fallback.tail",
        "counter",
        "inversion draws whose uniform missed the window (tail re-inversion)",
    ),
    MetricInfo(
        "sampler.fallback.straggler",
        "counter",
        "rejection rows still pending after _MAX_REJECT_ROUNDS (inversion rescue)",
    ),
    MetricInfo(
        "scheduler.prefix_length",
        "histogram",
        "birthday (disjoint-prefix) batch lengths drawn by the count path",
    ),
    MetricInfo(
        "ensemble.replicas",
        "counter",
        "replicas executed by the stacked ensemble engine",
    ),
    MetricInfo(
        "ensemble.batches",
        "counter",
        "stacked batches applied (one advances every still-active replica)",
    ),
    MetricInfo(
        "ensemble.active_per_batch",
        "histogram",
        "still-active replicas per stacked batch (the vectorization width)",
    ),
    MetricInfo(
        "ensemble.compactions",
        "counter",
        "active-set compactions (finished replicas dropped from the stack)",
    ),
    MetricInfo(
        "guard.<failure>",
        "counter",
        "protocol-reported guard trips by failure name "
        "(e.g. guard.phase_window_overflow, guard.era_window_overflow)",
    ),
]

#: Event kinds written by the engine and the campaign runner.
EVENT_KINDS: Dict[str, str] = {
    "run_start": "one simulate() began (protocol, n, k, backend, scheduler)",
    "run_end": "one simulate() finished (converged, failure, interactions, seconds)",
    "heartbeat": "periodic liveness inside the interaction loop",
    "guard_trip": "a protocol failure hook fired (failure name attached)",
    "campaign_start": "a campaign runner pass began (total/pending cells)",
    "campaign_end": "a campaign runner pass finished (completed/failed)",
    "cell_start": "a campaign worker picked up a cell",
    "cell_end": "a campaign worker finished a cell",
    "checkpoint": "the campaign parent persisted a cell checkpoint",
    "cell_failed": "a cell attempt raised (error attached)",
    "retry_round": "the campaign runner began a backoff/retry round",
}


def render_metrics(block: Dict[str, Any]) -> str:
    """Compact human-readable rendering of a metrics block (CLI output)."""
    lines = ["metrics:"]
    counters = block.get("counters", {})
    if counters:
        lines.append(
            "  counters: "
            + ", ".join(f"{k}={v}" for k, v in sorted(counters.items()))
        )
    gauges = block.get("gauges", {})
    if gauges:
        lines.append(
            "  gauges: "
            + ", ".join(f"{k}={v:g}" for k, v in sorted(gauges.items()))
        )
    for name, data in sorted(block.get("histograms", {}).items()):
        if not data.get("count"):
            continue
        mean = data["sum"] / data["count"]
        lines.append(
            f"  {name}: count={data['count']} mean={mean:.3g} "
            f"min={data['min']:.3g} max={data['max']:.3g}"
        )
    for name, data in sorted(block.get("timers", {}).items()):
        lines.append(
            f"  {name}: count={data['count']} seconds={data['seconds']:.4g}"
        )
    return "\n".join(lines)
