"""Exception hierarchy for the repro package.

Protocol *failures* (the negligible-probability events the paper allows) are
not exceptions: they are recorded in :class:`repro.engine.simulation.RunResult`
so that experiments can estimate failure rates.  Exceptions are reserved for
programming errors and invalid configurations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """An invalid population, workload, or protocol parameterization."""


class BackendUnsupported(ConfigurationError):
    """A backend cannot execute the requested protocol/scheduler combination.

    Raised e.g. when the count backend is asked to run a protocol that does
    not export a transition table (``Protocol.count_model`` returned None),
    or when a scheduler has no count-space sampling equivalent.
    """


class SamplerUnsupported(BackendUnsupported):
    """A sampler policy cannot perform the requested count-space draw.

    Raised e.g. when the ``"numpy"`` policy is forced on a population at
    or above numpy's 10^9 multivariate-hypergeometric limit.  Subclasses
    :class:`BackendUnsupported` so callers that skip unsupported
    backend/scheduler combinations handle sampler limits the same way.
    """


class SimulationError(ReproError):
    """The simulation engine was driven into an invalid state.

    This indicates a bug (for example, a scheduler producing overlapping
    pairs), never a legitimate protocol failure.
    """


class InvariantViolation(SimulationError):
    """A protocol invariant that must hold with probability 1 was violated.

    Used by ``check_invariants`` hooks in tests: e.g. token conservation in
    the initialization phase of SimpleAlgorithm, or the signed-sum invariant
    of the cancel/split majority protocol.
    """
