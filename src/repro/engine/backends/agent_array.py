"""The per-agent array backend: the engine's original execution path.

State is whatever the protocol's ``init_state`` returns (per-agent numpy
arrays); interactions come from a :class:`Scheduler` as disjoint index-pair
batches and are applied through the protocol's vectorized ``interact``.
This path handles every protocol and every scheduler, at O(n) memory and
O(1) work per interaction.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ... import telemetry as telemetry_module
from ..errors import BackendUnsupported
from ..population import PopulationConfig, is_count_native
from ..protocol import Protocol
from ..recorder import Recorder
from ..scheduler import Scheduler
from ..simulation import RunResult
from .base import Backend, build_run_result, drive, register, run_intervals


class AgentArrayBackend(Backend):
    """Simulates every interaction on per-agent state arrays."""

    name = "agents"

    def run(
        self,
        protocol: Protocol,
        config: PopulationConfig,
        *,
        rng: np.random.Generator,
        scheduler: Scheduler,
        max_parallel_time: float,
        check_every_parallel_time: float,
        recorder: Optional[Recorder] = None,
        record_every_parallel_time: Optional[float] = None,
        check_invariants: bool = False,
        state_out: Optional[list] = None,
        telemetry: Optional[telemetry_module.Telemetry] = None,
        table_cache=None,
    ) -> RunResult:
        # table_cache is accepted for signature uniformity; per-agent
        # execution never derives transition tables, so there is nothing
        # to warm or persist.
        if is_count_native(config):
            raise BackendUnsupported(
                f"agent-array backend needs the per-agent opinions the "
                f"count-native config {config.name!r} deliberately omits; "
                f"run it on backend='counts' with a MatchingScheduler, or "
                f"materialize() the config first"
            )
        n = config.n
        state = protocol.init_state(config, rng)

        budget, check_interval, record_interval = run_intervals(
            n,
            max_parallel_time=max_parallel_time,
            check_every_parallel_time=check_every_parallel_time,
            recorder=recorder,
            record_every_parallel_time=record_every_parallel_time,
        )

        if recorder is not None:
            recorder.on_start(state, n)

        batches = scheduler.batches(n, rng)

        def step(remaining: int) -> int:
            u, v = next(batches)
            if u.size > remaining:
                u, v = u[:remaining], v[:remaining]
            protocol.interact(state, u, v, rng)
            return int(u.size)

        def check():
            if check_invariants:
                protocol.check_invariants(state)
            failure = protocol.failure(state)
            if failure is not None:
                return failure, False
            return None, protocol.has_converged(state)

        interactions, converged, failure = drive(
            budget=budget,
            check_interval=check_interval,
            record_interval=record_interval,
            recorder=recorder,
            step=step,
            observe=lambda: state,
            check=check,
            telemetry=telemetry,
        )

        if not converged and failure is None:
            failure = protocol.failure(state) or (
                "converged" if protocol.has_converged(state) else "timeout"
            )
            if failure == "converged":
                converged = True
                failure = None

        output_opinion: Optional[int] = None
        if converged:
            outputs = protocol.output(state)
            values = np.unique(outputs)
            if values.size == 1 and values[0] != 0:
                output_opinion = int(values[0])
            else:
                converged = False
                failure = "divergent_output"

        if recorder is not None:
            recorder.on_end(interactions, state)
        if state_out is not None:
            state_out.append(state)

        return build_run_result(
            protocol,
            config,
            interactions=interactions,
            converged=converged,
            failure=failure,
            output_opinion=output_opinion,
            extras=protocol.progress(state),
        )


register(AgentArrayBackend.name, AgentArrayBackend)
