"""The count backend: configuration-space simulation on state-count vectors.

Protocols that export a :class:`~repro.engine.backends.model.CountModel`
can be simulated without materializing per-agent protocol state.  The
mode is selected by the *scheduler's* declared count semantics
(:attr:`~repro.engine.scheduler.Scheduler.count_semantics`), so the
backend never dispatches on concrete scheduler types:

* ``"pairwise"`` (:class:`~repro.engine.scheduler.SequentialScheduler`) —
  *bit-exact mode*.  The model's transition tables are applied to a
  single per-agent state-id array using the very same scheduler index
  draws as the agent-array backend.  For deterministic tables and
  rng-free ``init_state`` this reproduces the agent-array count
  trajectory bit-for-bit under the same seed (the cross-backend
  equivalence tests rely on this), which makes it the fidelity reference
  for the batched modes below.

* ``"batched"`` (:class:`~repro.engine.scheduler.MatchingScheduler`,
  :class:`~repro.engine.scheduler.BirthdayScheduler`) — *batched mode*.
  The population is only a count vector; the scheduler streams
  :class:`~repro.engine.scheduler.CountBatch` sizes and each batch of
  ``B`` disjoint interactions is sampled in count space: initiator
  states by a multivariate-hypergeometric draw from the counts,
  responder states by a second draw from the remainder, and the
  initiator/responder pairing by a sparse contingency table given both
  margins (exactly the distribution the agent-level scheduler induces on
  a disjoint batch).  The birthday scheduler additionally carries the
  prefix-terminating pair across batches (``CountBatch.carry_first``):
  its endpoint states are drawn from the previous batch's
  post-transition outcome vector, which is what keeps the stream's law
  *exactly* the sequential model's.  Transitions are applied to whole
  pair-groups at once: O(|occupied states|²) per batch instead of O(n)
  — the occupied-pairs sparsity is what keeps lazily materialized models
  (:class:`~repro.engine.backends.model.DynamicCountModel`, e.g. the
  tournament phase quotient) cheap even when their full state space runs
  into the tens of thousands.  Every draw goes through a
  :class:`~repro.engine.sampling.SamplerPolicy` (``sampler=`` on the
  backend, ``simulate()``, or the CLI): the default ``"auto"`` policy
  uses numpy's generator below its 10^9 population limit and the custom
  :class:`~repro.engine.sampling.LargeNHypergeometric` above it —
  rejection univariate draws, color-splitting, and level-batched
  contingency tables alike — so batched runs scale to n = 10^9 .. 10^10
  (benchmarks EB3, EB4, EB6).  Pair batched mode with a count-native
  :class:`~repro.engine.population.CountConfig` to keep the *whole* run —
  config build included — free of O(n) allocations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ... import telemetry as telemetry_module
from ...cache.store import StoreLike, resolve_store
from .. import sampling
from ..errors import BackendUnsupported, SimulationError
from ..population import PopulationConfig, is_count_native
from ..protocol import Protocol
from ..recorder import Recorder
from ..scheduler import Scheduler
from ..simulation import RunResult
from .base import Backend, build_run_result, drive, register, run_intervals
from .model import BaseCountModel, DynamicCountModel


@dataclass
class CountState:
    """The state object count-backend runs hand to recorders and ``state_out``.

    ``counts[s]`` is the number of agents in state ``s``; ``ids`` is the
    per-agent state-id array in exact (sequential) mode and None in
    batched mode.
    """

    model: BaseCountModel
    counts: np.ndarray
    ids: Optional[np.ndarray] = None

    def refresh(self) -> "CountState":
        """Recompute ``counts`` from ``ids`` (exact mode only)."""
        if self.ids is not None:
            self.counts = np.bincount(self.ids, minlength=self.model.num_states)
        return self


class CountBackend(Backend):
    """Drives a protocol's exported transition table in count space.

    Args:
        sampler: the :class:`~repro.engine.sampling.SamplerPolicy` (or
            registry name) executing the batched mode's multivariate-
            hypergeometric draws; None resolves the default ``"auto"``
            policy (numpy below 10^9, color-splitting above).
    """

    name = "counts"

    #: Pre-resolved pairs-per-batch histogram handle; rebound per run.
    #: Class-level default keeps never-instrumented instances at zero
    #: setup cost (the no-op singleton's observe() is the only overhead).
    _t_pairs = telemetry_module.NULL_HISTOGRAM

    def __init__(self, sampler: "sampling.SamplerLike" = None):
        self._sampler = sampling.resolve(sampler)

    @property
    def sampler(self) -> "sampling.SamplerPolicy":
        """The sampler policy batched draws go through."""
        return self._sampler

    def with_sampler(self, sampler: "sampling.SamplerLike") -> "CountBackend":
        """A copy of this backend using the given sampler policy."""
        return type(self)(sampler=sampler)

    def run(
        self,
        protocol: Protocol,
        config: PopulationConfig,
        *,
        rng: np.random.Generator,
        scheduler: Scheduler,
        max_parallel_time: float,
        check_every_parallel_time: float,
        recorder: Optional[Recorder] = None,
        record_every_parallel_time: Optional[float] = None,
        check_invariants: bool = False,
        state_out: Optional[list] = None,
        telemetry: Optional[telemetry_module.Telemetry] = None,
        table_cache: StoreLike = None,
    ) -> RunResult:
        model = protocol.count_model(config)
        if model is None:
            raise BackendUnsupported(
                f"protocol {protocol.name!r} does not export a count model; "
                "run it on the 'agents' backend instead"
            )
        tel = telemetry if telemetry is not None else telemetry_module.NULL
        # Warm-start lazily materialized models from the shared table
        # store (static models carry their whole tables inline — nothing
        # to cache).  Warm entries are passive: the run stays bit-
        # identical to a cold one, it just skips re-deriving.
        store = resolve_store(table_cache)
        signature = None
        if store is not None and isinstance(model, DynamicCountModel):
            signature = model.quotient_signature()
        if signature:
            if tel.enabled:
                store.attach_telemetry(tel)
            model.warm_start(store.get(signature))
        if tel.enabled:
            model.attach_telemetry(tel)
            self._sampler.attach_telemetry(tel)
            self._t_pairs = tel.histogram("engine.pairs_per_batch")
        else:
            # Reset in case an earlier telemetry-enabled run rebound it.
            self._t_pairs = telemetry_module.NULL_HISTOGRAM
        kwargs = dict(
            rng=rng,
            max_parallel_time=max_parallel_time,
            check_every_parallel_time=check_every_parallel_time,
            recorder=recorder,
            record_every_parallel_time=record_every_parallel_time,
            check_invariants=check_invariants,
            state_out=state_out,
            telemetry=tel,
        )
        semantics = getattr(scheduler, "count_semantics", None)
        if semantics == "pairwise":
            result = self._run_exact(protocol, config, model, scheduler, **kwargs)
        elif semantics == "batched":
            result = self._run_batched(protocol, config, model, scheduler, **kwargs)
        else:
            raise BackendUnsupported(
                f"count backend has no count-space law for "
                f"{type(scheduler).__name__} (count_semantics={semantics!r}); "
                f"use a scheduler declaring 'pairwise' or 'batched' count "
                f"semantics (sequential, birthday, matching)"
            )
        if signature and model._derive_count:
            # Merge-put only when this run derived something new; a fully
            # warm run leaves the store byte-stable.
            store.put(model.export_table())
        return result

    # ------------------------------------------------------------------
    # Exact mode (sequential scheduler, per-agent state ids)
    # ------------------------------------------------------------------
    def _run_exact(
        self,
        protocol: Protocol,
        config: PopulationConfig,
        model: BaseCountModel,
        scheduler: Scheduler,
        *,
        rng: np.random.Generator,
        max_parallel_time: float,
        check_every_parallel_time: float,
        recorder: Optional[Recorder],
        record_every_parallel_time: Optional[float],
        check_invariants: bool,
        state_out: Optional[list],
        telemetry: Optional[telemetry_module.Telemetry] = None,
    ) -> RunResult:
        if is_count_native(config):
            raise BackendUnsupported(
                f"count backend's exact (sequential) mode replays a "
                f"per-agent state layout, which the count-native config "
                f"{config.name!r} does not have; use the birthday "
                f"scheduler for exact sequential semantics in count "
                f"space, a MatchingScheduler for batched well-mixed "
                f"simulation, or materialize() the config"
            )
        n = config.n
        ids = model.initial_ids(config)
        state = CountState(model=model, counts=np.empty(0, dtype=np.int64), ids=ids)
        state.refresh()

        budget, check_interval, record_interval = run_intervals(
            n,
            max_parallel_time=max_parallel_time,
            check_every_parallel_time=check_every_parallel_time,
            recorder=recorder,
            record_every_parallel_time=record_every_parallel_time,
        )

        if recorder is not None:
            recorder.on_start(state, n)

        batches = scheduler.batches(n, rng)

        def step(remaining: int) -> int:
            u, v = next(batches)
            if u.size > remaining:
                u, v = u[:remaining], v[:remaining]
            model.apply_pairs(ids, u, v, rng)
            return int(u.size)

        def check():
            state.refresh()
            return self._check(model, state.counts, n, check_invariants)

        interactions, converged, failure = drive(
            budget=budget,
            check_interval=check_interval,
            record_interval=record_interval,
            recorder=recorder,
            step=step,
            observe=state.refresh,
            check=check,
            telemetry=telemetry,
        )

        return self._finish(
            protocol,
            config,
            model,
            state.refresh(),
            interactions=interactions,
            converged=converged,
            failure=failure,
            recorder=recorder,
            state_out=state_out,
            telemetry=telemetry,
        )

    # ------------------------------------------------------------------
    # Batched mode (count-space batch stream from the scheduler)
    # ------------------------------------------------------------------
    def _run_batched(
        self,
        protocol: Protocol,
        config: PopulationConfig,
        model: BaseCountModel,
        scheduler: Scheduler,
        *,
        rng: np.random.Generator,
        max_parallel_time: float,
        check_every_parallel_time: float,
        recorder: Optional[Recorder],
        record_every_parallel_time: Optional[float],
        check_invariants: bool,
        state_out: Optional[list],
        telemetry: Optional[telemetry_module.Telemetry] = None,
    ) -> RunResult:
        n = config.n
        if n < 2:
            raise BackendUnsupported(f"need at least 2 agents, got {n}")
        counts = model.initial_counts(config).astype(np.int64)
        state = CountState(model=model, counts=counts)
        batches = scheduler.count_batches(n, rng)
        #: Post-transition states of the previous batch's participants —
        #: the pool a carried-over (prefix-terminating) pair collides
        #: with under birthday semantics.  None until a batch ran.
        last_outputs: Optional[np.ndarray] = None

        budget, check_interval, record_interval = run_intervals(
            n,
            max_parallel_time=max_parallel_time,
            check_every_parallel_time=check_every_parallel_time,
            recorder=recorder,
            record_every_parallel_time=record_every_parallel_time,
        )

        if recorder is not None:
            recorder.on_start(state, n)

        # Pre-resolved instrument handles: one attribute load + no-op call
        # when telemetry is disabled, never a dict lookup in the hot loop.
        tel = telemetry if telemetry is not None else telemetry_module.NULL
        c_batches = tel.counter("engine.batches")
        h_batch = tel.histogram("engine.batch_size")
        g_occupied = tel.gauge("engine.occupied_states")
        instrumented = tel.enabled

        def step(remaining: int) -> int:
            nonlocal last_outputs
            spec = next(batches)
            size = min(spec.size, remaining)
            carry = last_outputs if spec.carry_first else None
            state.counts, last_outputs = self._step_batch(
                model, state.counts, size, rng, carry=carry, population=n
            )
            if instrumented:
                c_batches.inc()
                h_batch.observe(size)
            return size

        def check():
            if instrumented:
                g_occupied.set(int(np.count_nonzero(state.counts)))
            return self._check(model, state.counts, n, check_invariants)

        interactions, converged, failure = drive(
            budget=budget,
            check_interval=check_interval,
            record_interval=record_interval,
            recorder=recorder,
            step=step,
            observe=lambda: state,
            check=check,
            telemetry=telemetry,
        )

        return self._finish(
            protocol,
            config,
            model,
            state,
            interactions=interactions,
            converged=converged,
            failure=failure,
            recorder=recorder,
            state_out=state_out,
            telemetry=telemetry,
        )

    def _step_batch(
        self,
        model: BaseCountModel,
        counts: np.ndarray,
        size: int,
        rng: np.random.Generator,
        carry: Optional[np.ndarray] = None,
        population: Optional[int] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sample and apply one batch of ``size`` disjoint interactions.

        Distribution: ``2 * size`` distinct agents drawn without
        replacement, the first ``size`` as initiators matched uniformly to
        the rest — identical to an agent-level disjoint batch at the count
        level.  When ``carry`` is given (birthday semantics), the batch's
        *first* pair is instead the pair that terminated the previous
        disjoint prefix: an ordered pair of distinct agents conditioned
        on touching the previous batch's participant set, whose current
        states ``carry`` holds; the remaining ``size − 1`` pairs are a
        fresh uniform disjoint sample from the rest of the population.
        All without-replacement draws (including the sparse contingency
        table of initiator/responder pair groups) go through the backend's
        sampler policy, so population size is bounded only by the policy
        (the default ``"auto"`` is unbounded).  ``population`` is the
        conserved agent total (``counts.sum()``, which the batch loop
        knows without reducing): every pool total below follows from it
        arithmetically and is threaded to the sampler as ``total=`` so
        the hot loop never re-reduces a margin vector.

        Returns ``(new_counts, outputs)`` where ``outputs[s]`` counts the
        batch participants whose *post-transition* state is ``s`` — the
        collision pool of a following carried pair.
        """
        counts = model.ensure_capacity(counts)
        if population is None:
            population = int(counts.sum())
        first_i = first_j = None
        if carry is not None and size >= 1:
            first_i, first_j = self._carry_pair(counts, carry, rng)
            rest = size - 1
        else:
            rest = size
        pool = counts
        pool_total = population
        if first_i is not None:
            pool = counts.copy()
            pool[first_i] -= 1
            pool[first_j] -= 1
            pool_total -= 2
        initiators = self._sampler.draw(pool, rest, rng, total=pool_total)
        responders = self._sampler.draw(
            pool - initiators, rest, rng, total=pool_total - rest
        )
        pair_i, pair_j, sizes = self._sampler.contingency(
            initiators, responders, rng, total=rest
        )
        self._t_pairs.observe(pair_i.size)
        participants = initiators + responders
        if first_i is not None:
            participants[first_i] += 1
            participants[first_j] += 1
            # Merge the carried pair into the group triplets (apply_groups
            # requires each state pair at most once).
            hit = np.flatnonzero((pair_i == first_i) & (pair_j == first_j))
            if hit.size:
                sizes = sizes.copy()
                sizes[hit[0]] += 1
            else:
                pair_i = np.append(pair_i, first_i)
                pair_j = np.append(pair_j, first_j)
                sizes = np.append(sizes, 1)
        new_counts = counts - participants
        # apply_groups scatters outcomes into new_counts in place (and may
        # grow it for dynamic models): snapshot the non-participant rest
        # first so the participants' post-transition states fall out as
        # after − rest — the collision pool of a following carried pair.
        rest_counts = new_counts.copy()
        after = model.apply_groups(pair_i, pair_j, sizes, new_counts, rng)
        if rest_counts.shape[0] < after.shape[0]:
            rest_counts = np.pad(
                rest_counts, (0, after.shape[0] - rest_counts.shape[0])
            )
        return after, after - rest_counts

    @staticmethod
    def _carry_pair(
        counts: np.ndarray, carry: np.ndarray, rng: np.random.Generator
    ) -> Tuple[int, int]:
        """State pair of the prefix-terminating ("carried") pair.

        The pair that ends a birthday prefix is an i.i.d. uniform ordered
        pair of distinct agents conditioned on sharing at least one agent
        with the just-applied batch's participant set M (``carry`` is the
        per-state count vector of M, post-transition).  Uniformity makes
        the conditional law a three-way mixture over which side(s) land
        in M — weights ``|M|(|M|−1)`` (both), ``|M|·R`` and ``R·|M|``
        (one side; R = non-members) — with member endpoints drawn from
        ``carry`` and non-member endpoints from ``counts − carry``,
        without replacement.
        """
        if carry.shape[0] < counts.shape[0]:
            carry = np.pad(carry, (0, counts.shape[0] - carry.shape[0]))
        carry = np.minimum(carry, counts)
        m_total = int(carry.sum())
        n_total = int(counts.sum())
        rest = counts - carry
        r_total = n_total - m_total
        w_both = m_total * (m_total - 1)
        w_one = m_total * r_total
        pick = rng.random() * (w_both + 2 * w_one)

        def draw_state(weights: np.ndarray, total: int) -> int:
            u = rng.random() * total
            return int(np.searchsorted(np.cumsum(weights), u, side="right"))

        if pick < w_both:
            i = draw_state(carry, m_total)
            reduced = carry.copy()
            reduced[i] -= 1
            j = draw_state(reduced, m_total - 1)
        elif pick < w_both + w_one:
            i = draw_state(carry, m_total)
            j = draw_state(rest, r_total)
        else:
            i = draw_state(rest, r_total)
            j = draw_state(carry, m_total)
        return i, j

    # ------------------------------------------------------------------
    # Shared check/epilogue
    # ------------------------------------------------------------------
    @classmethod
    def _check(cls, model: BaseCountModel, counts: np.ndarray, n: int, invariants: bool):
        """The per-cadence hook bundle for :func:`base.drive`."""
        if invariants:
            cls._check_counts(counts, n)
            model.check_invariants(counts)
        failure = model.failure(counts)
        if failure is not None:
            return failure, False
        return None, model.converged(counts)

    @staticmethod
    def _check_counts(counts: np.ndarray, n: int) -> None:
        # One reduction over the vector; ``n`` is the population the batch
        # loop already carries, and the failure message reuses the same
        # total instead of re-reducing.
        total = int(counts.sum())
        if total != n or (counts < 0).any():
            raise SimulationError(
                f"count vector corrupted: sum {total} != n {n} "
                f"(min entry {int(counts.min())})"
            )

    def _finish(
        self,
        protocol: Protocol,
        config: PopulationConfig,
        model: BaseCountModel,
        state: CountState,
        *,
        interactions: int,
        converged: bool,
        failure: Optional[str],
        recorder: Optional[Recorder],
        state_out: Optional[list],
        telemetry: Optional[telemetry_module.Telemetry] = None,
    ) -> RunResult:
        counts = state.counts
        if not converged and failure is None:
            failure = model.failure(counts) or (
                "converged" if model.converged(counts) else "timeout"
            )
            if failure == "converged":
                converged = True
                failure = None

        output_opinion: Optional[int] = None
        if converged:
            output_opinion = model.output_opinion(counts)
            if output_opinion is None:
                converged = False
                failure = "divergent_output"

        if recorder is not None:
            recorder.on_end(interactions, state)
        if state_out is not None:
            state_out.append(state)

        extras = model.progress(counts)
        if isinstance(model, DynamicCountModel):
            summary = model.summary()
            # Only the warm/cold-invariant fields join extras (extras feed
            # deterministic result digests — the campaign rollup's bit-
            # identity checks); how this process paid for them (cold vs
            # warm, wall seconds) goes to the report-metadata channel.
            extras["count_model.derived_pairs"] = summary["derived_pairs"]
            extras["count_model.interned_states"] = summary["interned_states"]
            tel = telemetry if telemetry is not None else telemetry_module.NULL
            for key, value in summary.items():
                tel.meta_sum(f"count_model.{key}", value)

        return build_run_result(
            protocol,
            config,
            interactions=interactions,
            converged=converged,
            failure=failure,
            output_opinion=output_opinion,
            extras=extras,
        )


register(CountBackend.name, CountBackend)
