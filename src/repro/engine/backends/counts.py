"""The count backend: configuration-space simulation on state-count vectors.

Protocols that export a :class:`~repro.engine.backends.model.CountModel`
can be simulated without materializing per-agent protocol state.  Two modes
are selected by the scheduler passed to ``simulate()``:

* :class:`~repro.engine.scheduler.SequentialScheduler` — *exact mode*.
  The model's transition tables are applied to a single per-agent
  state-id array using the very same scheduler index draws as the
  agent-array backend.  For deterministic tables and rng-free
  ``init_state`` this reproduces the agent-array count trajectory
  bit-for-bit under the same seed (the cross-backend equivalence tests
  rely on this), which makes it the fidelity reference for the batched
  mode below.

* :class:`~repro.engine.scheduler.MatchingScheduler` — *batched mode*.
  The population is only a count vector; one batch of ``B`` disjoint
  interactions is sampled in count space: initiator states by a
  multivariate-hypergeometric draw from the counts, responder states by a
  second draw from the remainder, and the initiator/responder pairing by
  a sparse contingency table given both margins (exactly the
  distribution the agent-level ``MatchingScheduler`` induces).
  Transitions are then applied to whole pair-groups at once:
  O(|occupied states|²) per batch instead of O(n) — the occupied-pairs
  sparsity is what keeps lazily materialized models
  (:class:`~repro.engine.backends.model.DynamicCountModel`, e.g. the
  tournament phase quotient) cheap even when their full state space runs
  into the tens of thousands.  Every draw goes through a
  :class:`~repro.engine.sampling.SamplerPolicy` (``sampler=`` on the
  backend, ``simulate()``, or the CLI): the default ``"auto"`` policy
  uses numpy's generator below its 10^9 population limit and the custom
  :class:`~repro.engine.sampling.LargeNHypergeometric` color-splitting
  sampler above it (margin draws and level-batched contingency tables
  alike), so batched runs scale to n = 10^9 .. 10^10 (benchmarks EB3,
  EB4).  Pair batched mode with a count-native
  :class:`~repro.engine.population.CountConfig` to keep the *whole* run —
  config build included — free of O(n) allocations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .. import sampling
from ..errors import BackendUnsupported, SimulationError
from ..population import PopulationConfig, is_count_native
from ..protocol import Protocol
from ..recorder import Recorder
from ..scheduler import MatchingScheduler, Scheduler, SequentialScheduler
from ..simulation import RunResult
from .base import Backend, build_run_result, drive, register, run_intervals
from .model import BaseCountModel


@dataclass
class CountState:
    """The state object count-backend runs hand to recorders and ``state_out``.

    ``counts[s]`` is the number of agents in state ``s``; ``ids`` is the
    per-agent state-id array in exact (sequential) mode and None in
    batched mode.
    """

    model: BaseCountModel
    counts: np.ndarray
    ids: Optional[np.ndarray] = None

    def refresh(self) -> "CountState":
        """Recompute ``counts`` from ``ids`` (exact mode only)."""
        if self.ids is not None:
            self.counts = np.bincount(self.ids, minlength=self.model.num_states)
        return self


class CountBackend(Backend):
    """Drives a protocol's exported transition table in count space.

    Args:
        sampler: the :class:`~repro.engine.sampling.SamplerPolicy` (or
            registry name) executing the batched mode's multivariate-
            hypergeometric draws; None resolves the default ``"auto"``
            policy (numpy below 10^9, color-splitting above).
    """

    name = "counts"

    def __init__(self, sampler: "sampling.SamplerLike" = None):
        self._sampler = sampling.resolve(sampler)

    @property
    def sampler(self) -> "sampling.SamplerPolicy":
        """The sampler policy batched draws go through."""
        return self._sampler

    def with_sampler(self, sampler: "sampling.SamplerLike") -> "CountBackend":
        """A copy of this backend using the given sampler policy."""
        return type(self)(sampler=sampler)

    def run(
        self,
        protocol: Protocol,
        config: PopulationConfig,
        *,
        rng: np.random.Generator,
        scheduler: Scheduler,
        max_parallel_time: float,
        check_every_parallel_time: float,
        recorder: Optional[Recorder] = None,
        record_every_parallel_time: Optional[float] = None,
        check_invariants: bool = False,
        state_out: Optional[list] = None,
    ) -> RunResult:
        model = protocol.count_model(config)
        if model is None:
            raise BackendUnsupported(
                f"protocol {protocol.name!r} does not export a count model; "
                "run it on the 'agents' backend instead"
            )
        kwargs = dict(
            rng=rng,
            max_parallel_time=max_parallel_time,
            check_every_parallel_time=check_every_parallel_time,
            recorder=recorder,
            record_every_parallel_time=record_every_parallel_time,
            check_invariants=check_invariants,
            state_out=state_out,
        )
        if isinstance(scheduler, SequentialScheduler):
            return self._run_exact(protocol, config, model, scheduler, **kwargs)
        if isinstance(scheduler, MatchingScheduler):
            return self._run_batched(protocol, config, model, scheduler, **kwargs)
        raise BackendUnsupported(
            f"count backend has no count-space sampler for "
            f"{type(scheduler).__name__}; use SequentialScheduler or "
            "MatchingScheduler"
        )

    # ------------------------------------------------------------------
    # Exact mode (sequential scheduler, per-agent state ids)
    # ------------------------------------------------------------------
    def _run_exact(
        self,
        protocol: Protocol,
        config: PopulationConfig,
        model: BaseCountModel,
        scheduler: SequentialScheduler,
        *,
        rng: np.random.Generator,
        max_parallel_time: float,
        check_every_parallel_time: float,
        recorder: Optional[Recorder],
        record_every_parallel_time: Optional[float],
        check_invariants: bool,
        state_out: Optional[list],
    ) -> RunResult:
        if is_count_native(config):
            raise BackendUnsupported(
                f"count backend's exact (sequential) mode replays a "
                f"per-agent state layout, which the count-native config "
                f"{config.name!r} does not have; use a MatchingScheduler "
                f"for batched count-space simulation, or materialize() "
                f"the config"
            )
        n = config.n
        ids = model.initial_ids(config)
        state = CountState(model=model, counts=np.empty(0, dtype=np.int64), ids=ids)
        state.refresh()

        budget, check_interval, record_interval = run_intervals(
            n,
            max_parallel_time=max_parallel_time,
            check_every_parallel_time=check_every_parallel_time,
            recorder=recorder,
            record_every_parallel_time=record_every_parallel_time,
        )

        if recorder is not None:
            recorder.on_start(state, n)

        batches = scheduler.batches(n, rng)

        def step(remaining: int) -> int:
            u, v = next(batches)
            if u.size > remaining:
                u, v = u[:remaining], v[:remaining]
            model.apply_pairs(ids, u, v, rng)
            return int(u.size)

        def check():
            state.refresh()
            return self._check(model, state.counts, n, check_invariants)

        interactions, converged, failure = drive(
            budget=budget,
            check_interval=check_interval,
            record_interval=record_interval,
            recorder=recorder,
            step=step,
            observe=state.refresh,
            check=check,
        )

        return self._finish(
            protocol,
            config,
            model,
            state.refresh(),
            interactions=interactions,
            converged=converged,
            failure=failure,
            recorder=recorder,
            state_out=state_out,
        )

    # ------------------------------------------------------------------
    # Batched mode (matching scheduler semantics, pure counts)
    # ------------------------------------------------------------------
    def _run_batched(
        self,
        protocol: Protocol,
        config: PopulationConfig,
        model: BaseCountModel,
        scheduler: MatchingScheduler,
        *,
        rng: np.random.Generator,
        max_parallel_time: float,
        check_every_parallel_time: float,
        recorder: Optional[Recorder],
        record_every_parallel_time: Optional[float],
        check_invariants: bool,
        state_out: Optional[list],
    ) -> RunResult:
        n = config.n
        if n < 2:
            raise BackendUnsupported(f"need at least 2 agents, got {n}")
        counts = model.initial_counts(config).astype(np.int64)
        state = CountState(model=model, counts=counts)
        # Mirror MatchingScheduler's batch sizing exactly.
        batch = max(1, int(round(n * scheduler.fraction)))
        batch = min(batch, n // 2)

        budget, check_interval, record_interval = run_intervals(
            n,
            max_parallel_time=max_parallel_time,
            check_every_parallel_time=check_every_parallel_time,
            recorder=recorder,
            record_every_parallel_time=record_every_parallel_time,
        )

        if recorder is not None:
            recorder.on_start(state, n)

        def step(remaining: int) -> int:
            size = min(batch, remaining)
            state.counts = self._step_batch(model, state.counts, size, rng)
            return size

        interactions, converged, failure = drive(
            budget=budget,
            check_interval=check_interval,
            record_interval=record_interval,
            recorder=recorder,
            step=step,
            observe=lambda: state,
            check=lambda: self._check(model, state.counts, n, check_invariants),
        )

        return self._finish(
            protocol,
            config,
            model,
            state,
            interactions=interactions,
            converged=converged,
            failure=failure,
            recorder=recorder,
            state_out=state_out,
        )

    def _step_batch(
        self,
        model: BaseCountModel,
        counts: np.ndarray,
        size: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Sample and apply one batch of ``size`` disjoint interactions.

        Distribution: ``2 * size`` distinct agents drawn without
        replacement, the first ``size`` as initiators matched uniformly to
        the rest — identical to ``MatchingScheduler`` at the count level.
        All without-replacement draws (including the sparse contingency
        table of initiator/responder pair groups) go through the backend's
        sampler policy, so population size is bounded only by the policy
        (the default ``"auto"`` is unbounded).
        """
        counts = model.ensure_capacity(counts)
        initiators = self._sampler.draw(counts, size, rng)
        responders = self._sampler.draw(counts - initiators, size, rng)
        pair_i, pair_j, sizes = self._sampler.contingency(
            initiators, responders, rng
        )
        new_counts = counts - initiators - responders
        return model.apply_groups(pair_i, pair_j, sizes, new_counts, rng)

    # ------------------------------------------------------------------
    # Shared check/epilogue
    # ------------------------------------------------------------------
    @classmethod
    def _check(cls, model: BaseCountModel, counts: np.ndarray, n: int, invariants: bool):
        """The per-cadence hook bundle for :func:`base.drive`."""
        if invariants:
            cls._check_counts(counts, n)
            model.check_invariants(counts)
        failure = model.failure(counts)
        if failure is not None:
            return failure, False
        return None, model.converged(counts)

    @staticmethod
    def _check_counts(counts: np.ndarray, n: int) -> None:
        if (counts < 0).any() or int(counts.sum()) != n:
            raise SimulationError(
                f"count vector corrupted: sum {int(counts.sum())} != n {n}"
            )

    def _finish(
        self,
        protocol: Protocol,
        config: PopulationConfig,
        model: BaseCountModel,
        state: CountState,
        *,
        interactions: int,
        converged: bool,
        failure: Optional[str],
        recorder: Optional[Recorder],
        state_out: Optional[list],
    ) -> RunResult:
        counts = state.counts
        if not converged and failure is None:
            failure = model.failure(counts) or (
                "converged" if model.converged(counts) else "timeout"
            )
            if failure == "converged":
                converged = True
                failure = None

        output_opinion: Optional[int] = None
        if converged:
            output_opinion = model.output_opinion(counts)
            if output_opinion is None:
                converged = False
                failure = "divergent_output"

        if recorder is not None:
            recorder.on_end(interactions, state)
        if state_out is not None:
            state_out.append(state)

        return build_run_result(
            protocol,
            config,
            interactions=interactions,
            converged=converged,
            failure=failure,
            output_opinion=output_opinion,
            extras=model.progress(counts),
        )


register(CountBackend.name, CountBackend)
