"""The :class:`Backend` protocol and the backend registry.

A backend is an execution strategy for one simulation run: it owns the
interaction loop, the state representation, and the convergence/failure
bookkeeping, and returns the same :class:`~repro.engine.simulation.RunResult`
regardless of strategy.  ``simulate()`` resolves its ``backend=`` argument
through :func:`get` / :func:`resolve`, so callers can select a backend by
name (``"agents"``, ``"counts"``) anywhere a simulation is launched — the
CLI, the sweep harness, or the experiment registry.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from typing import Callable, Dict, Optional, Tuple, Union

import numpy as np

from ... import telemetry as telemetry_module
from ..errors import ConfigurationError
from ..population import PopulationConfig
from ..protocol import Protocol
from ..recorder import Recorder
from ..registry import Registry
from ..scheduler import Scheduler
from ..simulation import RunResult


class Backend(ABC):
    """Executes one simulation run end to end.

    Implementations receive an already-validated request from
    ``simulate()``: the rng is constructed, the scheduler defaulted, and
    the cadence arguments checked.  They must honour the same semantics:
    interactions counted one by one, convergence/failure checks every
    ``check_every_parallel_time`` units, recorder callbacks at the record
    cadence, and the final :class:`RunResult` fields filled identically.
    """

    #: Registry name of the backend (used in results and error messages).
    name: str = "backend"

    def with_sampler(self, sampler) -> "Backend":
        """Return a copy of this backend using the given sampler policy.

        Only count-space backends sample, so the base implementation
        rejects the request; :class:`~repro.engine.backends.CountBackend`
        overrides it.  This is the hook ``simulate(..., sampler=...)``
        resolves through.
        """
        raise ConfigurationError(
            f"backend {self.name!r} does not take a sampler policy; only "
            f"count-space backends sample (use backend='counts')"
        )

    @abstractmethod
    def run(
        self,
        protocol: Protocol,
        config: PopulationConfig,
        *,
        rng: np.random.Generator,
        scheduler: Scheduler,
        max_parallel_time: float,
        check_every_parallel_time: float,
        recorder: Optional[Recorder] = None,
        record_every_parallel_time: Optional[float] = None,
        check_invariants: bool = False,
        state_out: Optional[list] = None,
        telemetry: Optional[telemetry_module.Telemetry] = None,
        table_cache=None,
    ) -> RunResult:
        """Run ``protocol`` on ``config`` until convergence, failure, or timeout.

        ``telemetry`` is always a resolved registry when called through
        ``simulate()`` (the disabled :data:`repro.telemetry.NULL` by
        default); backends thread it into :func:`drive` and attach it to
        their samplers/models so hot loops hold pre-resolved handles.

        ``table_cache`` names a shared transition-table store (a
        :class:`repro.cache.TableStore`, a directory, True for the
        default location, None to follow ``REPRO_TABLE_CACHE``).  Only
        backends that materialize transition tables lazily use it; the
        agent-array backend accepts and ignores it so callers can thread
        the argument uniformly.
        """


# ----------------------------------------------------------------------
# Registry (shared implementation: repro.engine.registry)
# ----------------------------------------------------------------------
BackendLike = Union[str, Backend, None]

#: Name resolved when ``simulate(..., backend=None)`` is called.
DEFAULT_BACKEND = "agents"

_REGISTRY: Registry[Backend] = Registry("backend", Backend, DEFAULT_BACKEND)

#: Add a backend factory under a name (e.g. at module import time).
register = _REGISTRY.register
#: Sorted names of all registered backends.
available = _REGISTRY.available
#: Instantiate the backend registered under a name.
get = _REGISTRY.get
#: Coerce a name, instance, or None to a Backend instance.
resolve = _REGISTRY.resolve


# ----------------------------------------------------------------------
# Shared run bookkeeping
# ----------------------------------------------------------------------
def run_intervals(
    n: int,
    *,
    max_parallel_time: float,
    check_every_parallel_time: float,
    recorder: Optional[Recorder],
    record_every_parallel_time: Optional[float],
) -> Tuple[int, int, Optional[int]]:
    """Convert parallel-time cadences to interaction counts.

    Returns ``(budget, check_interval, record_interval)``; the record
    interval is None when no recorder is attached.  All backends derive
    their cadences here so that trajectories line up across backends.
    """
    budget = int(max_parallel_time * n)
    check_interval = max(1, int(check_every_parallel_time * n))
    if record_every_parallel_time is not None:
        record_interval: Optional[int] = max(1, int(record_every_parallel_time * n))
    elif recorder is not None:
        cadence = getattr(recorder, "every_parallel_time", check_every_parallel_time)
        record_interval = max(1, int(cadence * n))
    else:
        record_interval = None
    return budget, check_interval, record_interval


def drive(
    *,
    budget: int,
    check_interval: int,
    record_interval: Optional[int],
    recorder: Optional[Recorder],
    step: Callable[[int], int],
    observe: Callable[[], object],
    check: Callable[[], Tuple[Optional[str], bool]],
    telemetry: Optional[telemetry_module.Telemetry] = None,
) -> Tuple[int, bool, Optional[str]]:
    """The interaction loop shared by every backend mode.

    ``step(remaining)`` applies at most ``remaining`` interactions and
    returns how many it applied (always >= 1); ``observe()`` returns the
    state object handed to the recorder; ``check()`` runs the
    invariant/failure/convergence hooks and returns
    ``(failure_or_None, converged)``.  Keeping the budget-truncation and
    cadence bookkeeping in one place is what guarantees trajectories from
    different backends line up sample for sample.

    When ``telemetry`` carries an event sink, the loop emits time-gated
    ``heartbeat`` events at the check cadence (at most one per
    ``telemetry.heartbeat_seconds``) — the liveness signal ``campaign
    status`` reads mid-flight; any failure reported by ``check()`` is a
    protocol guard and is counted under ``guard.<failure>`` plus a
    ``guard_trip`` event.

    Returns ``(interactions, converged, failure)``.
    """
    tel = telemetry if telemetry is not None else telemetry_module.NULL
    events_on = tel.events is not None
    next_heartbeat = (
        time.monotonic() + tel.heartbeat_seconds if events_on else 0.0
    )
    interactions = 0
    next_check = check_interval
    next_record = record_interval if record_interval is not None else None
    converged = False
    failure: Optional[str] = None
    while True:
        remaining = budget - interactions
        if remaining <= 0:
            break
        interactions += step(remaining)

        if next_record is not None and interactions >= next_record:
            recorder.on_sample(interactions, observe())  # type: ignore[union-attr]
            next_record += record_interval  # type: ignore[operator]

        if interactions >= next_check:
            failure, converged = check()
            if events_on:
                now = time.monotonic()
                if now >= next_heartbeat:
                    tel.event("heartbeat", interactions=interactions)
                    next_heartbeat = now + tel.heartbeat_seconds
            if failure is not None or converged:
                break
            next_check += check_interval
    if tel.enabled:
        # One post-loop count keeps the total backend-agnostic (agent
        # and count runs alike) with zero per-iteration cost.
        tel.count("engine.interactions", interactions)
    if failure is not None and tel:
        # check() only ever reports protocol guard failures (timeouts are
        # decided by the budget epilogue), so every one is a guard trip.
        tel.count(f"guard.{failure}")
        tel.event("guard_trip", failure=failure, interactions=interactions)
    return interactions, converged, failure


def build_run_result(
    protocol: Protocol,
    config: PopulationConfig,
    *,
    interactions: int,
    converged: bool,
    failure: Optional[str],
    output_opinion: Optional[int],
    extras: Dict[str, float],
) -> RunResult:
    """Assemble the :class:`RunResult` shared by all backends."""
    expected = config.plurality_opinion if config.has_unique_plurality else None
    correct: Optional[bool] = None
    if expected is not None:
        correct = converged and output_opinion == expected
    return RunResult(
        protocol=protocol.name,
        n=config.n,
        k=config.k,
        interactions=interactions,
        parallel_time=interactions / config.n,
        converged=converged,
        output_opinion=output_opinion,
        expected_opinion=expected,
        correct=correct,
        failure=failure,
        extras={key: float(value) for key, value in extras.items()},
    )
