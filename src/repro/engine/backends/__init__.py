"""Execution backends: per-agent arrays vs. count-vector simulation.

The paper's protocols are analyzed in terms of state *counts*, never agent
identities, so the engine supports two interchangeable execution
strategies behind one :class:`Backend` interface:

``"agents"`` — :class:`AgentArrayBackend` (the default)
    Per-agent numpy state arrays, every interaction applied through the
    protocol's vectorized ``interact``.  Works for *every* protocol and
    scheduler.  Memory O(n), work O(1) per interaction.

``"counts"`` — :class:`CountBackend`
    Drives the transition system a protocol exports through
    ``Protocol.count_model(config)`` — either a *static*
    :class:`CountModel` (dense precomputed tables; three-state majority,
    USD, cancel/split, epidemics) or a lazily materialized
    :class:`DynamicCountModel`, whose states are interned on first sight
    and whose pair transitions are derived on demand.  The dynamic shape
    is what lets the **tournament algorithms** run in count space:
    SimpleAlgorithm through its phase-quotiented model
    (:mod:`repro.core.quotient`, benchmark EB4), and UnorderedAlgorithm /
    ImprovedAlgorithm through the era-quotiented models
    (:mod:`repro.core.era_quotient`, benchmarks EB5/EB6 — leader
    election, era-tagged selection, and pruning included; populations
    below the tournament-origin gate get the fully-absolute model).

How a run executes is the product of three registries — backend ×
scheduler (:mod:`repro.engine.scheduler`) × sampler policy
(:mod:`repro.engine.sampling`); each axis is selected independently
anywhere a simulation is launched:

=========  ============  ===========================================
backend    scheduler     what runs
=========  ============  ===========================================
agents     sequential    the reference: exact sequential model on
                         per-agent arrays, O(1)/interaction, O(n) mem
agents     birthday      identical to agents × sequential (same
                         batching, same rng stream, bit-for-bit)
agents     matching      well-mixed approximation on per-agent arrays
counts     sequential    bit-exact replay of agents × sequential on
                         per-agent state *ids* (the parity reference;
                         per-agent configs only)
counts     birthday      **exact sequential semantics natively in
                         count space**: batch sizes from the
                         disjoint-prefix (birthday) law, the
                         prefix-terminating pair carried exactly,
                         O(|occupied states|²) per Θ(√n)-interaction
                         batch — no O(n) loop or array, count-native
                         configs welcome (benchmark EB6)
counts     matching      coarsest batches (B = n·fraction): the
                         large-n workhorse, O(|occupied states|²) per
                         B interactions (benchmarks EB2–EB6)
=========  ============  ===========================================

The sampler axis applies to the count backend's batched cells: every
margin draw and contingency table goes through a
:class:`~repro.engine.sampling.SamplerPolicy`:

==========  =========================================================
sampler     what serves a draw
==========  =========================================================
auto        (default) adaptive dispatch *inside* each draw: every
            contingency row / splitting subtree whose pool is below
            numpy's 10⁹ bound goes to numpy's C generator, the
            out-of-range remainder to the level-batched rejection
            construction, per the measured plan in
            :mod:`repro.engine.sampling.dispatch` — within run noise
            of the best single-minded policy in every EB6 cell
            (``sampler.dispatch.*`` counters show the routing mix)
numpy       numpy's C generator only; raises ``SamplerUnsupported``
            at populations ≥ 10⁹
rejection   O(1)-per-draw ratio-of-uniforms univariate draws under
            level-batched binary splitting; any population
splitting   the windowed-inversion oracle under lockstep binary
            splitting; any population, slowest — the parity and
            distribution reference
==========  =========================================================

So there is **no population cap** — n = 10⁹ .. 10¹⁰ runs at
count-vector cost.  At that scale pair the count backend with a
count-native :class:`~repro.engine.population.CountConfig` so the
config build is O(k) too.  Measured at n = 10⁹ (benchmark EB6):
UnorderedAlgorithm k = 2 runs to *full convergence* in minutes under
matching × auto — PR 4 measured the same leg at 6210 s on the
inversion sampler, and the adaptive policy beats plain rejection ~4×
on the budget slice.

Count-model support by protocol: static tables — three-state majority,
USD, cancel/split, epidemic broadcast; dynamic quotients — Simple,
Unordered, and Improved tournament algorithms (default parameters; the
unordered/improved variants cover every n ≥ 4 — the windowed era
quotient above the origin gate, the fully-absolute model below it;
Appendix C parameterizations return None).  Agent-only — the standalone
clocks, the coin-race leader election, and the junta clock.

Rule of thumb: pick ``"counts"`` when the protocol exports a count model
and you care about scale — with ``"matching"`` when well-mixed batch
semantics are acceptable (sweeps, large-n scaling laws) and
``"birthday"`` when you need the exact sequential law at count-vector
cost; pick ``"agents"`` when you need per-agent introspection or a
protocol without a model, and counts × sequential when a bit-exact
count replay of the agent path is the point (tests, fidelity studies).

**Replicate fleets** add a fourth choice on top of backend × scheduler ×
sampler: *how many replicas share one loop*.  When you run many seeded
replicas of the same experimental point (sweeps, failure-probability
studies), ``replicate(..., mode="ensemble")`` advances all of them in
lockstep through one vectorized ``(R, num_states)`` loop in
:mod:`repro.engine.ensemble` — same count backend, batched schedulers
(matching/birthday) only, ≈3–4× the serial replica throughput on one
core (benchmark EB7).  Each replica's result stays a pure function of
``(base_seed, index)``; serial and ensemble runs agree in law, not bit
for bit — see ``docs/ENSEMBLE.md``.

Select the three axes anywhere a simulation is launched::

    simulate(protocol, config, backend="counts",
             scheduler="matching", sampler="auto")
    simulate(protocol, config, backend="counts", scheduler="birthday")
    replicate(..., backend="counts", scheduler="matching")
    repro-experiments run EB2 --backend counts
    repro-experiments run EB3 --backend counts --sampler splitting
    repro-experiments run EB4                  # tournaments in count space
    repro-experiments run EB5                  # unordered/improved variants
    repro-experiments run EB6                  # scheduler × sampler grid
    repro-experiments run E1 --backend counts  # core E-series on counts
    repro-experiments run E4 --backend counts --scheduler birthday
    repro-experiments run EB7 --ensemble-size 64   # stacked replicate fleet
    repro-experiments schedulers               # list the scheduler registry

or grab one directly via ``repro.engine.backends.get("counts")`` /
``CountBackend(sampler="rejection")``.
"""

from .agent_array import AgentArrayBackend
from .base import (
    DEFAULT_BACKEND,
    Backend,
    BackendLike,
    available,
    get,
    register,
    resolve,
)
from .counts import CountBackend, CountState
from .model import (
    BaseCountModel,
    CountModel,
    DynamicCountModel,
    RandomEntry,
    identity_tables,
    window_band_failure,
)

__all__ = [
    "AgentArrayBackend",
    "Backend",
    "BackendLike",
    "BaseCountModel",
    "CountBackend",
    "CountModel",
    "CountState",
    "DEFAULT_BACKEND",
    "DynamicCountModel",
    "RandomEntry",
    "available",
    "get",
    "identity_tables",
    "register",
    "resolve",
    "window_band_failure",
]
