"""Execution backends: per-agent arrays vs. count-vector simulation.

The paper's protocols are analyzed in terms of state *counts*, never agent
identities, so the engine supports two interchangeable execution
strategies behind one :class:`Backend` interface:

``"agents"`` — :class:`AgentArrayBackend` (the default)
    Per-agent numpy state arrays, every interaction applied through the
    protocol's vectorized ``interact``.  Works for *every* protocol and
    scheduler.  Memory O(n), work O(1) per interaction: the right choice
    up to n ≈ 10^6, for recorder-heavy trajectory studies, and for any
    protocol without a count model (the standalone clock/leader-election
    building blocks, and the Appendix C parameterizations of the
    tournament algorithms).

``"counts"`` — :class:`CountBackend`
    Drives the transition system a protocol exports through
    ``Protocol.count_model(config)`` — either a *static*
    :class:`CountModel` (dense precomputed tables; three-state majority,
    USD, cancel/split, epidemics) or a lazily materialized
    :class:`DynamicCountModel`, whose states are interned on first sight
    and whose pair transitions are derived on demand.  The dynamic shape
    is what lets the **tournament algorithms** run in count space:
    SimpleAlgorithm through its phase-quotiented model
    (:mod:`repro.core.quotient`, benchmark EB4), and UnorderedAlgorithm /
    ImprovedAlgorithm through the era-quotiented models
    (:mod:`repro.core.era_quotient`, benchmark EB5 — leader election,
    era-tagged selection, and pruning included).  Their state spaces are
    far too large for dense (S, S) tables while any single run only
    touches a sparse subset of pairs.  With a
    :class:`~repro.engine.scheduler.MatchingScheduler` the population is
    just a state-count vector and one batch of B interactions costs
    O(|occupied states|²): two multivariate-hypergeometric margin draws
    plus one level-batched contingency table, every draw routed through a
    :class:`~repro.engine.sampling.SamplerPolicy` — the default ``"auto"``
    uses numpy's generator where it applies (populations below 10^9) and
    the custom color-splitting :class:`~repro.engine.sampling.LargeNHypergeometric`
    beyond, so there is **no population cap** — n = 10^9 .. 10^10 runs at
    count-vector cost (benchmarks EB3, EB4).  At that scale pair it with
    a count-native :class:`~repro.engine.population.CountConfig` so the
    config build is O(k) too.  With a
    :class:`~repro.engine.scheduler.SequentialScheduler` it runs an exact
    per-agent state-id mode that reproduces the agent backend's count
    trajectory bit-for-bit under the same seed — the fidelity reference
    the cross-backend tests check (per-agent configs only; for the
    tournament quotients the replay is bit-exact *through the randomized
    initialization and the leader-election coin flips*, see
    ``tests/test_quotient_counts.py`` and ``tests/test_era_quotient.py``).

Count-model support by protocol: static tables — three-state majority,
USD, cancel/split, epidemic broadcast; dynamic quotients — Simple,
Unordered, and Improved tournament algorithms (default parameters;
Appendix C parameterizations and populations below the era-quotient's
origin gate return None).  Agent-only — the standalone clocks, the
coin-race leader election, and the junta clock.

Rule of thumb: pick ``"counts"`` when the protocol exports a count model
and you care about scale; pick ``"agents"`` when you need per-agent
introspection, a protocol without a model, or exact sequential semantics
at small n where backend choice is moot.

Select a backend (and optionally a sampler policy) anywhere a simulation
is launched::

    simulate(protocol, config, backend="counts",
             scheduler=MatchingScheduler(0.25), sampler="auto")
    replicate(..., backend="counts")
    repro-experiments run EB2 --backend counts
    repro-experiments run EB3 --backend counts --sampler splitting
    repro-experiments run EB4                  # tournaments in count space
    repro-experiments run EB5                  # unordered/improved variants
    repro-experiments run E1 --backend counts  # core E-series on counts
    repro-experiments run E4 --backend counts  # unordered sweep on counts

or grab one directly via ``repro.engine.backends.get("counts")`` /
``CountBackend(sampler="splitting")``.
"""

from .agent_array import AgentArrayBackend
from .base import (
    DEFAULT_BACKEND,
    Backend,
    BackendLike,
    available,
    get,
    register,
    resolve,
)
from .counts import CountBackend, CountState
from .model import (
    BaseCountModel,
    CountModel,
    DynamicCountModel,
    RandomEntry,
    identity_tables,
    window_band_failure,
)

__all__ = [
    "AgentArrayBackend",
    "Backend",
    "BackendLike",
    "BaseCountModel",
    "CountBackend",
    "CountModel",
    "CountState",
    "DEFAULT_BACKEND",
    "DynamicCountModel",
    "RandomEntry",
    "available",
    "get",
    "identity_tables",
    "register",
    "resolve",
    "window_band_failure",
]
