"""Execution backends: per-agent arrays vs. count-vector simulation.

The paper's protocols are analyzed in terms of state *counts*, never agent
identities, so the engine supports two interchangeable execution
strategies behind one :class:`Backend` interface:

``"agents"`` — :class:`AgentArrayBackend` (the default)
    Per-agent numpy state arrays, every interaction applied through the
    protocol's vectorized ``interact``.  Works for *every* protocol and
    scheduler.  Memory O(n), work O(1) per interaction: the right choice
    up to n ≈ 10^6, for recorder-heavy trajectory studies, and for any
    protocol without a count model (the unordered/improved tournament
    variants).

``"counts"`` — :class:`CountBackend`
    Drives the transition system a protocol exports through
    ``Protocol.count_model(config)`` — either a *static*
    :class:`CountModel` (dense precomputed tables; three-state majority,
    USD, cancel/split, epidemics) or a lazily materialized
    :class:`DynamicCountModel`, whose states are interned on first sight
    and whose pair transitions are derived on demand.  The dynamic shape
    is what lets **SimpleAlgorithm** run in count space: its
    phase-quotiented model (:mod:`repro.core.quotient`) has a state space
    far too large for dense (S, S) tables while any single run only
    touches a sparse subset of pairs (benchmark EB4).  With a
    :class:`~repro.engine.scheduler.MatchingScheduler` the population is
    just a state-count vector and one batch of B interactions costs
    O(|occupied states|²): two multivariate-hypergeometric margin draws
    plus one level-batched contingency table, every draw routed through a
    :class:`~repro.engine.sampling.SamplerPolicy` — the default ``"auto"``
    uses numpy's generator where it applies (populations below 10^9) and
    the custom color-splitting :class:`~repro.engine.sampling.LargeNHypergeometric`
    beyond, so there is **no population cap** — n = 10^9 .. 10^10 runs at
    count-vector cost (benchmarks EB3, EB4).  At that scale pair it with
    a count-native :class:`~repro.engine.population.CountConfig` so the
    config build is O(k) too.  With a
    :class:`~repro.engine.scheduler.SequentialScheduler` it runs an exact
    per-agent state-id mode that reproduces the agent backend's count
    trajectory bit-for-bit under the same seed — the fidelity reference
    the cross-backend tests check (per-agent configs only; for the
    tournament quotient the replay is bit-exact *through the randomized
    initialization*, see ``tests/test_quotient_counts.py``).

Rule of thumb: pick ``"counts"`` when the protocol exports a count model
and you care about scale; pick ``"agents"`` when you need per-agent
introspection, a protocol without a model (the unordered/improved
variants), or exact sequential semantics at small n where backend choice
is moot.

Select a backend (and optionally a sampler policy) anywhere a simulation
is launched::

    simulate(protocol, config, backend="counts",
             scheduler=MatchingScheduler(0.25), sampler="auto")
    replicate(..., backend="counts")
    repro-experiments run EB2 --backend counts
    repro-experiments run EB3 --backend counts --sampler splitting
    repro-experiments run EB4                  # tournaments in count space
    repro-experiments run E1 --backend counts  # core E-series on counts

or grab one directly via ``repro.engine.backends.get("counts")`` /
``CountBackend(sampler="splitting")``.
"""

from .agent_array import AgentArrayBackend
from .base import (
    DEFAULT_BACKEND,
    Backend,
    BackendLike,
    available,
    get,
    register,
    resolve,
)
from .counts import CountBackend, CountState
from .model import (
    BaseCountModel,
    CountModel,
    DynamicCountModel,
    RandomEntry,
    identity_tables,
)

__all__ = [
    "AgentArrayBackend",
    "Backend",
    "BackendLike",
    "BaseCountModel",
    "CountBackend",
    "CountModel",
    "CountState",
    "DEFAULT_BACKEND",
    "DynamicCountModel",
    "RandomEntry",
    "available",
    "get",
    "identity_tables",
    "register",
    "resolve",
]
