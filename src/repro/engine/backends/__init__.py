"""Execution backends: per-agent arrays vs. count-vector simulation.

The paper's protocols are analyzed in terms of state *counts*, never agent
identities, so the engine supports two interchangeable execution
strategies behind one :class:`Backend` interface:

``"agents"`` — :class:`AgentArrayBackend` (the default)
    Per-agent numpy state arrays, every interaction applied through the
    protocol's vectorized ``interact``.  Works for *every* protocol and
    scheduler, including the core tournament algorithms whose per-run
    state space (absolute phase numbers, token counters, verdict tags) is
    unbounded and therefore has no precomputable transition table.
    Memory O(n), work O(1) per interaction: the right choice up to
    n ≈ 10^6, for recorder-heavy trajectory studies, and for any protocol
    without a count model.

``"counts"`` — :class:`CountBackend`
    Drives the finite transition table a protocol exports through
    ``Protocol.count_model(config)`` (a :class:`CountModel`).  With a
    :class:`~repro.engine.scheduler.MatchingScheduler` the population is
    just a state-count vector and one batch of B interactions costs
    O(|states|²) via multivariate-hypergeometric sampling — use this for
    n ≥ 10^7 sweeps of the small-state protocols (three-state majority,
    undecided-state dynamics, cancel/split majority, epidemics), where it
    is orders of magnitude faster than the agent path (benchmarks
    ``benchmarks/test_backend_scaling.py`` and
    ``benchmarks/test_eb3.py``).  Every batched draw goes through a
    :class:`~repro.engine.sampling.SamplerPolicy`: the default ``"auto"``
    uses numpy's generator where it applies (populations below 10^9) and
    the custom color-splitting :class:`~repro.engine.sampling.LargeNHypergeometric`
    beyond, so there is **no population cap** — n = 10^9 .. 10^10 runs in
    seconds.  At that scale pair it with a count-native
    :class:`~repro.engine.population.CountConfig` so the config build is
    O(k) too.  With a
    :class:`~repro.engine.scheduler.SequentialScheduler` it runs an exact
    per-agent state-id mode that reproduces the agent backend's count
    trajectory bit-for-bit under the same seed — the fidelity reference
    the cross-backend tests check (per-agent configs only).

Rule of thumb: pick ``"counts"`` when the protocol exports a count model
and you care about scale; pick ``"agents"`` when you need per-agent
introspection, a protocol without a table (the tournament algorithms), or
exact sequential semantics at small n where backend choice is moot.

Select a backend (and optionally a sampler policy) anywhere a simulation
is launched::

    simulate(protocol, config, backend="counts",
             scheduler=MatchingScheduler(0.25), sampler="auto")
    replicate(..., backend="counts")
    repro-experiments run EB2 --backend counts
    repro-experiments run EB3 --backend counts --sampler splitting

or grab one directly via ``repro.engine.backends.get("counts")`` /
``CountBackend(sampler="splitting")``.
"""

from .agent_array import AgentArrayBackend
from .base import (
    DEFAULT_BACKEND,
    Backend,
    BackendLike,
    available,
    get,
    register,
    resolve,
)
from .counts import CountBackend, CountState
from .model import CountModel, RandomEntry, identity_tables

__all__ = [
    "AgentArrayBackend",
    "Backend",
    "BackendLike",
    "CountBackend",
    "CountModel",
    "CountState",
    "DEFAULT_BACKEND",
    "RandomEntry",
    "available",
    "get",
    "identity_tables",
    "register",
    "resolve",
]
