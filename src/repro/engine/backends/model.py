"""Count-space protocol descriptions: finite states + transition tables.

A :class:`CountModel` is what a protocol exports (via
``Protocol.count_model(config)``) so that count-space backends can drive it
without per-agent arrays.  It consists of

* a finite state space (``labels``, indexed ``0 .. S-1``),
* ordered-pair transition tables ``delta_u`` / ``delta_v`` — for an
  interaction between an initiator in state ``i`` and a responder in state
  ``j``, the successors are ``delta_u[i, j]`` and ``delta_v[i, j]``,
* optional *randomized* entries (:class:`RandomEntry`) for state pairs
  whose outcome is drawn from a distribution rather than deterministic,
* an ``encode`` function mapping a :class:`PopulationConfig` to per-agent
  state ids (this fixes both the initial count vector and, for the exact
  sequential mode, the same initial layout the agent-array backend sees),
* an optional ``encode_counts`` function mapping a population config
  straight to the initial state-*count* vector in O(k) — the count-native
  fast path: it is required for :class:`~repro.engine.population.CountConfig`
  populations (which have no per-agent opinions to ``encode``) and lets
  batched-mode initialization skip the O(n) ids array entirely,
* count-level convergence / output / failure / progress hooks, defaulting
  to "all supported states agree on one non-zero output" via ``output_map``.

The optional ``project`` hook maps a protocol's *agent* state object to the
same state ids; the cross-backend equivalence tests use it to compare
count trajectories between backends.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import BackendUnsupported, ConfigurationError
from ..population import BasePopulation, PopulationConfig, is_count_native

CountHook = Callable[[np.ndarray], Any]


class RandomEntry:
    """A randomized transition outcome distribution for one state pair.

    ``probs[m]`` is the probability that the pair maps to
    ``(out_u[m], out_v[m])``.  Probabilities must be positive and sum to 1.
    """

    def __init__(
        self,
        probs: Sequence[float],
        out_u: Sequence[int],
        out_v: Sequence[int],
    ):
        self.probs = np.asarray(probs, dtype=np.float64)
        self.out_u = np.asarray(out_u, dtype=np.int64)
        self.out_v = np.asarray(out_v, dtype=np.int64)
        if not (self.probs.size == self.out_u.size == self.out_v.size):
            raise ConfigurationError("random entry arrays must have equal length")
        if self.probs.size == 0:
            raise ConfigurationError("random entry needs at least one outcome")
        if (self.probs <= 0).any() or not np.isclose(self.probs.sum(), 1.0):
            raise ConfigurationError(
                "random entry probabilities must be positive and sum to 1"
            )
        #: Cumulative distribution for inverse-CDF sampling in dense mode.
        self.cum = np.cumsum(self.probs)
        self.cum[-1] = 1.0


class CountModel:
    """A protocol rendered as a finite-state pairwise transition system.

    Args:
        labels: one label per state (for tables and debugging).
        delta_u / delta_v: ``(S, S)`` successor tables for ordered pairs;
            entries for randomized pairs are ignored (see
            ``random_entries``).
        encode: maps a population config to per-agent state ids.
        encode_counts: optional O(k) map from a population config to the
            initial state-count vector; must agree with
            ``bincount(encode(config))`` whenever both paths apply.
            Without it, count-native configs cannot drive this model.
        output_map: per-state output opinion (0 = undefined); required
            unless both ``converged`` and ``output_opinion`` are given.
        random_entries: ``{(i, j): RandomEntry}`` for randomized pairs.
        converged / output_opinion / failure / progress /
        check_invariants: optional count-level hooks mirroring the
            :class:`~repro.engine.protocol.Protocol` hooks; all receive the
            current count vector.
        project: optional map from a protocol's agent-state object to
            per-agent state ids (used by cross-backend tests).
    """

    def __init__(
        self,
        *,
        labels: Sequence[Any],
        delta_u: np.ndarray,
        delta_v: np.ndarray,
        encode: Callable[[PopulationConfig], np.ndarray],
        encode_counts: Optional[Callable[[BasePopulation], np.ndarray]] = None,
        output_map: Optional[Sequence[int]] = None,
        random_entries: Optional[Mapping[Tuple[int, int], RandomEntry]] = None,
        converged: Optional[CountHook] = None,
        output_opinion: Optional[CountHook] = None,
        failure: Optional[CountHook] = None,
        progress: Optional[CountHook] = None,
        check_invariants: Optional[CountHook] = None,
        project: Optional[Callable[[Any], np.ndarray]] = None,
    ):
        self.labels = list(labels)
        num_states = len(self.labels)
        if num_states < 1:
            raise ConfigurationError("count model needs at least one state")
        self.delta_u = self._check_table(delta_u, num_states, "delta_u")
        self.delta_v = self._check_table(delta_v, num_states, "delta_v")
        self._encode = encode
        self._encode_counts = encode_counts
        if output_map is not None:
            output_arr = np.asarray(output_map, dtype=np.int64)
            if output_arr.shape != (num_states,):
                raise ConfigurationError(
                    f"output_map must have one entry per state, "
                    f"got shape {output_arr.shape} for {num_states} states"
                )
            self.output_map: Optional[np.ndarray] = output_arr
        else:
            self.output_map = None
            if converged is None or output_opinion is None:
                raise ConfigurationError(
                    "count model needs output_map or explicit "
                    "converged/output_opinion hooks"
                )
        self.random_entries: Dict[Tuple[int, int], RandomEntry] = {}
        for (i, j), entry in sorted((random_entries or {}).items()):
            if not (0 <= i < num_states and 0 <= j < num_states):
                raise ConfigurationError(f"random entry ({i}, {j}) out of range")
            if (entry.out_u >= num_states).any() or (entry.out_u < 0).any():
                raise ConfigurationError(f"random entry ({i}, {j}): out_u escapes")
            if (entry.out_v >= num_states).any() or (entry.out_v < 0).any():
                raise ConfigurationError(f"random entry ({i}, {j}): out_v escapes")
            self.random_entries[(int(i), int(j))] = entry
        self._converged = converged
        self._output_opinion = output_opinion
        self._failure = failure
        self._progress = progress
        self._check_invariants = check_invariants
        self._project = project

    @staticmethod
    def _check_table(table: np.ndarray, num_states: int, name: str) -> np.ndarray:
        arr = np.asarray(table, dtype=np.int64)
        if arr.shape != (num_states, num_states):
            raise ConfigurationError(
                f"{name} must be ({num_states}, {num_states}), got {arr.shape}"
            )
        if (arr < 0).any() or (arr >= num_states).any():
            raise ConfigurationError(f"{name} entries must be valid state ids")
        return arr

    # ------------------------------------------------------------------
    # State space
    # ------------------------------------------------------------------
    @property
    def num_states(self) -> int:
        return len(self.labels)

    def initial_ids(self, config: PopulationConfig) -> np.ndarray:
        """Per-agent state ids of the initial configuration.

        Always a fresh array: the exact count mode mutates it in place,
        and ``encode`` may hand back a view of ``config.opinions``.
        Count-native configs have no per-agent layout to encode.
        """
        if is_count_native(config):
            raise BackendUnsupported(
                f"count-native config {config.name!r} has no per-agent "
                f"layout to encode; use initial_counts() (batched mode) "
                f"or materialize() the config first"
            )
        ids = np.array(self._encode(config), dtype=np.int64)
        if ids.shape != (config.n,):
            raise ConfigurationError(
                f"encode must return one state per agent, got shape {ids.shape}"
            )
        if (ids < 0).any() or (ids >= self.num_states).any():
            raise ConfigurationError("encode produced out-of-range state ids")
        return ids

    def initial_counts(self, config: BasePopulation) -> np.ndarray:
        """Initial state-count vector (sums to ``config.n``).

        Uses the O(k) ``encode_counts`` path when the model provides one
        (mandatory for count-native configs); otherwise falls back to
        bincounting the O(n) per-agent encoding.
        """
        if self._encode_counts is not None:
            counts = np.asarray(self._encode_counts(config), dtype=np.int64)
            if counts.shape != (self.num_states,):
                raise ConfigurationError(
                    f"encode_counts must return one count per state, "
                    f"got shape {counts.shape} for {self.num_states} states"
                )
            if (counts < 0).any() or int(counts.sum()) != config.n:
                raise ConfigurationError(
                    f"encode_counts must produce non-negative counts "
                    f"summing to n={config.n}, got sum {int(counts.sum())}"
                )
            return counts
        if is_count_native(config):
            raise BackendUnsupported(
                f"count-native config {config.name!r} needs a count model "
                f"with encode_counts; this model only encodes per-agent "
                f"opinions — materialize() the config or add encode_counts"
            )
        return np.bincount(self.initial_ids(config), minlength=self.num_states)

    def project(self, agent_state: Any) -> np.ndarray:
        """Map an agent-array state object to per-agent state ids."""
        if self._project is None:
            raise ConfigurationError(
                "this count model does not define an agent-state projection"
            )
        return np.asarray(self._project(agent_state), dtype=np.int64)

    # ------------------------------------------------------------------
    # Count-level protocol hooks
    # ------------------------------------------------------------------
    def converged(self, counts: np.ndarray) -> bool:
        if self._converged is not None:
            return bool(self._converged(counts))
        return self.output_opinion(counts) is not None

    def output_opinion(self, counts: np.ndarray) -> Optional[int]:
        """The common output opinion, or None when outputs disagree.

        Mirrors the agent-level rule: every agent's output must be the
        same non-zero opinion.
        """
        if self._output_opinion is not None:
            value = self._output_opinion(counts)
            return None if value is None else int(value)
        assert self.output_map is not None
        outputs = np.unique(self.output_map[np.flatnonzero(counts)])
        if outputs.size == 1 and outputs[0] != 0:
            return int(outputs[0])
        return None

    def failure(self, counts: np.ndarray) -> Optional[str]:
        if self._failure is not None:
            return self._failure(counts)
        return None

    def progress(self, counts: np.ndarray) -> Dict[str, float]:
        if self._progress is not None:
            return dict(self._progress(counts))
        return {}

    def check_invariants(self, counts: np.ndarray) -> None:
        if self._check_invariants is not None:
            self._check_invariants(counts)


def identity_tables(num_states: int) -> Tuple[np.ndarray, np.ndarray]:
    """No-op transition tables to be overwritten entry by entry.

    Convenience for protocols building their export: start from
    ``delta_u[i, j] = i`` and ``delta_v[i, j] = j``, then fill in the
    reacting pairs.
    """
    ids = np.arange(num_states, dtype=np.int64)
    delta_u = np.repeat(ids[:, None], num_states, axis=1)
    delta_v = np.repeat(ids[None, :], num_states, axis=0)
    return delta_u, delta_v
