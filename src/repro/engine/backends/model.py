"""Count-space protocol descriptions: finite states + transition tables.

A *count model* is what a protocol exports (via
``Protocol.count_model(config)``) so that count-space backends can drive it
without per-agent arrays.  Two concrete shapes share the
:class:`BaseCountModel` interface:

* :class:`CountModel` — the *static* shape: the full state space and the
  ordered-pair transition tables ``delta_u`` / ``delta_v`` are materialized
  up front as dense ``(S, S)`` arrays.  Right for protocols whose state
  space is small and enumerable in advance (three-state majority, USD,
  cancel/split, epidemics).

* :class:`DynamicCountModel` — the *lazily materialized* shape: states are
  interned on first sight and pair transitions are derived on demand (and
  memoized) by a subclass hook.  Right for protocols whose *reachable*
  state space is finite but far too large to enumerate eagerly — the
  tournament algorithms' phase-quotiented models
  (:mod:`repro.core.quotient`) have |states| growing with ``k + log n``
  and dense ``(S, S)`` tables would not fit in memory, while any single
  run only ever touches a sparse subset of pairs.

Both shapes provide the same backend-facing API:

* ``initial_ids`` / ``initial_counts`` — initial configuration as
  per-agent state ids (exact mode) or as a state-count vector (batched
  mode; ``initial_counts`` is O(k) when the model defines a count-native
  encoding),
* ``apply_pairs(ids, u, v, rng)`` — apply one disjoint interaction batch
  to a per-agent state-id array (the count backend's exact sequential
  mode),
* ``apply_groups(pair_i, pair_j, sizes, counts, rng)`` — apply whole
  groups of identical state pairs to a count vector (the batched mode;
  group sizes come from the backend's contingency sampling),
* count-level convergence / output / failure / progress / invariant
  hooks, and an optional ``project`` from the protocol's *agent* state to
  state ids (the cross-backend equivalence tests rely on it).

Randomized transitions are expressed as :class:`RandomEntry` outcome
distributions.  The two shapes consume randomness differently (see the
respective ``apply_pairs`` docstrings); the dynamic shape's pair-ordered
consumption is what lets a quotient model replay an agent-path run
bit-for-bit.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ... import telemetry as telemetry_module
from ...cache.signature import signature_of
from ...cache.table import TransitionTable
from ..errors import BackendUnsupported, ConfigurationError
from ..population import BasePopulation, PopulationConfig, is_count_native

CountHook = Callable[[np.ndarray], Any]


class RandomEntry:
    """A randomized transition outcome distribution for one state pair.

    ``probs[m]`` is the probability that the pair maps to
    ``(out_u[m], out_v[m])``.  Probabilities must be positive and sum to 1.

    ``factors`` optionally decomposes the distribution into *independent
    draws*: a sequence of ``(group, cum)`` pairs, where ``cum`` is the
    cumulative distribution of one uniform draw and ``group`` identifies
    the rng call site in the protocol's agent path (groups must be
    strictly increasing — call-site order).  The joint outcome index is
    the mixed-radix combination of the per-factor draws, last factor
    fastest, so ``probs`` must have ``prod(len(cum_f))`` entries ordered
    accordingly.  A pair whose agent-path transition flips several
    independent coins (e.g. a role re-roll on one side and a
    leader-election coin on the other) is expressed as one entry with one
    factor per coin; the dynamic exact mode then consumes exactly one
    uniform per factor, ordered by ``(group, pair index)`` across a
    batch, which is what keeps the two backends on a single rng stream.
    Entries without ``factors`` behave as before: a single draw through
    the joint cumulative distribution.
    """

    def __init__(
        self,
        probs: Sequence[float],
        out_u: Sequence[int],
        out_v: Sequence[int],
        factors: Optional[Sequence[Tuple[int, Sequence[float]]]] = None,
    ):
        self.probs = np.asarray(probs, dtype=np.float64)
        self.out_u = np.asarray(out_u, dtype=np.int64)
        self.out_v = np.asarray(out_v, dtype=np.int64)
        if not (self.probs.size == self.out_u.size == self.out_v.size):
            raise ConfigurationError("random entry arrays must have equal length")
        if self.probs.size == 0:
            raise ConfigurationError("random entry needs at least one outcome")
        if (self.probs <= 0).any() or not np.isclose(self.probs.sum(), 1.0):
            raise ConfigurationError(
                "random entry probabilities must be positive and sum to 1"
            )
        #: Cumulative distribution for inverse-CDF sampling in dense mode.
        self.cum = np.cumsum(self.probs)
        self.cum[-1] = 1.0
        if factors is None:
            #: One implicit factor: a single draw through the joint cdf.
            self.factors: List[Tuple[int, np.ndarray]] = [(0, self.cum)]
        else:
            self.factors = []
            arity = 1
            for group, cum in factors:
                cum_arr = np.asarray(cum, dtype=np.float64)
                if cum_arr.size == 0 or not np.isclose(cum_arr[-1], 1.0):
                    raise ConfigurationError(
                        "factor cumulative distributions must end at 1"
                    )
                if self.factors and group <= self.factors[-1][0]:
                    raise ConfigurationError(
                        "factor groups must be strictly increasing "
                        "(rng call-site order)"
                    )
                self.factors.append((int(group), cum_arr))
                arity *= cum_arr.size
            if arity != self.probs.size:
                raise ConfigurationError(
                    f"factors describe {arity} joint outcomes but the entry "
                    f"has {self.probs.size}"
                )

    def outcome_index(self, draws: Sequence[int]) -> int:
        """Joint outcome index from per-factor draws (last factor fastest)."""
        idx = 0
        for (_, cum), draw in zip(self.factors, draws):
            idx = idx * cum.size + int(draw)
        return idx


class BaseCountModel(ABC):
    """The backend-facing interface shared by all count-model shapes.

    Subclasses maintain ``labels`` (one entry per materialized state; its
    length is the current ``num_states``) and implement the encoding and
    transition-application primitives.  The count backend treats models
    through this interface only, so static tables and lazily materialized
    spaces are interchangeable per run.
    """

    labels: List[Any]

    # ------------------------------------------------------------------
    # State space
    # ------------------------------------------------------------------
    @property
    def num_states(self) -> int:
        """Number of states materialized *so far* (fixed for static models)."""
        return len(self.labels)

    @abstractmethod
    def initial_ids(self, config: PopulationConfig) -> np.ndarray:
        """Per-agent state ids of the initial configuration (fresh array)."""

    @abstractmethod
    def initial_counts(self, config: BasePopulation) -> np.ndarray:
        """Initial state-count vector (sums to ``config.n``)."""

    def project(self, agent_state: Any) -> np.ndarray:
        """Map an agent-array state object to per-agent state ids."""
        raise ConfigurationError(
            "this count model does not define an agent-state projection"
        )

    def ensure_capacity(self, counts: np.ndarray) -> np.ndarray:
        """Zero-pad a count vector up to the current ``num_states``.

        Static models return the vector unchanged; models whose state
        space grows mid-run use this so backends can keep holding a plain
        numpy vector.
        """
        if counts.shape[0] == self.num_states:
            return counts
        padded = np.zeros(self.num_states, dtype=counts.dtype)
        padded[: counts.shape[0]] = counts
        return padded

    # ------------------------------------------------------------------
    # Transition application
    # ------------------------------------------------------------------
    @abstractmethod
    def apply_pairs(
        self,
        ids: np.ndarray,
        u: np.ndarray,
        v: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        """Apply one batch of disjoint interactions to per-agent state ids.

        The count backend's exact sequential mode: ``(u_i, v_i)`` index
        pairs come from the same scheduler stream the agent-array backend
        consumes; implementations mutate ``ids`` in place.
        """

    @abstractmethod
    def apply_groups(
        self,
        pair_i: np.ndarray,
        pair_j: np.ndarray,
        sizes: np.ndarray,
        counts: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Apply ``sizes[m]`` interactions of state pair ``(pair_i[m], pair_j[m])``.

        The batched mode: the participating agents have already been
        removed from ``counts``; implementations scatter the outcome
        states back in and return the (possibly reallocated) vector.
        Each state pair appears at most once (the triplets come from a
        contingency table's non-empty cells).
        """

    def apply_groups_stack(
        self,
        rep: np.ndarray,
        pair_i: np.ndarray,
        pair_j: np.ndarray,
        sizes: np.ndarray,
        counts_stack: np.ndarray,
        rngs: Sequence[np.random.Generator],
    ) -> np.ndarray:
        """Apply flat replica-tagged pair-group triplets to an ``(R, S)`` stack.

        The ensemble mode's transition application: entry ``m`` applies
        ``sizes[m]`` interactions of state pair ``(pair_i[m], pair_j[m])``
        to replica ``rep[m]``'s row.  Replica ``r``'s randomized outcomes
        must come from ``rngs[r]`` in the same per-replica order as
        :meth:`apply_groups` would consume them, so each replica's stream
        stays a pure function of its own seed.  The base implementation
        loops :meth:`apply_groups` per replica (safe for lazily
        materialized models — derivation may grow the state space
        mid-stack, in which case the stack is re-padded to the new
        width); :class:`CountModel` overrides it with a fully vectorized
        scatter.
        """
        order = np.argsort(rep, kind="stable")
        rep_s = rep[order]
        bounds = np.searchsorted(rep_s, np.arange(counts_stack.shape[0] + 1))
        rows = []
        for r in range(counts_stack.shape[0]):
            sel = order[bounds[r]:bounds[r + 1]]
            rows.append(
                self.apply_groups(
                    pair_i[sel], pair_j[sel], sizes[sel], counts_stack[r], rngs[r]
                )
            )
        width = max(row.shape[0] for row in rows)
        if width == counts_stack.shape[1]:
            # Every apply_groups call mutated its stack row in place.
            return counts_stack
        out = np.zeros((counts_stack.shape[0], width), dtype=counts_stack.dtype)
        for r, row in enumerate(rows):
            out[r, : row.shape[0]] = row
        return out

    # ------------------------------------------------------------------
    # Count-level protocol hooks
    # ------------------------------------------------------------------
    def converged(self, counts: np.ndarray) -> bool:
        return self.output_opinion(counts) is not None

    @abstractmethod
    def output_opinion(self, counts: np.ndarray) -> Optional[int]:
        """The common output opinion, or None when outputs disagree."""

    def failure(self, counts: np.ndarray) -> Optional[str]:
        return None

    def progress(self, counts: np.ndarray) -> Dict[str, float]:
        return {}

    def check_invariants(self, counts: np.ndarray) -> None:
        """Raise :class:`InvariantViolation` on a broken hard invariant."""

    def attach_telemetry(self, telemetry: "telemetry_module.Telemetry") -> None:
        """Bind pre-resolved metric handles for an instrumented run.

        The base implementation is a no-op (static tables have no
        derivation work to meter); :class:`DynamicCountModel` overrides
        it to meter lazy derivation.
        """

    def quotient_signature(self) -> Optional[str]:
        """Stable content signature of this model's transition shape.

        Two models with equal signatures derive identical transition
        entries for every pair they both touch, so their tables can be
        exchanged through the :mod:`repro.cache` store.  ``None`` means
        "unknown shape — never cache".  The base implementation returns
        None; :class:`CountModel` hashes its materialized tables, and the
        quotient models hash their quotient parameters (never ``n`` or
        the seed).
        """
        return None


class CountModel(BaseCountModel):
    """A protocol rendered as a *static* finite-state pairwise table.

    Args:
        labels: one label per state (for tables and debugging).
        delta_u / delta_v: ``(S, S)`` successor tables for ordered pairs;
            entries for randomized pairs are ignored (see
            ``random_entries``).
        encode: maps a population config to per-agent state ids.
        encode_counts: optional O(k) map from a population config to the
            initial state-count vector; must agree with
            ``bincount(encode(config))`` whenever both paths apply.
            Without it, count-native configs cannot drive this model.
        output_map: per-state output opinion (0 = undefined); required
            unless both ``converged`` and ``output_opinion`` are given.
        random_entries: ``{(i, j): RandomEntry}`` for randomized pairs.
        converged / output_opinion / failure / progress /
        check_invariants: optional count-level hooks mirroring the
            :class:`~repro.engine.protocol.Protocol` hooks; all receive the
            current count vector.
        project: optional map from a protocol's agent-state object to
            per-agent state ids (used by cross-backend tests).
    """

    def __init__(
        self,
        *,
        labels: Sequence[Any],
        delta_u: np.ndarray,
        delta_v: np.ndarray,
        encode: Callable[[PopulationConfig], np.ndarray],
        encode_counts: Optional[Callable[[BasePopulation], np.ndarray]] = None,
        output_map: Optional[Sequence[int]] = None,
        random_entries: Optional[Mapping[Tuple[int, int], RandomEntry]] = None,
        converged: Optional[CountHook] = None,
        output_opinion: Optional[CountHook] = None,
        failure: Optional[CountHook] = None,
        progress: Optional[CountHook] = None,
        check_invariants: Optional[CountHook] = None,
        project: Optional[Callable[[Any], np.ndarray]] = None,
    ):
        self.labels = list(labels)
        num_states = len(self.labels)
        if num_states < 1:
            raise ConfigurationError("count model needs at least one state")
        self.delta_u = self._check_table(delta_u, num_states, "delta_u")
        self.delta_v = self._check_table(delta_v, num_states, "delta_v")
        self._encode = encode
        self._encode_counts = encode_counts
        if output_map is not None:
            output_arr = np.asarray(output_map, dtype=np.int64)
            if output_arr.shape != (num_states,):
                raise ConfigurationError(
                    f"output_map must have one entry per state, "
                    f"got shape {output_arr.shape} for {num_states} states"
                )
            self.output_map: Optional[np.ndarray] = output_arr
        else:
            self.output_map = None
            if converged is None or output_opinion is None:
                raise ConfigurationError(
                    "count model needs output_map or explicit "
                    "converged/output_opinion hooks"
                )
        self.random_entries: Dict[Tuple[int, int], RandomEntry] = {}
        for (i, j), entry in sorted((random_entries or {}).items()):
            if not (0 <= i < num_states and 0 <= j < num_states):
                raise ConfigurationError(f"random entry ({i}, {j}) out of range")
            if (entry.out_u >= num_states).any() or (entry.out_u < 0).any():
                raise ConfigurationError(f"random entry ({i}, {j}): out_u escapes")
            if (entry.out_v >= num_states).any() or (entry.out_v < 0).any():
                raise ConfigurationError(f"random entry ({i}, {j}): out_v escapes")
            self.random_entries[(int(i), int(j))] = entry
        self._converged = converged
        self._output_opinion = output_opinion
        self._failure = failure
        self._progress = progress
        self._check_invariants = check_invariants
        self._project = project

    @staticmethod
    def _check_table(table: np.ndarray, num_states: int, name: str) -> np.ndarray:
        arr = np.asarray(table, dtype=np.int64)
        if arr.shape != (num_states, num_states):
            raise ConfigurationError(
                f"{name} must be ({num_states}, {num_states}), got {arr.shape}"
            )
        if (arr < 0).any() or (arr >= num_states).any():
            raise ConfigurationError(f"{name} entries must be valid state ids")
        return arr

    # ------------------------------------------------------------------
    # State space
    # ------------------------------------------------------------------
    def initial_ids(self, config: PopulationConfig) -> np.ndarray:
        """Per-agent state ids of the initial configuration.

        Always a fresh array: the exact count mode mutates it in place,
        and ``encode`` may hand back a view of ``config.opinions``.
        Count-native configs have no per-agent layout to encode.
        """
        if is_count_native(config):
            raise BackendUnsupported(
                f"count-native config {config.name!r} has no per-agent "
                f"layout to encode; use initial_counts() (batched mode) "
                f"or materialize() the config first"
            )
        ids = np.array(self._encode(config), dtype=np.int64)
        if ids.shape != (config.n,):
            raise ConfigurationError(
                f"encode must return one state per agent, got shape {ids.shape}"
            )
        if (ids < 0).any() or (ids >= self.num_states).any():
            raise ConfigurationError("encode produced out-of-range state ids")
        return ids

    def initial_counts(self, config: BasePopulation) -> np.ndarray:
        """Initial state-count vector (sums to ``config.n``).

        Uses the O(k) ``encode_counts`` path when the model provides one
        (mandatory for count-native configs); otherwise falls back to
        bincounting the O(n) per-agent encoding.
        """
        if self._encode_counts is not None:
            counts = np.asarray(self._encode_counts(config), dtype=np.int64)
            if counts.shape != (self.num_states,):
                raise ConfigurationError(
                    f"encode_counts must return one count per state, "
                    f"got shape {counts.shape} for {self.num_states} states"
                )
            if (counts < 0).any() or int(counts.sum()) != config.n:
                raise ConfigurationError(
                    f"encode_counts must produce non-negative counts "
                    f"summing to n={config.n}, got sum {int(counts.sum())}"
                )
            return counts
        if is_count_native(config):
            raise BackendUnsupported(
                f"count-native config {config.name!r} needs a count model "
                f"with encode_counts; this model only encodes per-agent "
                f"opinions — materialize() the config or add encode_counts"
            )
        return np.bincount(self.initial_ids(config), minlength=self.num_states)

    def project(self, agent_state: Any) -> np.ndarray:
        """Map an agent-array state object to per-agent state ids."""
        if self._project is None:
            raise ConfigurationError(
                "this count model does not define an agent-state projection"
            )
        return np.asarray(self._project(agent_state), dtype=np.int64)

    # ------------------------------------------------------------------
    # Transition application
    # ------------------------------------------------------------------
    def apply_pairs(
        self,
        ids: np.ndarray,
        u: np.ndarray,
        v: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        """Table-driven application on disjoint index pairs.

        Deterministic successors come from one fancy-indexing pass;
        randomized pairs are then resolved entry by entry (in the sorted
        entry order fixed at construction), each entry drawing one uniform
        per matching pair.
        """
        su, sv = ids[u], ids[v]
        ids[u] = self.delta_u[su, sv]
        ids[v] = self.delta_v[su, sv]
        for (i, j), entry in self.random_entries.items():
            mask = (su == i) & (sv == j)
            if mask.any():
                draws = np.searchsorted(
                    entry.cum, rng.random(int(mask.sum())), side="right"
                )
                ids[u[mask]] = entry.out_u[draws]
                ids[v[mask]] = entry.out_v[draws]

    def apply_groups(
        self,
        pair_i: np.ndarray,
        pair_j: np.ndarray,
        sizes: np.ndarray,
        counts: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Scatter whole pair-groups through the tables / outcome splits."""
        sizes = sizes.copy()
        # Randomized pairs: multinomial split over their outcome lists
        # (sorted entry order, matching apply_pairs).
        if self.random_entries:
            slot_of = {
                (int(i), int(j)): m
                for m, (i, j) in enumerate(zip(pair_i, pair_j))
            }
            for (i, j), entry in self.random_entries.items():
                m = slot_of.get((i, j))
                if m is None:
                    continue
                group = int(sizes[m])
                if group:
                    split = rng.multinomial(group, entry.probs)
                    np.add.at(counts, entry.out_u, split)
                    np.add.at(counts, entry.out_v, split)
                sizes[m] = 0
        # Deterministic pairs: scatter whole groups through the tables.
        live = np.flatnonzero(sizes)
        if live.size:
            np.add.at(counts, self.delta_u[pair_i[live], pair_j[live]], sizes[live])
            np.add.at(counts, self.delta_v[pair_i[live], pair_j[live]], sizes[live])
        return counts

    def apply_groups_stack(
        self,
        rep: np.ndarray,
        pair_i: np.ndarray,
        pair_j: np.ndarray,
        sizes: np.ndarray,
        counts_stack: np.ndarray,
        rngs: Sequence[np.random.Generator],
    ) -> np.ndarray:
        """Whole-ensemble scatter: one ``np.add.at`` pass per delta table.

        The deterministic remainder of every replica lands in two
        unbuffered scatters on the raveled ``(R·S)`` view — the ensemble
        engine's single hottest win over per-replica loops.  Randomized
        pairs keep per-replica multinomials (entry order outer, matching
        :meth:`apply_groups`'s sorted-entry iteration, so each replica's
        rng consumption is unchanged).
        """
        num_states = counts_stack.shape[1]
        flat = counts_stack.reshape(-1)
        if self.random_entries:
            sizes = sizes.copy()
            for (i, j), entry in self.random_entries.items():
                hits = np.flatnonzero((pair_i == i) & (pair_j == j))
                for m in hits:
                    group = int(sizes[m])
                    if group:
                        base = int(rep[m]) * num_states
                        split = rngs[int(rep[m])].multinomial(group, entry.probs)
                        np.add.at(flat, base + entry.out_u, split)
                        np.add.at(flat, base + entry.out_v, split)
                    sizes[m] = 0
        live = np.flatnonzero(sizes)
        if live.size:
            base = rep[live] * num_states
            np.add.at(
                flat, base + self.delta_u[pair_i[live], pair_j[live]], sizes[live]
            )
            np.add.at(
                flat, base + self.delta_v[pair_i[live], pair_j[live]], sizes[live]
            )
        return counts_stack

    # ------------------------------------------------------------------
    # Count-level protocol hooks
    # ------------------------------------------------------------------
    def converged(self, counts: np.ndarray) -> bool:
        if self._converged is not None:
            return bool(self._converged(counts))
        return self.output_opinion(counts) is not None

    def output_opinion(self, counts: np.ndarray) -> Optional[int]:
        """The common output opinion, or None when outputs disagree.

        Mirrors the agent-level rule: every agent's output must be the
        same non-zero opinion.
        """
        if self._output_opinion is not None:
            value = self._output_opinion(counts)
            return None if value is None else int(value)
        assert self.output_map is not None
        outputs = np.unique(self.output_map[np.flatnonzero(counts)])
        if outputs.size == 1 and outputs[0] != 0:
            return int(outputs[0])
        return None

    def failure(self, counts: np.ndarray) -> Optional[str]:
        if self._failure is not None:
            return self._failure(counts)
        return None

    def progress(self, counts: np.ndarray) -> Dict[str, float]:
        if self._progress is not None:
            return dict(self._progress(counts))
        return {}

    def check_invariants(self, counts: np.ndarray) -> None:
        if self._check_invariants is not None:
            self._check_invariants(counts)

    def quotient_signature(self) -> Optional[str]:
        """Content hash over the materialized tables (static models).

        Static models carry their whole transition structure in memory,
        so the signature is simply a digest of it: labels, both delta
        tables, the randomized entries (probabilities, outcomes, factor
        structure), and the output map.  Computed lazily and memoized.
        """
        cached = getattr(self, "_signature_cache", None)
        if cached is None:
            cached = signature_of(
                "static",
                {
                    "labels": [repr(label) for label in self.labels],
                    "delta_u": self.delta_u.tolist(),
                    "delta_v": self.delta_v.tolist(),
                    "random": {
                        f"{i},{j}": {
                            "probs": entry.probs.tolist(),
                            "out_u": entry.out_u.tolist(),
                            "out_v": entry.out_v.tolist(),
                            "factors": [
                                [group, cum.tolist()]
                                for group, cum in entry.factors
                            ],
                        }
                        for (i, j), entry in self.random_entries.items()
                    },
                    "output_map": (
                        None if self.output_map is None
                        else self.output_map.tolist()
                    ),
                },
            )
            self._signature_cache = cached
        return cached


class DynamicCountModel(BaseCountModel):
    """A count model whose state space is materialized on demand.

    States are arbitrary hashable tuples, interned to dense ids in
    first-seen order; pair transitions are derived lazily by the subclass
    hook :meth:`_derive_pairs` and memoized, so a run only ever pays for
    the sparse subset of (co-occurring) state pairs it actually visits.
    This is what makes count-space simulation of the tournament
    algorithms feasible: their quotiented state space has
    Θ((k + log n) · poly-constants) states — far too many for dense
    ``(S, S)`` tables — while any single trajectory touches a small
    fraction of the pairs.

    Randomness contract of :meth:`apply_pairs`: per batch, exactly one
    ``rng.random(total)`` call covers one uniform per *(randomized pair,
    factor)* slot, ordered by ``(factor group, pair index)``, each mapped
    through that factor's cumulative distribution with
    ``searchsorted(..., side="right")``.  Factor groups number the rng
    call sites of the protocol's agent path in code order, so a protocol
    that consumes one uniform per randomized event per call site — in
    batch order within each site, through the same thresholds — is
    reproduced bit-for-bit by the exact count mode.  Single-factor
    entries (the default) reduce to the original contract: one uniform
    per randomized pair, in pair order.  See :mod:`repro.core.quotient`
    (role re-rolls) and :mod:`repro.core.era_quotient` (re-rolls plus
    leader-election coins) for the tournament instances.

    Subclasses implement:

    * :meth:`_derive_pairs` — fill the transition memo for the given
      state-id pairs via :meth:`_record_det` / :meth:`_record_random`;
    * ``initial_ids`` / ``initial_counts`` / ``output_opinion`` and any
      other :class:`BaseCountModel` hooks.
    """

    #: Pre-resolved metric handles; class-level no-op defaults keep
    #: never-instrumented models at zero setup cost, attach_telemetry
    #: rebinds them per instance.
    _t_derive_timer = telemetry_module.NULL_TIMER
    _t_derivations = telemetry_module.NULL_COUNTER
    _t_states = telemetry_module.NULL_GAUGE

    def __init__(self):
        self.labels: List[Any] = []
        self._index: Dict[Any, int] = {}
        #: (i, j) -> (out_i, out_j) for deterministic pairs.
        self._det: Dict[Tuple[int, int], Tuple[int, int]] = {}
        #: (i, j) -> RandomEntry (outcome ids) for randomized pairs.
        self._rand: Dict[Tuple[int, int], RandomEntry] = {}
        #: Passive (label_u, label_v) -> replay-spec dict from warm_start
        #: snapshots; consulted (never required) by _ensure_pairs.
        self._warm: Optional[Dict[Tuple[Any, Any], tuple]] = None
        # Always-on derivation accounting feeding summary(); the
        # telemetry handles above meter *cold* derivations only, which is
        # what lets CI assert a warmed second run derived nothing.
        self._derive_count = 0
        self._warm_count = 0
        self._derive_seconds = 0.0

    def attach_telemetry(self, telemetry: "telemetry_module.Telemetry") -> None:
        """Meter lazy derivation: count/seconds of derived pairs, interned states."""
        self._t_derive_timer = telemetry.timer("count_model.derive_seconds")
        self._t_derivations = telemetry.counter("count_model.derivations")
        self._t_states = telemetry.gauge("count_model.interned_states")

    # ------------------------------------------------------------------
    # State interning
    # ------------------------------------------------------------------
    def intern(self, state: Any) -> int:
        """Id of ``state``, materializing it on first sight."""
        found = self._index.get(state)
        if found is not None:
            return found
        new_id = len(self.labels)
        self._index[state] = new_id
        self.labels.append(state)
        return new_id

    def intern_many(self, states: Sequence[Any]) -> np.ndarray:
        """Vector of ids for a sequence of states."""
        return np.fromiter(
            (self.intern(s) for s in states), dtype=np.int64, count=len(states)
        )

    def state_of(self, state_id: int) -> Any:
        """The interned state tuple behind an id."""
        return self.labels[state_id]

    # ------------------------------------------------------------------
    # Lazy transition memo
    # ------------------------------------------------------------------
    @abstractmethod
    def _derive_pairs(self, pairs: Sequence[Tuple[int, int]]) -> None:
        """Compute and record the transition of each given state-id pair.

        Implementations call :meth:`_record_det` or :meth:`_record_random`
        exactly once per pair.  Derivation may intern new states.
        """

    def _record_det(self, i: int, j: int, out_i: int, out_j: int) -> None:
        self._det[(i, j)] = (out_i, out_j)

    def _record_random(self, i: int, j: int, entry: RandomEntry) -> None:
        self._rand[(i, j)] = entry

    def _ensure_pairs(self, pairs: Sequence[Tuple[int, int]]) -> None:
        missing = [
            p for p in pairs if p not in self._det and p not in self._rand
        ]
        if not missing:
            return
        # Canonical derivation order: sorted by state-id pair.  A warm
        # model interns exactly the label sequence its cold twin would
        # (replay mimics per-pair derivation order), so ids — and hence
        # this sort — coincide on both sides, which is what makes warm
        # runs bit-identical even in batched mode, where rng consumption
        # depends on the count-vector layout.
        missing.sort()
        if self._warm is None:
            self._derive_cold(missing)
        else:
            cold_run: List[Tuple[int, int]] = []
            for pair in missing:
                spec = self._warm.get(
                    (self.labels[pair[0]], self.labels[pair[1]])
                )
                if spec is None:
                    cold_run.append(pair)
                    continue
                if cold_run:
                    self._derive_cold(cold_run)
                    cold_run = []
                self._replay_pair(pair, spec)
                self._warm_count += 1
            if cold_run:
                self._derive_cold(cold_run)
        self._t_states.set(len(self.labels))
        still = [
            p for p in missing if p not in self._det and p not in self._rand
        ]
        if still:
            raise ConfigurationError(
                f"_derive_pairs left {len(still)} pairs underived "
                f"(first: {still[0]})"
            )

    def _derive_cold(self, run: List[Tuple[int, int]]) -> None:
        """Run the subclass derivation hook over an ordered run of pairs."""
        started = time.perf_counter()
        with self._t_derive_timer:
            self._derive_pairs(run)
        self._derive_seconds += time.perf_counter() - started
        self._derive_count += len(run)
        self._t_derivations.inc(len(run))

    def _replay_pair(self, pair: Tuple[int, int], spec: tuple) -> None:
        """Materialize one pair from a warm snapshot spec.

        Interning order matters: outputs are interned label by label in
        exactly the order cold derivation would produce them — det pairs
        intern (out_u, out_v); randomized pairs intern (out_u[m],
        out_v[m]) per outcome — so the id assignment of a warm model
        never diverges from its cold twin.
        """
        if spec[0] == "det":
            self._record_det(
                pair[0], pair[1], self.intern(spec[1]), self.intern(spec[2])
            )
            return
        probs, out_u_labels, out_v_labels, factors = spec[1:]
        out_u = np.empty(len(out_u_labels), dtype=np.int64)
        out_v = np.empty(len(out_v_labels), dtype=np.int64)
        for m, (label_u, label_v) in enumerate(zip(out_u_labels, out_v_labels)):
            out_u[m] = self.intern(label_u)
            out_v[m] = self.intern(label_v)
        self._record_random(
            pair[0],
            pair[1],
            RandomEntry(
                probs, out_u, out_v,
                factors=[(group, cum) for group, cum in factors],
            ),
        )

    @property
    def derived_pairs(self) -> int:
        """How many state pairs have been derived so far (for reporting)."""
        return len(self._det) + len(self._rand)

    # ------------------------------------------------------------------
    # Table snapshots (the repro.cache artifact boundary)
    # ------------------------------------------------------------------
    def export_table(self) -> TransitionTable:
        """Snapshot every materialized pair as a label-keyed table.

        The snapshot is independent of interning order (labels are
        canonical; ids are not), so tables exported by different
        processes of the same quotient shape merge exactly.
        """
        table = TransitionTable(self.quotient_signature() or "")
        labels = self.labels
        for (i, j), (out_i, out_j) in self._det.items():
            table.det[(labels[i], labels[j])] = (labels[out_i], labels[out_j])
        for (i, j), entry in self._rand.items():
            table.rand[(labels[i], labels[j])] = (
                entry.probs.copy(),
                tuple(labels[m] for m in entry.out_u),
                tuple(labels[m] for m in entry.out_v),
                tuple((group, cum.copy()) for group, cum in entry.factors),
            )
        return table

    def warm_start(self, table: Optional[TransitionTable]) -> "DynamicCountModel":
        """Absorb a snapshot for passive replay; returns ``self``.

        Warm entries are *consulted, never required*: derivation stays
        lazy for pairs the snapshot missed, nothing is eagerly interned
        (eager interning would change the id layout and hence batched-
        mode rng consumption), and a warmed run is bit-identical to a
        cold one.  Snapshots accumulate across calls.
        """
        if table is None:
            return self
        signature = self.quotient_signature()
        if signature and table.signature and table.signature != signature:
            raise ConfigurationError(
                f"cannot warm-start from table {table.signature[:12]!r}...: "
                f"model signature is {signature[:12]!r}..."
            )
        warm = dict(self._warm) if self._warm else {}
        for key, (out_u, out_v) in table.det.items():
            warm[key] = ("det", out_u, out_v)
        for key, (probs, out_u, out_v, factors) in table.rand.items():
            warm[key] = ("rand", probs, out_u, out_v, factors)
        if warm:
            self._warm = warm
        return self

    def summary(self) -> Dict[str, float]:
        """Derivation/interning stats for run reports and telemetry meta.

        ``derived_pairs`` / ``interned_states`` are deterministic across
        warm and cold runs of one trajectory; ``cold_derivations`` /
        ``warm_pairs`` / ``derive_seconds`` describe how this particular
        process paid for them.
        """
        return {
            "derived_pairs": float(self.derived_pairs),
            "interned_states": float(len(self.labels)),
            "cold_derivations": float(self._derive_count),
            "warm_pairs": float(self._warm_count),
            "derive_seconds": float(self._derive_seconds),
        }

    # ------------------------------------------------------------------
    # Transition application
    # ------------------------------------------------------------------
    def apply_pairs(
        self,
        ids: np.ndarray,
        u: np.ndarray,
        v: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        su, sv = ids[u], ids[v]
        batch = list(zip(su.tolist(), sv.tolist()))
        self._ensure_pairs(set(batch))
        entries = [self._rand.get(pair) for pair in batch]
        # One uniform per (pair, factor), consumed in (group, pair) order —
        # the order in which the protocol's agent path reaches its rng call
        # sites over the same batch (the bit-parity contract, see the
        # class docstring).
        slots = []
        for m, entry in enumerate(entries):
            if entry is None:
                continue
            for f, (group, _) in enumerate(entry.factors):
                slots.append((group, m, f))
        if slots:
            slots.sort()
            uniforms = rng.random(len(slots))
            draws: Dict[Tuple[int, int], int] = {}
            for r, (_, m, f) in zip(uniforms, slots):
                cum = entries[m].factors[f][1]
                draws[(m, f)] = int(np.searchsorted(cum, r, side="right"))
            for m, entry in enumerate(entries):
                if entry is None:
                    continue
                pick = entry.outcome_index(
                    [draws[(m, f)] for f in range(len(entry.factors))]
                )
                ids[u[m]] = entry.out_u[pick]
                ids[v[m]] = entry.out_v[pick]
        for m, (pair, entry) in enumerate(zip(batch, entries)):
            if entry is not None:
                continue
            out_i, out_j = self._det[pair]
            ids[u[m]] = out_i
            ids[v[m]] = out_j

    def apply_groups(
        self,
        pair_i: np.ndarray,
        pair_j: np.ndarray,
        sizes: np.ndarray,
        counts: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        pairs = list(zip(pair_i.tolist(), pair_j.tolist()))
        self._ensure_pairs(set(pairs))
        counts = self.ensure_capacity(counts)
        out_i = np.empty(len(pairs), dtype=np.int64)
        out_j = np.empty(len(pairs), dtype=np.int64)
        det = np.ones(len(pairs), dtype=bool)
        for m, pair in enumerate(pairs):
            hit = self._det.get(pair)
            if hit is not None:
                out_i[m], out_j[m] = hit
            else:
                det[m] = False
                entry = self._rand[pair]
                split = rng.multinomial(int(sizes[m]), entry.probs)
                np.add.at(counts, entry.out_u, split)
                np.add.at(counts, entry.out_v, split)
        live = np.flatnonzero(det & (sizes > 0))
        if live.size:
            np.add.at(counts, out_i[live], sizes[live])
            np.add.at(counts, out_j[live], sizes[live])
        return counts


def window_band_failure(windows: np.ndarray, window_mod: int) -> bool:
    """Whether occupied mod-``window_mod`` windows escape the 2-window band.

    Shared guard plumbing for the window/era-quotiented count models
    (:mod:`repro.core.quotient`, :mod:`repro.core.era_quotient`): their
    lumping arguments hold only while the occupied windows span at most
    two *consecutive* values, because signed pairwise offsets are
    recovered from windows kept modulo ``window_mod``.  Returns True when

    * at least ``window_mod − 1`` distinct windows are occupied (the
      span provably exceeds two consecutive windows), or
    * exactly two windows are occupied with an empty window between them
      (``{w, w+2}``): the signed offset of such a pair aliases
      (``−2 ≡ +2 mod 4``), so the configuration is out of band even
      though only two values appear.

    Callers report the model-specific failure name
    (``"phase_window_overflow"`` / ``"era_window_overflow"``).
    """
    windows = np.unique(windows)
    if windows.size >= window_mod - 1:
        return True
    if windows.size == 2:
        a, b = int(windows[0]), int(windows[1])
        if (b - a) % window_mod not in (1, window_mod - 1):
            return True
    return False


def identity_tables(num_states: int) -> Tuple[np.ndarray, np.ndarray]:
    """No-op transition tables to be overwritten entry by entry.

    Convenience for protocols building their export: start from
    ``delta_u[i, j] = i`` and ``delta_v[i, j] = j``, then fill in the
    reacting pairs.
    """
    ids = np.arange(num_states, dtype=np.int64)
    delta_u = np.repeat(ids[:, None], num_states, axis=1)
    delta_v = np.repeat(ids[None, :], num_states, axis=0)
    return delta_u, delta_v
