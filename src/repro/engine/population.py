"""Population configurations: who starts with which opinion.

The paper's model (Section 2): ``n`` anonymous agents, each starting with
one opinion from a set of ``k`` opinions, represented here as the integers
``1 .. k`` (0 is reserved for "no opinion").  The *bias* is the difference
between the support of the most and second-most frequent opinion, and the
*plurality opinion* is the initially most frequent opinion (assumed unique
whenever a protocol's correctness is judged).

Two concrete configurations share one interface (:class:`BasePopulation`):

* :class:`PopulationConfig` — materializes the O(n) per-agent opinions
  array.  Required by the agent-array backend and the count backend's
  exact sequential mode, both of which address individual agents.
* :class:`CountConfig` — count-native: stores only the k-entry support
  vector, so building a population at n = 10^10 allocates O(k) memory.
  Accepted everywhere a ``PopulationConfig`` is; backends that need
  per-agent state reject it with a pointer to ``materialize()``.

Everything the engine derives from a population (bias, plurality,
significant opinions, ...) is a function of the support counts alone, so
both classes implement it once in the shared base.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from .errors import ConfigurationError
from .rng import RngLike, make_rng


class BasePopulation:
    """Count-derived quantities shared by all population configurations.

    Subclasses provide ``k``, ``n``, ``name``, and ``counts()``; every
    derived quantity below is a function of the support vector only,
    matching the paper's analysis, which never refers to agent identity.
    """

    def counts(self) -> np.ndarray:  # pragma: no cover - overridden
        """Support vector ``x = (x_1, .., x_k)``."""
        raise NotImplementedError

    @property
    def x_max(self) -> int:
        """Support of the plurality opinion."""
        return int(self.counts().max())

    @property
    def plurality_opinion(self) -> int:
        """The (smallest-numbered) opinion with maximum initial support."""
        return int(np.argmax(self.counts())) + 1

    @property
    def bias(self) -> int:
        """Difference between the largest and second-largest support.

        For ``k == 1`` (or only one supported opinion) the bias is the full
        support of that opinion, mirroring the convention that a lone
        opinion trivially is the plurality.
        """
        counts = np.sort(self.counts())[::-1]
        if counts.size == 1 or counts[1] == 0:
            return int(counts[0])
        return int(counts[0] - counts[1])

    @property
    def has_unique_plurality(self) -> bool:
        """True iff exactly one opinion attains the maximum support."""
        counts = self.counts()
        return int((counts == counts.max()).sum()) == 1

    @property
    def num_present_opinions(self) -> int:
        """Number of opinions with non-zero initial support."""
        return int((self.counts() > 0).sum())

    def significant_opinions(self, c_s: float) -> np.ndarray:
        """Opinions ``j`` with ``x_j > x_max / c_s`` (Section 4's notion).

        The paper calls opinion ``j`` *insignificant* if
        ``x_j <= x_max / c_s`` for a suitable constant ``c_s > 1``.
        """
        if c_s <= 1:
            raise ConfigurationError(f"c_s must be > 1, got {c_s}")
        counts = self.counts()
        threshold = counts.max() / c_s
        return np.flatnonzero(counts > threshold) + 1

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{type(self).__name__}(name={self.name!r}, n={self.n}, "
            f"k={self.k}, x_max={self.x_max}, bias={self.bias}, "
            f"plurality={self.plurality_opinion})"
        )


@dataclass(frozen=True, eq=False)
class PopulationConfig(BasePopulation):
    """An initial assignment of opinions to agents.

    Attributes:
        opinions: int array of shape ``(n,)`` with values in ``1 .. k``.
        k: the number of opinion *slots* (some may have zero support; the
            protocols are told ``k``, exactly as the paper's agents know the
            opinion universe ``{1, .., k}``).

    Equality and hashing are by value over ``(opinions, k)`` — the
    dataclass-generated ``__eq__`` would raise on the array field — with
    ``name`` excluded, as before.
    """

    opinions: np.ndarray
    k: int
    name: str = field(default="custom", compare=False)

    def __eq__(self, other) -> bool:
        if not isinstance(other, PopulationConfig):
            return NotImplemented
        return self.k == other.k and np.array_equal(self.opinions, other.opinions)

    def __hash__(self) -> int:
        return hash((self.k, self.opinions.tobytes()))

    def __post_init__(self) -> None:
        opinions = np.asarray(self.opinions, dtype=np.int64)
        if opinions.ndim != 1 or opinions.size == 0:
            raise ConfigurationError("opinions must be a non-empty 1-D array")
        if self.k < 1:
            raise ConfigurationError(f"k must be >= 1, got {self.k}")
        if opinions.min() < 1 or opinions.max() > self.k:
            raise ConfigurationError(
                f"opinions must lie in 1..{self.k}, "
                f"got range [{opinions.min()}, {opinions.max()}]"
            )
        object.__setattr__(self, "opinions", opinions)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_counts(
        cls,
        counts: Sequence[int],
        *,
        rng: RngLike = None,
        shuffle: bool = True,
        name: str = "custom",
    ) -> "PopulationConfig":
        """Build a population from per-opinion support counts.

        ``counts[i]`` is the initial support of opinion ``i + 1``.  Agents
        are shuffled by default so that agent index carries no information
        (the model is anonymous; shuffling only matters for schedulers that
        would otherwise correlate index with opinion).  The shuffle is a
        pure function of ``rng``: the same seed yields the same opinions
        array on every platform and in every process, which is what lets
        ``replicate_parallel`` reproduce serial sweeps bit-for-bit.

        For populations too large to materialize (the count backend's
        n >= 10^9 regime), build a :class:`CountConfig` instead.
        """
        counts_arr = _check_counts(counts)
        opinions = np.repeat(
            np.arange(1, counts_arr.size + 1, dtype=np.int64), counts_arr
        )
        if shuffle:
            make_rng(rng).shuffle(opinions)
        return cls(opinions=opinions, k=int(counts_arr.size), name=name)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Population size."""
        return int(self.opinions.size)

    def counts(self) -> np.ndarray:
        """Support vector ``x = (x_1, .., x_k)``."""
        return np.bincount(self.opinions, minlength=self.k + 1)[1:]


@dataclass(frozen=True, eq=False)
class CountConfig(BasePopulation):
    """A count-native population: support counts only, no O(n) arrays.

    Attributes:
        support: int array of shape ``(k,)``; ``support[i]`` is the
            initial support of opinion ``i + 1``.

    Building one is O(k) in time and memory regardless of ``n``, which is
    what makes config construction free at n = 10^9 .. 10^10 (previously
    the O(n) ``opinions`` build dominated the count backend's runtime).
    Count-native configs run on the count backend in batched mode; the
    per-agent backends reject them — call :meth:`materialize` for an
    explicit O(n) conversion when n permits.  Equality and hashing are by
    value over the support vector (``name`` excluded).
    """

    support: np.ndarray
    name: str = field(default="custom", compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "support", _check_counts(self.support))

    def __eq__(self, other) -> bool:
        if not isinstance(other, CountConfig):
            return NotImplemented
        return np.array_equal(self.support, other.support)

    def __hash__(self) -> int:
        return hash(self.support.tobytes())

    @classmethod
    def from_counts(
        cls, counts: Sequence[int], *, name: str = "custom"
    ) -> "CountConfig":
        """Mirror of :meth:`PopulationConfig.from_counts` in count space.

        No ``rng``/``shuffle`` arguments: a count vector has no agent
        order to shuffle.
        """
        return cls(support=np.asarray(counts), name=name)

    @property
    def n(self) -> int:
        """Population size."""
        return int(self.support.sum())

    @property
    def k(self) -> int:
        """Number of opinion slots."""
        return int(self.support.size)

    def counts(self) -> np.ndarray:
        """Support vector ``x = (x_1, .., x_k)`` (a defensive copy)."""
        return self.support.copy()

    @property
    def opinions(self) -> np.ndarray:
        raise ConfigurationError(
            f"count-native config {self.name!r} (n={self.n}) has no "
            f"per-agent opinions array; run it on backend='counts' with a "
            f"MatchingScheduler, or call materialize() for an explicit "
            f"O(n) conversion"
        )

    def materialize(
        self, *, rng: RngLike = None, shuffle: bool = True
    ) -> PopulationConfig:
        """Explicit O(n) conversion to a per-agent :class:`PopulationConfig`."""
        return PopulationConfig.from_counts(
            self.support, rng=rng, shuffle=shuffle, name=self.name
        )


def is_count_native(config: BasePopulation) -> bool:
    """Whether ``config`` carries only counts (no per-agent opinions)."""
    return isinstance(config, CountConfig)


def _check_counts(counts: Sequence[int]) -> np.ndarray:
    """Validate and coerce a support-count vector (shared by both configs).

    Always returns a fresh read-only array: configs validate at
    construction time, so they must not alias a caller-owned buffer that
    could be mutated afterwards.
    """
    counts_arr = np.array(counts, dtype=np.int64)
    if counts_arr.ndim != 1 or counts_arr.size == 0:
        raise ConfigurationError("counts must be a non-empty 1-D sequence")
    if (counts_arr < 0).any():
        raise ConfigurationError("counts must be non-negative")
    if counts_arr.sum() == 0:
        raise ConfigurationError("total population must be positive")
    counts_arr.flags.writeable = False
    return counts_arr
