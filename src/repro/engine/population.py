"""Population configurations: who starts with which opinion.

The paper's model (Section 2): ``n`` anonymous agents, each starting with
one opinion from a set of ``k`` opinions, represented here as the integers
``1 .. k`` (0 is reserved for "no opinion").  The *bias* is the difference
between the support of the most and second-most frequent opinion, and the
*plurality opinion* is the initially most frequent opinion (assumed unique
whenever a protocol's correctness is judged).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from .errors import ConfigurationError
from .rng import RngLike, make_rng


@dataclass(frozen=True)
class PopulationConfig:
    """An initial assignment of opinions to agents.

    Attributes:
        opinions: int array of shape ``(n,)`` with values in ``1 .. k``.
        k: the number of opinion *slots* (some may have zero support; the
            protocols are told ``k``, exactly as the paper's agents know the
            opinion universe ``{1, .., k}``).
    """

    opinions: np.ndarray
    k: int
    name: str = field(default="custom", compare=False)

    def __post_init__(self) -> None:
        opinions = np.asarray(self.opinions, dtype=np.int64)
        if opinions.ndim != 1 or opinions.size == 0:
            raise ConfigurationError("opinions must be a non-empty 1-D array")
        if self.k < 1:
            raise ConfigurationError(f"k must be >= 1, got {self.k}")
        if opinions.min() < 1 or opinions.max() > self.k:
            raise ConfigurationError(
                f"opinions must lie in 1..{self.k}, "
                f"got range [{opinions.min()}, {opinions.max()}]"
            )
        object.__setattr__(self, "opinions", opinions)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_counts(
        cls,
        counts: Sequence[int],
        *,
        rng: RngLike = None,
        shuffle: bool = True,
        name: str = "custom",
    ) -> "PopulationConfig":
        """Build a population from per-opinion support counts.

        ``counts[i]`` is the initial support of opinion ``i + 1``.  Agents
        are shuffled by default so that agent index carries no information
        (the model is anonymous; shuffling only matters for schedulers that
        would otherwise correlate index with opinion).
        """
        counts_arr = np.asarray(counts, dtype=np.int64)
        if counts_arr.ndim != 1 or counts_arr.size == 0:
            raise ConfigurationError("counts must be a non-empty 1-D sequence")
        if (counts_arr < 0).any():
            raise ConfigurationError("counts must be non-negative")
        if counts_arr.sum() == 0:
            raise ConfigurationError("total population must be positive")
        opinions = np.repeat(
            np.arange(1, counts_arr.size + 1, dtype=np.int64), counts_arr
        )
        if shuffle:
            make_rng(rng).shuffle(opinions)
        return cls(opinions=opinions, k=int(counts_arr.size), name=name)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Population size."""
        return int(self.opinions.size)

    def counts(self) -> np.ndarray:
        """Support vector ``x = (x_1, .., x_k)``."""
        return np.bincount(self.opinions, minlength=self.k + 1)[1:]

    @property
    def x_max(self) -> int:
        """Support of the plurality opinion."""
        return int(self.counts().max())

    @property
    def plurality_opinion(self) -> int:
        """The (smallest-numbered) opinion with maximum initial support."""
        return int(np.argmax(self.counts())) + 1

    @property
    def bias(self) -> int:
        """Difference between the largest and second-largest support.

        For ``k == 1`` (or only one supported opinion) the bias is the full
        support of that opinion, mirroring the convention that a lone
        opinion trivially is the plurality.
        """
        counts = np.sort(self.counts())[::-1]
        if counts.size == 1 or counts[1] == 0:
            return int(counts[0])
        return int(counts[0] - counts[1])

    @property
    def has_unique_plurality(self) -> bool:
        """True iff exactly one opinion attains the maximum support."""
        counts = self.counts()
        return int((counts == counts.max()).sum()) == 1

    @property
    def num_present_opinions(self) -> int:
        """Number of opinions with non-zero initial support."""
        return int((self.counts() > 0).sum())

    def significant_opinions(self, c_s: float) -> np.ndarray:
        """Opinions ``j`` with ``x_j > x_max / c_s`` (Section 4's notion).

        The paper calls opinion ``j`` *insignificant* if
        ``x_j <= x_max / c_s`` for a suitable constant ``c_s > 1``.
        """
        if c_s <= 1:
            raise ConfigurationError(f"c_s must be > 1, got {c_s}")
        counts = self.counts()
        threshold = counts.max() / c_s
        return np.flatnonzero(counts > threshold) + 1

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"PopulationConfig(name={self.name!r}, n={self.n}, k={self.k}, "
            f"x_max={self.x_max}, bias={self.bias}, "
            f"plurality={self.plurality_opinion})"
        )
