"""Deterministic random-number handling.

Every stochastic component in this package draws from a
:class:`numpy.random.Generator`.  Runs are reproducible given a seed, and
independent streams for replicated runs are derived with
:func:`spawn_streams` (which uses numpy's ``SeedSequence`` spawning so the
streams are statistically independent, not merely offset).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

import numpy as np

RngLike = Union[int, np.random.Generator, np.random.SeedSequence, None]


def make_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be an integer, an existing generator (returned unchanged),
    a ``SeedSequence``, or ``None`` (fresh OS entropy).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_streams(seed: RngLike, count: int) -> List[np.random.Generator]:
    """Derive ``count`` independent generators from ``seed``.

    Used by the sweep harness to give every replicated run its own stream.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Spawn through the generator's bit generator seed sequence.
        seq = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
    elif isinstance(seed, np.random.SeedSequence):
        seq = seed
    else:
        seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def seeds_for(base_seed: Optional[int], count: int) -> Iterable[int]:
    """Yield ``count`` deterministic integer seeds derived from ``base_seed``.

    Handy when an experiment wants loggable integer seeds rather than
    generator objects.
    """
    seq = np.random.SeedSequence(base_seed)
    state = seq.generate_state(count, dtype=np.uint32)
    return [int(s) for s in state]
