"""Interaction schedulers.

The population-protocol model (paper, Section 2) selects one ordered pair of
distinct agents independently and uniformly at random per time step.  Both
schedulers below deliver interactions as *batches of pairwise-disjoint
pairs*, which :meth:`repro.engine.protocol.Protocol.interact` consumes
vectorized:

* :class:`SequentialScheduler` reproduces the sequential model *exactly*.
  It samples i.i.d. uniform ordered pairs and flushes maximal prefixes in
  which no agent repeats ("birthday batching").  Disjoint population-
  protocol interactions commute, so the batched application is
  distributionally identical to one-at-a-time application, while
  vectorizing Θ(√n) interactions per numpy call.

* :class:`MatchingScheduler` samples a partial random matching of ``B``
  disjoint pairs per round and counts ``B`` interactions.  For ``B ≪ n``
  this is the standard well-mixed approximation used for large-``n``
  parameter sweeps; its fidelity against the exact scheduler is validated
  in ``tests/test_scheduler.py``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator, Tuple

import numpy as np

from .errors import ConfigurationError

PairBatch = Tuple[np.ndarray, np.ndarray]


class Scheduler(ABC):
    """Produces an endless stream of disjoint interaction batches."""

    #: Whether the stream is distributionally exact w.r.t. the sequential model.
    exact: bool = False

    @abstractmethod
    def batches(self, n: int, rng: np.random.Generator) -> Iterator[PairBatch]:
        """Yield ``(u, v)`` index-array batches forever.

        Within one batch all ``2 * len(u)`` endpoints are distinct, and
        ``u[i] != v[i]``.  Each yielded pair counts as one interaction.
        """


def _longest_disjoint_prefix(u: np.ndarray, v: np.ndarray) -> int:
    """Length of the longest prefix of pairs in which no agent repeats.

    Vectorized via a stable argsort: a duplicate agent id manifests as two
    equal adjacent values in the sorted endpoint sequence; the earliest
    *later* occurrence (in pair order) bounds the prefix.
    """
    endpoints = np.empty(2 * u.size, dtype=u.dtype)
    endpoints[0::2] = u
    endpoints[1::2] = v
    order = np.argsort(endpoints, kind="stable")
    sorted_endpoints = endpoints[order]
    dup = sorted_endpoints[1:] == sorted_endpoints[:-1]
    if not dup.any():
        return int(u.size)
    first_collision = int(order[1:][dup].min())
    return first_collision // 2


class SequentialScheduler(Scheduler):
    """Exact sequential semantics with birthday batching.

    ``block`` controls how many i.i.d. pairs are sampled per numpy call;
    it only affects speed, never the distribution.
    """

    exact = True

    def __init__(self, block: int = 0):
        if block < 0:
            raise ConfigurationError(f"block must be >= 0, got {block}")
        self._block = block

    def batches(self, n: int, rng: np.random.Generator) -> Iterator[PairBatch]:
        if n < 2:
            raise ConfigurationError(f"need at least 2 agents, got {n}")
        block = self._block or max(32, int(4 * np.sqrt(n)))
        pending_u = np.empty(0, dtype=np.int64)
        pending_v = np.empty(0, dtype=np.int64)
        while True:
            if pending_u.size < block:
                u = rng.integers(0, n, size=block, dtype=np.int64)
                v = rng.integers(0, n - 1, size=block, dtype=np.int64)
                v += v >= u  # uniform over ordered pairs with v != u
                pending_u = np.concatenate([pending_u, u])
                pending_v = np.concatenate([pending_v, v])
            prefix = _longest_disjoint_prefix(pending_u, pending_v)
            # The first pair alone is always disjoint, so prefix >= 1.
            yield pending_u[:prefix], pending_v[:prefix]
            pending_u = pending_u[prefix:]
            pending_v = pending_v[prefix:]


class MatchingScheduler(Scheduler):
    """Random partial matchings of ``B = max(1, round(n * fraction))`` pairs."""

    exact = False

    def __init__(self, fraction: float = 0.125):
        if not 0 < fraction <= 0.5:
            raise ConfigurationError(
                f"fraction must be in (0, 0.5], got {fraction}"
            )
        self._fraction = fraction

    @property
    def fraction(self) -> float:
        """Batch size as a fraction of n (count backends mirror this sizing)."""
        return self._fraction

    def batches(self, n: int, rng: np.random.Generator) -> Iterator[PairBatch]:
        if n < 2:
            raise ConfigurationError(f"need at least 2 agents, got {n}")
        batch = max(1, int(round(n * self._fraction)))
        batch = min(batch, n // 2)
        while True:
            perm = rng.permutation(n)[: 2 * batch]
            yield perm[:batch].astype(np.int64), perm[batch:].astype(np.int64)
