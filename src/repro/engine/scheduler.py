"""Interaction schedulers: a first-class, backend-independent layer.

The population-protocol model (paper, Section 2) selects one ordered pair
of distinct agents independently and uniformly at random per time step.
A :class:`Scheduler` describes *which* interaction law drives a run, and
every execution backend consumes that description in its own
representation:

* the **agent path** (:class:`~repro.engine.backends.AgentArrayBackend`,
  and the count backend's bit-exact sequential mode) consumes
  :meth:`Scheduler.batches` — an endless stream of pairwise-disjoint
  index-pair batches applied through the protocol's vectorized
  ``interact``;
* the **count path** (:class:`~repro.engine.backends.CountBackend`'s
  batched mode) consumes :meth:`Scheduler.count_batches` — the same law
  expressed as a stream of :class:`CountBatch` sizes, each realized in
  count space by multivariate-hypergeometric margin draws plus a sparse
  contingency table (O(|occupied states|²) per batch, independent of n).

Which count-space mode a scheduler supports is declared by
``count_semantics`` (``"pairwise"`` / ``"batched"`` / None), so backends
never dispatch on concrete scheduler types.

Schedulers are registry objects exactly like execution backends and
sampler policies: select one anywhere a simulation is launched::

    simulate(protocol, config, scheduler="matching", backend="counts")
    replicate(..., scheduler="birthday")
    repro-experiments run EB6 --scheduler matching --sampler rejection
    repro-experiments schedulers        # list the registry

The three registered schedulers:

``"sequential"`` — :class:`SequentialScheduler` (the default)
    Reproduces the sequential model *exactly*.  It samples i.i.d.
    uniform ordered pairs and flushes maximal prefixes in which no agent
    repeats ("birthday batching").  Disjoint population-protocol
    interactions commute, so the batched application is distributionally
    identical to one-at-a-time application, while vectorizing Θ(√n)
    interactions per numpy call.  On the count backend it selects the
    bit-exact per-agent-id replay mode (``count_semantics =
    "pairwise"``) — the fidelity reference of the cross-backend parity
    tests.

``"birthday"`` — :class:`BirthdayScheduler`
    The *same exact sequential law*, expressed so the count backend can
    run it natively in count space: batch sizes are drawn from the
    birthday (disjoint-prefix-length) distribution and each batch is one
    margin-draw + contingency-table step, with the pair that *ended* the
    previous prefix carried over exactly (see :class:`CountBatch`).  On
    the agent path it is indistinguishable from ``"sequential"`` — same
    batching, same rng stream, bit-identical trajectories per seed.
    This is what makes exact sequential semantics O(|occupied states|²)
    per Θ(√n)-interaction batch instead of O(n) per parallel time unit,
    and it works for count-native configs with no per-agent layout.

``"matching"`` — :class:`MatchingScheduler`
    Samples a partial random matching of ``B = n · fraction`` disjoint
    pairs per round and counts ``B`` interactions.  For ``B ≪ n`` this
    is the standard well-mixed approximation used for large-``n``
    parameter sweeps; its fidelity against the exact schedulers is
    validated in ``tests/test_scheduler.py`` and
    ``tests/test_batch_equivalence.py``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator, NamedTuple, Optional, Sequence, Tuple, Union

import numpy as np

from .. import telemetry as telemetry_module
from .errors import ConfigurationError
from .registry import Registry

PairBatch = Tuple[np.ndarray, np.ndarray]


class CountBatch(NamedTuple):
    """One count-space batch of a scheduler's interaction law.

    ``size`` disjoint interactions are realized by the count backend as
    margin draws + a contingency table.  ``carry_first`` marks the batch
    whose *first* pair is the pair that terminated the previous
    birthday prefix: that pair was drawn conditioned on colliding with
    the previous batch's participants, so the backend samples its two
    endpoint states from the previous batch's post-transition outcome
    vector (and the remaining ``size − 1`` pairs from the rest of the
    population) instead of drawing all ``size`` pairs fresh.  Plain
    batched schedulers (matching semantics) never set it.
    """

    size: int
    carry_first: bool = False


class Scheduler(ABC):
    """Backend-independent description of one interaction law."""

    #: Registry name (used in CLI listings and error messages).
    name: str = "scheduler"
    #: Whether the law is distributionally exact w.r.t. the sequential model.
    exact: bool = False
    #: One-line description for ``repro-experiments schedulers``.
    summary: str = ""
    #: How the count backend executes this law: ``"pairwise"`` (bit-exact
    #: per-agent-id replay of :meth:`batches`), ``"batched"`` (the
    #: :meth:`count_batches` stream realized by count-space sampling), or
    #: None (no count-space law — agent backend only).
    count_semantics: Optional[str] = None

    @abstractmethod
    def batches(self, n: int, rng: np.random.Generator) -> Iterator[PairBatch]:
        """Yield ``(u, v)`` index-array batches forever (the agent path).

        Within one batch all ``2 * len(u)`` endpoints are distinct, and
        ``u[i] != v[i]``.  Each yielded pair counts as one interaction.
        """

    def count_batches(self, n: int, rng: np.random.Generator) -> Iterator[CountBatch]:
        """Yield :class:`CountBatch` sizes forever (the count path).

        Only meaningful when ``count_semantics == "batched"``; the base
        implementation refuses so agent-only schedulers fail loudly.
        """
        raise ConfigurationError(
            f"scheduler {type(self).__name__} has no count-space batch law"
        )

    def count_batch_sizes(
        self,
        n: int,
        rngs: Sequence[np.random.Generator],
        first: bool,
    ) -> Tuple[np.ndarray, bool]:
        """One count-space batch size per replica rng (the ensemble path).

        The stacked twin of :meth:`count_batches`: given one rng per
        still-active replica of an ensemble run, return ``(sizes,
        carry_first)`` where ``sizes[r]`` is the next batch size of
        replica ``r`` under this scheduler's law and ``carry_first``
        applies to the whole stack (all replicas are on the same batch
        index — ``first`` is True exactly for the ensemble's first loop
        iteration).  Implementations must consume randomness from
        ``rngs[r]`` only for replica ``r``'s size, in the same per-replica
        call order as :meth:`count_batches`, so each replica's stream
        stays a pure function of its own seed.
        """
        raise ConfigurationError(
            f"scheduler {type(self).__name__} has no stacked count-space "
            f"batch law (ensemble mode needs count_semantics='batched')"
        )

    def attach_telemetry(self, telemetry: "telemetry_module.Telemetry") -> None:
        """Bind pre-resolved metric handles for an instrumented run.

        No-op by default; schedulers with interesting internals (the
        birthday prefix-length draws) override it.  ``simulate()`` calls
        this whenever telemetry is live, so overrides must tolerate being
        called more than once.
        """


def _longest_disjoint_prefix(u: np.ndarray, v: np.ndarray) -> int:
    """Length of the longest prefix of pairs in which no agent repeats.

    Vectorized via a stable argsort: a duplicate agent id manifests as two
    equal adjacent values in the sorted endpoint sequence; the earliest
    *later* occurrence (in pair order) bounds the prefix.
    """
    endpoints = np.empty(2 * u.size, dtype=u.dtype)
    endpoints[0::2] = u
    endpoints[1::2] = v
    order = np.argsort(endpoints, kind="stable")
    sorted_endpoints = endpoints[order]
    dup = sorted_endpoints[1:] == sorted_endpoints[:-1]
    if not dup.any():
        return int(u.size)
    first_collision = int(order[1:][dup].min())
    return first_collision // 2


def birthday_prefix_length(n: int, used: int, rng: np.random.Generator) -> int:
    """Sample a maximal-disjoint-prefix ("birthday") length exactly.

    The length ``L`` of the longest prefix of i.i.d. uniform ordered
    distinct pairs over ``n`` agents in which no agent repeats, given
    that ``used`` endpoints of the batch are already occupied (``used =
    0`` for a fresh batch; ``used = 2`` for the continuation behind a
    carried-over first pair).  With ``j`` pairs placed, the next pair is
    disjoint with probability ``q(j) = (n−2j)(n−2j−1) / (n(n−1))``, so

        P(L ≥ l) = ∏_{j=j₀}^{j₀+l−1} q(j),   j₀ = used / 2,

    which is inverted exactly on one uniform (in log space, blockwise
    vectorized; E[L] = Θ(√n), so one block usually suffices).
    """
    if n < 2:
        raise ConfigurationError(f"need at least 2 agents, got {n}")
    if used % 2 or used < 0:
        raise ConfigurationError(f"used endpoints must be even and >= 0, got {used}")
    j0 = used // 2
    cap = max((n - used) // 2, 0)
    if cap == 0:
        return 0
    u = float(rng.random())
    log_u = float(np.log(u)) if u > 0.0 else -np.inf
    log_denom = float(np.log(n) + np.log(n - 1))
    log_s = 0.0
    length = 0
    block = max(64, int(2.5 * np.sqrt(n)))
    while length < cap:
        take = min(block, cap - length)
        j = j0 + length + np.arange(take, dtype=np.float64)
        steps = np.log(n - 2 * j) + np.log(n - 2 * j - 1) - log_denom
        survival = log_s + np.cumsum(steps)
        failed = np.flatnonzero(survival <= log_u)
        if failed.size:
            # survival[i] = log P(L ≥ length + i + 1): the first index at
            # or below log u is the first prefix length NOT reached.
            return length + int(failed[0])
        length += take
        log_s = float(survival[-1])
    return cap


def birthday_prefix_lengths(
    n: int, used: int, uniforms: np.ndarray
) -> np.ndarray:
    """Vectorized :func:`birthday_prefix_length`: one length per uniform.

    The survival curve depends only on ``(n, used)``, so an ensemble of
    replicas inverts the *same* blockwise log-survival table on a vector
    of uniforms at once.  The blockwise arithmetic (block size, cumsum
    restart carrying ``log_s``) is kept identical to the scalar
    function, so for the same uniform the returned length agrees with
    :func:`birthday_prefix_length` exactly — replica streams stay a pure
    function of their own seed regardless of which entry point drew them.
    """
    if n < 2:
        raise ConfigurationError(f"need at least 2 agents, got {n}")
    if used % 2 or used < 0:
        raise ConfigurationError(f"used endpoints must be even and >= 0, got {used}")
    u = np.asarray(uniforms, dtype=np.float64)
    out = np.full(u.size, -1, dtype=np.int64)
    j0 = used // 2
    cap = max((n - used) // 2, 0)
    if cap == 0:
        out[:] = 0
        return out
    log_u = np.full(u.size, -np.inf)
    positive = u > 0.0
    log_u[positive] = np.log(u[positive])
    log_denom = float(np.log(n) + np.log(n - 1))
    log_s = 0.0
    length = 0
    block = max(64, int(2.5 * np.sqrt(n)))
    pending = np.arange(u.size)
    while length < cap and pending.size:
        take = min(block, cap - length)
        j = j0 + length + np.arange(take, dtype=np.float64)
        steps = np.log(n - 2 * j) + np.log(n - 2 * j - 1) - log_denom
        survival = log_s + np.cumsum(steps)
        # First index with survival <= log_u (survival is decreasing, so
        # search the negated, ascending curve); index == take means the
        # prefix survives this whole block.
        idx = np.searchsorted(-survival, -log_u[pending], side="left")
        hit = idx < take
        out[pending[hit]] = length + idx[hit]
        pending = pending[~hit]
        length += take
        log_s = float(survival[-1])
    out[pending] = cap
    return out


class SequentialScheduler(Scheduler):
    """Exact sequential semantics with birthday batching.

    ``block`` controls how many i.i.d. pairs are sampled per numpy call;
    it only affects speed, never the distribution.
    """

    name = "sequential"
    exact = True
    summary = (
        "exact sequential model, birthday-batched index pairs; count "
        "backend replays it bit-exactly on per-agent state ids"
    )
    count_semantics = "pairwise"

    def __init__(self, block: int = 0):
        if block < 0:
            raise ConfigurationError(f"block must be >= 0, got {block}")
        self._block = block

    def batches(self, n: int, rng: np.random.Generator) -> Iterator[PairBatch]:
        if n < 2:
            raise ConfigurationError(f"need at least 2 agents, got {n}")
        block = self._block or max(32, int(4 * np.sqrt(n)))
        pending_u = np.empty(0, dtype=np.int64)
        pending_v = np.empty(0, dtype=np.int64)
        while True:
            if pending_u.size < block:
                u = rng.integers(0, n, size=block, dtype=np.int64)
                v = rng.integers(0, n - 1, size=block, dtype=np.int64)
                v += v >= u  # uniform over ordered pairs with v != u
                pending_u = np.concatenate([pending_u, u])
                pending_v = np.concatenate([pending_v, v])
            prefix = _longest_disjoint_prefix(pending_u, pending_v)
            # The first pair alone is always disjoint, so prefix >= 1.
            yield pending_u[:prefix], pending_v[:prefix]
            pending_u = pending_u[prefix:]
            pending_v = pending_v[prefix:]


class BirthdayScheduler(SequentialScheduler):
    """Exact sequential semantics, batched natively in count space.

    On the agent path this *is* the sequential scheduler (identical
    batching, identical rng stream — bit-identical trajectories per
    seed).  On the count backend it selects the batched mode with the
    birthday law: batch sizes come from :func:`birthday_prefix_length`,
    and every batch after the first carries the prefix-terminating pair
    over (``carry_first``), because that pair was drawn conditioned on
    colliding with the previous batch's participants.  Given its length,
    a maximal disjoint prefix of i.i.d. uniform pairs is exactly a
    uniform partial matching — ``2L`` distinct agents drawn without
    replacement and paired uniformly — so each batch is one margin-draw
    + contingency-table step: exact sequential semantics at
    O(|occupied states|²) per Θ(√n)-interaction batch, with no O(n)
    state anywhere (count-native configs included).
    """

    name = "birthday"
    exact = True
    summary = (
        "exact sequential model as count-space birthday batches "
        "(Θ(√n) interactions per O(|states|²) batch; agent path "
        "identical to 'sequential')"
    )
    count_semantics = "batched"

    #: Pre-resolved prefix-length histogram handle; rebound by
    #: attach_telemetry, no-op for uninstrumented runs.
    _t_prefix = telemetry_module.NULL_HISTOGRAM

    def attach_telemetry(self, telemetry: "telemetry_module.Telemetry") -> None:
        """Meter the birthday (disjoint-prefix-length) draws."""
        self._t_prefix = telemetry.histogram("scheduler.prefix_length")

    def count_batches(self, n: int, rng: np.random.Generator) -> Iterator[CountBatch]:
        if n < 2:
            raise ConfigurationError(f"need at least 2 agents, got {n}")
        # A fresh prefix always holds its first pair (q(0) = 1), so the
        # first batch has size >= 1; carry batches are 1 + C with C >= 0.
        prefix = birthday_prefix_length(n, 0, rng)
        self._t_prefix.observe(prefix)
        yield CountBatch(prefix, False)
        while True:
            # The pair that ended the previous prefix is the first pair
            # of this batch; the continuation behind it starts with the
            # pair's 2 endpoints already used.
            prefix = birthday_prefix_length(n, 2, rng)
            self._t_prefix.observe(prefix)
            yield CountBatch(1 + prefix, True)

    def count_batch_sizes(
        self,
        n: int,
        rngs: Sequence[np.random.Generator],
        first: bool,
    ) -> Tuple[np.ndarray, bool]:
        """Per-replica birthday lengths: one uniform per rng, one inversion.

        Each replica consumes exactly the one uniform its serial
        :meth:`count_batches` stream would (the inversion itself is
        shared — :func:`birthday_prefix_lengths` agrees with the scalar
        draw bit-for-bit on the same uniform), so replica streams stay
        pure functions of their seeds.
        """
        if n < 2:
            raise ConfigurationError(f"need at least 2 agents, got {n}")
        uniforms = np.fromiter(
            (rng.random() for rng in rngs), dtype=np.float64, count=len(rngs)
        )
        prefixes = birthday_prefix_lengths(n, 0 if first else 2, uniforms)
        if self._t_prefix is not telemetry_module.NULL_HISTOGRAM:
            for prefix in prefixes:
                self._t_prefix.observe(int(prefix))
        if first:
            return prefixes, False
        return 1 + prefixes, True


class MatchingScheduler(Scheduler):
    """Random partial matchings of ``B = max(1, round(n * fraction))`` pairs."""

    name = "matching"
    exact = False
    summary = (
        "partial random matchings of n*fraction disjoint pairs (well-"
        "mixed approximation; coarsest count-space batches)"
    )
    count_semantics = "batched"

    def __init__(self, fraction: float = 0.125):
        if not 0 < fraction <= 0.5:
            raise ConfigurationError(
                f"fraction must be in (0, 0.5], got {fraction}"
            )
        self._fraction = fraction

    @property
    def fraction(self) -> float:
        """Batch size as a fraction of n (count batches mirror this sizing)."""
        return self._fraction

    def _batch_size(self, n: int) -> int:
        return min(max(1, int(round(n * self._fraction))), n // 2)

    def batches(self, n: int, rng: np.random.Generator) -> Iterator[PairBatch]:
        if n < 2:
            raise ConfigurationError(f"need at least 2 agents, got {n}")
        batch = self._batch_size(n)
        while True:
            perm = rng.permutation(n)[: 2 * batch]
            yield perm[:batch].astype(np.int64), perm[batch:].astype(np.int64)

    def count_batches(self, n: int, rng: np.random.Generator) -> Iterator[CountBatch]:
        if n < 2:
            raise ConfigurationError(f"need at least 2 agents, got {n}")
        batch = CountBatch(self._batch_size(n), False)
        while True:
            yield batch

    def count_batch_sizes(
        self,
        n: int,
        rngs: Sequence[np.random.Generator],
        first: bool,
    ) -> Tuple[np.ndarray, bool]:
        """The constant matching batch size broadcast over the stack."""
        if n < 2:
            raise ConfigurationError(f"need at least 2 agents, got {n}")
        return np.full(len(rngs), self._batch_size(n), dtype=np.int64), False


# ----------------------------------------------------------------------
# Registry (shared implementation: repro.engine.registry)
# ----------------------------------------------------------------------
SchedulerLike = Union[str, Scheduler, None]

#: Scheduler resolved when ``simulate(..., scheduler=None)`` is called.
DEFAULT_SCHEDULER = "sequential"

_REGISTRY: Registry[Scheduler] = Registry(
    "scheduler", Scheduler, DEFAULT_SCHEDULER
)

#: Add a scheduler factory under a name.
register = _REGISTRY.register
#: Sorted names of all registered schedulers.
available = _REGISTRY.available
#: Instantiate the scheduler registered under a name.
get = _REGISTRY.get
#: Coerce a name, instance, or None to a Scheduler instance.
resolve = _REGISTRY.resolve

register(SequentialScheduler.name, SequentialScheduler)
register(BirthdayScheduler.name, BirthdayScheduler)
register(MatchingScheduler.name, MatchingScheduler)
