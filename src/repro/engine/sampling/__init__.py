"""Count-space random draws: large-population hypergeometric sampling.

This subsystem owns every without-replacement draw the count backend
makes.  Three layers:

* :mod:`~repro.engine.sampling.hypergeometric` —
  :class:`LargeNHypergeometric`, the custom sampler (windowed exact
  inverse-CDF univariate draws + recursive binary color-splitting) that
  stays exact-in-distribution at populations numpy rejects (n >= 10^9).
* :mod:`~repro.engine.sampling.dispatch` — the measured crossover plan
  (:func:`plan_rows`, :data:`CONTINGENCY_WIDTH_CROSSOVER`) deciding,
  per contingency row or splitting subtree, whether numpy's C
  generator or the level-batched construction is cheaper.
* :mod:`~repro.engine.sampling.policy` — the :class:`SamplerPolicy`
  registry (``"numpy"``, ``"splitting"``, ``"rejection"``, ``"auto"``)
  deciding which sampler executes a given draw, threaded through
  ``simulate(..., backend="counts", sampler=...)`` and the CLI's
  ``--sampler`` flag.  ``"rejection"`` swaps the windowed inversion for
  the O(1)-per-draw ratio-of-uniforms univariate sampler; ``"auto"``
  dispatches adaptively *inside* each draw via the crossover plan.
"""

from .dispatch import CONTINGENCY_WIDTH_CROSSOVER, plan_rows
from .hypergeometric import REJECTION_MIN, LargeNHypergeometric
from .policy import (
    DEFAULT_SAMPLER,
    NUMPY_MAX_POPULATION,
    AutoSampler,
    NumpySampler,
    RejectionSampler,
    SamplerLike,
    SamplerPolicy,
    SplittingSampler,
    available,
    get,
    register,
    resolve,
)

__all__ = [
    "AutoSampler",
    "CONTINGENCY_WIDTH_CROSSOVER",
    "DEFAULT_SAMPLER",
    "LargeNHypergeometric",
    "NUMPY_MAX_POPULATION",
    "NumpySampler",
    "REJECTION_MIN",
    "RejectionSampler",
    "SamplerLike",
    "SamplerPolicy",
    "SplittingSampler",
    "available",
    "get",
    "plan_rows",
    "register",
    "resolve",
]
