"""Multivariate-hypergeometric sampling without numpy's population cap.

numpy's ``Generator.multivariate_hypergeometric`` (``method="marginals"``)
rejects populations of 10^9 and above, and its ``method="count"`` needs
O(population) memory — both dead ends for the n = 10^9 .. 10^10 sweeps the
paper's headline regime (k ≈ √n opinions) and the USD lower-bound
experiments (arXiv:2505.02765) call for.  This module implements the
custom sampler from the ROADMAP open item:

:class:`LargeNHypergeometric`
    * **Univariate draws** use an exact inverse-CDF over a window of the
      support centred on the mode.  The window is sized from the normal
      approximation (``window_sds`` standard deviations on either side —
      the fast path: at 10 sd the truncated tail mass is below 2e-22,
      far under the 2^-53 resolution of the uniform variate), the pmf
      inside the window is computed by exact log-ratio recurrences
      anchored at the mode via ``lgamma``, and a draw whose uniform
      variate falls outside the captured mass triggers the tail
      correction: the window is widened (ultimately to the full support
      when feasible) and the inversion re-run.  Work per draw is
      O(min(support, window_sds · sd)) vectorized numpy — a few
      milliseconds at n = 10^10 — and the sampled law matches the exact
      hypergeometric up to floating-point rounding (~1e-11 total
      variation), the same caveat numpy's own samplers carry.

    * **Multivariate draws** reduce to univariate ones by recursive
      binary color-splitting: split the colors into two halves, draw how
      many of the ``nsample`` balls land in the left half (univariate
      hypergeometric on the half totals — an exact marginal), and recurse
      into each half with the remaining sample.  Exactly ``k − 1``
      univariate draws for ``k`` colors, at any population size.

The policy layer in :mod:`repro.engine.sampling.policy` decides when this
sampler is used instead of numpy's; the statistical equivalence tests live
in ``tests/test_sampling.py``.
"""

from __future__ import annotations

from math import lgamma, sqrt
from typing import Sequence, Union

import numpy as np

from ..errors import ConfigurationError
from ..rng import RngLike, make_rng

IntLike = Union[int, np.integer]


def _log_comb(n: int, k: int) -> float:
    """log C(n, k) via lgamma (exact to ~1e-15 relative for huge n)."""
    if k < 0 or k > n:
        return -np.inf
    return lgamma(n + 1) - lgamma(k + 1) - lgamma(n - k + 1)


class LargeNHypergeometric:
    """Hypergeometric sampling that stays exact-in-distribution at any n.

    Args:
        window_sds: half-width of the central inverse-CDF window, in
            standard deviations of the draw.  10 sd keeps the truncated
            tail mass (< 2e-22) far below the uniform variate's 2^-53
            resolution; the tail correction widens the window on the
            (astronomically rare) misses, so this is purely a speed knob.
        max_full_support: supports no wider than this are enumerated
            exactly instead of windowed, making small-population draws
            textbook inverse-CDF transforms.
    """

    def __init__(self, window_sds: float = 10.0, max_full_support: int = 1 << 22):
        if window_sds <= 0:
            raise ConfigurationError(f"window_sds must be > 0, got {window_sds}")
        if max_full_support < 1:
            raise ConfigurationError(
                f"max_full_support must be >= 1, got {max_full_support}"
            )
        self.window_sds = float(window_sds)
        self.max_full_support = int(max_full_support)

    # ------------------------------------------------------------------
    # Univariate: P(X = x) = C(ngood, x) C(nbad, nsample-x) / C(N, nsample)
    # ------------------------------------------------------------------
    def univariate(
        self, ngood: IntLike, nbad: IntLike, nsample: IntLike, rng: RngLike = None
    ) -> int:
        """One draw of successes among ``nsample`` taken from the urn."""
        ngood, nbad, nsample = int(ngood), int(nbad), int(nsample)
        if ngood < 0 or nbad < 0:
            raise ConfigurationError(
                f"urn contents must be non-negative, got ({ngood}, {nbad})"
            )
        if not 0 <= nsample <= ngood + nbad:
            raise ConfigurationError(
                f"nsample must lie in [0, {ngood + nbad}], got {nsample}"
            )
        lo = max(0, nsample - nbad)
        hi = min(nsample, ngood)
        if lo == hi:
            return lo
        return self._invert(ngood, nbad, nsample, lo, hi, make_rng(rng))

    def _invert(
        self,
        ngood: int,
        nbad: int,
        nsample: int,
        lo: int,
        hi: int,
        rng: np.random.Generator,
    ) -> int:
        total = ngood + nbad
        mean = nsample * (ngood / total)
        var = mean * (nbad / total) * ((total - nsample) / max(total - 1, 1))
        sd = sqrt(max(var, 0.0))
        mode = min(max((nsample + 1) * (ngood + 1) // (total + 2), lo), hi)

        u = float(rng.random())
        half_width = max(16, int(self.window_sds * sd) + 16)
        while True:
            a = max(lo, mode - half_width)
            b = min(hi, mode + half_width)
            full = a == lo and b == hi
            pmf = self._window_pmf(ngood, nbad, nsample, a, b, mode)
            cdf = np.cumsum(pmf)
            mass = float(cdf[-1])
            if full:
                # Entire support enumerated: normalizing makes the
                # inversion exact regardless of rounding in ``mass``.
                return a + int(np.searchsorted(cdf, u * mass, side="left"))
            if u < mass:
                return a + int(np.searchsorted(cdf, u, side="left"))
            # Tail correction: u fell beyond the captured mass (true tail
            # probability < 2e-22 at the default window, or rounding left
            # mass marginally short of 1) — widen and re-invert with the
            # same u, falling back to the full support when it fits.
            if hi - lo + 1 <= self.max_full_support:
                half_width = hi - lo + 1
            else:
                half_width *= 4
                if half_width > 64 * (hi - lo + 1):
                    # Unreachable in practice; bound the loop regardless.
                    return b
            mode = min(max(mode, lo), hi)

    def _window_pmf(
        self, ngood: int, nbad: int, nsample: int, a: int, b: int, mode: int
    ) -> np.ndarray:
        """Exact pmf values on ``a..b`` anchored at the mode via lgamma.

        pmf(x+1)/pmf(x) = (ngood-x)(nsample-x) / ((x+1)(nbad-nsample+x+1));
        cumulative sums of the log-ratios keep 1e5-point windows accurate
        to ~1e-11 even when the operands are ~1e10.
        """
        anchor = min(max(mode, a), b)
        log_anchor = (
            _log_comb(ngood, anchor)
            + _log_comb(nbad, nsample - anchor)
            - _log_comb(ngood + nbad, nsample)
        )
        log_pmf = np.full(b - a + 1, log_anchor, dtype=np.float64)
        if anchor < b:
            x = np.arange(anchor, b, dtype=np.float64)
            step = (
                np.log(ngood - x)
                + np.log(nsample - x)
                - np.log(x + 1.0)
                - np.log(nbad - nsample + x + 1.0)
            )
            log_pmf[anchor - a + 1 :] += np.cumsum(step)
        if anchor > a:
            x = np.arange(anchor - 1, a - 1, -1, dtype=np.float64)
            step = (
                np.log(x + 1.0)
                + np.log(nbad - nsample + x + 1.0)
                - np.log(ngood - x)
                - np.log(nsample - x)
            )
            log_pmf[: anchor - a] += np.cumsum(step)[::-1]
        return np.exp(log_pmf)

    # ------------------------------------------------------------------
    # Multivariate: recursive binary color-splitting
    # ------------------------------------------------------------------
    def multivariate(
        self, colors: Sequence[int], nsample: IntLike, rng: RngLike = None
    ) -> np.ndarray:
        """Draw ``nsample`` balls without replacement from colored bins.

        Returns the per-color counts, like
        ``Generator.multivariate_hypergeometric`` — but valid at any
        population size.  ``k − 1`` univariate draws via binary splitting:
        each split draws the (exact) marginal of one half of the colors.
        """
        colors_arr = np.asarray(colors, dtype=np.int64)
        if colors_arr.ndim != 1 or colors_arr.size == 0:
            raise ConfigurationError("colors must be a non-empty 1-D sequence")
        if (colors_arr < 0).any():
            raise ConfigurationError("colors must be non-negative")
        nsample = int(nsample)
        total = int(colors_arr.sum())
        if not 0 <= nsample <= total:
            raise ConfigurationError(
                f"nsample must lie in [0, {total}], got {nsample}"
            )
        rng = make_rng(rng)
        out = np.zeros(colors_arr.size, dtype=np.int64)
        # Iterative (segment, nsample) recursion to keep deep k cheap.
        stack = [(0, colors_arr.size, nsample)]
        while stack:
            start, stop, want = stack.pop()
            if want == 0:
                continue
            if stop - start == 1:
                out[start] = want
                continue
            mid = (start + stop) // 2
            left_total = int(colors_arr[start:mid].sum())
            right_total = int(colors_arr[mid:stop].sum())
            left = self.univariate(left_total, right_total, want, rng)
            stack.append((start, mid, left))
            stack.append((mid, stop, want - left))
        return out
