"""Multivariate-hypergeometric sampling without numpy's population cap.

numpy's ``Generator.multivariate_hypergeometric`` (``method="marginals"``)
rejects populations of 10^9 and above, and its ``method="count"`` needs
O(population) memory — both dead ends for the n = 10^9 .. 10^10 sweeps the
paper's headline regime (k ≈ √n opinions) and the USD lower-bound
experiments (arXiv:2505.02765) call for.  This module implements the
custom sampler from the ROADMAP open item:

:class:`LargeNHypergeometric`
    * **Univariate draws** come in two interchangeable methods, selected
      by ``univariate_method``:

      ``"inversion"`` (the default) — an exact inverse-CDF over a window
      of the support centred on the mode.  The window is sized from the
      normal approximation (``window_sds`` standard deviations on either
      side — the fast path: at 10 sd the truncated tail mass is below
      2e-22, far under the 2^-53 resolution of the uniform variate), the
      pmf inside the window is computed by exact log-ratio recurrences
      anchored at the mode via ``lgamma``, and a draw whose uniform
      variate falls outside the captured mass triggers the tail
      correction: the window is widened (ultimately to the full support
      when feasible) and the inversion re-run.  Work per draw is
      O(min(support, window_sds · sd)) vectorized numpy.

      ``"rejection"`` — an H2PE-style ratio-of-uniforms rejection
      sampler (Kachitvichyanukul & Schmeiser 1985; Stadlober 1990, the
      family numpy's own HRUA generator belongs to): candidates are
      proposed from a table-mountain envelope centred on the mean and
      accepted against the exact ``lgamma`` log-pmf, so the expected
      work per draw is **O(1)** — a handful of float ops and ~2.6
      uniforms — independent of the standard deviation.  At n = 10⁹ a
      typical forced-splitting draw has sd ≈ 10⁴, i.e. a ~10⁵-point
      inversion window; rejection replaces that with a constant-size
      computation, which is the ~10× batch-cost cut benchmark EB6
      measures.  Small-range draws (reduced sample or reduced color
      below :data:`REJECTION_MIN`, where the envelope degenerates) fall
      back to the windowed inversion, which also stays the statistical-
      equivalence oracle in ``tests/test_sampling.py``.

      Both methods match the exact hypergeometric up to floating-point
      rounding (~1e-11 total variation), the same caveat numpy's own
      samplers carry.

    * **Multivariate draws** reduce to univariate ones by recursive
      binary color-splitting: split the colors into two halves, draw how
      many of the ``nsample`` balls land in the left half (univariate
      hypergeometric on the half totals — an exact marginal), and recurse
      into each half with the remaining sample.  Exactly ``k − 1``
      univariate draws for ``k`` colors, at any population size.

The policy layer in :mod:`repro.engine.sampling.policy` decides when this
sampler is used instead of numpy's (``"splitting"`` = inversion,
``"rejection"`` = rejection, ``"auto"`` = numpy below its 10⁹ bound and
rejection above); the statistical equivalence tests live in
``tests/test_sampling.py``.
"""

from __future__ import annotations

from math import lgamma, sqrt
from typing import List, Sequence, Union

import numpy as np

from ... import telemetry as telemetry_module
from ..errors import ConfigurationError
from ..rng import RngLike, make_rng

IntLike = Union[int, np.integer]

#: Ratio-of-uniforms envelope constants (Stadlober's universal table-
#: mountain hat for unimodal discrete distributions): half-width
#: ``_D1 · σ̂ + _D2`` with ``σ̂² = variance + 1/2``.
_D1 = 1.7155277699214135  # 2 * sqrt(2 / e)
_D2 = 0.8989161620588988  # 3 - 2 * sqrt(3 / e)

#: Below this reduced sample / reduced color count the rejection
#: envelope degenerates (the distribution is too discrete for the
#: continuous hat to pay off); such draws use the windowed inversion.
REJECTION_MIN = 10

#: Rejection rounds before the (astronomically unlikely, p < 2^-100)
#: fallback to the exact windowed inversion.
_MAX_REJECT_ROUNDS = 64


def _log_comb(n: int, k: int) -> float:
    """log C(n, k) via lgamma (exact to ~1e-15 relative for huge n)."""
    if k < 0 or k > n:
        return -np.inf
    return lgamma(n + 1) - lgamma(k + 1) - lgamma(n - k + 1)


try:  # scipy is an optional (dev) dependency; the engine runs without it.
    from scipy.special import gammaln as _gammaln
except ImportError:  # pragma: no cover - exercised only without scipy
    _gammaln = None


def _log_comb_many(n: np.ndarray, k: np.ndarray) -> np.ndarray:
    """Vectorized ``log C(n, k)`` for in-range ``0 <= k <= n`` arrays."""
    if _gammaln is not None:
        n = n.astype(np.float64)
        k = k.astype(np.float64)
        return _gammaln(n + 1.0) - _gammaln(k + 1.0) - _gammaln(n - k + 1.0)
    return np.array(
        [_log_comb(int(nn), int(kk)) for nn, kk in zip(n, k)],
        dtype=np.float64,
    )


def _lgamma_many(x: np.ndarray) -> np.ndarray:
    """Vectorized ``lgamma`` over positive float arrays."""
    if _gammaln is not None:
        return _gammaln(x)
    return np.array([lgamma(float(v)) for v in x], dtype=np.float64)


class LargeNHypergeometric:
    """Hypergeometric sampling that stays exact-in-distribution at any n.

    Args:
        window_sds: half-width of the central inverse-CDF window, in
            standard deviations of the draw.  10 sd keeps the truncated
            tail mass (< 2e-22) far below the uniform variate's 2^-53
            resolution; the tail correction widens the window on the
            (astronomically rare) misses, so this is purely a speed knob.
        max_full_support: supports no wider than this are enumerated
            exactly instead of windowed, making small-population draws
            textbook inverse-CDF transforms.
        univariate_method: ``"inversion"`` (windowed exact inverse-CDF,
            O(sd) per draw) or ``"rejection"`` (ratio-of-uniforms
            rejection against the exact log-pmf, O(1) expected per draw;
            small-range draws below :data:`REJECTION_MIN` still invert).
    """

    #: Pre-resolved metric handles (draws by method + fallback paths);
    #: class-level no-op defaults, rebound per instance by
    #: attach_telemetry so uninstrumented draws pay one no-op call only.
    _t_inversion = telemetry_module.NULL_COUNTER
    _t_rejection = telemetry_module.NULL_COUNTER
    _t_small = telemetry_module.NULL_COUNTER
    _t_tail = telemetry_module.NULL_COUNTER
    _t_straggler = telemetry_module.NULL_COUNTER

    def attach_telemetry(self, telemetry: "telemetry_module.Telemetry") -> None:
        """Meter univariate draws by method and the rare fallback paths."""
        self._t_inversion = telemetry.counter("sampler.draws.splitting")
        self._t_rejection = telemetry.counter("sampler.draws.rejection")
        self._t_small = telemetry.counter("sampler.fallback.small_range")
        self._t_tail = telemetry.counter("sampler.fallback.tail")
        self._t_straggler = telemetry.counter("sampler.fallback.straggler")

    def __init__(
        self,
        window_sds: float = 10.0,
        max_full_support: int = 1 << 22,
        univariate_method: str = "inversion",
    ):
        if window_sds <= 0:
            raise ConfigurationError(f"window_sds must be > 0, got {window_sds}")
        if max_full_support < 1:
            raise ConfigurationError(
                f"max_full_support must be >= 1, got {max_full_support}"
            )
        if univariate_method not in ("inversion", "rejection"):
            raise ConfigurationError(
                f"univariate_method must be 'inversion' or 'rejection', "
                f"got {univariate_method!r}"
            )
        self.window_sds = float(window_sds)
        self.max_full_support = int(max_full_support)
        self.univariate_method = univariate_method

    # ------------------------------------------------------------------
    # Univariate: P(X = x) = C(ngood, x) C(nbad, nsample-x) / C(N, nsample)
    # ------------------------------------------------------------------
    def univariate(
        self, ngood: IntLike, nbad: IntLike, nsample: IntLike, rng: RngLike = None
    ) -> int:
        """One draw of successes among ``nsample`` taken from the urn."""
        ngood, nbad, nsample = int(ngood), int(nbad), int(nsample)
        if ngood < 0 or nbad < 0:
            raise ConfigurationError(
                f"urn contents must be non-negative, got ({ngood}, {nbad})"
            )
        if not 0 <= nsample <= ngood + nbad:
            raise ConfigurationError(
                f"nsample must lie in [0, {ngood + nbad}], got {nsample}"
            )
        lo = max(0, nsample - nbad)
        hi = min(nsample, ngood)
        if lo == hi:
            return lo
        if self.univariate_method == "rejection" and self._rejection_ok(
            ngood, nbad, nsample
        ):
            self._t_rejection.inc()
            out = np.empty(1, dtype=np.int64)
            self._reject_rows(
                out,
                np.zeros(1, dtype=np.int64),
                np.array([ngood], dtype=np.int64),
                np.array([nbad], dtype=np.int64),
                np.array([nsample], dtype=np.int64),
                make_rng(rng),
            )
            return int(out[0])
        if self.univariate_method == "rejection":
            self._t_small.inc()
        self._t_inversion.inc()
        return self._invert(ngood, nbad, nsample, lo, hi, make_rng(rng))

    @staticmethod
    def _rejection_ok(ngood, nbad, nsample) -> bool:
        """Whether the rejection envelope applies (scalar parameters)."""
        m = min(int(nsample), int(ngood) + int(nbad) - int(nsample))
        return min(m, int(ngood), int(nbad)) >= REJECTION_MIN

    def _invert(
        self,
        ngood: int,
        nbad: int,
        nsample: int,
        lo: int,
        hi: int,
        rng: np.random.Generator,
    ) -> int:
        total = ngood + nbad
        mean = nsample * (ngood / total)
        var = mean * (nbad / total) * ((total - nsample) / max(total - 1, 1))
        sd = sqrt(max(var, 0.0))
        return self._invert_scalar_with_u(
            ngood,
            nbad,
            nsample,
            lo,
            hi,
            float(rng.random()),
            initial_half=int(self.window_sds * sd) + 16,
        )

    # ------------------------------------------------------------------
    # Batched univariate draws (one vectorized inversion for M draws)
    # ------------------------------------------------------------------
    def univariate_many(
        self,
        ngood: np.ndarray,
        nbad: np.ndarray,
        nsample: np.ndarray,
        rng: RngLike = None,
    ) -> np.ndarray:
        """Independent draws ``X_m ~ HG(ngood_m, nbad_m, nsample_m)``, batched.

        Distribution-identical to calling :meth:`univariate` per entry,
        but the windowed inverse-CDF runs as a handful of array
        operations over a ``(M, window)`` grid instead of M separate
        small-array passes — the count backend's contingency sampling
        (many small correlated draws per batch) is dominated by exactly
        that per-call overhead.  Draws are grouped into power-of-two
        window-width buckets so one wide draw cannot inflate the grid of
        the narrow ones; the astronomically rare tail misses fall back to
        the scalar path, re-using the same uniform.
        """
        rng = make_rng(rng)
        ngood = np.asarray(ngood, dtype=np.int64)
        nbad = np.asarray(nbad, dtype=np.int64)
        nsample = np.asarray(nsample, dtype=np.int64)
        if (ngood < 0).any() or (nbad < 0).any():
            raise ConfigurationError("urn contents must be non-negative")
        if (nsample < 0).any() or (nsample > ngood + nbad).any():
            raise ConfigurationError("nsample must lie in [0, ngood + nbad]")
        out = np.empty(ngood.shape[0], dtype=np.int64)
        lo = np.maximum(0, nsample - nbad)
        hi = np.minimum(nsample, ngood)
        free = np.flatnonzero(lo < hi)
        out[lo >= hi] = lo[lo >= hi]
        if free.size == 0:
            return out
        if self.univariate_method == "rejection":
            reduced = np.minimum(nsample[free], ngood[free] + nbad[free] - nsample[free])
            eligible = (
                np.minimum(reduced, np.minimum(ngood[free], nbad[free]))
                >= REJECTION_MIN
            )
            chosen = free[eligible]
            if chosen.size:
                self._t_rejection.inc(chosen.size)
                self._reject_rows(
                    out, chosen, ngood[chosen], nbad[chosen], nsample[chosen], rng
                )
            free = free[~eligible]
            if free.size == 0:
                return out
            # The ineligible remainder is the small-range fallback: too
            # discrete for the envelope, inverted exactly below.
            self._t_small.inc(free.size)
        # One uniform per non-degenerate inversion draw, in index order.
        self._t_inversion.inc(free.size)
        uniforms = rng.random(free.size)

        total = ngood + nbad
        mean = nsample * (ngood / np.maximum(total, 1))
        var = (
            mean
            * (nbad / np.maximum(total, 1))
            * ((total - nsample) / np.maximum(total - 1, 1))
        )
        sd = np.sqrt(np.maximum(var, 0.0))
        # The mode only centers the window, so float64 precision (exact to
        # ~1 part in 1e15) is plenty — the int64 product (nsample+1)(ngood+1)
        # would overflow for populations beyond ~3e9.
        mode = np.clip(
            np.floor(
                (nsample + 1.0) * (ngood + 1.0) / (total + 2.0)
            ).astype(np.int64),
            lo,
            hi,
        )
        half = np.maximum(16, (self.window_sds * sd).astype(np.int64) + 16)
        a = np.maximum(lo, mode - half)
        b = np.minimum(hi, mode + half)
        widths = b - a + 1
        buckets: dict = {}
        # 4× width classes: few enough passes to amortize the per-call
        # overhead, tight enough that narrow draws never pay for the
        # widest window in the batch.  Small batches bucket too — the
        # shared (M, width) grid is sized by the widest member, so even
        # a 2-draw batch pairing one n ≈ 10⁹ draw with one tail draw
        # would otherwise inflate the narrow draw's row by ~10⁵×.
        for pos, m in enumerate(free):
            buckets.setdefault(
                (int(widths[m]).bit_length() + 1) // 2, []
            ).append((int(m), float(uniforms[pos])))
        for bucket in buckets.values():
            rows = np.array([m for m, _ in bucket], dtype=np.int64)
            u = np.array([value for _, value in bucket], dtype=np.float64)
            self._invert_rows(
                out,
                rows,
                u,
                ngood[rows],
                nbad[rows],
                nsample[rows],
                lo[rows],
                hi[rows],
                a[rows],
                b[rows],
                mode[rows],
            )
        return out

    def _invert_rows(
        self, out, rows, u, ngood, nbad, nsample, lo, hi, a, b, mode
    ) -> None:
        """Vectorized windowed inversion for same-magnitude window widths.

        Consumes no randomness: every draw's uniform arrives in ``u`` (the
        rare tail misses re-use the same uniform on the scalar path), so
        the one-uniform-per-draw accounting of ``univariate_many`` holds.
        """
        width = int((b - a).max()) + 1
        x = a[:, None] + np.arange(width, dtype=np.int64)[None, :]
        inside = x <= b[:, None]
        # Log-ratio steps t(y) = log pmf(y+1) − log pmf(y), zeroed outside
        # the window so the row cumsum stays flat there.
        stepped = inside & (x < b[:, None])
        num1 = np.where(stepped, ngood[:, None] - x, 1).astype(np.float64)
        num2 = np.where(stepped, nsample[:, None] - x, 1).astype(np.float64)
        den1 = np.where(stepped, x + 1, 1).astype(np.float64)
        den2 = np.where(
            stepped, nbad[:, None] - nsample[:, None] + x + 1, 1
        ).astype(np.float64)
        # One fused log pass; the float ratios keep every operand well
        # inside float64 range (the int products would overflow at 10^10).
        steps = np.log((num1 / den1) * (num2 / den2))
        walk = np.zeros((rows.size, width), dtype=np.float64)
        walk[:, 1:] = np.cumsum(steps[:, :-1], axis=1)
        anchor_walk = walk[np.arange(rows.size), mode - a]
        log_anchor = (
            _log_comb_many(ngood, mode)
            + _log_comb_many(nbad, nsample - mode)
            - _log_comb_many(ngood + nbad, nsample)
        )
        pmf = np.exp((log_anchor - anchor_walk)[:, None] + walk) * inside
        cdf = np.cumsum(pmf, axis=1)
        mass = cdf[:, -1]
        full = (a == lo) & (b == hi)
        target = np.where(full, u * mass, u)
        hit = full | (u < mass)
        picks = (cdf < target[:, None]).sum(axis=1)
        out[rows[hit]] = a[hit] + picks[hit]
        misses = np.flatnonzero(~hit)
        if misses.size:
            self._t_tail.inc(misses.size)
        # Tail correction: re-invert the misses on the scalar path with
        # the same uniform (widening starts from the already-tried width).
        for m in misses:
            out[rows[m]] = self._invert_scalar_with_u(
                int(ngood[m]),
                int(nbad[m]),
                int(nsample[m]),
                int(lo[m]),
                int(hi[m]),
                float(u[m]),
                initial_half=int(b[m] - a[m]) + 1,
            )

    # ------------------------------------------------------------------
    # Rejection method (H2PE / ratio-of-uniforms family): O(1) per draw
    # ------------------------------------------------------------------
    def _reject_rows(
        self,
        out: np.ndarray,
        rows: np.ndarray,
        ngood: np.ndarray,
        nbad: np.ndarray,
        nsample: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        """Vectorized ratio-of-uniforms rejection for eligible rows.

        Works on the *reduced* parameterization — count the smaller color
        class among ``m = min(nsample, total − nsample)`` draws — so the
        envelope is centred on the smaller mode; the two classic
        back-transforms restore the requested orientation.  Per proposal:
        two uniforms, one candidate ``k = ⌊a + h(v − ½)/u⌋`` from the
        table-mountain hat, accepted iff ``u² ≤ pmf(k)/pmf(mode)`` with
        the exact ``lgamma`` log-pmf — acceptance ≈ 0.7–0.9, so the
        expected cost per draw is a constant independent of sd (vs the
        O(window_sds · sd) inversion grid).  Candidates beyond 16 sd of
        the mean are rejected outright (truncated mass < e⁻¹²⁸, far
        below float resolution — the same bound numpy's HRUA uses).
        Rows still pending after :data:`_MAX_REJECT_ROUNDS` rounds fall
        back to the exact windowed inversion.
        """
        total = (ngood + nbad).astype(np.float64)
        mingb = np.minimum(ngood, nbad)
        maxgb = np.maximum(ngood, nbad)
        m = np.minimum(nsample, ngood + nbad - nsample)
        mf = m.astype(np.float64)
        gf = mingb.astype(np.float64)
        bf = maxgb.astype(np.float64)
        mean = mf * gf / total
        var = (
            mean
            * ((total - gf) / total)
            * ((total - mf) / np.maximum(total - 1.0, 1.0))
        )
        sd = np.sqrt(var + 0.5)
        half = _D1 * sd + _D2
        centre = mean + 0.5
        lo = np.maximum(0, m - maxgb).astype(np.float64)
        hi = np.minimum(m, mingb).astype(np.float64)
        mode = np.clip(
            np.floor((mf + 1.0) * (gf + 1.0) / (total + 2.0)), lo, hi
        )
        g_mode = self._log_pmf_weight(mode, gf, mf, bf)
        cap = np.minimum(hi, np.floor(centre + 16.0 * sd))

        pending = np.arange(rows.size)
        for _ in range(_MAX_REJECT_ROUNDS):
            u = np.maximum(rng.random(pending.size), 1e-300)
            v = rng.random(pending.size)
            x = centre[pending] + half[pending] * (v - 0.5) / u
            k = np.floor(x)
            in_range = (x >= 0.0) & (k >= lo[pending]) & (k <= cap[pending])
            # Out-of-range candidates get the (valid) mode as a lgamma
            # placeholder; the mask keeps them rejected.
            k_safe = np.where(in_range, k, mode[pending])
            g = self._log_pmf_weight(
                k_safe, gf[pending], mf[pending], bf[pending]
            )
            accept = in_range & (2.0 * np.log(u) <= g_mode[pending] - g)
            hit = pending[accept]
            if hit.size:
                z = k_safe[accept].astype(np.int64)
                swap = ngood[hit] > nbad[hit]
                z = np.where(swap, m[hit] - z, z)
                complement = nsample[hit] > m[hit]
                z = np.where(complement, ngood[hit] - z, z)
                out[rows[hit]] = z
            pending = pending[~accept]
            if pending.size == 0:
                return
        self._t_straggler.inc(pending.size)  # pragma: no cover - p < 2^-100
        for p in pending:  # pragma: no cover - p < 2^-100 per row
            out[rows[p]] = self._invert(
                int(ngood[p]),
                int(nbad[p]),
                int(nsample[p]),
                int(max(0, nsample[p] - nbad[p])),
                int(min(nsample[p], ngood[p])),
                rng,
            )

    @staticmethod
    def _log_pmf_weight(
        k: np.ndarray, gf: np.ndarray, mf: np.ndarray, bf: np.ndarray
    ) -> np.ndarray:
        """``−log pmf(k)`` up to the k-independent normalization.

        ``pmf(k) = C(g, k) C(b, m−k) / C(g+b, m)`` in the reduced
        parameterization; the returned weight is the k-dependent
        ``lgamma`` sum, so ``weight(mode) − weight(k) = log pmf(k)/pmf(mode)``.
        """
        return (
            _lgamma_many(k + 1.0)
            + _lgamma_many(gf - k + 1.0)
            + _lgamma_many(mf - k + 1.0)
            + _lgamma_many(bf - mf + k + 1.0)
        )

    def _invert_scalar_with_u(
        self, ngood, nbad, nsample, lo, hi, u, initial_half
    ) -> int:
        """Scalar windowed inversion with a caller-supplied uniform."""
        total = ngood + nbad
        mode = min(max((nsample + 1) * (ngood + 1) // (total + 2), lo), hi)
        half_width = max(16, int(initial_half))
        while True:
            a = max(lo, mode - half_width)
            b = min(hi, mode + half_width)
            full = a == lo and b == hi
            pmf = self._window_pmf(ngood, nbad, nsample, a, b, mode)
            cdf = np.cumsum(pmf)
            mass = float(cdf[-1])
            if full:
                return a + int(np.searchsorted(cdf, u * mass, side="left"))
            if u < mass:
                return a + int(np.searchsorted(cdf, u, side="left"))
            if hi - lo + 1 <= self.max_full_support:
                half_width = hi - lo + 1
            else:
                half_width *= 4
                if half_width > 64 * (hi - lo + 1):  # pragma: no cover
                    return b

    def _window_pmf(
        self, ngood: int, nbad: int, nsample: int, a: int, b: int, mode: int
    ) -> np.ndarray:
        """Exact pmf values on ``a..b`` anchored at the mode via lgamma.

        pmf(x+1)/pmf(x) = (ngood-x)(nsample-x) / ((x+1)(nbad-nsample+x+1));
        cumulative sums of the log-ratios keep 1e5-point windows accurate
        to ~1e-11 even when the operands are ~1e10.
        """
        anchor = min(max(mode, a), b)
        log_anchor = (
            _log_comb(ngood, anchor)
            + _log_comb(nbad, nsample - anchor)
            - _log_comb(ngood + nbad, nsample)
        )
        log_pmf = np.full(b - a + 1, log_anchor, dtype=np.float64)
        if anchor < b:
            x = np.arange(anchor, b, dtype=np.float64)
            step = (
                np.log(ngood - x)
                + np.log(nsample - x)
                - np.log(x + 1.0)
                - np.log(nbad - nsample + x + 1.0)
            )
            log_pmf[anchor - a + 1 :] += np.cumsum(step)
        if anchor > a:
            x = np.arange(anchor - 1, a - 1, -1, dtype=np.float64)
            step = (
                np.log(x + 1.0)
                + np.log(nbad - nsample + x + 1.0)
                - np.log(ngood - x)
                - np.log(nsample - x)
            )
            log_pmf[: anchor - a] += np.cumsum(step)[::-1]
        return np.exp(log_pmf)

    # ------------------------------------------------------------------
    # Multivariate: recursive binary color-splitting
    # ------------------------------------------------------------------
    def multivariate(
        self, colors: Sequence[int], nsample: IntLike, rng: RngLike = None
    ) -> np.ndarray:
        """Draw ``nsample`` balls without replacement from colored bins.

        Returns the per-color counts, like
        ``Generator.multivariate_hypergeometric`` — but valid at any
        population size.  ``k − 1`` univariate draws via binary splitting:
        each split draws the (exact) marginal of one half of the colors.
        """
        colors_arr = np.asarray(colors, dtype=np.int64)
        if colors_arr.ndim != 1 or colors_arr.size == 0:
            raise ConfigurationError("colors must be a non-empty 1-D sequence")
        if (colors_arr < 0).any():
            raise ConfigurationError("colors must be non-negative")
        nsample = int(nsample)
        total = int(colors_arr.sum())
        if not 0 <= nsample <= total:
            raise ConfigurationError(
                f"nsample must lie in [0, {total}], got {nsample}"
            )
        rng = make_rng(rng)
        return self.multivariate_many([colors_arr], [nsample], rng)[0]

    def multivariate_many(
        self,
        colors_list: Sequence[np.ndarray],
        nsamples: Sequence[IntLike],
        rng: RngLike = None,
    ) -> List[np.ndarray]:
        """Independent multivariate draws, binary-split in lockstep.

        All tasks' splitting trees advance level by level together, so
        one tree level across every task is a single
        :meth:`univariate_many` call — ⌈log₂ k⌉ vectorized passes for the
        whole batch instead of ``Σ (k_t − 1)`` scalar draws.  This is the
        engine under both :meth:`multivariate` (one task) and
        :meth:`table` (one task per column block), i.e. under every
        count-space contingency draw at n ≥ 10⁹.
        """
        rng = make_rng(rng)
        outs = []
        prefixes = []
        # node: (task, start, stop, want)
        frontier = []
        for t, (colors, nsample) in enumerate(zip(colors_list, nsamples)):
            colors = np.asarray(colors, dtype=np.int64)
            outs.append(np.zeros(colors.size, dtype=np.int64))
            prefixes.append(np.concatenate(([0], np.cumsum(colors))))
            frontier.append((t, 0, colors.size, int(nsample)))
        while frontier:
            splits = []
            for t, start, stop, want in frontier:
                if want == 0:
                    continue
                if stop - start == 1:
                    outs[t][start] = want
                    continue
                splits.append((t, start, stop, want))
            if not splits:
                break
            mids = [(start + stop) // 2 for _, start, stop, _ in splits]
            lefts = np.array(
                [
                    prefixes[t][mid] - prefixes[t][start]
                    for (t, start, _, _), mid in zip(splits, mids)
                ],
                dtype=np.int64,
            )
            rights = np.array(
                [
                    prefixes[t][stop] - prefixes[t][mid]
                    for (t, _, stop, _), mid in zip(splits, mids)
                ],
                dtype=np.int64,
            )
            wants = np.array([want for *_, want in splits], dtype=np.int64)
            taken = self.univariate_many(lefts, rights, wants, rng)
            frontier = []
            for (t, start, stop, want), mid, left in zip(splits, mids, taken):
                frontier.append((t, start, mid, int(left)))
                frontier.append((t, mid, stop, want - int(left)))
        return outs

    # ------------------------------------------------------------------
    # Contingency tables: margins → full table, batched per level
    # ------------------------------------------------------------------
    def table(
        self,
        row_margins: np.ndarray,
        col_margins: np.ndarray,
        rng: RngLike = None,
    ) -> np.ndarray:
        """Sample an r×c contingency table with the given margins.

        The law is the one a uniform random pairing induces (the
        multivariate hypergeometric given both margins — the count-space
        image of ``MatchingScheduler``'s pairing).  Construction: binary
        recursion over column blocks; splitting a block with per-row
        counts ``w`` at column capacity ``C_L`` sends
        ``MVH(colors = w, nsample = C_L)`` to the left child — the column
        slots of the left half are a uniform subset of the block's slots.
        All column blocks of one level split together through
        :meth:`multivariate_many`, so the whole table costs
        ``O(log r · log c)`` vectorized passes.
        """
        rows = np.asarray(row_margins, dtype=np.int64)
        cols = np.asarray(col_margins, dtype=np.int64)
        if int(rows.sum()) != int(cols.sum()):
            raise ConfigurationError(
                f"margins must agree, got {int(rows.sum())} vs {int(cols.sum())}"
            )
        rng = make_rng(rng)
        out = np.zeros((rows.size, cols.size), dtype=np.int64)
        cprefix = np.concatenate(([0], np.cumsum(cols)))
        # node: (col_lo, col_hi, per-row counts in this column block)
        frontier = [(0, cols.size, rows)]
        while frontier:
            splits = []
            for lo, hi, wants in frontier:
                if hi - lo == 1:
                    out[:, lo] = wants
                    continue
                splits.append((lo, hi, wants))
            if not splits:
                break
            mids = [(lo + hi) // 2 for lo, hi, _ in splits]
            taken = self.multivariate_many(
                [wants for _, _, wants in splits],
                [
                    int(cprefix[mid] - cprefix[lo])
                    for (lo, _, _), mid in zip(splits, mids)
                ],
                rng,
            )
            frontier = []
            for (lo, hi, wants), mid, left in zip(splits, mids, taken):
                frontier.append((lo, mid, left))
                frontier.append((mid, hi, wants - left))
        return out
