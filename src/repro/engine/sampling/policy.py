"""Sampler policies: who performs a count-space multivariate draw.

The count backend samples every batch by multivariate-hypergeometric
draws over the state-count vector.  Which sampler executes a draw is a
*policy*, resolved through the registry here exactly like execution
backends are (:mod:`repro.engine.backends.base`):

``"numpy"``
    ``Generator.multivariate_hypergeometric`` — fastest, but numpy
    rejects populations of 10^9 and above (``method="marginals"``); the
    policy raises :class:`SamplerUnsupported` there instead of letting
    numpy's ValueError surface.

``"splitting"``
    :class:`~repro.engine.sampling.hypergeometric.LargeNHypergeometric`
    via recursive binary color-splitting over *windowed-inversion*
    univariate draws — any population size, O(window_sds · sd) work per
    draw.  Kept as the statistical-equivalence oracle.

``"rejection"``
    The same color-splitting reduction over the **O(1)-per-draw**
    ratio-of-uniforms rejection univariate sampler (H2PE family) —
    any population size, ~10× cheaper per forced-large-n batch than
    ``"splitting"`` at n = 10⁹ (benchmark EB6); small-range/tail draws
    fall back to the windowed inversion internally.

``"auto"`` (the default)
    Per-draw dispatch: numpy below its population limit, rejection
    above.  This is what lets ``simulate(..., backend="counts")`` run
    unchanged from n = 10^2 to n = 10^10.

Select a policy anywhere a count-space simulation is launched::

    simulate(protocol, config, backend="counts", sampler="rejection")
    replicate(..., backend="counts", sampler="auto")
    repro-experiments run EB3 --backend counts --sampler splitting
    repro-experiments run EB6 --sampler rejection
    repro-experiments samplers          # list policies + ranges
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Tuple, Union

import numpy as np

from ... import telemetry as telemetry_module
from ..errors import SamplerUnsupported
from ..registry import Registry
from .hypergeometric import LargeNHypergeometric

#: Population bound of numpy's multivariate-hypergeometric generator
#: ("marginals" method): the total must stay *below* this.
NUMPY_MAX_POPULATION = 1_000_000_000


class SamplerPolicy(ABC):
    """One strategy for multivariate-hypergeometric draws in count space."""

    #: Registry name (used in CLI listings and error messages).
    name: str = "sampler"
    #: Exclusive population bound, or None when unbounded.
    max_population: Optional[int] = None
    #: One-line description for ``repro-experiments samplers``.
    summary: str = ""

    def supports(self, total: int) -> bool:
        """Whether a draw from a population of ``total`` is in range."""
        return self.max_population is None or total < self.max_population

    def attach_telemetry(self, telemetry: "telemetry_module.Telemetry") -> None:
        """Bind pre-resolved draw counters for an instrumented run.

        No-op by default; concrete policies rebind their class-level
        no-op handles so uninstrumented runs never pay for a lookup.
        The count backend calls this once per telemetry-enabled run.
        """

    def population_range(self) -> str:
        """Human-readable population range for CLI listings."""
        if self.max_population is None:
            return "any n"
        return f"n < {self.max_population:.0e}".replace("e+0", "e")

    @abstractmethod
    def draw(
        self, colors: np.ndarray, nsample: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Sample ``nsample`` balls without replacement; per-color counts."""

    def contingency(
        self,
        initiators: np.ndarray,
        responders: np.ndarray,
        rng: np.random.Generator,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sample the initiator × responder contingency table, sparsely.

        Given per-state margins (``initiators`` and ``responders`` sum to
        the same batch size), draws how many interaction pairs fall on
        each (initiator state, responder state) combination under a
        uniform random pairing — the table is the r×c multivariate
        hypergeometric given its margins, built by iterated MVH draws.
        Returns ``(pair_i, pair_j, sizes)`` triplets for the non-empty
        cells only, never materializing the dense ``(S, S)`` table — with
        lazily materialized count models |states| can be in the tens of
        thousands while only occupied pairs matter.

        Two draw-count reductions (the table's law is exchangeable in
        rows and columns, and each margin is known):

        * iterate over whichever side occupies *fewer* states, and
        * compact every draw to the occupied states of the other side,
          so one row costs O(occupied) instead of O(|states|), and the
          final row is taken deterministically from the leftover pool.
        """
        rows = np.flatnonzero(initiators)
        cols = np.flatnonzero(responders)
        transpose = cols.size < rows.size
        if transpose:
            rows, cols = cols, rows
            outer, inner = responders, initiators
        else:
            outer, inner = initiators, responders
        pool = inner[cols].copy()
        pair_a, pair_b, sizes = [], [], []
        for m, a in enumerate(rows):
            want = int(outer[a])
            if m == len(rows) - 1:
                row = pool  # the leftover pool is exactly this row
            else:
                row = self.draw(pool, want, rng)
                pool = pool - row
            hit = np.flatnonzero(row)
            pair_a.append(np.full(hit.size, a, dtype=np.int64))
            pair_b.append(cols[hit])
            sizes.append(row[hit])
        pair_a = np.concatenate(pair_a) if pair_a else np.empty(0, dtype=np.int64)
        pair_b = np.concatenate(pair_b) if pair_b else np.empty(0, dtype=np.int64)
        out_sizes = (
            np.concatenate(sizes) if sizes else np.empty(0, dtype=np.int64)
        )
        if transpose:
            pair_a, pair_b = pair_b, pair_a
        return pair_a, pair_b, out_sizes


class NumpySampler(SamplerPolicy):
    """Delegate to ``Generator.multivariate_hypergeometric``."""

    name = "numpy"
    max_population = NUMPY_MAX_POPULATION
    summary = "numpy's built-in generator (fastest; rejects n >= 10^9)"

    #: Pre-resolved draws-by-method counter; rebound by attach_telemetry.
    _t_draws = telemetry_module.NULL_COUNTER

    def attach_telemetry(self, telemetry: "telemetry_module.Telemetry") -> None:
        self._t_draws = telemetry.counter("sampler.draws.numpy")

    def draw(
        self, colors: np.ndarray, nsample: int, rng: np.random.Generator
    ) -> np.ndarray:
        self._t_draws.inc()
        total = int(np.asarray(colors).sum())
        if not self.supports(total):
            raise SamplerUnsupported(
                f"sampler policy 'numpy' is limited to populations below "
                f"{self.max_population} by numpy's multivariate-"
                f"hypergeometric generator (got population {total}); use "
                f"sampler='splitting' or sampler='auto' instead"
            )
        return rng.multivariate_hypergeometric(colors, nsample)


class SplittingSampler(SamplerPolicy):
    """Recursive binary color-splitting over exact univariate inversions."""

    name = "splitting"
    max_population = None
    summary = (
        "recursive color-splitting with windowed exact inverse-CDF "
        "univariate draws (any n, incl. 10^9..10^10)"
    )
    #: Univariate method handed to :class:`LargeNHypergeometric`.
    univariate_method = "inversion"

    def __init__(self, window_sds: float = 10.0):
        self._sampler = LargeNHypergeometric(
            window_sds=window_sds, univariate_method=self.univariate_method
        )

    def attach_telemetry(self, telemetry: "telemetry_module.Telemetry") -> None:
        """Forward to the inner large-n sampler (it holds the counters)."""
        self._sampler.attach_telemetry(telemetry)

    def draw(
        self, colors: np.ndarray, nsample: int, rng: np.random.Generator
    ) -> np.ndarray:
        return self._sampler.multivariate(colors, nsample, rng)

    def contingency(
        self,
        initiators: np.ndarray,
        responders: np.ndarray,
        rng: np.random.Generator,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Whole-table sampling, all tree levels batched.

        Overrides the base per-row loop with
        :meth:`LargeNHypergeometric.table` on the compacted occupied
        margins: O(log r · log c) vectorized passes per batch instead of
        one multivariate draw per occupied initiator state — the
        difference between milliseconds and minutes per batch for the
        tournament quotient models, whose occupied state count runs into
        the hundreds.
        """
        rows = np.flatnonzero(initiators)
        cols = np.flatnonzero(responders)
        if rows.size == 0 or cols.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        table = self._sampler.table(initiators[rows], responders[cols], rng)
        hit_r, hit_c = np.nonzero(table)
        return rows[hit_r], cols[hit_c], table[hit_r, hit_c]


class RejectionSampler(SplittingSampler):
    """Color-splitting over O(1)-per-draw rejection univariate draws.

    Same reduction tree (and level-batched contingency tables) as
    ``"splitting"``, but every non-degenerate univariate draw goes
    through the ratio-of-uniforms rejection sampler instead of the
    O(window_sds · sd) windowed inversion — the ~10× forced-large-n
    batch-cost cut benchmark EB6 measures at n = 10⁹.  Small-range/tail
    draws (below :data:`~repro.engine.sampling.hypergeometric.
    REJECTION_MIN`) still invert exactly.
    """

    name = "rejection"
    max_population = None
    summary = (
        "recursive color-splitting with O(1)-per-draw ratio-of-uniforms "
        "rejection univariate draws (any n; fastest beyond numpy's bound)"
    )
    univariate_method = "rejection"


class AutoSampler(SamplerPolicy):
    """Per-draw dispatch: numpy when in range, rejection beyond."""

    name = "auto"
    max_population = None
    summary = "per-draw dispatch: numpy below 10^9, rejection above"

    def __init__(self):
        self._numpy = NumpySampler()
        self._beyond = RejectionSampler()

    def attach_telemetry(self, telemetry: "telemetry_module.Telemetry") -> None:
        """Attach both delegates so either dispatch target is metered."""
        self._numpy.attach_telemetry(telemetry)
        self._beyond.attach_telemetry(telemetry)

    def draw(
        self, colors: np.ndarray, nsample: int, rng: np.random.Generator
    ) -> np.ndarray:
        total = int(np.asarray(colors).sum())
        if self._numpy.supports(total):
            return self._numpy.draw(colors, nsample, rng)
        return self._beyond.draw(colors, nsample, rng)

    def contingency(
        self,
        initiators: np.ndarray,
        responders: np.ndarray,
        rng: np.random.Generator,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Numpy's generator row by row in range, batched table beyond.

        The pool of a contingency draw is one batch (≤ n/2 agents), so
        the numpy path covers it for n < 2·10⁹; above that every row
        draw would exceed numpy's bound and the rejection sampler's
        level-batched whole-table construction takes over.
        """
        total = int(np.asarray(responders).sum())
        if self._numpy.supports(total):
            return self._numpy.contingency(initiators, responders, rng)
        return self._beyond.contingency(initiators, responders, rng)


# ----------------------------------------------------------------------
# Registry (shared implementation: repro.engine.registry)
# ----------------------------------------------------------------------
SamplerLike = Union[str, SamplerPolicy, None]

#: Policy resolved when ``sampler=None`` is requested.
DEFAULT_SAMPLER = "auto"

_REGISTRY: Registry[SamplerPolicy] = Registry(
    "sampler", SamplerPolicy, DEFAULT_SAMPLER
)

#: Add a sampler-policy factory under a name.
register = _REGISTRY.register
#: Sorted names of all registered sampler policies.
available = _REGISTRY.available
#: Instantiate the sampler policy registered under a name.
get = _REGISTRY.get
#: Coerce a name, instance, or None to a SamplerPolicy instance.
resolve = _REGISTRY.resolve

register(NumpySampler.name, NumpySampler)
register(SplittingSampler.name, SplittingSampler)
register(RejectionSampler.name, RejectionSampler)
register(AutoSampler.name, AutoSampler)
