"""Sampler policies: who performs a count-space multivariate draw.

The count backend samples every batch by multivariate-hypergeometric
draws over the state-count vector.  Which sampler executes a draw is a
*policy*, resolved through the registry here exactly like execution
backends are (:mod:`repro.engine.backends.base`):

``"numpy"``
    ``Generator.multivariate_hypergeometric`` — fastest, but numpy
    rejects populations of 10^9 and above (``method="marginals"``); the
    policy raises :class:`SamplerUnsupported` there instead of letting
    numpy's ValueError surface.

``"splitting"``
    :class:`~repro.engine.sampling.hypergeometric.LargeNHypergeometric`
    via recursive binary color-splitting — any population size, a few
    milliseconds per draw at n = 10^10.

``"auto"`` (the default)
    Per-draw dispatch: numpy below its population limit, splitting above.
    This is what lets ``simulate(..., backend="counts")`` run unchanged
    from n = 10^2 to n = 10^10.

Select a policy anywhere a count-space simulation is launched::

    simulate(protocol, config, backend="counts", sampler="splitting")
    replicate(..., backend="counts", sampler="auto")
    repro-experiments run EB3 --backend counts --sampler splitting
    repro-experiments samplers          # list policies + ranges
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Union

import numpy as np

from ..errors import SamplerUnsupported
from ..registry import Registry
from .hypergeometric import LargeNHypergeometric

#: Population bound of numpy's multivariate-hypergeometric generator
#: ("marginals" method): the total must stay *below* this.
NUMPY_MAX_POPULATION = 1_000_000_000


class SamplerPolicy(ABC):
    """One strategy for multivariate-hypergeometric draws in count space."""

    #: Registry name (used in CLI listings and error messages).
    name: str = "sampler"
    #: Exclusive population bound, or None when unbounded.
    max_population: Optional[int] = None
    #: One-line description for ``repro-experiments samplers``.
    summary: str = ""

    def supports(self, total: int) -> bool:
        """Whether a draw from a population of ``total`` is in range."""
        return self.max_population is None or total < self.max_population

    def population_range(self) -> str:
        """Human-readable population range for CLI listings."""
        if self.max_population is None:
            return "any n"
        return f"n < {self.max_population:.0e}".replace("e+0", "e")

    @abstractmethod
    def draw(
        self, colors: np.ndarray, nsample: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Sample ``nsample`` balls without replacement; per-color counts."""


class NumpySampler(SamplerPolicy):
    """Delegate to ``Generator.multivariate_hypergeometric``."""

    name = "numpy"
    max_population = NUMPY_MAX_POPULATION
    summary = "numpy's built-in generator (fastest; rejects n >= 10^9)"

    def draw(
        self, colors: np.ndarray, nsample: int, rng: np.random.Generator
    ) -> np.ndarray:
        total = int(np.asarray(colors).sum())
        if not self.supports(total):
            raise SamplerUnsupported(
                f"sampler policy 'numpy' is limited to populations below "
                f"{self.max_population} by numpy's multivariate-"
                f"hypergeometric generator (got population {total}); use "
                f"sampler='splitting' or sampler='auto' instead"
            )
        return rng.multivariate_hypergeometric(colors, nsample)


class SplittingSampler(SamplerPolicy):
    """Recursive binary color-splitting over exact univariate inversions."""

    name = "splitting"
    max_population = None
    summary = (
        "recursive color-splitting with windowed exact inverse-CDF "
        "univariate draws (any n, incl. 10^9..10^10)"
    )

    def __init__(self, window_sds: float = 10.0):
        self._sampler = LargeNHypergeometric(window_sds=window_sds)

    def draw(
        self, colors: np.ndarray, nsample: int, rng: np.random.Generator
    ) -> np.ndarray:
        return self._sampler.multivariate(colors, nsample, rng)


class AutoSampler(SamplerPolicy):
    """Per-draw dispatch: numpy when in range, splitting beyond."""

    name = "auto"
    max_population = None
    summary = "per-draw dispatch: numpy below 10^9, splitting above"

    def __init__(self):
        self._numpy = NumpySampler()
        self._splitting = SplittingSampler()

    def draw(
        self, colors: np.ndarray, nsample: int, rng: np.random.Generator
    ) -> np.ndarray:
        total = int(np.asarray(colors).sum())
        if self._numpy.supports(total):
            return self._numpy.draw(colors, nsample, rng)
        return self._splitting.draw(colors, nsample, rng)


# ----------------------------------------------------------------------
# Registry (shared implementation: repro.engine.registry)
# ----------------------------------------------------------------------
SamplerLike = Union[str, SamplerPolicy, None]

#: Policy resolved when ``sampler=None`` is requested.
DEFAULT_SAMPLER = "auto"

_REGISTRY: Registry[SamplerPolicy] = Registry(
    "sampler", SamplerPolicy, DEFAULT_SAMPLER
)

#: Add a sampler-policy factory under a name.
register = _REGISTRY.register
#: Sorted names of all registered sampler policies.
available = _REGISTRY.available
#: Instantiate the sampler policy registered under a name.
get = _REGISTRY.get
#: Coerce a name, instance, or None to a SamplerPolicy instance.
resolve = _REGISTRY.resolve

register(NumpySampler.name, NumpySampler)
register(SplittingSampler.name, SplittingSampler)
register(AutoSampler.name, AutoSampler)
