"""Sampler policies: who performs a count-space multivariate draw.

The count backend samples every batch by multivariate-hypergeometric
draws over the state-count vector.  Which sampler executes a draw is a
*policy*, resolved through the registry here exactly like execution
backends are (:mod:`repro.engine.backends.base`):

``"numpy"``
    ``Generator.multivariate_hypergeometric`` — fastest, but numpy
    rejects populations of 10^9 and above (``method="marginals"``); the
    policy raises :class:`SamplerUnsupported` there instead of letting
    numpy's ValueError surface.

``"splitting"``
    :class:`~repro.engine.sampling.hypergeometric.LargeNHypergeometric`
    via recursive binary color-splitting over *windowed-inversion*
    univariate draws — any population size, O(window_sds · sd) work per
    draw.  Kept as the statistical-equivalence oracle.

``"rejection"``
    The same color-splitting reduction over the **O(1)-per-draw**
    ratio-of-uniforms rejection univariate sampler (H2PE family) —
    any population size, ~10× cheaper per forced-large-n batch than
    ``"splitting"`` at n = 10⁹ (benchmark EB6); small-range/tail draws
    fall back to the windowed inversion internally.

``"auto"`` (the default)
    *Adaptive* dispatch inside every draw: numpy's C generator serves
    each unit of work — one contingency row, one subtree of a
    splitting reduction — whose pool total is in range, and the
    level-batched rejection construction serves the rest
    (:mod:`~repro.engine.sampling.dispatch` holds the measured
    crossover plan).  An out-of-range draw is no longer all-or-nothing:
    a few rejection splits spend the pool down below numpy's bound and
    the cheap generator finishes the draw.  This is what lets
    ``simulate(..., backend="counts")`` run unchanged from n = 10^2 to
    n = 10^10 while matching the best forced policy in every cell
    (benchmark EB6).

Hot-path contract: every ``draw``/``contingency`` accepts a ``total=``
keyword carrying the caller's precomputed pool total, so the per-batch
loop never re-reduces a margin vector it already knows the sum of.

Select a policy anywhere a count-space simulation is launched::

    simulate(protocol, config, backend="counts", sampler="rejection")
    replicate(..., backend="counts", sampler="auto")
    repro-experiments run EB3 --backend counts --sampler splitting
    repro-experiments run EB6 --sampler rejection
    repro-experiments samplers          # list policies + ranges
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from ... import telemetry as telemetry_module
from ..errors import SamplerUnsupported
from ..registry import Registry
from .dispatch import CONTINGENCY_WIDTH_CROSSOVER, plan_rows
from .hypergeometric import LargeNHypergeometric

#: Population bound of numpy's multivariate-hypergeometric generator
#: ("marginals" method): the total must stay *below* this.
NUMPY_MAX_POPULATION = 1_000_000_000


class SamplerPolicy(ABC):
    """One strategy for multivariate-hypergeometric draws in count space."""

    #: Registry name (used in CLI listings and error messages).
    name: str = "sampler"
    #: Exclusive population bound, or None when unbounded.
    max_population: Optional[int] = None
    #: One-line description for ``repro-experiments samplers``.
    summary: str = ""

    def supports(self, total: int) -> bool:
        """Whether a draw from a population of ``total`` is in range."""
        return self.max_population is None or total < self.max_population

    def attach_telemetry(self, telemetry: "telemetry_module.Telemetry") -> None:
        """Bind pre-resolved draw counters for an instrumented run.

        No-op by default; concrete policies rebind their class-level
        no-op handles so uninstrumented runs never pay for a lookup.
        The count backend calls this once per telemetry-enabled run.
        """

    def population_range(self) -> str:
        """Human-readable population range for CLI listings."""
        if self.max_population is None:
            return "any n"
        text = f"{float(self.max_population):g}"
        if "e" in text:
            mantissa, _, exponent = text.partition("e")
            text = f"{mantissa}e{int(exponent)}"
        return f"n < {text}"

    @abstractmethod
    def draw(
        self,
        colors: np.ndarray,
        nsample: int,
        rng: np.random.Generator,
        *,
        total: Optional[int] = None,
    ) -> np.ndarray:
        """Sample ``nsample`` balls without replacement; per-color counts.

        ``total`` is the caller's precomputed ``colors.sum()``; when
        given, implementations must not re-reduce the vector — the count
        backend's batch loop knows every pool total arithmetically and
        this call sits on the hottest path it has.
        """

    def contingency(
        self,
        initiators: np.ndarray,
        responders: np.ndarray,
        rng: np.random.Generator,
        *,
        total: Optional[int] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sample the initiator × responder contingency table, sparsely.

        Given per-state margins (``initiators`` and ``responders`` sum to
        the same batch size — pass it as ``total`` to skip the
        reduction), draws how many interaction pairs fall on each
        (initiator state, responder state) combination under a uniform
        random pairing — the table is the r×c multivariate
        hypergeometric given its margins, built by iterated MVH draws.
        Returns ``(pair_i, pair_j, sizes)`` triplets for the non-empty
        cells only, never materializing the dense ``(S, S)`` table — with
        lazily materialized count models |states| can be in the tens of
        thousands while only occupied pairs matter.

        Two draw-count reductions (the table's law is exchangeable in
        rows and columns, and each margin is known):

        * iterate over whichever side occupies *fewer* states, and
        * compact every draw to the occupied states of the other side,
          so one row costs O(occupied) instead of O(|states|), and the
          final row is taken deterministically from the leftover pool.
        """
        rows = np.flatnonzero(initiators)
        cols = np.flatnonzero(responders)
        transpose = cols.size < rows.size
        if transpose:
            rows, cols = cols, rows
            outer, inner = responders, initiators
        else:
            outer, inner = initiators, responders
        pool = inner[cols].copy()
        remaining = int(total) if total is not None else int(pool.sum())
        pair_a, pair_b, sizes = [], [], []
        for m, a in enumerate(rows):
            want = int(outer[a])
            if m == len(rows) - 1:
                row = pool  # the leftover pool is exactly this row
            else:
                row = self.draw(pool, want, rng, total=remaining)
                pool = pool - row
                remaining -= want
            hit = np.flatnonzero(row)
            pair_a.append(np.full(hit.size, a, dtype=np.int64))
            pair_b.append(cols[hit])
            sizes.append(row[hit])
        pair_a = np.concatenate(pair_a) if pair_a else np.empty(0, dtype=np.int64)
        pair_b = np.concatenate(pair_b) if pair_b else np.empty(0, dtype=np.int64)
        out_sizes = (
            np.concatenate(sizes) if sizes else np.empty(0, dtype=np.int64)
        )
        if transpose:
            pair_a, pair_b = pair_b, pair_a
        return pair_a, pair_b, out_sizes

    # ------------------------------------------------------------------
    # Replica-axis entry points (the ensemble engine's hot path)
    # ------------------------------------------------------------------
    def draw_stack(
        self,
        colors_stack: np.ndarray,
        nsamples: np.ndarray,
        rngs: Sequence[np.random.Generator],
        *,
        totals: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Row ``r`` of the result is ``draw(colors_stack[r], nsamples[r], rngs[r])``.

        One margin draw per replica of an ensemble stack, each from its
        own rng (replica streams stay pure functions of their seeds —
        only the *dispatch* is shared, never the randomness).  The base
        implementation loops :meth:`draw`; policies with a cheaper
        stacked route (:class:`AutoSampler`) override it.  ``totals[r]``
        is the caller's precomputed pool total of row ``r``.
        """
        out = np.empty_like(colors_stack)
        for r in range(colors_stack.shape[0]):
            total = None if totals is None else int(totals[r])
            out[r] = self.draw(
                colors_stack[r], int(nsamples[r]), rngs[r], total=total
            )
        return out

    def contingency_stack(
        self,
        initiators_stack: np.ndarray,
        responders_stack: np.ndarray,
        rngs: Sequence[np.random.Generator],
        *,
        totals: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Sparse contingency triplets for every replica of a stack at once.

        Returns ``(rep, pair_i, pair_j, sizes)`` flat arrays over the
        whole stack: entry ``m`` says replica ``rep[m]`` has ``sizes[m]``
        interactions on state pair ``(pair_i[m], pair_j[m])`` — exactly
        the triplets :meth:`contingency` would return per replica, tagged
        with the replica index so ``apply_groups_stack`` can scatter the
        whole ensemble in a handful of numpy calls.  The base
        implementation loops :meth:`contingency` per replica (each on its
        own rng).
        """
        rep, pair_i, pair_j, sizes = [], [], [], []
        for r in range(initiators_stack.shape[0]):
            total = None if totals is None else int(totals[r])
            a, b, s = self.contingency(
                initiators_stack[r], responders_stack[r], rngs[r], total=total
            )
            rep.append(np.full(a.size, r, dtype=np.int64))
            pair_i.append(a)
            pair_j.append(b)
            sizes.append(s)
        empty = np.empty(0, dtype=np.int64)
        return (
            np.concatenate(rep) if rep else empty,
            np.concatenate(pair_i) if pair_i else empty.copy(),
            np.concatenate(pair_j) if pair_j else empty.copy(),
            np.concatenate(sizes) if sizes else empty.copy(),
        )


class NumpySampler(SamplerPolicy):
    """Delegate to ``Generator.multivariate_hypergeometric``."""

    name = "numpy"
    max_population = NUMPY_MAX_POPULATION
    summary = "numpy's built-in generator (fastest; rejects n >= 10^9)"

    #: Pre-resolved draws-by-method counter; rebound by attach_telemetry.
    _t_draws = telemetry_module.NULL_COUNTER

    def attach_telemetry(self, telemetry: "telemetry_module.Telemetry") -> None:
        self._t_draws = telemetry.counter("sampler.draws.numpy")

    def draw(
        self,
        colors: np.ndarray,
        nsample: int,
        rng: np.random.Generator,
        *,
        total: Optional[int] = None,
    ) -> np.ndarray:
        if total is None:
            total = int(np.asarray(colors).sum())
        if not self.supports(total):
            # Raising draws are not served draws: the counter must stay
            # untouched or perf_diff's draw-mix shares drift on every
            # probe that falls through to another policy.
            raise SamplerUnsupported(
                f"sampler policy 'numpy' is limited to populations below "
                f"{self.max_population} by numpy's multivariate-"
                f"hypergeometric generator (got population {total}); use "
                f"sampler='splitting' or sampler='auto' instead"
            )
        self._t_draws.inc()
        return rng.multivariate_hypergeometric(colors, nsample)


class SplittingSampler(SamplerPolicy):
    """Recursive binary color-splitting over exact univariate inversions."""

    name = "splitting"
    max_population = None
    summary = (
        "recursive color-splitting with windowed exact inverse-CDF "
        "univariate draws (any n, incl. 10^9..10^10)"
    )
    #: Univariate method handed to :class:`LargeNHypergeometric`.
    univariate_method = "inversion"

    def __init__(self, window_sds: float = 10.0):
        self._sampler = LargeNHypergeometric(
            window_sds=window_sds, univariate_method=self.univariate_method
        )

    @property
    def hypergeometric(self) -> LargeNHypergeometric:
        """The inner large-n sampler (shared by the adaptive policy)."""
        return self._sampler

    def attach_telemetry(self, telemetry: "telemetry_module.Telemetry") -> None:
        """Forward to the inner large-n sampler (it holds the counters)."""
        self._sampler.attach_telemetry(telemetry)

    def draw(
        self,
        colors: np.ndarray,
        nsample: int,
        rng: np.random.Generator,
        *,
        total: Optional[int] = None,
    ) -> np.ndarray:
        return self._sampler.multivariate(colors, nsample, rng)

    def contingency(
        self,
        initiators: np.ndarray,
        responders: np.ndarray,
        rng: np.random.Generator,
        *,
        total: Optional[int] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Whole-table sampling, all tree levels batched.

        Overrides the base per-row loop with
        :meth:`LargeNHypergeometric.table` on the compacted occupied
        margins: O(log r · log c) vectorized passes per batch instead of
        one multivariate draw per occupied initiator state — the
        difference between milliseconds and minutes per batch for the
        tournament quotient models, whose occupied state count runs into
        the hundreds.  (``total`` is accepted for interface parity; the
        level construction needs only the margins.)
        """
        rows = np.flatnonzero(initiators)
        cols = np.flatnonzero(responders)
        if rows.size == 0 or cols.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        table = self._sampler.table(initiators[rows], responders[cols], rng)
        hit_r, hit_c = np.nonzero(table)
        return rows[hit_r], cols[hit_c], table[hit_r, hit_c]


class RejectionSampler(SplittingSampler):
    """Color-splitting over O(1)-per-draw rejection univariate draws.

    Same reduction tree (and level-batched contingency tables) as
    ``"splitting"``, but every non-degenerate univariate draw goes
    through the ratio-of-uniforms rejection sampler instead of the
    O(window_sds · sd) windowed inversion — the ~10× forced-large-n
    batch-cost cut benchmark EB6 measures at n = 10⁹.  Small-range/tail
    draws (below :data:`~repro.engine.sampling.hypergeometric.
    REJECTION_MIN`) still invert exactly.
    """

    name = "rejection"
    max_population = None
    summary = (
        "recursive color-splitting with O(1)-per-draw ratio-of-uniforms "
        "rejection univariate draws (any n; fastest beyond numpy's bound)"
    )
    univariate_method = "rejection"


class AutoSampler(SamplerPolicy):
    """Adaptive dispatch: numpy per in-range unit, rejection beyond.

    Unlike the all-or-nothing dispatch this policy replaced, the choice
    is made per *unit of work* inside a single draw:

    * ``draw`` splits an out-of-range pool binarily (one O(1) rejection
      univariate per split) only until each sub-pool total is inside
      numpy's range, then serves every sub-pool with one call to
      numpy's C generator — a handful of splits instead of ``k − 1``.
    * ``contingency`` partitions the table's rows by
      :func:`~repro.engine.sampling.dispatch.plan_rows`: the largest
      margins are drawn jointly by the level-batched construction while
      the leftover pool is out of range, and every remaining row is one
      cheap numpy draw.  An in-range table takes the per-row numpy path
      in natural order, bit-identical to the plain ``"numpy"`` policy.

    ``numpy_max`` and ``width_crossover`` are calibration knobs
    (defaults: numpy's real bound and the measured crossover from
    :mod:`~repro.engine.sampling.dispatch`); tests lower them to force
    mixed dispatch at chi-square-testable scale, and
    ``benchmarks/sampler_dispatch.py`` re-measures the crossover.
    """

    name = "auto"
    max_population = None
    summary = (
        "adaptive dispatch inside each draw: numpy's C generator for "
        "in-range rows/sub-pools, level-batched rejection beyond"
    )

    #: Pre-resolved dispatch counters; rebound by attach_telemetry.
    _t_numpy = telemetry_module.NULL_COUNTER
    _t_batched = telemetry_module.NULL_COUNTER

    def __init__(
        self,
        numpy_max: int = NUMPY_MAX_POPULATION,
        width_crossover: Optional[int] = CONTINGENCY_WIDTH_CROSSOVER,
    ):
        self._numpy = NumpySampler()
        self._beyond = RejectionSampler()
        self._numpy_max = int(numpy_max)
        self._width_crossover = width_crossover

    def attach_telemetry(self, telemetry: "telemetry_module.Telemetry") -> None:
        """Attach both delegates so either dispatch target is metered."""
        self._numpy.attach_telemetry(telemetry)
        self._beyond.attach_telemetry(telemetry)
        self._t_numpy = telemetry.counter("sampler.dispatch.numpy")
        self._t_batched = telemetry.counter("sampler.dispatch.batched")

    def draw(
        self,
        colors: np.ndarray,
        nsample: int,
        rng: np.random.Generator,
        *,
        total: Optional[int] = None,
    ) -> np.ndarray:
        colors = np.asarray(colors)
        if total is None:
            total = int(colors.sum())
        if total < self._numpy_max:
            self._t_numpy.inc()
            return self._numpy.draw(colors, nsample, rng, total=total)
        return self._split_draw(colors, int(nsample), int(total), rng)

    def _split_draw(
        self,
        colors: np.ndarray,
        nsample: int,
        total: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Split only while out of range; numpy serves in-range subtrees.

        The exact marginal of each half is one univariate
        hypergeometric, so conditioning left-to-right reproduces the
        joint MVH law — the same reduction
        :meth:`LargeNHypergeometric.multivariate` runs to the leaves,
        stopped early: a node whose pool total drops below numpy's
        bound hands its whole color range to the C generator in one
        call.  Halving totals means only O(total / numpy_max + log)
        splits ever pay the rejection path.
        """
        out = np.zeros(colors.size, dtype=np.int64)
        prefix = np.concatenate(([0], np.cumsum(colors, dtype=np.int64)))
        hypergeometric = self._beyond.hypergeometric
        # node: (start, stop, want, pool total); LIFO, left child first.
        stack = [(0, colors.size, nsample, total)]
        while stack:
            start, stop, want, node_total = stack.pop()
            if want == 0:
                continue
            if stop - start == 1:
                out[start] = want
                continue
            if node_total < self._numpy_max:
                self._t_numpy.inc()
                out[start:stop] = self._numpy.draw(
                    colors[start:stop], want, rng, total=node_total
                )
                continue
            self._t_batched.inc()
            mid = (start + stop) // 2
            left_total = int(prefix[mid] - prefix[start])
            left = int(
                hypergeometric.univariate(
                    left_total, node_total - left_total, want, rng
                )
            )
            stack.append((mid, stop, want - left, node_total - left_total))
            stack.append((start, mid, left, left_total))
        return out

    def contingency(
        self,
        initiators: np.ndarray,
        responders: np.ndarray,
        rng: np.random.Generator,
        *,
        total: Optional[int] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Adaptive per-row dispatch inside one contingency table.

        :func:`~repro.engine.sampling.dispatch.plan_rows` partitions the
        occupied rows: the largest margins form a batched prefix drawn
        *jointly* (one :meth:`LargeNHypergeometric.table` call with a
        virtual row holding the leftover pool — row exchangeability
        makes that conditioning exact), and the leftover pool, now below
        numpy's bound, feeds per-row numpy draws in natural order.  The
        previous all-or-nothing dispatch paid the level-batched
        construction for the *whole* table whenever the batch exceeded
        numpy's range; now at most the few largest rows do.
        """
        rows = np.flatnonzero(initiators)
        cols = np.flatnonzero(responders)
        if rows.size == 0 or cols.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        transpose = cols.size < rows.size
        if transpose:
            rows, cols = cols, rows
            outer, inner = responders, initiators
        else:
            outer, inner = initiators, responders
        margins = outer[rows].astype(np.int64)
        pool = inner[cols].astype(np.int64)
        pool_total = int(total) if total is not None else int(pool.sum())
        order, split = plan_rows(
            margins,
            pool_total,
            cols.size,
            numpy_max=self._numpy_max,
            width_crossover=self._width_crossover,
        )
        if split == rows.size:
            # Every row's pool is out of range (or the table is beyond
            # the width crossover): one level-batched construction.
            self._t_batched.inc(rows.size)
            table = self._beyond.hypergeometric.table(margins, pool, rng)
            hit_r, hit_c = np.nonzero(table)
            pair_a, pair_b = rows[hit_r], cols[hit_c]
            values = table[hit_r, hit_c]
            if transpose:
                pair_a, pair_b = pair_b, pair_a
            return pair_a, pair_b, values
        pair_a, pair_b, sizes = [], [], []
        remaining = pool_total
        if split:
            self._t_batched.inc(split)
            prefix_rows = order[:split]
            prefix_margins = margins[prefix_rows]
            remaining = pool_total - int(prefix_margins.sum())
            table = self._beyond.hypergeometric.table(
                np.append(prefix_margins, remaining), pool, rng
            )
            for m, a in enumerate(rows[prefix_rows]):
                row = table[m]
                hit = np.flatnonzero(row)
                pair_a.append(np.full(hit.size, a, dtype=np.int64))
                pair_b.append(cols[hit])
                sizes.append(row[hit])
            pool = table[split]  # the virtual row is the leftover pool
        suffix = np.sort(order[split:])
        for m, idx in enumerate(suffix):
            want = int(margins[idx])
            if m == suffix.size - 1:
                row = pool  # the leftover pool is exactly this row
            else:
                self._t_numpy.inc()
                row = self._numpy.draw(pool, want, rng, total=remaining)
                pool = pool - row
                remaining -= want
            hit = np.flatnonzero(row)
            pair_a.append(np.full(hit.size, rows[idx], dtype=np.int64))
            pair_b.append(cols[hit])
            sizes.append(row[hit])
        pair_a = np.concatenate(pair_a)
        pair_b = np.concatenate(pair_b)
        values = np.concatenate(sizes)
        if transpose:
            pair_a, pair_b = pair_b, pair_a
        return pair_a, pair_b, values

    # ------------------------------------------------------------------
    # Replica-axis entry points: partition the whole stack at once
    # ------------------------------------------------------------------
    def draw_stack(
        self,
        colors_stack: np.ndarray,
        nsamples: np.ndarray,
        rngs: Sequence[np.random.Generator],
        *,
        totals: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Stack-level dispatch: classify every replica's pool in one pass.

        When the whole stack is inside numpy's range (the overwhelmingly
        common case — every replica shares one population total), each
        replica's margin vector is drawn by the *sequential marginal
        decomposition* of the multivariate hypergeometric: per occupied
        state, one scalar ``Generator.hypergeometric`` call against the
        remaining pool, with the final state taking the remainder.  The
        law is exactly ``multivariate_hypergeometric`` (the same
        conditional factorization numpy's own "marginals" method uses),
        but a scalar univariate call costs ~6x less than the
        multivariate entry point, and the occupied-state scan is hoisted
        out of the per-replica loop — this is where the ensemble
        engine's per-replica floor is set.  Each replica draws from its
        own rng only (replica streams stay pure functions of their
        seeds).  Replicas whose pool is out of range fall back to the
        adaptive per-draw route individually.
        """
        if totals is None:
            totals = colors_stack.sum(axis=1)
        in_range = np.asarray(totals) < self._numpy_max
        if in_range.all():
            num_replicas = colors_stack.shape[0]
            out = np.zeros_like(colors_stack)
            occupied = np.flatnonzero(colors_stack.any(axis=0)).tolist()
            for r in range(num_replicas):
                colors = colors_stack[r]
                rng = rngs[r]
                rem_n = int(nsamples[r])
                rem_pop = int(totals[r])
                for s in occupied:
                    if rem_n == 0:
                        break
                    c = int(colors[s])
                    if c == 0:
                        continue
                    if c >= rem_pop:
                        out[r, s] = rem_n
                        rem_n = 0
                        break
                    x = int(rng.hypergeometric(c, rem_pop - c, rem_n))
                    if x:
                        out[r, s] = x
                        rem_n -= x
                    rem_pop -= c
            self._t_numpy.inc(num_replicas)
            self._numpy._t_draws.inc(num_replicas)
            return out
        return super().draw_stack(colors_stack, nsamples, rngs, totals=totals)

    def contingency_stack(
        self,
        initiators_stack: np.ndarray,
        responders_stack: np.ndarray,
        rngs: Sequence[np.random.Generator],
        *,
        totals: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Stacked contingency tables with one dispatch decision per stack.

        In-range replicas build the table cell by cell through the
        sequential marginal decomposition of the multivariate
        hypergeometric: iterate the smaller side's occupied rows; within
        each non-final row, draw each cell with one scalar
        ``Generator.hypergeometric`` call against the remaining response
        pool; take the final row deterministically from the leftovers
        (both margins sum to the batch size, so the remainder is exact).
        The law is identical to drawing each row with
        ``multivariate_hypergeometric`` — the same conditional
        factorization, taken one coordinate further — but each scalar
        call costs ~6x less, and the occupied-state scan, the telemetry
        increments, and the array assembly are hoisted out of the
        per-replica loop.  Each replica draws from its own rng only.
        Out-of-range replicas fall back to the full adaptive
        :meth:`contingency` individually.
        """
        if totals is None:
            totals = initiators_stack.sum(axis=1)
        totals = np.asarray(totals)
        if not (totals < self._numpy_max).all():
            return super().contingency_stack(
                initiators_stack, responders_stack, rngs, totals=totals
            )
        rep_l, pair_a_l, pair_b_l, sizes_l = [], [], [], []
        numpy_draws = 0
        occupied_i = np.flatnonzero(initiators_stack.any(axis=0)).tolist()
        occupied_j = np.flatnonzero(responders_stack.any(axis=0)).tolist()
        for r in range(initiators_stack.shape[0]):
            initiators = initiators_stack[r]
            responders = responders_stack[r]
            rows = [s for s in occupied_i if initiators[s]]
            cols = [s for s in occupied_j if responders[s]]
            if not rows or not cols:
                continue
            if len(cols) < len(rows):
                rows, cols = cols, rows
                outer, inner = responders, initiators
                flip = True
            else:
                outer, inner = initiators, responders
                flip = False
            rng = rngs[r]
            inner_rem = [int(inner[s]) for s in cols]
            rem_pool = int(totals[r])
            last = len(rows) - 1
            for m, a in enumerate(rows):
                if m == last:
                    # Final row: both margins sum to the batch size, so
                    # the leftovers are exactly this row — no draw.
                    for b_idx, b in enumerate(cols):
                        x = inner_rem[b_idx]
                        if x:
                            rep_l.append(r)
                            if flip:
                                pair_a_l.append(b)
                                pair_b_l.append(a)
                            else:
                                pair_a_l.append(a)
                                pair_b_l.append(b)
                            sizes_l.append(x)
                    break
                rem_n = int(outer[a])
                rem_p = rem_pool
                for b_idx, b in enumerate(cols):
                    if rem_n == 0:
                        break
                    c = inner_rem[b_idx]
                    if c == 0:
                        continue
                    if c >= rem_p:
                        x = rem_n
                    else:
                        x = int(rng.hypergeometric(c, rem_p - c, rem_n))
                        numpy_draws += 1
                    if x:
                        inner_rem[b_idx] = c - x
                        rep_l.append(r)
                        if flip:
                            pair_a_l.append(b)
                            pair_b_l.append(a)
                        else:
                            pair_a_l.append(a)
                            pair_b_l.append(b)
                        sizes_l.append(x)
                        rem_n -= x
                    rem_p -= c
                rem_pool -= int(outer[a])
        if numpy_draws:
            self._t_numpy.inc(numpy_draws)
            self._numpy._t_draws.inc(numpy_draws)
        return (
            np.asarray(rep_l, dtype=np.int64),
            np.asarray(pair_a_l, dtype=np.int64),
            np.asarray(pair_b_l, dtype=np.int64),
            np.asarray(sizes_l, dtype=np.int64),
        )


# ----------------------------------------------------------------------
# Registry (shared implementation: repro.engine.registry)
# ----------------------------------------------------------------------
SamplerLike = Union[str, SamplerPolicy, None]

#: Policy resolved when ``sampler=None`` is requested.
DEFAULT_SAMPLER = "auto"

_REGISTRY: Registry[SamplerPolicy] = Registry(
    "sampler", SamplerPolicy, DEFAULT_SAMPLER
)

#: Add a sampler-policy factory under a name.
register = _REGISTRY.register
#: Sorted names of all registered sampler policies.
available = _REGISTRY.available
#: Instantiate the sampler policy registered under a name.
get = _REGISTRY.get
#: Coerce a name, instance, or None to a SamplerPolicy instance.
resolve = _REGISTRY.resolve

register(NumpySampler.name, NumpySampler)
register(SplittingSampler.name, SplittingSampler)
register(RejectionSampler.name, RejectionSampler)
register(AutoSampler.name, AutoSampler)
