"""Measured dispatch plans for the adaptive (``"auto"``) sampler policy.

The adaptive policy routes every unit of work — one contingency row, or
one subtree of a multivariate splitting reduction — to whichever
generator is cheaper for *that unit*:

* **numpy's C generator** (``Generator.multivariate_hypergeometric``)
  whenever the unit's pool total is inside numpy's range, and
* the **level-batched rejection construction**
  (:meth:`~repro.engine.sampling.hypergeometric.LargeNHypergeometric.table`
  / :meth:`~repro.engine.sampling.hypergeometric.LargeNHypergeometric.
  univariate`) for out-of-range totals or tables wider than the
  measured crossover.

Calibration (``benchmarks/sampler_dispatch.py``, numpy 2.4, reference
CI hardware, 2026-08): per-row numpy beat the level-batched table at
**every** in-range configuration measured — square tables from
4×4 to 1024×1024 and skewed/sparse shapes up to 1024×16384, thin and
heavy pools alike, by 5×–49×.  The batched construction only wins when
a row's pool total is outside numpy's range.  The shipped
:data:`CONTINGENCY_WIDTH_CROSSOVER` is therefore ``None`` (no in-range
width routes to the batched path); the constant stays a constructor
knob on :class:`~repro.engine.sampling.policy.AutoSampler` so the
benchmark harness can re-measure it per machine and tests can force
mixed dispatch at small scale.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

#: Occupied-column count above which a whole in-range contingency table
#: is routed to the level-batched construction instead of per-row numpy
#: draws.  ``None`` disables the width route: on the reference hardware
#: numpy's C generator won at every width measured (see module
#: docstring), so only out-of-range pool totals route to the batched
#: path by default.
CONTINGENCY_WIDTH_CROSSOVER: Optional[int] = None


def plan_rows(
    margins: np.ndarray,
    pool_total: int,
    width: int,
    *,
    numpy_max: int,
    width_crossover: Optional[int] = CONTINGENCY_WIDTH_CROSSOVER,
) -> Tuple[np.ndarray, int]:
    """Partition a contingency table's rows between the two generators.

    ``margins`` are the occupied row margins, ``pool_total`` their sum
    (the batch size), ``width`` the occupied column count.  Returns
    ``(order, split)``: rows ``order[:split]`` must be drawn jointly by
    the level-batched construction (the pool still ahead of them is at
    or above ``numpy_max``, or the table is wider than the crossover);
    rows ``order[split:]`` can go to numpy's C generator one row at a
    time, in their natural order.

    The batched prefix takes the *largest* margins first: each drawn row
    leaves the pool, so spending the big rows while the pool is
    out-of-range anyway shrinks it below ``numpy_max`` in the fewest
    rows and hands the most rows to the cheaper generator.  When the
    pool starts in range the plan is the identity with ``split == 0`` —
    per-row numpy in natural order, bit-identical to the plain numpy
    policy's contingency stream.
    """
    margins = np.asarray(margins, dtype=np.int64)
    if margins.size == 0:
        return np.arange(0), 0
    if width_crossover is not None and width > width_crossover:
        return np.arange(margins.size), margins.size
    if pool_total < numpy_max:
        return np.arange(margins.size), 0
    order = np.argsort(-margins, kind="stable")
    # Pool total still ahead of each planned row, in plan order.
    ahead = pool_total - np.concatenate(
        ([0], np.cumsum(margins[order][:-1]))
    )
    split = int((ahead >= numpy_max).sum())
    return order, split
