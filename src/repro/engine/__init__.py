"""Simulation engine for population protocols.

Public surface:

* :class:`PopulationConfig` / :class:`CountConfig` — initial opinion
  assignments (per-agent vs. count-native O(k) builds).
* :class:`Protocol` — the vectorized transition-function interface.
* :mod:`repro.engine.scheduler` — the interaction-law registry
  (``"sequential"`` / ``"birthday"`` / ``"matching"``: exact pairwise,
  exact count-space birthday batches, well-mixed approximation),
  selected via ``simulate(..., scheduler=...)``.
* :func:`simulate` / :class:`RunResult` — the run loop and its outcome.
* :mod:`repro.engine.backends` — execution strategies: per-agent arrays
  (``"agents"``) vs. count-vector simulation (``"counts"``), selected via
  ``simulate(..., backend=...)``; :class:`CountModel` is the transition
  table protocols export for the count path.
* :mod:`repro.engine.sampling` — count-space sampler policies
  (``"numpy"``, ``"splitting"``, ``"auto"``), selected via
  ``simulate(..., sampler=...)``; lifts population limits to n >= 10^9.
* :class:`ProbeRecorder` — time-series sampling.
"""

from . import backends, sampling, scheduler
from .backends import AgentArrayBackend, Backend, CountBackend, CountModel
from .errors import (
    BackendUnsupported,
    ConfigurationError,
    InvariantViolation,
    ReproError,
    SamplerUnsupported,
    SimulationError,
)
from .population import BasePopulation, CountConfig, PopulationConfig, is_count_native
from .protocol import Protocol, require_disjoint
from .recorder import ProbeRecorder, Recorder
from .rng import make_rng, seeds_for, spawn_streams
from .scheduler import (
    BirthdayScheduler,
    MatchingScheduler,
    Scheduler,
    SchedulerLike,
    SequentialScheduler,
)
from .simulation import RunResult, simulate

__all__ = [
    "AgentArrayBackend",
    "Backend",
    "BackendUnsupported",
    "BasePopulation",
    "BirthdayScheduler",
    "ConfigurationError",
    "CountBackend",
    "CountConfig",
    "CountModel",
    "backends",
    "sampling",
    "InvariantViolation",
    "MatchingScheduler",
    "PopulationConfig",
    "SamplerUnsupported",
    "is_count_native",
    "ProbeRecorder",
    "Protocol",
    "Recorder",
    "ReproError",
    "RunResult",
    "Scheduler",
    "SchedulerLike",
    "SequentialScheduler",
    "scheduler",
    "SimulationError",
    "make_rng",
    "require_disjoint",
    "seeds_for",
    "simulate",
    "spawn_streams",
]
