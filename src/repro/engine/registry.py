"""The name → factory registry shared by backends and sampler policies.

Both the execution-backend registry (:mod:`repro.engine.backends.base`)
and the sampler-policy registry (:mod:`repro.engine.sampling.policy`)
follow the same protocol: register factories under names at import time,
list them for CLIs, instantiate by name, and coerce a
name-or-instance-or-None argument to an instance.  One generic
implementation keeps their error messages and semantics in lockstep.
"""

from __future__ import annotations

from typing import Callable, Dict, Generic, List, TypeVar

from .errors import ConfigurationError

T = TypeVar("T")


class Registry(Generic[T]):
    """A registry of named factories for one kind of strategy object.

    Args:
        kind: what the entries are, for error messages ("backend", ...).
        base: the class instances must subclass; ``resolve`` passes
            instances of it through unchanged.
        default: the name resolved when ``resolve(None)`` is called.
    """

    def __init__(self, kind: str, base: type, default: str):
        self._kind = kind
        self._base = base
        self.default = default
        self._factories: Dict[str, Callable[[], T]] = {}

    def register(self, name: str, factory: Callable[[], T]) -> None:
        """Add a factory under ``name`` (e.g. at module import time)."""
        if name in self._factories:
            raise ConfigurationError(f"duplicate {self._kind} {name!r}")
        self._factories[name] = factory

    def available(self) -> List[str]:
        """Sorted names of all registered entries."""
        return sorted(self._factories)

    def get(self, name: str) -> T:
        """Instantiate the entry registered under ``name``."""
        try:
            factory = self._factories[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown {self._kind} {name!r}; "
                f"available: {', '.join(self.available())}"
            ) from None
        return factory()

    def resolve(self, value) -> T:
        """Coerce ``value`` (name, instance, or None) to an instance."""
        if value is None:
            return self.get(self.default)
        if isinstance(value, self._base):
            return value
        if isinstance(value, str):
            return self.get(value)
        raise ConfigurationError(
            f"{self._kind} must be a name, a {self._base.__name__} "
            f"instance, or None, got {value!r}"
        )
