"""The simulation loop: drive a protocol on a population until convergence.

Parallel time is interactions divided by ``n`` throughout, matching the
paper's convention (Section 1: "in expectation each agent takes part in
Θ(1) interactions per time unit").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

from .. import telemetry as telemetry_module
from . import scheduler as scheduler_registry
from .errors import ConfigurationError
from .population import BasePopulation
from .protocol import Protocol
from .recorder import Recorder
from .rng import RngLike, make_rng
from .scheduler import SchedulerLike

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from .backends import BackendLike
    from .sampling import SamplerLike


@dataclass
class RunResult:
    """Outcome of one simulated run.

    ``correct`` is None when the population has no unique plurality opinion
    (correctness is then undefined, per the paper's assumption of bias >= 1).
    ``failure`` distinguishes the w.h.p. failure modes: "timeout", a
    protocol-reported reason (e.g. "plurality_pruned"), or
    "divergent_output" when convergence was claimed without agreement.
    """

    protocol: str
    n: int
    k: int
    interactions: int
    parallel_time: float
    converged: bool
    output_opinion: Optional[int]
    expected_opinion: Optional[int]
    correct: Optional[bool]
    failure: Optional[str] = None
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def succeeded(self) -> bool:
        """Converged to the correct plurality opinion."""
        return self.converged and bool(self.correct)

    def describe(self) -> str:
        """One-line human-readable summary."""
        status = "ok" if self.succeeded else (self.failure or "wrong")
        return (
            f"{self.protocol}: n={self.n} k={self.k} "
            f"time={self.parallel_time:.1f} out={self.output_opinion} "
            f"[{status}]"
        )


def simulate(
    protocol: Protocol,
    config: BasePopulation,
    *,
    seed: RngLike = None,
    scheduler: SchedulerLike = None,
    backend: "BackendLike" = None,
    sampler: "SamplerLike" = None,
    max_parallel_time: float = 1e5,
    check_every_parallel_time: float = 1.0,
    recorder: Optional[Recorder] = None,
    record_every_parallel_time: Optional[float] = None,
    check_invariants: bool = False,
    state_out: Optional[list] = None,
    telemetry: "telemetry_module.TelemetryLike" = None,
    table_cache=None,
) -> RunResult:
    """Run ``protocol`` on ``config`` until convergence, failure, or timeout.

    Args:
        seed: int / Generator / None; all randomness of the run.
        scheduler: interaction law — a registry name (``"sequential"``,
            ``"birthday"``, ``"matching"``), a
            :class:`~repro.engine.scheduler.Scheduler` instance, or None
            for the exact sequential default.  See
            :mod:`repro.engine.scheduler` for the trade-offs.
        backend: execution strategy — a registry name (``"agents"``,
            ``"counts"``), a :class:`~repro.engine.backends.Backend`
            instance, or None for the default per-agent array path.  See
            :mod:`repro.engine.backends` for the trade-offs.
        sampler: count-space sampler policy (``"numpy"``, ``"splitting"``,
            ``"auto"``, or a :class:`~repro.engine.sampling.SamplerPolicy`
            instance) for backends that sample in count space; None keeps
            the backend's own policy.  See :mod:`repro.engine.sampling`.
        max_parallel_time: run budget; exceeding it records failure
            ``"timeout"``.
        check_every_parallel_time: cadence of convergence/failure checks.
        recorder: optional :class:`Recorder` sampling the state.
        record_every_parallel_time: recorder cadence override (defaults to
            the recorder's own ``every_parallel_time`` if it has one, else
            the check cadence).
        check_invariants: call the protocol's invariant hook at every check
            (slow; meant for tests).
        state_out: if a list is passed, the final state object is appended
            to it (for post-mortem inspection in tests and examples).
        telemetry: a :class:`~repro.telemetry.Telemetry` registry to
            collect hot-path metrics and lifecycle events into, ``True``
            for a fresh one, or None for the ambient registry (disabled
            unless installed via :func:`repro.telemetry.use`).  See
            docs/OBSERVABILITY.md.
        table_cache: shared transition-table store for dynamically derived
            count models — a :class:`~repro.cache.TableStore`, a directory
            path, ``True`` for the default ``cache/`` location, ``False``
            to disable, or None to follow the ``REPRO_TABLE_CACHE``
            environment variable.  Only the counts backend uses it.  See
            docs/CACHING.md.

    Returns:
        A populated :class:`RunResult`.
    """
    if max_parallel_time <= 0:
        raise ConfigurationError("max_parallel_time must be positive")
    if check_every_parallel_time <= 0:
        raise ConfigurationError("check_every_parallel_time must be positive")

    from . import backends as backend_registry

    runner = backend_registry.resolve(backend)
    if sampler is not None:
        runner = runner.with_sampler(sampler)
    rng = make_rng(seed)
    scheduler = scheduler_registry.resolve(scheduler)
    tel = telemetry_module.resolve(telemetry)
    if tel:
        scheduler.attach_telemetry(tel)
        tel.event(
            "run_start",
            protocol=protocol.name,
            n=int(config.n),
            k=int(config.k),
            backend=runner.name,
            scheduler=scheduler.name,
        )
    started = time.perf_counter()
    result = runner.run(
        protocol,
        config,
        rng=rng,
        scheduler=scheduler,
        max_parallel_time=max_parallel_time,
        check_every_parallel_time=check_every_parallel_time,
        recorder=recorder,
        record_every_parallel_time=record_every_parallel_time,
        check_invariants=check_invariants,
        state_out=state_out,
        telemetry=tel,
        table_cache=table_cache,
    )
    if tel:
        tel.event(
            "run_end",
            protocol=result.protocol,
            converged=result.converged,
            failure=result.failure,
            interactions=result.interactions,
            parallel_time=result.parallel_time,
            elapsed_seconds=time.perf_counter() - started,
        )
    return result
