"""The simulation loop: drive a protocol on a population until convergence.

Parallel time is interactions divided by ``n`` throughout, matching the
paper's convention (Section 1: "in expectation each agent takes part in
Θ(1) interactions per time unit").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from .errors import ConfigurationError
from .population import PopulationConfig
from .protocol import Protocol
from .recorder import Recorder
from .rng import RngLike, make_rng
from .scheduler import Scheduler, SequentialScheduler


@dataclass
class RunResult:
    """Outcome of one simulated run.

    ``correct`` is None when the population has no unique plurality opinion
    (correctness is then undefined, per the paper's assumption of bias >= 1).
    ``failure`` distinguishes the w.h.p. failure modes: "timeout", a
    protocol-reported reason (e.g. "plurality_pruned"), or
    "divergent_output" when convergence was claimed without agreement.
    """

    protocol: str
    n: int
    k: int
    interactions: int
    parallel_time: float
    converged: bool
    output_opinion: Optional[int]
    expected_opinion: Optional[int]
    correct: Optional[bool]
    failure: Optional[str] = None
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def succeeded(self) -> bool:
        """Converged to the correct plurality opinion."""
        return self.converged and bool(self.correct)

    def describe(self) -> str:
        """One-line human-readable summary."""
        status = "ok" if self.succeeded else (self.failure or "wrong")
        return (
            f"{self.protocol}: n={self.n} k={self.k} "
            f"time={self.parallel_time:.1f} out={self.output_opinion} "
            f"[{status}]"
        )


def simulate(
    protocol: Protocol,
    config: PopulationConfig,
    *,
    seed: RngLike = None,
    scheduler: Optional[Scheduler] = None,
    max_parallel_time: float = 1e5,
    check_every_parallel_time: float = 1.0,
    recorder: Optional[Recorder] = None,
    record_every_parallel_time: Optional[float] = None,
    check_invariants: bool = False,
    state_out: Optional[list] = None,
) -> RunResult:
    """Run ``protocol`` on ``config`` until convergence, failure, or timeout.

    Args:
        seed: int / Generator / None; all randomness of the run.
        scheduler: defaults to the exact :class:`SequentialScheduler`.
        max_parallel_time: run budget; exceeding it records failure
            ``"timeout"``.
        check_every_parallel_time: cadence of convergence/failure checks.
        recorder: optional :class:`Recorder` sampling the state.
        record_every_parallel_time: recorder cadence override (defaults to
            the recorder's own ``every_parallel_time`` if it has one, else
            the check cadence).
        check_invariants: call the protocol's invariant hook at every check
            (slow; meant for tests).
        state_out: if a list is passed, the final state object is appended
            to it (for post-mortem inspection in tests and examples).

    Returns:
        A populated :class:`RunResult`.
    """
    if max_parallel_time <= 0:
        raise ConfigurationError("max_parallel_time must be positive")
    if check_every_parallel_time <= 0:
        raise ConfigurationError("check_every_parallel_time must be positive")

    rng = make_rng(seed)
    scheduler = scheduler or SequentialScheduler()
    n = config.n
    state = protocol.init_state(config, rng)

    budget = int(max_parallel_time * n)
    check_interval = max(1, int(check_every_parallel_time * n))
    if record_every_parallel_time is not None:
        record_interval: Optional[int] = max(1, int(record_every_parallel_time * n))
    elif recorder is not None:
        cadence = getattr(recorder, "every_parallel_time", check_every_parallel_time)
        record_interval = max(1, int(cadence * n))
    else:
        record_interval = None

    if recorder is not None:
        recorder.on_start(state, n)

    interactions = 0
    next_check = check_interval
    next_record = record_interval if record_interval is not None else None
    converged = False
    failure: Optional[str] = None

    for u, v in scheduler.batches(n, rng):
        remaining = budget - interactions
        if remaining <= 0:
            break
        if u.size > remaining:
            u, v = u[:remaining], v[:remaining]
        protocol.interact(state, u, v, rng)
        interactions += int(u.size)

        if next_record is not None and interactions >= next_record:
            recorder.on_sample(interactions, state)  # type: ignore[union-attr]
            next_record += record_interval  # type: ignore[operator]

        if interactions >= next_check:
            if check_invariants:
                protocol.check_invariants(state)
            failure = protocol.failure(state)
            if failure is not None:
                break
            if protocol.has_converged(state):
                converged = True
                break
            next_check += check_interval

    if not converged and failure is None:
        failure = protocol.failure(state) or (
            "converged" if protocol.has_converged(state) else "timeout"
        )
        if failure == "converged":
            converged = True
            failure = None

    output_opinion: Optional[int] = None
    if converged:
        outputs = protocol.output(state)
        values = np.unique(outputs)
        if values.size == 1 and values[0] != 0:
            output_opinion = int(values[0])
        else:
            converged = False
            failure = "divergent_output"

    expected = config.plurality_opinion if config.has_unique_plurality else None
    correct: Optional[bool] = None
    if expected is not None:
        correct = converged and output_opinion == expected

    if recorder is not None:
        recorder.on_end(interactions, state)
    if state_out is not None:
        state_out.append(state)

    return RunResult(
        protocol=protocol.name,
        n=n,
        k=config.k,
        interactions=interactions,
        parallel_time=interactions / n,
        converged=converged,
        output_opinion=output_opinion,
        expected_opinion=expected,
        correct=correct,
        failure=failure,
        extras={k2: float(v2) for k2, v2 in protocol.progress(state).items()},
    )
