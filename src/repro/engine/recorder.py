"""Time-series recording during simulation runs.

Recorders observe the state at a configurable parallel-time cadence.  They
power the experiment harness's trajectory plots and the examples' progress
reports without protocols having to know about measurement at all.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional

import numpy as np

Probe = Callable[[Any], float]


class Recorder:
    """No-op base recorder."""

    def on_start(self, state: Any, n: int) -> None:
        """Called once before the first interaction."""

    def on_sample(self, interactions: int, state: Any) -> None:
        """Called at the sampling cadence chosen by the simulation loop."""

    def on_end(self, interactions: int, state: Any) -> None:
        """Called once after the run stops (converged, failed, or timeout)."""


class ProbeRecorder(Recorder):
    """Samples named scalar probes into in-memory time series.

    Args:
        probes: mapping from series name to a callable ``state -> float``.
        protocol: if given, the protocol's :meth:`progress` dict is sampled
            too (its keys become series names).
        every_parallel_time: sampling cadence in parallel-time units.
    """

    def __init__(
        self,
        probes: Optional[Mapping[str, Probe]] = None,
        protocol: Any = None,
        every_parallel_time: float = 1.0,
    ):
        if every_parallel_time <= 0:
            raise ValueError("every_parallel_time must be positive")
        self._probes = dict(probes or {})
        self._protocol = protocol
        self.every_parallel_time = float(every_parallel_time)
        self.times: List[float] = []
        self.series: Dict[str, List[float]] = {}
        self._n = 0

    def on_start(self, state: Any, n: int) -> None:
        self._n = n
        self._sample(0, state)

    def on_sample(self, interactions: int, state: Any) -> None:
        self._sample(interactions, state)

    def on_end(self, interactions: int, state: Any) -> None:
        self._sample(interactions, state)

    def _sample(self, interactions: int, state: Any) -> None:
        self.times.append(interactions / self._n if self._n else 0.0)
        values: Dict[str, float] = {}
        if self._protocol is not None:
            values.update(self._protocol.progress(state))
        for name, probe in self._probes.items():
            values[name] = float(probe(state))
        for name, value in values.items():
            self.series.setdefault(name, []).append(float(value))

    def as_arrays(self) -> Dict[str, np.ndarray]:
        """Return the recorded series as numpy arrays, keyed by name.

        The sampling times (parallel time units) are under ``"time"``.
        """
        out: Dict[str, np.ndarray] = {"time": np.asarray(self.times)}
        for name, values in self.series.items():
            out[name] = np.asarray(values)
        return out
