"""Ensemble count engine: whole replicate fleets through one numpy hot loop.

:func:`run_ensemble` advances ``R`` independent replicas of one
experimental point in lockstep: the population state is a stacked
``(R, num_states)`` count matrix, the scheduler streams per-replica
batch sizes as arrays (:meth:`~repro.engine.scheduler.Scheduler.
count_batch_sizes`), the sampler serves all still-active replicas
through its replica-axis entry points (``draw_stack`` /
``contingency_stack``), and transitions land stack-wide via
``apply_groups_stack``.  Finished replicas are dropped from the active
set (compaction), so a converged replica stops costing anything.

Why this is fast: a serial ``replicate()`` loop pays the full per-batch
Python/numpy dispatch overhead *per replica* — at n = 10^5..10^7 the
count backend's hot loop spends most of its wall time in call overhead,
not arithmetic.  The ensemble loop keeps only the per-replica work that
is irreducibly per-replica (a handful of C-generator calls per batch:
two margin draws, the occupied contingency rows, the randomized-entry
multinomials) and shares *everything* else — batch-size inversion,
dispatch classification, participant arithmetic, the transition
scatters — across the whole stack (benchmark EB7).

Determinism contract: replica ``r`` consumes randomness exclusively
from its own generator, seeded by the same
:func:`~repro.engine.rng.seeds_for` spawn a serial ``replicate()`` run
uses, in the same per-replica call order.  Results are therefore a pure
function of ``(base_seed, replica index)`` — independent of the
ensemble size, of how the active set compacts, and of which other
replicas share the stack.  The *guaranteed* equivalence to per-replica
runs is at the law level (convergence-time and winner distributions;
see docs/ENSEMBLE.md and the KS/chi-square battery in
``tests/test_ensemble.py``), explicitly **not** bit-level: the stacked
entry points are free to reorder or re-batch draws within a replica's
law, and future vectorization must not be constrained by incidental
bit-identity.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from .. import telemetry as telemetry_module
from ..cache.store import StoreLike, resolve_store
from . import sampling
from . import scheduler as scheduler_module
from .backends.base import build_run_result, run_intervals
from .backends.counts import CountBackend
from .backends.model import BaseCountModel, DynamicCountModel
from .errors import BackendUnsupported, ConfigurationError
from .population import BasePopulation
from .protocol import Protocol
from .rng import make_rng, seeds_for
from .simulation import RunResult

ProtocolFactory = Callable[[], Protocol]
ConfigFactory = Callable[[int], BasePopulation]


def run_ensemble(
    protocol_factory: ProtocolFactory,
    config_factory: ConfigFactory,
    *,
    replications: Optional[int] = None,
    seeds: Optional[Sequence[int]] = None,
    base_seed: int = 0,
    indices: Optional[Sequence[int]] = None,
    scheduler: "scheduler_module.SchedulerLike" = None,
    scheduler_factory: Optional[Callable[[], scheduler_module.Scheduler]] = None,
    sampler: "sampling.SamplerLike" = None,
    max_parallel_time: Optional[float] = None,
    check_every_parallel_time: float = 2.0,
    check_invariants: bool = False,
    telemetry: "telemetry_module.TelemetryLike" = None,
    table_cache: StoreLike = None,
) -> List[RunResult]:
    """Run seeded replicas of one experimental point as a lockstep stack.

    Mirrors :func:`repro.analysis.sweep.replicate` — same seed spawn
    (``seeds_for(base_seed, replications)``), same per-replica config
    factory, same defaulting (``MatchingScheduler(0.25)``, the
    protocol's own time budget) — but executes every replica through
    the single vectorized loop described in the module docstring and
    always on the count path (the protocol must export a count model).

    ``seeds`` overrides the spawn with explicit per-replica seeds (the
    campaign group runner threads per-cell run seeds through here);
    ``indices`` overrides the per-replica config-factory arguments
    (``replicate_parallel`` chunks pass global replica indices so
    workload randomization matches the serial layout).  All replicas
    must share one population size ``n`` and one count-model shape —
    they are replicas of *one* experimental point.

    Returns one :class:`RunResult` per replica, in replica order,
    assembled by the same epilogue rules as the count backend
    (timeout/late-convergence resolution, output-opinion agreement,
    ``correct`` vs the config's plurality).
    """
    if seeds is None:
        if replications is None or replications < 1:
            raise ConfigurationError(
                "run_ensemble needs replications >= 1 (or explicit seeds)"
            )
        seeds = seeds_for(base_seed, replications)
    elif replications is not None and replications != len(seeds):
        raise ConfigurationError(
            f"replications={replications} disagrees with {len(seeds)} seeds"
        )
    num_replicas = len(seeds)
    if num_replicas < 1:
        raise ConfigurationError("run_ensemble needs at least one replica")
    if indices is None:
        indices = range(num_replicas)
    elif len(indices) != num_replicas:
        raise ConfigurationError(
            f"{len(indices)} config indices for {num_replicas} replicas"
        )
    if scheduler is not None and scheduler_factory is not None:
        raise ValueError("pass scheduler or scheduler_factory, not both")
    if scheduler is None:
        sched = (
            scheduler_factory()
            if scheduler_factory
            else scheduler_module.MatchingScheduler(0.25)
        )
    else:
        sched = scheduler_module.resolve(scheduler)
    if getattr(sched, "count_semantics", None) != "batched":
        raise BackendUnsupported(
            f"ensemble mode runs the count backend's batched law only; "
            f"scheduler {type(sched).__name__} declares "
            f"count_semantics={getattr(sched, 'count_semantics', None)!r} "
            f"(use 'matching' or 'birthday')"
        )
    samp = sampling.resolve(sampler)
    tel = telemetry_module.resolve(telemetry)

    protocol = protocol_factory()
    configs = [config_factory(int(i)) for i in indices]
    population_sizes = {config.n for config in configs}
    if len(population_sizes) != 1:
        raise ConfigurationError(
            f"ensemble replicas must share one population size, "
            f"got {sorted(population_sizes)}"
        )
    n = population_sizes.pop()
    if n < 2:
        raise BackendUnsupported(f"need at least 2 agents, got {n}")
    model = protocol.count_model(configs[0])
    if model is None:
        raise BackendUnsupported(
            f"protocol {protocol.name!r} does not export a count model; "
            f"ensemble mode has no per-agent path — use replicate() on "
            f"the 'agents' backend instead"
        )

    # Table cache: warm-start exactly like CountBackend.run — entries are
    # consulted, never required, and the run is bit-identical warm or cold.
    store = resolve_store(table_cache)
    signature = None
    if store is not None and isinstance(model, DynamicCountModel):
        signature = model.quotient_signature()
    if signature:
        if tel.enabled:
            store.attach_telemetry(tel)
        model.warm_start(store.get(signature))
    if tel.enabled:
        model.attach_telemetry(tel)
        samp.attach_telemetry(tel)
        sched.attach_telemetry(tel)
    c_batches = tel.counter("ensemble.batches")
    c_replicas = tel.counter("ensemble.replicas")
    h_active = tel.histogram("ensemble.active_per_batch")
    c_compact = tel.counter("ensemble.compactions")
    events_on = tel.events is not None
    if events_on:
        tel.event(
            "run_start",
            protocol=protocol.name,
            n=int(n),
            backend="counts",
            scheduler=sched.name,
            ensemble=num_replicas,
        )

    budgets = np.empty(num_replicas, dtype=np.int64)
    check_interval = 0
    for r, config in enumerate(configs):
        budget = max_parallel_time
        if budget is None:
            # The analysis layer owns the protocol-default budget rule;
            # imported lazily so the engine package stays import-acyclic.
            from ..analysis.sweep import _default_budget

            budget = _default_budget(protocol, config)
        budgets[r], check_interval, _ = run_intervals(
            n,
            max_parallel_time=budget,
            check_every_parallel_time=check_every_parallel_time,
            recorder=None,
            record_every_parallel_time=None,
        )

    rngs = [make_rng(int(seed)) for seed in seeds]
    vectors = [model.initial_counts(config).astype(np.int64) for config in configs]
    counts = np.zeros((num_replicas, model.num_states), dtype=np.int64)
    for r, vector in enumerate(vectors):
        counts[r, : vector.shape[0]] = vector

    interactions = np.zeros(num_replicas, dtype=np.int64)
    next_check = np.full(num_replicas, check_interval, dtype=np.int64)
    converged = np.zeros(num_replicas, dtype=bool)
    failures: List[Optional[str]] = [None] * num_replicas
    last_outputs = np.zeros_like(counts)
    active = np.arange(num_replicas)
    first = True
    c_replicas.inc(num_replicas)
    next_heartbeat = time.monotonic() + tel.heartbeat_seconds if events_on else 0.0

    while active.size:
        # Retire replicas whose budget is spent (the epilogue below
        # decides timeout vs late convergence) *before* drawing batch
        # sizes, so a retired replica's rng sees exactly the draws its
        # serial twin would.
        remaining = budgets[active] - interactions[active]
        alive = remaining > 0
        if not alive.all():
            active = active[alive]
            remaining = remaining[alive]
            c_compact.inc()
            if active.size == 0:
                break
        active_rngs = [rngs[r] for r in active]
        sizes, carry_first = sched.count_batch_sizes(n, active_rngs, first)
        first = False
        sizes = np.minimum(sizes, remaining)
        carry = last_outputs[active] if carry_first else None
        stepped, outputs = _step_stack(
            model, samp, counts[active], sizes, active_rngs, carry, n
        )
        if stepped.shape[1] != counts.shape[1]:
            grow = stepped.shape[1] - counts.shape[1]
            counts = np.pad(counts, ((0, 0), (0, grow)))
            last_outputs = np.pad(last_outputs, ((0, 0), (0, grow)))
        counts[active] = stepped
        last_outputs[active] = outputs
        interactions[active] += sizes
        c_batches.inc()
        h_active.observe(active.size)

        due = np.flatnonzero(interactions[active] >= next_check[active])
        if due.size:
            keep = np.ones(active.size, dtype=bool)
            for idx in due:
                r = int(active[idx])
                failure, is_converged = CountBackend._check(
                    model, counts[r], n, check_invariants
                )
                if failure is not None:
                    failures[r] = failure
                    keep[idx] = False
                    if tel:
                        tel.count(f"guard.{failure}")
                        tel.event(
                            "guard_trip",
                            failure=failure,
                            interactions=int(interactions[r]),
                            replica=r,
                        )
                elif is_converged:
                    converged[r] = True
                    keep[idx] = False
                else:
                    next_check[r] += check_interval
            if not keep.all():
                active = active[keep]
                c_compact.inc()
            if events_on:
                now = time.monotonic()
                if now >= next_heartbeat:
                    tel.event(
                        "heartbeat",
                        interactions=int(interactions.sum()),
                        active=int(active.size),
                    )
                    next_heartbeat = now + tel.heartbeat_seconds

    if tel.enabled:
        tel.count("engine.interactions", int(interactions.sum()))
    if signature and model._derive_count:
        store.put(model.export_table())

    dynamic_summary = None
    if isinstance(model, DynamicCountModel):
        dynamic_summary = model.summary()
        for key, value in dynamic_summary.items():
            tel.meta_sum(f"count_model.{key}", value)

    results: List[RunResult] = []
    for r in range(num_replicas):
        counts_r = counts[r]
        replica_converged = bool(converged[r])
        failure = failures[r]
        if not replica_converged and failure is None:
            failure = model.failure(counts_r) or (
                "converged" if model.converged(counts_r) else "timeout"
            )
            if failure == "converged":
                replica_converged = True
                failure = None
        output_opinion: Optional[int] = None
        if replica_converged:
            output_opinion = model.output_opinion(counts_r)
            if output_opinion is None:
                replica_converged = False
                failure = "divergent_output"
        extras = model.progress(counts_r)
        if dynamic_summary is not None:
            # Shared-model totals (the ensemble derives each pair once
            # for the whole stack), unlike serial runs where every
            # replica re-derives — part of the documented law-level-only
            # equivalence (docs/ENSEMBLE.md).
            extras["count_model.derived_pairs"] = dynamic_summary["derived_pairs"]
            extras["count_model.interned_states"] = dynamic_summary[
                "interned_states"
            ]
        results.append(
            build_run_result(
                protocol,
                configs[r],
                interactions=int(interactions[r]),
                converged=replica_converged,
                failure=failure,
                output_opinion=output_opinion,
                extras=extras,
            )
        )
    if events_on:
        tel.event(
            "run_end",
            converged=int(sum(result.converged for result in results)),
            interactions=int(interactions.sum()),
            ensemble=num_replicas,
        )
    return results


def _step_stack(
    model: BaseCountModel,
    sampler: "sampling.SamplerPolicy",
    counts: np.ndarray,
    sizes: np.ndarray,
    rngs: Sequence[np.random.Generator],
    carry: Optional[np.ndarray],
    n: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample and apply one lockstep batch across the active stack.

    The stacked twin of :meth:`CountBackend._step_batch`: per active
    replica ``a``, ``sizes[a]`` disjoint interactions are realized by
    two margin draws and a sparse contingency table, with the birthday
    carry pair (``carry`` is the previous batch's post-transition
    outcome stack) drawn per replica through the same
    :meth:`CountBackend._carry_pair` mixture.  ``counts`` is a private
    ``(A, S)`` slice (fancy-indexed copy) and may be mutated freely.

    Returns ``(after, outputs)``: the post-batch stack and the per-
    replica post-transition participant counts (the collision pool of a
    following carried pair).
    """
    num_active = counts.shape[0]
    pool = counts
    pool_totals = np.full(num_active, n, dtype=np.int64)
    rest = sizes.astype(np.int64, copy=True)
    firsts: Optional[np.ndarray] = None
    if carry is not None:
        firsts = np.full((num_active, 2), -1, dtype=np.int64)
        pool = counts.copy()
        for a in range(num_active):
            if sizes[a] < 1:
                continue
            first_i, first_j = CountBackend._carry_pair(
                counts[a], carry[a], rngs[a]
            )
            firsts[a, 0] = first_i
            firsts[a, 1] = first_j
            pool[a, first_i] -= 1
            pool[a, first_j] -= 1
            rest[a] -= 1
            pool_totals[a] -= 2
    initiators = sampler.draw_stack(pool, rest, rngs, totals=pool_totals)
    responders = sampler.draw_stack(
        pool - initiators, rest, rngs, totals=pool_totals - rest
    )
    rep, pair_i, pair_j, group_sizes = sampler.contingency_stack(
        initiators, responders, rngs, totals=rest
    )
    participants = initiators + responders
    if firsts is not None:
        group_sizes = group_sizes.copy()
        extra_rep, extra_i, extra_j = [], [], []
        for a in range(num_active):
            first_i, first_j = int(firsts[a, 0]), int(firsts[a, 1])
            if first_i < 0:
                continue
            participants[a, first_i] += 1
            participants[a, first_j] += 1
            hit = np.flatnonzero(
                (rep == a) & (pair_i == first_i) & (pair_j == first_j)
            )
            if hit.size:
                group_sizes[hit[0]] += 1
            else:
                extra_rep.append(a)
                extra_i.append(first_i)
                extra_j.append(first_j)
        if extra_rep:
            rep = np.concatenate([rep, np.asarray(extra_rep, dtype=np.int64)])
            pair_i = np.concatenate([pair_i, np.asarray(extra_i, dtype=np.int64)])
            pair_j = np.concatenate([pair_j, np.asarray(extra_j, dtype=np.int64)])
            group_sizes = np.concatenate(
                [group_sizes, np.ones(len(extra_rep), dtype=np.int64)]
            )
    new_counts = counts - participants
    rest_counts = new_counts.copy()
    after = model.apply_groups_stack(
        rep, pair_i, pair_j, group_sizes, new_counts, rngs
    )
    if rest_counts.shape[1] < after.shape[1]:
        rest_counts = np.pad(
            rest_counts, ((0, 0), (0, after.shape[1] - rest_counts.shape[1]))
        )
    return after, after - rest_counts
