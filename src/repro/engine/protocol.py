"""The protocol interface shared by all population protocols in this package.

A population protocol is a transition function over pairs of agent states.
For speed, transitions here are *vectorized*: :meth:`Protocol.interact`
receives parallel index arrays ``u`` (initiators) and ``v`` (responders)
whose pairs are guaranteed pairwise disjoint (no agent appears twice across
the whole batch).  Because a transition only reads and writes the states of
the two participating agents, disjoint interactions commute, so applying a
disjoint batch in one vectorized call is *exactly* equivalent to applying
the same interactions one at a time (see DESIGN.md Section 4.1).

State is protocol-defined: any object holding per-agent numpy arrays.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Dict, Optional

import numpy as np

from .population import PopulationConfig

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from .backends.model import CountModel


class Protocol(ABC):
    """Abstract base class for vectorized population protocols."""

    #: Human-readable protocol name (used in results and tables).
    name: str = "protocol"

    @abstractmethod
    def init_state(self, config: PopulationConfig, rng: np.random.Generator) -> Any:
        """Create per-agent state for the initial configuration."""

    @abstractmethod
    def interact(
        self,
        state: Any,
        u: np.ndarray,
        v: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        """Apply the transition function to the disjoint pairs ``(u_i, v_i)``.

        ``u`` holds initiators and ``v`` responders; both are int index
        arrays of equal length whose union contains no repeated agent.
        Implementations mutate ``state`` in place.
        """

    @abstractmethod
    def has_converged(self, state: Any) -> bool:
        """True once the population reached (and will stay in) its target.

        Called periodically by the simulation loop; must be cheap (O(n)).
        """

    @abstractmethod
    def output(self, state: Any) -> np.ndarray:
        """Per-agent output opinion (int array, 0 where undefined)."""

    # ------------------------------------------------------------------
    # Optional hooks
    # ------------------------------------------------------------------
    def failure(self, state: Any) -> Optional[str]:
        """Protocol-detected failure reason, or None.

        Checked alongside ``has_converged``; a non-None value aborts the
        run and is recorded in the result.  This is how w.h.p. failure
        modes surface (DESIGN.md Section 4.5).
        """
        return None

    def check_invariants(self, state: Any) -> None:
        """Raise :class:`InvariantViolation` if a hard invariant broke.

        Only called from tests and debug runs; production runs skip it.
        """

    def progress(self, state: Any) -> Dict[str, float]:
        """Cheap scalar probes for recorders (phase, actives, ...)."""
        return {}

    def count_model(self, config: PopulationConfig) -> Optional["CountModel"]:
        """Export this protocol as a finite transition table, or None.

        Protocols whose per-agent state ranges over a small finite set
        return a :class:`~repro.engine.backends.model.CountModel` so the
        count backend can simulate them on a state-count vector
        (O(|states|²) per interaction batch instead of O(n) memory).
        The default is None: the protocol can only run on the agent-array
        backend.
        """
        return None


def require_disjoint(u: np.ndarray, v: np.ndarray) -> None:
    """Assert that a batch of pairs is pairwise disjoint (debug helper)."""
    combined = np.concatenate([u, v])
    if np.unique(combined).size != combined.size:
        from .errors import SimulationError

        raise SimulationError("scheduler produced overlapping pairs in a batch")
