"""SimpleAlgorithm — exact plurality consensus for ordered opinions.

Implements Section 3 of the paper (Algorithms 1–4 and the aftermath of
Section 3.4): ``k − 1`` tournaments between a defender and a challenger
opinion, synchronized by the leaderless phase clock, with the exact
majority decided by the cancel/split protocol among player agents.

Theorem 1(1): with ``k <= n/40`` opinions numbered ``1..k`` this converges
w.h.p. to the plurality opinion in O(k · log n) parallel time using
O(k + log n) states — even when the initial bias is 1.

The transition function is written vectorized over disjoint interaction
pairs; all rule predicates are evaluated on a snapshot of the
pre-interaction state, so a batched application equals the sequential one
(DESIGN.md §4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

from ..balancing.averaging import averaging_step
from ..clocks.leaderless import leaderless_clock_step
from ..engine.errors import ConfigurationError, InvariantViolation
from ..engine.population import PopulationConfig
from ..engine.protocol import Protocol
from ..majority.cancel_split import cancel_split_step, resolve_step
from .common import (
    CANCEL_PM,
    CLOCK,
    COLLECTOR,
    COUNTING,
    LINEUP_PMS,
    MATCH_PMS,
    PHASES_PER_TOURNAMENT,
    PLAYER,
    POP_A,
    POP_B,
    POP_U,
    RESOLVE_PMS,
    SETUP_PMS,
    TRACKER,
    VERDICT_PMS,
    SimpleParams,
    reroll_roles,
    role_counts,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from .quotient import SimpleQuotientModel


@dataclass
class SimpleState:
    """Per-agent arrays of SimpleAlgorithm.

    ``phase`` is the absolute phase (−1 = initialization); tournament ``t``
    occupies phases ``10t .. 10t+9``.  The ``*_done`` arrays implement the
    paper's "do once per phase" statements by remembering the absolute
    phase in which the action last fired.
    """

    # Shared
    role: np.ndarray
    phase: np.ndarray
    winner: np.ndarray
    opinion: np.ndarray
    # Collector
    tokens: np.ndarray
    defender: np.ndarray
    challenger: np.ndarray
    ell: np.ndarray
    concl_done: np.ndarray
    #: Monotone verdict: the setup phase of the latest tournament known to
    #: have been won by its challenger (−1 if none).  Seeded by B players,
    #: spread by max-epidemic, applied by collectors at tournament entry.
    bwin_tag: np.ndarray
    # Clock
    count: np.ndarray
    # Tracker
    tcnt: np.ndarray
    tcnt_done: np.ndarray
    # Player
    popinion: np.ndarray
    msign: np.ndarray
    mexpo: np.ndarray
    mout: np.ndarray
    reset_done: np.ndarray
    # Initialization bookkeeping
    has_initiated: np.ndarray
    #: Appendix C (counting-agent mode): whether the agent ever interacted
    #: with another agent of its own opinion during initialization.
    met_same: np.ndarray
    #: Becomes True once any tracker reached tcnt = k + 1 (enables the
    #: final-broadcast rules; a cheap guard, not protocol state).
    aftermath_live: bool
    #: Absolute phase at which tournament 0 starts (0 for SimpleAlgorithm;
    #: after leader election + defender selection for the variants).
    origin: int
    # Parameters frozen at init time
    n: int
    k: int
    psi: int
    init_threshold: int
    token_cap: int
    max_level: int

    #: Optional per-agent override of the "entered the post-final
    #: tournament window" predicate the crowning rule reads (a plain class
    #: attribute, not a dataclass field, so subclasses keep their field
    #: order).  The agent path leaves it None and compares absolute phases
    #: directly; the phase-quotiented count model
    #: (:mod:`repro.core.quotient`) lifts quotient states to *relative*
    #: absolute phases, where that comparison is meaningless, and injects
    #: the saturated per-agent tournament counter here instead.
    final_override = None

    def tournament(self) -> int:
        """Index of the most advanced tournament (−1 before tournaments)."""
        top = int(self.phase.max()) - self.origin
        return top // PHASES_PER_TOURNAMENT if top >= 0 else -1


class SimpleAlgorithm(Protocol):
    """The paper's SimpleAlgorithm (Theorem 1, statement 1)."""

    name = "simple_algorithm"

    def __init__(self, params: Optional[SimpleParams] = None):
        self.params = params or SimpleParams()

    # ------------------------------------------------------------------
    # Initialization
    # ------------------------------------------------------------------
    def init_state(
        self, config: PopulationConfig, rng: np.random.Generator
    ) -> SimpleState:
        n, k = config.n, config.k
        if n < 4:
            raise ConfigurationError("SimpleAlgorithm needs n >= 4")
        return SimpleState(
            role=np.full(n, COLLECTOR, dtype=np.int8),
            phase=np.full(n, -1, dtype=np.int64),
            winner=np.zeros(n, dtype=bool),
            opinion=config.opinions.astype(np.int64).copy(),
            tokens=np.ones(n, dtype=np.int64),
            defender=np.zeros(n, dtype=bool),
            challenger=np.zeros(n, dtype=bool),
            ell=np.zeros(n, dtype=np.int64),
            concl_done=np.full(n, -1, dtype=np.int64),
            bwin_tag=np.full(n, -1, dtype=np.int64),
            count=np.zeros(n, dtype=np.int64),
            tcnt=np.zeros(n, dtype=np.int64),
            tcnt_done=np.full(n, -1, dtype=np.int64),
            popinion=np.full(n, POP_U, dtype=np.int8),
            msign=np.zeros(n, dtype=np.int8),
            mexpo=np.zeros(n, dtype=np.int64),
            mout=np.zeros(n, dtype=np.int8),
            reset_done=np.full(n, -1, dtype=np.int64),
            has_initiated=np.zeros(n, dtype=bool),
            met_same=np.zeros(n, dtype=bool),
            aftermath_live=False,
            origin=0,
            n=n,
            k=k,
            psi=self.params.psi(n),
            init_threshold=self.params.init_threshold(n),
            token_cap=self.params.token_cap,
            max_level=self.params.max_level(n),
        )

    # ------------------------------------------------------------------
    # Transition function
    # ------------------------------------------------------------------
    def interact(
        self,
        s: SimpleState,
        u: np.ndarray,
        v: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        # Snapshots: all rule predicates below read these, so each pair's
        # update is a function of the pre-interaction states only.
        pu, pv = s.phase[u], s.phase[v]
        ru, rv = s.role[u], s.role[v]

        if (pu < 0).any() or (pv < 0).any():
            self._init_rules(s, u, v, pu, pv, ru, rv, rng)
        # Both orientations of each directed rule are evaluated in a single
        # vectorized call on the doubled arrays: fw holds every agent once
        # in initiator position and once in responder position.
        fw = np.concatenate([u, v])
        bw = np.concatenate([v, u])
        p_fw = np.concatenate([pu, pv])
        p_bw = np.concatenate([pv, pu])
        r_fw = np.concatenate([ru, rv])
        r_bw = np.concatenate([rv, ru])
        self._self_rules(s, fw, p_fw)
        self._pair_rules(s, u, v, pu, pv, ru, rv, fw, bw, p_fw, r_fw, r_bw)
        if s.aftermath_live:
            self._aftermath_rules(s, fw, bw, r_fw, r_bw)
        self._clock_rules(s, u, v, pu, pv, ru, rv)
        self._phase_broadcast(s, fw, bw, p_fw, p_bw, r_fw)

    # -- Algorithm 3: initialization phase ------------------------------
    def _init_rules(self, s, u, v, pu, pv, ru, rv, rng) -> None:
        self._initial_defender_rule(s, u, pu)
        counting_mode = self.params.counting_agents

        # Token merging: initiator hands its tokens over and re-rolls.
        merge = (
            (pu == -1)
            & (pv == -1)
            & (ru == COLLECTOR)
            & (rv == COLLECTOR)
            & (s.opinion[u] == s.opinion[v])
            & (s.opinion[u] > 0)
            & (s.tokens[u] + s.tokens[v] <= s.token_cap)
        )
        if counting_mode:
            same_opinion = (
                (pu == -1)
                & (pv == -1)
                & (s.opinion[u] == s.opinion[v])
                & (s.opinion[u] > 0)
            )
            s.met_same[u[same_opinion]] = True
            s.met_same[v[same_opinion]] = True
        if merge.any():
            if counting_mode:
                # Appendix C: a single-token duel demotes the loser to a
                # counting agent instead of a tournament role.
                duel = merge & (s.tokens[u] == 1) & (s.tokens[v] == 1)
                givers, takers = u[duel], v[duel]
                s.tokens[takers] += s.tokens[givers]
                s.tokens[givers] = 0
                s.opinion[givers] = 0
                s.defender[givers] = False
                s.challenger[givers] = False
                s.role[givers] = COUNTING
                s.count[givers] = 0
                merge = merge & ~duel
            givers, takers = u[merge], v[merge]
            s.tokens[takers] += s.tokens[givers]
            self._release_agents(s, givers, rng)

        if counting_mode:
            self._counting_rules(s, u, pu, ru, rng)

        # Clock agents count toward the end of initialization.
        counting = (pu == -1) & (ru == CLOCK)
        if counting.any():
            up = u[counting & (rv != COLLECTOR)]
            s.count[up] += 1
            down = u[counting & (rv == COLLECTOR)]
            if self.params.init_decrement < 1.0 and down.size:
                # Appendix C: decrement by 1/c — realized as a decrement
                # with probability 1/c (same drift, integer counters).
                down = down[rng.random(down.size) < self.params.init_decrement]
            s.count[down] = np.maximum(s.count[down] - 1, 0)
            finished = up[s.count[up] >= s.init_threshold]
            if finished.size:
                s.phase[finished] = 0
                s.count[finished] = 0
                if s.final_override is not None:
                    s.final_override[finished] = s.k <= 1

        # Spread of phase >= 0 to agents still initializing.
        for side, other, p_own, p_other, r_own in (
            (u, v, pu, pv, ru),
            (v, u, pv, pu, rv),
        ):
            adopt = (p_own == -1) & (p_other >= 0)
            if adopt.any():
                joiners = side[adopt]
                if counting_mode:
                    roles = r_own[adopt]
                    convert = (roles == COUNTING) | (
                        (roles == COLLECTOR) & ~s.met_same[joiners]
                    )
                    self._release_agents(s, joiners[convert], rng)
                s.phase[joiners] = p_other[adopt]
                if s.final_override is not None:
                    # A joiner's window is its partner's, so the crowning
                    # predicate transfers with the phase (read later in
                    # this same interaction by the aftermath rules).
                    s.final_override[joiners] = s.final_override[other[adopt]]
                clocks = joiners[s.role[joiners] == CLOCK]
                s.count[clocks] = 0

    def _counting_rules(self, s, u, pu, ru, rng) -> None:
        """Appendix C: counting agents tick toward the fallback deadline.

        The paper lets a counting agent increment when it "initiates an
        interaction with itself", an event of probability 1/n per
        initiation; the scheduler never pairs an agent with itself, so the
        tick is realized as a coin of the same probability.
        """
        ticking = (pu == -1) & (ru == COUNTING)
        if not ticking.any():
            return
        tickers = u[ticking]
        tickers = tickers[rng.random(tickers.size) < 1.0 / s.n]
        if tickers.size == 0:
            return
        s.count[tickers] += 1
        finished = tickers[s.count[tickers] >= s.init_threshold]
        if finished.size:
            self._release_agents(s, finished, rng)
            s.phase[finished] = 0

    def _initial_defender_rule(self, s, u: np.ndarray, pu: np.ndarray) -> None:
        """Opinion-1 agents raise the defender bit at their first initiation.

        Overridden (disabled) by the unordered variant, where the initial
        defender is sampled by the leader instead.
        """
        fresh = (pu == -1) & ~s.has_initiated[u]
        if fresh.any():
            first_timers = u[fresh]
            s.has_initiated[first_timers] = True
            s.defender[first_timers[s.opinion[first_timers] == 1]] = True

    def _release_agents(self, s, agents: np.ndarray, rng) -> None:
        """A collector gave its tokens away: re-roll into a non-collector role.

        The re-roll consumes exactly one uniform per released agent, in
        batch order, mapped through :data:`~repro.core.common.ROLE_REROLL_CUM`
        — the same consumption pattern the count backend's exact mode uses
        for the corresponding randomized table entries, so both backends
        stay on one rng stream (see :mod:`repro.core.quotient`).
        """
        s.tokens[agents] = 0
        s.opinion[agents] = 0
        s.defender[agents] = False
        s.challenger[agents] = False
        draw = reroll_roles(rng, agents.size)
        clocks = agents[draw == 0]
        s.role[clocks] = CLOCK
        s.count[clocks] = 0
        trackers = agents[draw == 1]
        s.role[trackers] = TRACKER
        s.tcnt[trackers] = 1
        players = agents[draw == 2]
        s.role[players] = PLAYER
        s.popinion[players] = POP_U
        self._on_new_trackers(s, trackers)

    def _on_new_trackers(self, s, trackers: np.ndarray) -> None:
        """Hook for variants that enroll new trackers somewhere (e.g. LE)."""

    # -- Per-agent "first interaction in this phase" rules ---------------
    def _self_rules(self, s, side: np.ndarray, p_own: np.ndarray) -> None:
        # The paper triggers these at the first interaction of the setup
        # phase; keying them on the enclosing tournament is equivalent
        # w.h.p. and also covers the rare agent that learns of the new
        # tournament only via a later phase's broadcast.
        started = p_own >= s.origin
        if not started.any():
            return
        rel = p_own - s.origin
        key = s.origin + (rel // PHASES_PER_TOURNAMENT) * PHASES_PER_TOURNAMENT
        self._tracker_self_rule(s, side, started, key)
        is_player = s.role[side] == PLAYER
        # Players still holding a live B token seed the challenger-won
        # verdict (see common.VERDICT_PMS for why live tokens, not outputs).
        pm = rel % PHASES_PER_TOURNAMENT
        seed = (
            started
            & is_player
            & (pm >= VERDICT_PMS[0])
            & (s.msign[side] == -1)
        )
        if seed.any():
            seeders = side[seed]
            s.bwin_tag[seeders] = np.maximum(s.bwin_tag[seeders], key[seed])
        # Collectors apply the previous tournament's verdict at entry.
        apply = started & (s.role[side] == COLLECTOR) & (s.concl_done[side] < key)
        if apply.any():
            collectors = side[apply]
            challenger_won = s.bwin_tag[collectors] == key[apply] - PHASES_PER_TOURNAMENT
            promoted = collectors[challenger_won]
            s.defender[promoted] = s.challenger[promoted]
            s.challenger[collectors] = False
            s.concl_done[collectors] = key[apply]
        # Players shed last tournament's match state once per setup.
        reset = started & is_player & (s.reset_done[side] < key)
        if reset.any():
            players = side[reset]
            s.popinion[players] = POP_U
            s.msign[players] = 0
            s.mexpo[players] = 0
            s.mout[players] = 0
            s.reset_done[players] = key[reset]

    def _tracker_self_rule(self, s, side, started, key) -> None:
        # Algorithm 2: trackers advance the tournament counter once per setup.
        bump = started & (s.role[side] == TRACKER) & (s.tcnt_done[side] < key)
        if bump.any():
            trackers = side[bump]
            s.tcnt[trackers] = np.minimum(s.tcnt[trackers] + 1, s.k + 1)
            s.tcnt_done[trackers] = key[bump]
            if not s.aftermath_live and (s.tcnt[trackers] == s.k + 1).any():
                s.aftermath_live = True

    # -- Algorithm 4: tournament phases ----------------------------------
    def _pair_rules(self, s, u, v, pu, pv, ru, rv, fw, bw, p_fw, r_fw, r_bw) -> None:
        same = (pu == pv) & (pu >= s.origin)
        if not same.any():
            return
        pm = (pu - s.origin) % PHASES_PER_TOURNAMENT
        same2 = np.concatenate([same, same])
        pm2 = np.concatenate([pm, pm])
        fw_collector = r_fw == COLLECTOR

        # Setup: challenger marking and ℓ initialization, re-evaluated on
        # every setup interaction so that a freshly marked challenger fixes
        # its ℓ immediately.
        setup2 = same2 & (pm2 <= SETUP_PMS[-1])
        if setup2.any():
            self._setup_marking(s, fw, bw, r_fw, r_bw, setup2, fw_collector)
            collectors = fw[setup2 & fw_collector]
            if collectors.size:
                s.ell[collectors] = np.where(
                    s.defender[collectors],
                    s.tokens[collectors],
                    np.where(s.challenger[collectors], -s.tokens[collectors], 0),
                )

        # Cancellation: load balancing among collectors.
        cancel = same & (pm == CANCEL_PM) & (ru == COLLECTOR) & (rv == COLLECTOR)
        if cancel.any():
            averaging_step(s.ell, u[cancel], v[cancel])

        # Lineup: collectors recruit undecided players, one token at a time.
        lineup2 = (
            same2
            & (pm2 >= LINEUP_PMS[0])
            & (pm2 <= LINEUP_PMS[-1])
            & fw_collector
            & (r_bw == PLAYER)
        )
        if lineup2.any():
            recruit = lineup2 & (s.popinion[bw] == POP_U) & (s.ell[fw] != 0)
            if recruit.any():
                collectors, players = fw[recruit], bw[recruit]
                positive = s.ell[collectors] > 0
                s.popinion[players] = np.where(positive, POP_A, POP_B).astype(
                    s.popinion.dtype
                )
                s.msign[players] = np.where(positive, 1, -1).astype(s.msign.dtype)
                s.mexpo[players] = 0
                s.ell[collectors] -= np.sign(s.ell[collectors])

        # Match: cancel/split exact majority among players.
        players_pair = (ru == PLAYER) & (rv == PLAYER)
        match = (
            same
            & (pm >= MATCH_PMS[0])
            & (pm <= MATCH_PMS[-1])
            & players_pair
        )
        if match.any():
            cancel_split_step(s.msign, s.mexpo, u[match], v[match], s.max_level)

        # Resolve: match outcome dissemination (DESIGN.md §4.3).
        resolve = (
            same
            & (pm >= RESOLVE_PMS[0])
            & (pm <= RESOLVE_PMS[-1])
            & players_pair
        )
        if resolve.any():
            mu, mv = u[resolve], v[resolve]
            resolve_step(s.mout, s.msign, mu, mv)
            touched = np.concatenate([mu, mv])
            outs = s.mout[touched]
            s.popinion[touched[outs == 1]] = POP_A
            s.popinion[touched[outs == -1]] = POP_B

    def _setup_marking(self, s, fw, bw, r_fw, r_bw, setup2, fw_collector) -> None:
        """Challenger selection: collector meets tracker with matching tcnt.

        Overridden by the unordered variant, where a leader announces the
        challenger opinion instead (Appendix B).
        """
        mark = (
            setup2
            & fw_collector
            & (r_bw == TRACKER)
            & (s.opinion[fw] == s.tcnt[bw])
        )
        s.challenger[fw[mark]] = True

    # -- Section 3.4: final broadcast -------------------------------------
    def _aftermath_rules(self, s, fw, bw, r_fw, r_bw) -> None:
        # Crowning requires the collector to have entered the post-final
        # tournament window, so that its verdict of the last real
        # tournament has already been applied (self rules run first).
        final_start = s.origin + PHASES_PER_TOURNAMENT * (s.k - 1)
        if s.final_override is not None:
            past_final = s.final_override[bw]
        else:
            past_final = s.phase[bw] >= final_start
        crown = (
            (r_fw == TRACKER)
            & (s.tcnt[fw] == s.k + 1)
            & (r_bw == COLLECTOR)
            & s.defender[bw]
            & past_final
        )
        s.winner[bw[crown]] = True
        # Winner epidemic: losers adopt (collector, winner opinion, winner).
        w_fw = s.winner[fw]
        w_bw = s.winner[bw]
        spread = w_fw & ~w_bw
        if spread.any():
            adopters = bw[spread]
            s.role[adopters] = COLLECTOR
            s.opinion[adopters] = s.opinion[fw[spread]]
            s.winner[adopters] = True

    # -- Algorithm 1: the phase clock -------------------------------------
    def _clock_rules(self, s, u, v, pu, pv, ru, rv) -> None:
        ticking = (ru == CLOCK) & (rv == CLOCK) & (pu >= 0) & (pv >= 0)
        if ticking.any():
            leaderless_clock_step(s.count, s.phase, u[ticking], v[ticking], s.psi)

    # -- Algorithm 4, lines 22-23: phase broadcast -------------------------
    def _phase_broadcast(self, s, fw, bw, p_fw, p_bw, r_fw) -> None:
        adopt = (p_fw >= 0) & (p_bw > p_fw) & (r_fw != CLOCK)
        if adopt.any():
            s.phase[fw[adopt]] = p_bw[adopt]
        # Verdict max-epidemic (conclusion; see module docstring of common).
        bw_tag = s.bwin_tag[bw]
        newer = bw_tag > s.bwin_tag[fw]
        if newer.any():
            s.bwin_tag[fw[newer]] = bw_tag[newer]

    # ------------------------------------------------------------------
    # Engine hooks
    # ------------------------------------------------------------------
    def has_converged(self, s: SimpleState) -> bool:
        return bool(s.winner.all())

    def output(self, s: SimpleState) -> np.ndarray:
        return s.opinion.copy()

    def failure(self, s: SimpleState) -> Optional[str]:
        clocks = s.role == CLOCK
        if clocks.any():
            phases = s.phase[clocks]
            started = phases[phases >= 0]
            if started.size and int(started.max() - started.min()) > 2:
                return "clock_desync"
        return None

    def progress(self, s: SimpleState) -> Dict[str, float]:
        stats: Dict[str, float] = {
            "phase_max": float(s.phase.max()),
            "tournament": float(s.tournament()),
            "winners": float(s.winner.sum()),
        }
        for name, count in role_counts(s.role).items():
            stats[f"role_{name}"] = float(count)
        return stats

    def check_invariants(self, s: SimpleState) -> None:
        if not s.winner.any():
            total = int(s.tokens.sum())
            if total != s.n:
                raise InvariantViolation(f"token sum {total} != n {s.n}")
        if (s.tokens < 0).any() or (s.tokens > s.token_cap).any():
            raise InvariantViolation("tokens escaped [0, cap]")
        if (np.abs(s.ell) > s.token_cap).any():
            raise InvariantViolation("ell escaped [-cap, cap]")
        non_collectors = s.role != COLLECTOR
        if (s.tokens[non_collectors] != 0).any():
            raise InvariantViolation("non-collector holds tokens")

    def default_max_time(self, config: PopulationConfig) -> float:
        """Suggested parallel-time budget for ``simulate``."""
        return self.params.default_max_time(config.n, config.k)

    def count_model(
        self, config: PopulationConfig
    ) -> Optional["SimpleQuotientModel"]:
        """Export the phase-quotiented count model (ROADMAP item, resolved).

        The raw per-agent state is per-run unbounded — the absolute
        ``phase`` counter grows across tournaments and ``bwin_tag`` /
        ``tcnt_done`` / ``reset_done`` record absolute phases.  Quotienting
        phases modulo one tournament window makes the space finite: the
        transition rules only ever read ``phase − 10·t``, the ``*_done``
        flags relative to the current window, and a saturated "reached the
        final tournament" counter.  :class:`~repro.core.quotient.
        SimpleQuotientModel` implements that quotient as a lazily
        materialized transition table (see :mod:`repro.core.quotient` for
        the construction and its exactness argument).

        Returns None for the Appendix C parameterizations
        (``counting_agents`` / fractional ``init_decrement``), whose extra
        per-interaction coin flips are not expressed in the quotient —
        those still run on the agent-array backend, as do the unordered
        and improved variants (their leader-election state is not
        quotiented; they override this method).
        """
        if self.params.counting_agents or self.params.init_decrement < 1.0:
            return None
        from .quotient import SimpleQuotientModel

        return SimpleQuotientModel(self, config)
