"""Shared building blocks of the three plurality-consensus protocols.

Roles (Section 3): every agent carries a ``role`` in
{collector, clock, tracker, player}; the role-specific variables are only
maintained by agents of that role (this is what keeps the state space at
O(k + log n), see Figure 1 and `repro.analysis.state_space`).

Phase layout: the simulator stores *absolute* phases (DESIGN.md §4.2).
Within a tournament, phases mod 10 mean:

=====  =======================================================
 0     setup (challenger marking, ℓ initialization)
 2     cancellation (load balancing on ℓ)
 3–4   lineup (collectors recruit players)
 4–8   match (cancel/split exact majority among players)
 7–8   resolve (match output dissemination, overlapping the
       tail of the match — see DESIGN.md §4.3)
 8     conclusion (defender/challenger bits updated)
 1, 9  separation phases (no collector/player actions)
=====  =======================================================

The paper assigns one phase each to lineup (4) and match (6) because [20]
finishes within a single Θ(log n) phase; our unsynchronized cancel/split
substitute needs a constant-factor wider window (EXPERIMENTS.md records
the calibration), so the lineup/match/resolve windows are widened within
the same 10-phase cycle.  Correctness is unaffected: recruiting seeds a
fresh ±1 token whenever it happens, the signed token sum is invariant
under the match rules, and resolve only spreads signs originating from
live tokens.

Conclusion (the paper's phase 8) is implemented as a *monotone verdict
epidemic* instead of per-collector sampling of a single player: players
whose match output is B raise a "challenger won tournament t" tag that
spreads to all agents, and every collector applies its stored verdict
exactly once when it enters the next tournament.  The stable majority
protocol of [20] guarantees a unanimous player output (Lemma 11(3)), which
makes the paper's one-sample conclusion safe even at exact ties between
equal-support opinions; our substitute can leave one straggler token of
each sign at a tie, so a one-sample conclusion would split the defender
bits across two opinions.  The monotone verdict makes the conclusion
globally consistent in every case — at a tie either outcome is a correct
plurality among the opinions seen so far.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

import numpy as np

from ..clocks.leaderless import clock_psi
from ..engine.errors import ConfigurationError
from ..leader.coin_race import le_rounds
from ..majority.cancel_split import majority_levels

# Roles
COLLECTOR = 0
CLOCK = 1
TRACKER = 2
PLAYER = 3
#: Appendix C only: agents that lost a single-token duel and count toward
#: the initialization deadline instead of taking a tournament role.
COUNTING = 4
ROLE_NAMES = {COLLECTOR: "collector", CLOCK: "clock", TRACKER: "tracker", PLAYER: "player"}

# Player opinions during a match
POP_U = 0
POP_A = 1
POP_B = 2

#: Phases per tournament (paper: phases 0..9, odd ones are separators).
PHASES_PER_TOURNAMENT = 10

#: Phase-within-tournament layout (see module docstring).  Setup spills
#: into phase 1 so that a challenger announcement arriving late in phase 0
#: still marks its collectors (and fixes their ℓ) before cancellation.
SETUP_PM = 0
SETUP_PMS = (0, 1)
CANCEL_PM = 2
LINEUP_PMS = (3, 4)
MATCH_PMS = (4, 5, 6, 7, 8)
RESOLVE_PMS = (7, 8)
#: Phases in which a player still holding a live B token seeds the
#: monotone "challenger won tournament t" verdict (see core.simple
#: docstring).  Live tokens are used rather than the resolve outputs: the
#: signed-sum invariant keeps at least one token of the true winner's sign
#: alive forever, while a stale output trace could outlive its token and
#: flip a decided match.
VERDICT_PMS = (8, 9)


@dataclass(frozen=True)
class SimpleParams:
    """Tunable constants of SimpleAlgorithm (paper defaults where fixed).

    Attributes:
        clock_gamma: phase-clock period multiplier, ``Ψ = ⌈γ log₂ n⌉``.
            Controls the Θ(log n) phase length; the paper only requires a
            "sufficiently large" constant.  Calibrated empirically
            (EXPERIMENTS.md).
        init_threshold_factor: the ``5`` in the ``5 log n`` initialization
            counter target of Algorithm 1.
        token_cap: the ``10`` bounding tokens per collector (Algorithm 3).
        majority_level_slack: extra exponent levels for the cancel/split
            majority beyond ``⌈log₂ n⌉``.
    """

    clock_gamma: float = 2.5
    init_threshold_factor: float = 5.0
    token_cap: int = 10
    majority_level_slack: int = 2
    #: Appendix C (k up to (1−ε)n): clock agents decrement their init
    #: counter only with this probability when meeting a collector — the
    #: paper's "decrease count[u] by 1/c" modification.  With 1.0 the
    #: counter drifts upward only once non-collectors outnumber
    #: collectors, which never happens when most opinions cannot merge
    #: (k ≫ n/40); a decrement of 1/c moves the tipping point to a
    #: 1/(c+1) non-collector fraction.
    init_decrement: float = 1.0
    #: Appendix C (any k < n): when two single-token collectors of the same
    #: opinion merge, the loser becomes a *counting agent* instead of
    #: drawing a tournament role.  Counting agents tick a private counter
    #: at rate 1/n per initiation (the paper's "initiates an interaction
    #: with itself" event) and force phase 0 when it reaches
    #: ``init_threshold`` — a fallback deadline for populations where so
    #: few agents merge that no clock agent would ever finish counting.
    #: At phase 0, counting agents convert to clock/tracker/player.
    counting_agents: bool = False

    def __post_init__(self) -> None:
        if self.clock_gamma <= 0:
            raise ConfigurationError("clock_gamma must be positive")
        if self.init_threshold_factor <= 0:
            raise ConfigurationError("init_threshold_factor must be positive")
        if self.token_cap < 2:
            raise ConfigurationError("token_cap must be >= 2")
        if not 0 < self.init_decrement <= 1:
            raise ConfigurationError("init_decrement must be in (0, 1]")

    @classmethod
    def for_large_k(cls, **overrides) -> "SimpleParams":
        """Appendix C parameterization supporting k up to (1−ε)·n.

        Uses the fractional counter decrement (1/4) and a doubled token
        cap, per the modifications sketched in Appendix C.  For k
        arbitrarily close to n additionally pass ``counting_agents=True``
        (see DESIGN.md §4.6).
        """
        defaults = {"init_decrement": 0.25, "token_cap": 20}
        defaults.update(overrides)
        return cls(**defaults)

    def psi(self, n: int) -> int:
        """Clock counter period Ψ."""
        return clock_psi(n, self.clock_gamma)

    def init_threshold(self, n: int) -> int:
        """Initialization counter target (the paper's ``5 log n``)."""
        return max(4, int(np.ceil(self.init_threshold_factor * np.log2(max(n, 2)))))

    def max_level(self, n: int) -> int:
        """Maximum cancel/split exponent L."""
        return majority_levels(n, self.majority_level_slack)

    def phase_parallel_time(self, n: int) -> float:
        """Rough expected parallel time of one phase (for budgets only).

        One phase is Ψ wraps; each clock–clock interaction ticks one
        counter, and clocks are at least n/10 of the population, so a
        phase lasts at most about ``Ψ · n / n_clock <= 10 Ψ`` parallel
        time (typically ~4Ψ).
        """
        return 10.0 * self.psi(n)

    def default_max_time(self, n: int, k: int) -> float:
        """Generous parallel-time budget for a full SimpleAlgorithm run."""
        log_n = np.log2(max(n, 2))
        init = 40.0 * (k + log_n)
        tournaments = (k + 1) * PHASES_PER_TOURNAMENT * self.phase_parallel_time(n)
        return 3.0 * (init + tournaments + 50.0 * log_n)


@dataclass(frozen=True)
class UnorderedParams(SimpleParams):
    """Extra constants for the unordered variant (Appendix B).

    Attributes:
        le_factor / le_slack: number of leader-election coin rounds,
            ``R = ⌈le_factor · log₂ n⌉ + le_slack``; each round is one
            clock phase, giving the +log² n runtime term of Theorem 1(2).
        selection_phases: phases reserved after the election for the
            initial defender selection broadcast (paper: one phase plus a
            separator).
    """

    le_factor: float = 1.5
    le_slack: int = 2
    selection_phases: int = 2

    def rounds(self, n: int) -> int:
        """Leader-election rounds R."""
        return le_rounds(n, self.le_factor, self.le_slack)

    def tournament_phase_offset(self, n: int) -> int:
        """First absolute phase of tournament 0 (after LE + selection)."""
        return self.rounds(n) + self.selection_phases

    def default_max_time(self, n: int, k: int) -> float:
        base = super().default_max_time(n, k)
        le = (self.rounds(n) + self.selection_phases) * self.phase_parallel_time(n)
        return base + 3.0 * le


@dataclass(frozen=True)
class ImprovedParams(UnorderedParams):
    """Extra constants for the ImprovedAlgorithm (Section 4).

    Attributes:
        phase_floor_c: agents start at ``phase = −c``; an opinion whose
            clock never ticks before the first agent reaches phase 0 is
            pruned (Lemma 10 wants ``c > 3 c₂ / c₁``; the paper calls it a
            "sufficiently large constant").
        hour_m_factor: the junta-clock hour is ``m = ⌈factor · log₂ n⌉``
            position increments.  The paper keeps ``m`` constant because
            its junta has size x^0.98 and each position increment already
            costs an epidemic; at simulation scales ``⌊log₂ log₂ n⌋ − 2``
            caps the junta level at 1, the junta is a constant fraction of
            the subpopulation, and increments are cheap — scaling ``m``
            with log n restores the paper's Θ((n²/x_j) log n) hour length,
            which Lemma 7(4) needs so that every plurality agent ticks
            before the pruning cut (Lemma 10(2)).
        junta_level_offset: ``ℓ_max = ⌊log₂ log₂ n⌋ − offset`` (the paper
            uses offset 2 so that subpopulations of size ≥ √n still elect
            a junta, Claim 8).
    """

    phase_floor_c: int = 4
    hour_m_factor: float = 1.0
    junta_level_offset: int = 2

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.phase_floor_c < 1:
            raise ConfigurationError("phase_floor_c must be >= 1")
        if self.hour_m_factor <= 0:
            raise ConfigurationError("hour_m_factor must be positive")

    def hour_m(self, n: int) -> int:
        """Position increments per hour, ``m = max(2, ⌈factor log₂ n⌉)``."""
        return max(2, int(np.ceil(self.hour_m_factor * np.log2(max(n, 2)))))

    def significance_threshold(self) -> float:
        """The implied constant ``c_s``: opinions below ``x_max / c_s`` prune.

        Lemma 10's proof gives ``c_s = (c + 2) c₂ / c₁``; empirically the
        clock-speed constants ``c₁, c₂`` are close, so ``c_s ≈ c + 2``.
        """
        return float(self.phase_floor_c + 2)

    def default_max_time(self, n: int, k: int) -> float:
        base = super().default_max_time(n, k)
        log_n = np.log2(max(n, 2))
        # Pruning: the plurality clock needs c hours; with x_max >= n^(1/2+eps)
        # each hour is O((n / x_max) log n) <= O(sqrt(n) log n) parallel time.
        pruning = 4.0 * self.phase_floor_c * np.sqrt(n) * log_n
        return base + pruning


#: Cumulative distribution of the uniform clock/tracker/player re-roll a
#: collector performs when it gives its tokens away (Algorithm 3).  Both
#: the agent path (`SimpleAlgorithm._release_agents`) and the count-space
#: quotient model (`repro.core.quotient`) map one uniform variate through
#: this exact array with ``searchsorted(..., side="right")`` — sharing the
#: array (and the draw order: one uniform per merging pair, in batch
#: order) is what lets the count backend's exact mode replay the agent
#: backend bit-for-bit through the randomized initialization.
ROLE_REROLL_CUM = np.cumsum(np.full(3, 1.0 / 3.0))
ROLE_REROLL_CUM[-1] = 1.0


def reroll_roles(rng: np.random.Generator, size: int) -> np.ndarray:
    """Draw ``size`` uniform role indices (0=clock, 1=tracker, 2=player)."""
    return np.searchsorted(ROLE_REROLL_CUM, rng.random(size), side="right")


def role_counts(role: np.ndarray) -> Dict[str, int]:
    """Histogram of roles, keyed by role name."""
    return {
        name: int((role == value).sum()) for value, name in ROLE_NAMES.items()
    }


def with_params(params: SimpleParams, **changes) -> SimpleParams:
    """Return a copy of ``params`` with the given fields replaced."""
    return replace(params, **changes)
