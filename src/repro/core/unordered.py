"""UnorderedAlgorithm — plurality consensus without an opinion ordering.

Implements Appendix B of the paper (Theorem 1, statement 2): the tournament
machinery of SimpleAlgorithm, but the next challenger is *sampled* by a
unique leader instead of being read off an opinion ordering:

1.  **Leader election** (phases ``0 .. R−1``): the coin race of
    :mod:`repro.leader.coin_race` runs among the tracker agents, one round
    per clock phase — the +log² n term of Theorem 1(2).
2.  **Defender selection** (phase ``R``): the leader samples any collector
    and announces its opinion as the initial defender.
3.  **Challenger selection** (setup phase of each tournament): tracker
    agents *amplify* opinions that have not yet played (they copy them
    from unplayed collectors and from each other, freshness-tagged by the
    current tournament), the leader samples one and announces it; the
    announcement spreads epidemically and collectors of that opinion raise
    their challenger bit.
4.  **Termination**: a leader that finds no candidate during an entire
    setup phase declares the race finished; defender collectors then raise
    the winner bit and the final broadcast proceeds as in Section 3.4.

Announcements and candidate observations carry the absolute phase of their
era (defender selection, or a tournament's setup) as a freshness tag, so a
stale observation can never select an already-played opinion era-late —
and even if an opinion is re-selected because some of its collectors
missed an announcement, the resulting extra tournament is harmless (the
current defender simply beats the remnant; see tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..broadcast.epidemic import tagged_value_broadcast
from ..engine.population import PopulationConfig
from ..leader.coin_race import le_enter_round, le_relay
from .common import (
    COLLECTOR,
    PHASES_PER_TOURNAMENT,
    SETUP_PMS,
    TRACKER,
    UnorderedParams,
)
from .simple import SimpleAlgorithm, SimpleState


@dataclass
class UnorderedState(SimpleState):
    """SimpleState plus leader-election and selection machinery."""

    # Leader election (coin race among trackers)
    le_cand: np.ndarray
    le_coin: np.ndarray
    le_seen_max: np.ndarray
    le_seen_round: np.ndarray
    leader: np.ndarray
    # Challenger/defender selection
    played: np.ndarray
    cand_op: np.ndarray
    cand_tag: np.ndarray
    ann_op: np.ndarray
    ann_tag: np.ndarray
    found_tag: np.ndarray
    #: Setup phase of the tournament in which the leader found no candidate
    #: (−1 while the race is still on); spread by max-epidemic.
    finish_tag: np.ndarray
    rounds: int = 0

    def era_start(self, phase: np.ndarray) -> np.ndarray:
        """Selection era of each phase: R before tournaments, else the
        enclosing tournament's setup phase."""
        rel = np.maximum(phase - self.origin, 0)
        in_tournaments = phase >= self.origin
        return np.where(
            in_tournaments,
            self.origin + (rel // PHASES_PER_TOURNAMENT) * PHASES_PER_TOURNAMENT,
            self.rounds,
        )


class UnorderedAlgorithm(SimpleAlgorithm):
    """The paper's SimpleAlgorithm variant for unordered opinions."""

    name = "unordered_algorithm"

    def __init__(self, params: Optional[UnorderedParams] = None):
        super().__init__(params or UnorderedParams())

    def count_model(self, config: PopulationConfig):
        """Export the era-quotiented count model (ROADMAP item, resolved).

        The leader-election coin race and the era-tagged selection
        epidemics record absolute phases of their era, on top of the
        unbounded tournament counters the phase quotient of
        :mod:`repro.core.quotient` already handles.  The era quotient
        (:mod:`repro.core.era_quotient`) keeps the O(log n) pre-tournament
        phases absolute and maps the era tags to holder-relative ages, so
        the variant runs on ``backend="counts"`` — batched at
        n = 10⁵ .. 10⁹ (benchmarks EB5, EB6) and bit-exactly in
        sequential mode (``tests/test_era_quotient.py``).

        Populations below the tournament-origin gate
        (``tournament_phase_offset(n) ≤ 10``, n ≲ 26 with the default
        ``le_factor`` — where the windowed lift frame would alias the tag
        sentinels) get the *fully-absolute* model instead: every phase
        and tag kept verbatim, injective projection, no quotient needed
        at that scale.

        Returns None only for the Appendix C parameterizations
        (``counting_agents`` / fractional ``init_decrement``, not
        quotiented) and for n < 4 (below the tournament algorithms'
        minimum population).
        """
        if not self._era_quotient_supported(config):
            return None
        from .era_quotient import UnorderedQuotientModel

        return UnorderedQuotientModel(
            self, config, absolute=self._era_quotient_absolute(config)
        )

    def _era_quotient_supported(self, config: PopulationConfig) -> bool:
        """Whether an era-quotient shape covers this parameterization."""
        params: UnorderedParams = self.params  # type: ignore[assignment]
        if params.counting_agents or params.init_decrement < 1.0:
            return False
        return config.n >= 4

    def _era_quotient_absolute(self, config: PopulationConfig) -> bool:
        """Whether the population sits below the tournament-origin gate."""
        params: UnorderedParams = self.params  # type: ignore[assignment]
        return params.tournament_phase_offset(config.n) <= PHASES_PER_TOURNAMENT

    # ------------------------------------------------------------------
    # Initialization
    # ------------------------------------------------------------------
    def init_state(
        self, config: PopulationConfig, rng: np.random.Generator
    ) -> UnorderedState:
        base = super().init_state(config, rng)
        n = config.n
        params: UnorderedParams = self.params  # type: ignore[assignment]
        state = UnorderedState(
            **base.__dict__,
            le_cand=np.zeros(n, dtype=bool),
            le_coin=np.zeros(n, dtype=np.int8),
            le_seen_max=np.zeros(n, dtype=np.int8),
            le_seen_round=np.full(n, -1, dtype=np.int64),
            leader=np.zeros(n, dtype=bool),
            played=np.zeros(n, dtype=bool),
            cand_op=np.zeros(n, dtype=np.int64),
            cand_tag=np.full(n, -1, dtype=np.int64),
            ann_op=np.zeros(n, dtype=np.int64),
            ann_tag=np.full(n, -1, dtype=np.int64),
            found_tag=np.full(n, -1, dtype=np.int64),
            finish_tag=np.full(n, -1, dtype=np.int64),
            rounds=params.rounds(n),
        )
        state.origin = params.tournament_phase_offset(n)
        return state

    # ------------------------------------------------------------------
    # Hook overrides: ordered-opinion rules disabled
    # ------------------------------------------------------------------
    def _initial_defender_rule(self, s, u, pu) -> None:
        # The initial defender is sampled by the leader (Appendix B).
        pass

    def _tracker_self_rule(self, s, side, started, key) -> None:
        # Trackers do not count tournaments in the unordered variant.
        pass

    def _on_new_trackers(self, s, trackers: np.ndarray) -> None:
        s.le_cand[trackers] = True

    def _setup_marking(self, s, fw, bw, r_fw, r_bw, setup2, fw_collector) -> None:
        # A collector in a setup phase whose partner carries this
        # tournament's challenger announcement for its own opinion.
        p_fw2 = s.phase[fw]
        mark = (
            setup2
            & fw_collector
            & ~s.played[fw]
            & (s.ann_tag[bw] == p_fw2)
            & (s.ann_op[bw] == s.opinion[fw])
        )
        if mark.any():
            marked = fw[mark]
            s.challenger[marked] = True
            s.played[marked] = True

    # ------------------------------------------------------------------
    # Transition function
    # ------------------------------------------------------------------
    def interact(
        self,
        s: UnorderedState,
        u: np.ndarray,
        v: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        pu, pv = s.phase[u], s.phase[v]
        ru, rv = s.role[u], s.role[v]

        if (pu < 0).any() or (pv < 0).any():
            self._init_rules(s, u, v, pu, pv, ru, rv, rng)
        fw = np.concatenate([u, v])
        bw = np.concatenate([v, u])
        p_fw = np.concatenate([pu, pv])
        p_bw = np.concatenate([pv, pu])
        r_fw = np.concatenate([ru, rv])
        r_bw = np.concatenate([rv, ru])

        self._le_rules(s, u, v, fw, p_fw, r_fw, rng)
        self._selection_rules(s, fw, bw, p_fw, r_fw, r_bw)
        self._self_rules(s, fw, p_fw)
        self._pair_rules(s, u, v, pu, pv, ru, rv, fw, bw, p_fw, r_fw, r_bw)
        if s.aftermath_live:
            self._aftermath_rules(s, fw, bw, r_fw, r_bw)
        self._clock_rules(s, u, v, pu, pv, ru, rv)
        self._phase_broadcast(s, fw, bw, p_fw, p_bw, r_fw)

    # -- Leader election (phases 0 .. R-1) --------------------------------
    def _le_rules(self, s, u, v, fw, p_fw, r_fw, rng) -> None:
        behind = (
            (r_fw == TRACKER)
            & (p_fw > s.le_seen_round[fw])
            & (s.le_seen_round[fw] < s.rounds)
            & (p_fw >= 0)
        )
        if behind.any():
            movers = fw[behind]
            le_enter_round(
                movers,
                p_fw[behind],
                s.le_cand,
                s.le_coin,
                s.le_seen_max,
                s.le_seen_round,
                s.rounds,
                rng,
            )
            done = movers[s.le_seen_round[movers] >= s.rounds]
            if done.size:
                s.leader[done[s.le_cand[done]]] = True
        le_relay(s.le_seen_max, s.le_seen_round, u, v)

    # -- Selection, announcements, termination ----------------------------
    def _selection_rules(self, s, fw, bw, p_fw, r_fw, r_bw) -> None:
        started = p_fw >= 0
        if not started.any():
            return
        era = s.era_start(p_fw)

        # Candidate amplification: trackers observe unplayed collectors...
        observe = (
            started
            & (r_fw == TRACKER)
            & (r_bw == COLLECTOR)
            & ~s.played[bw]
            & (s.opinion[bw] > 0)
            & (s.tokens[bw] > 0)
        )
        if observe.any():
            watchers = fw[observe]
            s.cand_op[watchers] = s.opinion[bw[observe]]
            s.cand_tag[watchers] = era[observe]
        # ... and copy fresher observations from each other (the
        # era-tagged epidemic of Appendix B, restricted to trackers).
        tracker_pair = (r_fw == TRACKER) & (r_bw == TRACKER)
        tagged_value_broadcast(
            s.cand_op, s.cand_tag, fw[tracker_pair], bw[tracker_pair]
        )

        # Leader sampling: announce the freshest candidate of the current
        # era (defender selection era, or a tournament's setup phase).
        is_leader = s.leader[fw]
        if is_leader.any():
            in_window = np.where(
                p_fw >= s.origin,
                (p_fw - s.origin) % PHASES_PER_TOURNAMENT <= SETUP_PMS[-1],
                p_fw >= s.rounds,
            )
            sample = (
                is_leader
                & started
                & in_window
                & (s.found_tag[fw] < era)
                & (s.cand_tag[fw] == era)
            )
            if sample.any():
                leaders = fw[sample]
                s.ann_op[leaders] = s.cand_op[leaders]
                s.ann_tag[leaders] = era[sample]
                s.found_tag[leaders] = era[sample]
            # Termination: no candidate found during an entire setup phase.
            give_up = (
                is_leader
                & (p_fw >= s.origin)
                & ((p_fw - s.origin) % PHASES_PER_TOURNAMENT > SETUP_PMS[-1])
                & (s.found_tag[fw] < era)
                & (s.finish_tag[fw] < 0)
            )
            if give_up.any():
                s.finish_tag[fw[give_up]] = era[give_up]
                s.aftermath_live = True

        # Announcement epidemic (freshness-tagged, unrestricted: every
        # agent relays the leader's era-tagged announcements).
        tagged_value_broadcast(s.ann_op, s.ann_tag, fw, bw)

        # Defender-era marking: collectors adopt the announced defender.
        pre_tournament = started & (p_fw >= s.rounds) & (p_fw < s.origin)
        if pre_tournament.any():
            mark = (
                pre_tournament
                & (r_fw == COLLECTOR)
                & ~s.played[fw]
                & (s.ann_tag[bw] == s.rounds)
                & (s.ann_op[bw] == s.opinion[fw])
            )
            if mark.any():
                marked = fw[mark]
                s.defender[marked] = True
                s.played[marked] = True

    # -- Aftermath: finish-tag based crowning ------------------------------
    def _aftermath_rules(self, s, fw, bw, r_fw, r_bw) -> None:
        spread_fin = s.finish_tag[fw] > s.finish_tag[bw]
        if spread_fin.any():
            s.finish_tag[bw[spread_fin]] = s.finish_tag[fw[spread_fin]]
        # Crowning requires the collector to have entered the finishing
        # tournament, so its verdict of the last real tournament applied.
        crown = (
            (s.finish_tag[fw] >= 0)
            & (r_bw == COLLECTOR)
            & s.defender[bw]
            & ~s.winner[bw]
            & (s.phase[bw] >= s.finish_tag[fw])
        )
        if crown.any():
            s.winner[bw[crown]] = True
        w_fw = s.winner[fw]
        spread = w_fw & ~s.winner[bw]
        if spread.any():
            adopters = bw[spread]
            s.role[adopters] = COLLECTOR
            s.opinion[adopters] = s.opinion[fw[spread]]
            s.winner[adopters] = True

    # ------------------------------------------------------------------
    # Engine hooks
    # ------------------------------------------------------------------
    def failure(self, s: UnorderedState) -> Optional[str]:
        base = super().failure(s)
        if base is not None:
            return base
        trackers = s.role == TRACKER
        if trackers.any() and (s.le_seen_round[trackers] >= s.rounds).all():
            leaders = int(s.leader.sum())
            if leaders == 0:
                return "no_leader"
            if leaders > 1:
                return "multiple_leaders"
        return None

    def progress(self, s: UnorderedState) -> Dict[str, float]:
        stats = super().progress(s)
        stats["leaders"] = float(s.leader.sum())
        stats["played_collectors"] = float((s.played & (s.role == COLLECTOR)).sum())
        stats["finished"] = float((s.finish_tag >= 0).sum())
        return stats
