"""The paper's three plurality-consensus protocols."""

from .common import (
    CLOCK,
    COLLECTOR,
    PHASES_PER_TOURNAMENT,
    PLAYER,
    POP_A,
    POP_B,
    POP_U,
    TRACKER,
    ImprovedParams,
    SimpleParams,
    UnorderedParams,
    role_counts,
    with_params,
)
from .simple import SimpleAlgorithm, SimpleState

__all__ = [
    "CLOCK",
    "COLLECTOR",
    "ImprovedParams",
    "PHASES_PER_TOURNAMENT",
    "PLAYER",
    "POP_A",
    "POP_B",
    "POP_U",
    "SimpleAlgorithm",
    "SimpleParams",
    "SimpleState",
    "TRACKER",
    "UnorderedParams",
    "role_counts",
    "with_params",
]
