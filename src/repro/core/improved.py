"""ImprovedAlgorithm — pruning insignificant opinions before the tournaments.

Implements Section 4 of the paper (Algorithm 5 + Theorem 2).  Every
subpopulation (opinion) runs its own junta-driven phase clock [11] using
*meaningful* interactions only (both agents share the opinion).  Clocks of
large subpopulations tick faster (Lemma 7: one hour costs
Θ((n²/x_j) log n) interactions), so when the first agent completes the
``c = phase_floor_c`` hours that lift its phase from ``−c`` to 0, agents of
insignificant opinions (support ≲ x_max / c_s) have not ticked even once
(Lemmas 9, 10).  The phase-0 broadcast then:

* keeps an agent a collector iff its clock ticked at least once *and* it
  still holds tokens (merging ran concurrently during the pruning phase);
* releases everyone else into the clock/tracker/player roles.

Pruned opinions lose their tokens — that is the deliberate "small chance
of failure" trade-off; Lemma 10(2) shows the plurality w.h.p. keeps all of
its tokens.  From phase 0 on, the protocol is exactly the
UnorderedAlgorithm (leader election, leader-sampled defenders/challengers,
tournaments), and since pruned opinions have no collectors left they are
never sampled: the number of tournaments drops from ``k − 1`` to
``O(n / x_max)``, giving Theorem 2's ``O(n/x_max · log n + log² n)``
runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..clocks.junta import form_junta_step, junta_clock_step, junta_max_level
from ..engine.population import PopulationConfig
from .common import COLLECTOR, ImprovedParams
from .unordered import UnorderedAlgorithm, UnorderedState


@dataclass
class ImprovedState(UnorderedState):
    """UnorderedState plus the per-subpopulation junta clocks."""

    jlevel: np.ndarray = None  # type: ignore[assignment]
    jactive: np.ndarray = None  # type: ignore[assignment]
    junta: np.ndarray = None  # type: ignore[assignment]
    jposition: np.ndarray = None  # type: ignore[assignment]
    ell_max: int = 1
    hour_m: int = 3
    floor_c: int = 4
    #: Support vector at the pruning cut (for experiment introspection).
    pruned_opinions: int = -1


class ImprovedAlgorithm(UnorderedAlgorithm):
    """The paper's main protocol (Theorem 2)."""

    name = "improved_algorithm"

    def __init__(self, params: Optional[ImprovedParams] = None):
        super().__init__(params or ImprovedParams())

    def count_model(self, config: PopulationConfig):
        """Export the era-quotiented count model with the pruning stage.

        Same gates as :meth:`UnorderedAlgorithm.count_model` (including
        the fully-absolute shape below the tournament-origin gate); the
        :class:`~repro.core.era_quotient.ImprovedQuotientModel` adds the
        exact pruning-stage tuples (junta levels and clock positions are
        O(log n)-bounded while an agent is still pruning).
        """
        if not self._era_quotient_supported(config):
            return None
        from .era_quotient import ImprovedQuotientModel

        return ImprovedQuotientModel(
            self, config, absolute=self._era_quotient_absolute(config)
        )

    # ------------------------------------------------------------------
    # Initialization
    # ------------------------------------------------------------------
    def init_state(
        self, config: PopulationConfig, rng: np.random.Generator
    ) -> ImprovedState:
        base = super().init_state(config, rng)
        n = config.n
        params: ImprovedParams = self.params  # type: ignore[assignment]
        state = ImprovedState(
            **base.__dict__,
            jlevel=np.zeros(n, dtype=np.int64),
            jactive=np.ones(n, dtype=bool),
            junta=np.zeros(n, dtype=bool),
            jposition=np.zeros(n, dtype=np.int64),
            ell_max=junta_max_level(n, params.junta_level_offset),
            hour_m=params.hour_m(n),
            floor_c=params.phase_floor_c,
        )
        # Agents start at phase −c; their clocks must tick c times (or the
        # phase-0 broadcast must reach them) before the tournaments begin.
        state.phase.fill(-params.phase_floor_c)
        return state

    # ------------------------------------------------------------------
    # Algorithm 5: modified initialization
    # ------------------------------------------------------------------
    def _init_rules(self, s: ImprovedState, u, v, pu, pv, ru, rv, rng) -> None:
        both_pruning = (pu < 0) & (pv < 0)
        meaningful = both_pruning & (s.opinion[u] == s.opinion[v]) & (s.opinion[u] > 0)
        mu, mv = u[meaningful], v[meaningful]
        if mu.size:
            # Per-subpopulation junta election and clock, meaningful only.
            form_junta_step(s.jlevel, s.jactive, s.junta, mu, mv, s.ell_max)
            junta_clock_step(s.jposition, s.junta, mu, mv)
            ticked = np.minimum(
                -s.floor_c + s.jposition[mu] // s.hour_m, 0
            )
            s.phase[mu] = np.maximum(s.phase[mu], ticked)
            # Token merging (agents stay collectors until the broadcast).
            merge = (s.tokens[mu] > 0) & (
                s.tokens[mu] + s.tokens[mv] <= s.token_cap
            )
            givers, takers = mu[merge], mv[merge]
            s.tokens[takers] += s.tokens[givers]
            s.tokens[givers] = 0
            # An agent that completed its c-th hour in this interaction but
            # holds no tokens is released right away (Line 9).
            fresh_zero = mu[(s.phase[mu] == 0) & (s.tokens[mu] == 0)]
            if fresh_zero.size:
                self._release_agents(s, fresh_zero, rng)

        # Phase-0 receipt (Lines 8-11): decide the role, then join phase 0.
        for side, p_own, p_other in ((u, pu, pv), (v, pv, pu)):
            adopt = (p_own < 0) & (p_other >= 0)
            if not adopt.any():
                continue
            joiners = side[adopt]
            prune = (s.phase[joiners] == -s.floor_c) | (s.tokens[joiners] == 0)
            pruned = joiners[prune]
            if pruned.size:
                # Guarded so the call is skipped (not a zero-size rng
                # draw) when nobody prunes: the count backend's exact
                # mode asserts deterministic pairs stay rng-free.
                self._release_agents(s, pruned, rng)
            s.phase[joiners] = 0

    # ------------------------------------------------------------------
    # Engine hooks
    # ------------------------------------------------------------------
    def progress(self, s: ImprovedState) -> Dict[str, float]:
        stats = super().progress(s)
        stats["junta_total"] = float(s.junta.sum())
        collectors = s.role == COLLECTOR
        surviving = np.unique(s.opinion[collectors & (s.tokens > 0)])
        stats["surviving_opinions"] = float((surviving > 0).sum())
        stats["tokens_total"] = float(s.tokens.sum())
        return stats

    def surviving_opinions(self, s: ImprovedState) -> np.ndarray:
        """Opinions that still have token-holding collectors."""
        collectors = (s.role == COLLECTOR) & (s.tokens > 0) & (s.opinion > 0)
        return np.unique(s.opinion[collectors])

    def check_invariants(self, s: ImprovedState) -> None:
        # Token conservation holds only until pruning destroys tokens, so
        # the Simple invariant is relaxed: the total may only decrease.
        if (s.tokens < 0).any() or (s.tokens > s.token_cap).any():
            from ..engine.errors import InvariantViolation

            raise InvariantViolation("tokens escaped [0, cap]")
