"""Phase-quotiented count model for the tournament algorithms.

This module resolves the ROADMAP open item "count models for the core
tournament algorithms": :class:`SimpleQuotientModel` renders
:class:`~repro.core.simple.SimpleAlgorithm` as a finite (lazily
materialized) pairwise transition system over *quotient states*, so the
count backend can run it — batched O(|occupied states|²) matching mode at
n = 10⁸ .. 10¹⁰ (benchmark EB4), and a sequential exact mode that replays
the agent backend bit-for-bit.

The quotient
============

The raw per-agent state is per-run unbounded: ``phase`` is an absolute
counter that grows across tournaments, and ``concl_done`` / ``tcnt_done``
/ ``reset_done`` / ``bwin_tag`` record absolute phases.  But inspection of
the transition rules (``core/simple.py``) shows they only ever read

* the *relative* phase ``pm = phase mod 10`` within the enclosing
  tournament window (setup / cancellation / lineup / match / resolve /
  verdict predicates),
* phase *equality* of the two participants and, for the phase broadcast,
  which of two nearby phases is larger,
* the ``*_done`` bookkeeping **relative to the current window** ("did this
  action already fire in this window?"),
* the verdict tag's **age in windows** ("is this a challenger-win of the
  previous window?", ``bwin_tag == key − 10``), and
* one absolute predicate: "has this collector entered the final
  tournament window?" (``phase ≥ 10·(k−1)``, the crowning rule).

Accordingly the quotient maps per-agent state to a finite tuple:

* ``phase ↦ (pm, w, t)`` with ``pm = phase mod 10``, window position
  ``w = (phase div 10) mod 4``, and the *saturated* tournament counter
  ``t = min(phase div 10, k − 1)`` — ``t`` exists solely to decide the
  crowning predicate exactly (and saturates because the rules never
  distinguish windows beyond the final one);
* ``concl_done / tcnt_done / reset_done ↦`` one boolean each: "equal to
  the current window's key";
* ``bwin_tag ↦`` its age in windows relative to the holder,
  ``{NONE, −1, 0, 1, 2, STALE}`` — ``−1`` is a tag from one window ahead
  of a lagging holder, exact ages up to 2 are needed because a tag is
  *applied* at age exactly 1 and may still be handed one window down, and
  ages ≥ 3 collapse to a single ``STALE`` value (see below);
* initializing agents (``phase = −1``) keep only their live fields
  (collector: opinion/tokens/has-initiated; clock: init counter).  An
  initializing agent provably never carries a verdict tag: tags only
  reach an agent through an interaction with a *started* partner, and any
  such interaction simultaneously makes the agent adopt the partner's
  phase.

Exactness (the lumping argument)
================================

Call a configuration *in band* when the started agents' windows span at
most two consecutive tournament windows.  In band, the quotient is a
lumping — the projected transition depends only on the two projected
states:

* phase equality and the broadcast order are decided by ``(w, pm)`` alone
  (two in-band phases differ by less than 2 windows, and windows are kept
  mod 4, so the signed window difference in {−1, 0, +1, +2} is
  recoverable);
* every windowed predicate reads ``pm`` and the relative flags only;
* tag ages compare exactly while ≤ 2, and a ``STALE`` tag can never again
  become applicable: ages only grow while a tag stays put (windows only
  advance), and a handover can lower the *holder-relative* age by at most
  the window gap (≤ 1 in band), so an age ≥ 3 tag is pinned at ≥ 2
  forever — it can neither be applied (needs age exactly 1) nor out-rank
  a younger tag, and collapsing all such tags to one value changes no
  observable outcome;
* the crowning predicate is exactly ``t = k − 1``.

Transitions are not re-implemented: a pair of quotient states is *lifted*
to concrete agents with representative absolute phases (base window 8,
the partner placed at the recovered signed offset), the production
``SimpleAlgorithm.interact`` runs on the pair, and the results are
projected back.  The projection section is the same function used to
project real agent states (``project``), so the derived table is
bit-faithful to the agent path by construction.  The lift injects the
saturated ``t`` through ``SimpleState.final_override`` because lifted
absolute phases are representatives, not true phases.

Out-of-band trajectories — an agent lagging ≥ 2 full tournament windows
behind, an initialization straggler surviving ≥ 4 windows (mod-4 windows
alias), or a straggler still initializing when the final winner epidemic
starts (the quotient keeps no winner bit on initializing agents) — are
*not* represented faithfully.  Each requires an agent to dodge every
interaction for Θ(log n) parallel time, an event of probability
``n · 2^{−Ω(Ψ n)}``; the model's ``failure`` hook watches the
occupied-window span and reports ``"phase_window_overflow"`` at the next
check, so the dominant failure class is *loud*, never a silently wrong
trajectory — in the spirit of the paper's titular trade-off.

Randomness
==========

With default parameters the agent path draws randomness at exactly one
rule: the clock/tracker/player re-roll of a collector that merged its
tokens away during initialization.  Those pairs become three-outcome
:class:`~repro.engine.backends.model.RandomEntry` transitions
(probability ⅓ each); both backends consume one uniform per merging pair
in batch order through the shared :data:`~repro.core.common.ROLE_REROLL_CUM`
thresholds, which keeps the two rng streams identical and makes the exact
mode's replay bit-for-bit (``tests/test_quotient_counts.py``).  The
Appendix C parameterizations (``counting_agents``, fractional
``init_decrement``) flip extra coins per interaction and are not
quotiented — ``SimpleAlgorithm.count_model`` returns None for them.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cache.signature import signature_of
from ..engine.backends.model import (
    DynamicCountModel,
    RandomEntry,
    window_band_failure,
)
from ..engine.errors import (
    BackendUnsupported,
    ConfigurationError,
    InvariantViolation,
)
from ..engine.population import BasePopulation, PopulationConfig, is_count_native
from .common import (
    CLOCK,
    COLLECTOR,
    PHASES_PER_TOURNAMENT,
    PLAYER,
    POP_U,
    TRACKER,
)

#: Windows are tracked modulo this; 4 positions recover signed in-band
#: window offsets in {−1, 0, +1} (plus the +2 transient the overflow
#: guard is about to flag) unambiguously.
WINDOW_MOD = 4

#: Verdict-tag age encoding (ages are in windows, relative to the holder).
TAG_NONE = -9
TAG_STALE = 9
#: Exact tag ages are kept in ``−1 .. MAX_EXACT_AGE``; beyond that a tag
#: can never be applied again (see the module docstring) and collapses to
#: ``TAG_STALE``.
MAX_EXACT_AGE = 2

#: Base window of lifted representatives: high enough that every lifted
#: phase, window key, and stale-tag representative stays positive.
LIFT_BASE = 8
#: Holder-relative age used to lift ``TAG_STALE`` tags; ± the in-band
#: window offset this stays ≥ 3, so staleness survives the round trip.
LIFT_STALE_AGE = 6

# Tuple kind markers (first element of every quotient state tuple).
INIT_COLLECTOR = "ic"
INIT_CLOCK = "icl"
INIT_TRACKER = "itr"
INIT_PLAYER = "ipl"
Q_COLLECTOR = "co"
Q_CLOCK = "cl"
Q_TRACKER = "tr"
Q_PLAYER = "pl"

_STARTED_KINDS = (Q_COLLECTOR, Q_CLOCK, Q_TRACKER, Q_PLAYER)
_ROLE_OF_KIND = {
    INIT_COLLECTOR: COLLECTOR,
    INIT_CLOCK: CLOCK,
    INIT_TRACKER: TRACKER,
    INIT_PLAYER: PLAYER,
    Q_COLLECTOR: COLLECTOR,
    Q_CLOCK: CLOCK,
    Q_TRACKER: TRACKER,
    Q_PLAYER: PLAYER,
}


def signed_window_offset(w_a: int, w_b: int) -> int:
    """Signed in-band window offset ``a − b`` recovered from mod-4 windows.

    Shared by the phase quotient below and the era quotient
    (:mod:`repro.core.era_quotient`): two in-band windows differ by less
    than two full tournaments, so their signed difference in
    ``{−1, 0, +1, +2}`` is recoverable from the mod-``WINDOW_MOD`` values.
    """
    delta = (w_a - w_b) % WINDOW_MOD
    return delta - WINDOW_MOD if delta == WINDOW_MOD - 1 else delta


def relative_clock_spread(ws: np.ndarray, pms: np.ndarray) -> int:
    """Exact clock phase spread from (window mod 4, phase-in-window) pairs.

    Mirrors ``SimpleAlgorithm.failure``'s started-clock spread on quotient
    coordinates: with clocks confined to at most two adjacent mod-4
    windows the spread is exact; anything wider returns a value above any
    desync bound (the window-overflow guard flags those configurations
    separately).  Shared by both quotient models.
    """
    windows = np.unique(ws)
    if windows.size == 1:
        return int(pms.max() - pms.min())
    if windows.size != 2:
        return PHASES_PER_TOURNAMENT  # ≥ 2 windows apart: over any bound
    a, b = int(windows[0]), int(windows[1])
    if (b - a) % WINDOW_MOD == 1:
        hi = b
    elif (a - b) % WINDOW_MOD == 1:
        hi = a
    else:
        return PHASES_PER_TOURNAMENT
    phases = pms + PHASES_PER_TOURNAMENT * (ws == hi)
    return int(phases.max() - phases.min())


class _ForcedUniformRng:
    """An rng whose ``random`` returns a fixed value: forces one re-roll arm."""

    def __init__(self, value: float):
        self._value = float(value)

    def random(self, size=None):
        if size is None:
            return self._value
        return np.full(size, self._value)

    def __getattr__(self, name):  # pragma: no cover - defensive
        raise AssertionError(
            f"quotient derivation used unexpected rng method {name!r}"
        )


class _GuardRng:
    """An rng that refuses every call: asserts a transition is rng-free."""

    def __getattr__(self, name):
        raise AssertionError(
            "a supposedly deterministic quotient pair consumed randomness "
            f"(rng.{name}); the randomized-pair predicate drifted from the "
            "protocol's transition rules"
        )


class _ScriptedRng:
    """An rng whose ``random`` pops pre-scripted uniforms, in order.

    Used to derive multi-coin randomized pairs (see
    :mod:`repro.core.era_quotient`): the script holds one representative
    uniform per rng call site in consumption order, and every
    ``random(size)`` call pops exactly ``size`` of them.  Over- or
    under-consumption is a loud assertion — it means the randomized-pair
    predicate drifted from the production transition rules.
    """

    def __init__(self, values: Sequence[float]):
        self._values = [float(v) for v in values]
        self._cursor = 0

    def random(self, size=None):
        count = 1 if size is None else int(size)
        if self._cursor + count > len(self._values):
            raise AssertionError(
                f"quotient derivation consumed more randomness than "
                f"scripted ({self._cursor + count} > {len(self._values)}); "
                f"the randomized-pair predicate drifted from the "
                f"transition rules"
            )
        chunk = self._values[self._cursor : self._cursor + count]
        self._cursor += count
        if size is None:
            return chunk[0]
        return np.array(chunk)

    def assert_exhausted(self) -> None:
        if self._cursor != len(self._values):
            raise AssertionError(
                f"quotient derivation consumed {self._cursor} of "
                f"{len(self._values)} scripted uniforms; the "
                f"randomized-pair predicate drifted from the transition "
                f"rules"
            )

    def __getattr__(self, name):  # pragma: no cover - defensive
        raise AssertionError(
            f"quotient derivation used unexpected rng method {name!r}"
        )


class SimpleQuotientModel(DynamicCountModel):
    """Lazily materialized phase-quotient table for SimpleAlgorithm.

    See the module docstring for the construction.  States are interned
    tuples; pair transitions are derived on demand by lifting the pair to
    concrete agents and running the production ``interact`` on them, and
    are memoized for the lifetime of the model.
    """

    def __init__(self, algorithm, config: BasePopulation):
        super().__init__()
        if config.n < 4:
            raise ConfigurationError("SimpleAlgorithm needs n >= 4")
        params = algorithm.params
        if params.counting_agents or params.init_decrement < 1.0:
            raise ConfigurationError(
                "the phase quotient does not cover the Appendix C "
                "parameterizations (counting_agents / fractional "
                "init_decrement)"
            )
        self._algo = algorithm
        self._n = int(config.n)
        self._k = int(config.k)
        self._psi = params.psi(self._n)
        self._init_threshold = params.init_threshold(self._n)
        self._token_cap = params.token_cap
        self._max_level = params.max_level(self._n)
        #: Intern the k initial states first so ids 0..k−1 are the
        #: single-token collectors of opinions 1..k, in order.
        self._initial_state_ids = np.array(
            [
                self.intern((INIT_COLLECTOR, opinion, 1, False))
                for opinion in range(1, self._k + 1)
            ],
            dtype=np.int64,
        )
        #: Per-state metadata arrays (lazily extended; see _meta).
        self._meta_cache: Dict[str, np.ndarray] = {}
        self._meta_watermark = 0

    # ------------------------------------------------------------------
    # Projection π: concrete SimpleState → quotient tuples
    # ------------------------------------------------------------------
    def _tuple_of(self, s, a: int, t: int):
        """Quotient tuple of agent ``a`` in (real or lifted) state ``s``.

        ``t`` is the saturated tournament counter, supplied by the caller:
        ``min(window, k−1)`` for real states, source-tracked through the
        lift for derived transitions (lifted windows are representatives).
        """
        phase = int(s.phase[a])
        role = int(s.role[a])
        if phase < 0:
            if role == COLLECTOR:
                return (
                    INIT_COLLECTOR,
                    int(s.opinion[a]),
                    int(s.tokens[a]),
                    bool(s.has_initiated[a]),
                )
            if role == CLOCK:
                return (INIT_CLOCK, int(s.count[a]))
            if role == TRACKER:
                return (INIT_TRACKER,)
            if role == PLAYER:
                return (INIT_PLAYER,)
            raise ConfigurationError(
                "counting agents are outside the phase quotient"
            )
        window, pm = divmod(phase, PHASES_PER_TOURNAMENT)
        w = window % WINDOW_MOD
        key = window * PHASES_PER_TOURNAMENT
        bwin = int(s.bwin_tag[a])
        if bwin < 0:
            tag = TAG_NONE
        else:
            age = window - bwin // PHASES_PER_TOURNAMENT
            if age > MAX_EXACT_AGE:
                tag = TAG_STALE
            else:
                # Ages below −1 cannot occur in band (a tag is at most one
                # window ahead of any holder); clamp for the abstract
                # pairs the overflow guard is about to reject anyway.
                tag = max(age, -1)
        if role == COLLECTOR:
            return (
                Q_COLLECTOR,
                pm,
                w,
                t,
                int(s.opinion[a]),
                int(s.tokens[a]),
                bool(s.defender[a]),
                bool(s.challenger[a]),
                int(s.ell[a]),
                bool(s.concl_done[a] == key),
                bool(s.winner[a]),
                tag,
            )
        if role == CLOCK:
            return (Q_CLOCK, pm, w, t, int(s.count[a]), tag)
        if role == TRACKER:
            return (
                Q_TRACKER,
                pm,
                w,
                t,
                int(s.tcnt[a]),
                bool(s.tcnt_done[a] == key),
                tag,
            )
        if role == PLAYER:
            return (
                Q_PLAYER,
                pm,
                w,
                t,
                int(s.popinion[a]),
                int(s.msign[a]),
                int(s.mexpo[a]),
                int(s.mout[a]),
                bool(s.reset_done[a] == key),
                tag,
            )
        raise ConfigurationError(f"unknown role {role}")

    def project(self, agent_state) -> np.ndarray:
        """Per-agent quotient ids of a real agent-array state."""
        s = agent_state
        n = s.phase.shape[0]
        windows = np.maximum(s.phase, 0) // PHASES_PER_TOURNAMENT
        t_sat = np.minimum(windows, self._k - 1)
        return np.fromiter(
            (
                self.intern(self._tuple_of(s, a, int(t_sat[a])))
                for a in range(n)
            ),
            dtype=np.int64,
            count=n,
        )

    # ------------------------------------------------------------------
    # Section: quotient tuples → concrete SimpleState representatives
    # ------------------------------------------------------------------
    def _blank_state(self, size: int):
        from .simple import SimpleState

        return SimpleState(
            role=np.zeros(size, dtype=np.int8),
            phase=np.full(size, -1, dtype=np.int64),
            winner=np.zeros(size, dtype=bool),
            opinion=np.zeros(size, dtype=np.int64),
            tokens=np.zeros(size, dtype=np.int64),
            defender=np.zeros(size, dtype=bool),
            challenger=np.zeros(size, dtype=bool),
            ell=np.zeros(size, dtype=np.int64),
            concl_done=np.full(size, -1, dtype=np.int64),
            bwin_tag=np.full(size, -1, dtype=np.int64),
            count=np.zeros(size, dtype=np.int64),
            tcnt=np.zeros(size, dtype=np.int64),
            tcnt_done=np.full(size, -1, dtype=np.int64),
            popinion=np.full(size, POP_U, dtype=np.int8),
            msign=np.zeros(size, dtype=np.int8),
            mexpo=np.zeros(size, dtype=np.int64),
            mout=np.zeros(size, dtype=np.int8),
            reset_done=np.full(size, -1, dtype=np.int64),
            has_initiated=np.zeros(size, dtype=bool),
            met_same=np.zeros(size, dtype=bool),
            aftermath_live=True,
            origin=0,
            n=self._n,
            k=self._k,
            psi=self._psi,
            init_threshold=self._init_threshold,
            token_cap=self._token_cap,
            max_level=self._max_level,
        )

    @staticmethod
    def _signed_offset(w_a: int, w_b: int) -> int:
        """Signed in-band window offset ``a − b`` recovered from mod-4."""
        return signed_window_offset(w_a, w_b)

    def _lift_agent(self, s, a: int, state, window: Optional[int]) -> int:
        """Write quotient tuple ``state`` into slot ``a``; returns t or −1.

        ``window`` is the representative absolute window for started
        tuples (None for initializing ones).
        """
        kind = state[0]
        s.role[a] = _ROLE_OF_KIND[kind]
        if kind == INIT_COLLECTOR:
            _, opinion, tokens, has_init = state
            s.opinion[a] = opinion
            s.tokens[a] = tokens
            s.has_initiated[a] = has_init
            # During initialization the defender bit is exactly "has
            # initiated and holds opinion 1" (the unordered variant, which
            # breaks this, exports no quotient model).
            s.defender[a] = bool(has_init) and opinion == 1
            return -1
        if kind == INIT_CLOCK:
            s.count[a] = state[1]
            return -1
        if kind in (INIT_TRACKER, INIT_PLAYER):
            if kind == INIT_TRACKER:
                s.tcnt[a] = 1
            return -1
        pm = state[1]
        t = state[3]
        tag = state[-1]
        key = window * PHASES_PER_TOURNAMENT
        s.phase[a] = key + pm
        s.has_initiated[a] = True
        if tag == TAG_NONE:
            s.bwin_tag[a] = -1
        elif tag == TAG_STALE:
            s.bwin_tag[a] = key - LIFT_STALE_AGE * PHASES_PER_TOURNAMENT
        else:
            s.bwin_tag[a] = key - tag * PHASES_PER_TOURNAMENT
        if kind == Q_COLLECTOR:
            _, _, _, _, opinion, tokens, dfn, chal, ell, concl, win, _ = state
            s.opinion[a] = opinion
            s.tokens[a] = tokens
            s.defender[a] = dfn
            s.challenger[a] = chal
            s.ell[a] = ell
            s.concl_done[a] = key if concl else key - PHASES_PER_TOURNAMENT
            s.winner[a] = win
        elif kind == Q_CLOCK:
            s.count[a] = state[4]
        elif kind == Q_TRACKER:
            s.tcnt[a] = state[4]
            s.tcnt_done[a] = (
                key if state[5] else key - PHASES_PER_TOURNAMENT
            )
        else:  # Q_PLAYER
            _, _, _, _, pop, msign, mexpo, mout, reset, _ = state
            s.popinion[a] = pop
            s.msign[a] = msign
            s.mexpo[a] = mexpo
            s.mout[a] = mout
            s.reset_done[a] = key if reset else key - PHASES_PER_TOURNAMENT
        return t

    def _lift_pairs(self, pairs: Sequence[Tuple[int, int]]):
        """Concrete representatives for a batch of state-id pairs.

        Returns ``(state, u, v, pre_phase, pre_t)``: slot ``m`` holds the
        initiator of pair ``m`` and slot ``M + m`` its responder.
        """
        m_pairs = len(pairs)
        size = 2 * m_pairs
        s = self._blank_state(size)
        pre_t = np.full(size, -1, dtype=np.int64)
        final = np.zeros(size, dtype=bool)
        for m, (i, j) in enumerate(pairs):
            a, b = m, m_pairs + m
            sa, sb = self.labels[i], self.labels[j]
            started_a = sa[0] in _STARTED_KINDS
            started_b = sb[0] in _STARTED_KINDS
            win_a = win_b = None
            if started_a and started_b:
                win_b = LIFT_BASE + sb[2]
                win_a = win_b + self._signed_offset(sa[2], sb[2])
            elif started_a:
                win_a = LIFT_BASE + sa[2]
            elif started_b:
                win_b = LIFT_BASE + sb[2]
            pre_t[a] = self._lift_agent(s, a, sa, win_a)
            pre_t[b] = self._lift_agent(s, b, sb, win_b)
            final[a] = pre_t[a] >= self._k - 1
            final[b] = pre_t[b] >= self._k - 1
        s.final_override = final
        u = np.arange(m_pairs, dtype=np.int64)
        v = np.arange(m_pairs, dtype=np.int64) + m_pairs
        return s, u, v, s.phase.copy(), pre_t

    # ------------------------------------------------------------------
    # Derivation: lift → interact → project back
    # ------------------------------------------------------------------
    def _post_t(self, s, a: int, b: int, pre_phase, pre_t) -> int:
        """Saturated tournament counter of slot ``a`` after the interaction.

        Lifted windows are representatives, so ``t`` is tracked through
        the phase flow instead of read off the absolute value: an agent
        that adopted its partner's phase inherits the partner's counter,
        anything else advanced by the number of windows its own phase
        moved (clock ticks).
        """
        p_post = int(s.phase[a])
        if p_post < 0:
            return -1
        cap = self._k - 1
        p_a, p_b = int(pre_phase[a]), int(pre_phase[b])
        if p_a < 0:
            if p_b >= 0 and p_post == p_b:
                return int(pre_t[b])
            # A clock that finished initialization enters window 0.
            return 0
        if p_b > p_a and p_post == p_b:
            return min(cap, int(pre_t[b]))
        moved = p_post // PHASES_PER_TOURNAMENT - p_a // PHASES_PER_TOURNAMENT
        return min(cap, int(pre_t[a]) + moved)

    def _simulate_pairs(self, pairs: Sequence[Tuple[int, int]], rng):
        """Run the production transition on lifted pairs; project back."""
        s, u, v, pre_phase, pre_t = self._lift_pairs(pairs)
        self._algo.interact(s, u, v, rng)
        outcomes = []
        for m in range(len(pairs)):
            a, b = int(u[m]), int(v[m])
            out_a = self.intern(
                self._tuple_of(s, a, self._post_t(s, a, b, pre_phase, pre_t))
            )
            out_b = self.intern(
                self._tuple_of(s, b, self._post_t(s, b, a, pre_phase, pre_t))
            )
            outcomes.append((out_a, out_b))
        return outcomes

    def _is_reroll_pair(self, i: int, j: int) -> bool:
        """Whether (i, j) is a token merge: the one randomized transition.

        Mirrors the ``merge`` predicate of ``SimpleAlgorithm._init_rules``
        (both initializing collectors of one opinion whose tokens fit the
        cap); the guard rng turns any drift into a loud assertion.
        """
        sa, sb = self.labels[i], self.labels[j]
        return (
            sa[0] == INIT_COLLECTOR
            and sb[0] == INIT_COLLECTOR
            and sa[1] == sb[1]
            and sa[2] + sb[2] <= self._token_cap
        )

    def _derive_pairs(self, pairs: Sequence[Tuple[int, int]]) -> None:
        # Pairs are processed strictly in the order given (the canonical
        # sorted order fixed by _ensure_pairs): consecutive deterministic
        # pairs are flushed as one batched _simulate_pairs call (batch
        # interning is per-pair, so the id assignment matches pair-by-pair
        # derivation), and each randomized pair is expanded in place.
        # Warm-start replay reproduces exactly this per-pair interning
        # sequence — that equality is the bit-identity contract.
        det_run: List[Tuple[int, int]] = []

        def flush() -> None:
            if det_run:
                for (i, j), (out_i, out_j) in zip(
                    det_run, self._simulate_pairs(det_run, _GuardRng())
                ):
                    self._record_det(i, j, out_i, out_j)
                det_run.clear()

        for i, j in pairs:
            if not self._is_reroll_pair(i, j):
                det_run.append((i, j))
                continue
            flush()
            # One pass per re-roll arm: uniforms below ⅓ make the released
            # collector a clock, the middle third a tracker, the top third
            # a player (the ROLE_REROLL_CUM thresholds).
            arms = [
                self._simulate_pairs([(i, j)], _ForcedUniformRng(value))[0]
                for value in (1.0 / 6.0, 0.5, 5.0 / 6.0)
            ]
            self._record_random(
                i,
                j,
                RandomEntry(
                    probs=np.full(3, 1.0 / 3.0),
                    out_u=[arm[0] for arm in arms],
                    out_v=[arm[1] for arm in arms],
                ),
            )
        flush()

    def quotient_signature(self) -> Optional[str]:
        """Signature over the phase-quotient shape (never ``n`` or seed).

        Transitions depend on ``n`` only through the derived quantities
        below (Ψ, the init threshold, the level cap) — the production
        ``interact`` never reads ``n`` on a derivation-reachable path —
        so runs at different population sizes share one cache entry
        whenever those quantities coincide.  The raw algorithm parameters
        are hashed too, as a conservative superset of anything
        ``interact`` could consult.
        """
        return signature_of("simple_quotient", self._signature_params())

    def _signature_params(self) -> Dict[str, Any]:
        return {
            "params": dataclasses.asdict(self._algo.params),
            "k": int(self._k),
            "psi": int(self._psi),
            "init_threshold": int(self._init_threshold),
            "token_cap": int(self._token_cap),
            "max_level": int(self._max_level),
        }

    # ------------------------------------------------------------------
    # Initial configuration
    # ------------------------------------------------------------------
    def initial_ids(self, config: PopulationConfig) -> np.ndarray:
        if is_count_native(config):
            raise BackendUnsupported(
                f"count-native config {config.name!r} has no per-agent "
                f"layout to encode; use initial_counts() (batched mode) "
                f"or materialize() the config first"
            )
        lut = np.full(self._k + 1, -1, dtype=np.int64)
        lut[1:] = self._initial_state_ids
        return lut[np.asarray(config.opinions, dtype=np.int64)]

    def initial_counts(self, config: BasePopulation) -> np.ndarray:
        counts = np.zeros(self.num_states, dtype=np.int64)
        counts[self._initial_state_ids] = config.counts()
        return counts

    # ------------------------------------------------------------------
    # Per-state metadata for the count-level hooks
    # ------------------------------------------------------------------
    def _meta(self) -> Dict[str, np.ndarray]:
        total = self.num_states
        if self._meta_watermark < total:
            fields = {
                "role": np.zeros(total, dtype=np.int8),
                "started": np.zeros(total, dtype=bool),
                "w": np.zeros(total, dtype=np.int64),
                "pm": np.zeros(total, dtype=np.int64),
                "winner": np.zeros(total, dtype=bool),
                "opinion": np.zeros(total, dtype=np.int64),
                "tokens": np.zeros(total, dtype=np.int64),
                "ell": np.zeros(total, dtype=np.int64),
            }
            for name, arr in fields.items():
                old = self._meta_cache.get(name)
                if old is not None:
                    arr[: old.shape[0]] = old
            for sid in range(self._meta_watermark, total):
                state = self.labels[sid]
                kind = state[0]
                fields["role"][sid] = _ROLE_OF_KIND[kind]
                if kind == INIT_COLLECTOR:
                    fields["opinion"][sid] = state[1]
                    fields["tokens"][sid] = state[2]
                elif kind in _STARTED_KINDS:
                    fields["started"][sid] = True
                    fields["pm"][sid] = state[1]
                    fields["w"][sid] = state[2]
                    if kind == Q_COLLECTOR:
                        fields["opinion"][sid] = state[4]
                        fields["tokens"][sid] = state[5]
                        fields["ell"][sid] = state[8]
                        fields["winner"][sid] = state[10]
            self._meta_cache = fields
            self._meta_watermark = total
        return self._meta_cache

    # ------------------------------------------------------------------
    # Count-level protocol hooks
    # ------------------------------------------------------------------
    def converged(self, counts: np.ndarray) -> bool:
        meta = self._meta()
        occupied = np.flatnonzero(counts)
        return occupied.size > 0 and bool(meta["winner"][occupied].all())

    def output_opinion(self, counts: np.ndarray) -> Optional[int]:
        meta = self._meta()
        opinions = np.unique(meta["opinion"][np.flatnonzero(counts)])
        if opinions.size == 1 and opinions[0] != 0:
            return int(opinions[0])
        return None

    def failure(self, counts: np.ndarray) -> Optional[str]:
        # Derivation may have interned states past the vector's length;
        # the masks below span the full materialized space.
        counts = self.ensure_capacity(counts)
        meta = self._meta()
        occupied = np.flatnonzero(counts)
        clocks = occupied[
            (meta["role"][occupied] == CLOCK) & meta["started"][occupied]
        ]
        if clocks.size:
            spread = self._clock_phase_spread(
                meta["w"][clocks], meta["pm"][clocks]
            )
            if spread > 2:
                return "clock_desync"
        started = occupied[meta["started"][occupied]]
        if window_band_failure(meta["w"][started], WINDOW_MOD):
            # The band assumption failed and quotient arithmetic is no
            # longer faithful — fail loudly instead of silently diverging
            # from the agent backend.
            return "phase_window_overflow"
        return None

    @staticmethod
    def _clock_phase_spread(ws: np.ndarray, pms: np.ndarray) -> int:
        """Exact clock phase spread, mirroring SimpleAlgorithm.failure."""
        return relative_clock_spread(ws, pms)

    def progress(self, counts: np.ndarray) -> Dict[str, float]:
        counts = self.ensure_capacity(counts)
        meta = self._meta()
        stats: Dict[str, float] = {}
        for value, name in (
            (COLLECTOR, "collector"),
            (CLOCK, "clock"),
            (TRACKER, "tracker"),
            (PLAYER, "player"),
        ):
            stats[f"role_{name}"] = float(counts[meta["role"] == value].sum())
        stats["winners"] = float(counts[meta["winner"]].sum())
        stats["states_materialized"] = float(self.num_states)
        stats["pairs_derived"] = float(self.derived_pairs)
        return stats

    def check_invariants(self, counts: np.ndarray) -> None:
        counts = self.ensure_capacity(counts)
        meta = self._meta()
        if (counts < 0).any():
            raise InvariantViolation("negative state count")
        if not counts[meta["winner"]].any():
            total = int((meta["tokens"] * counts).sum())
            if total != self._n:
                raise InvariantViolation(
                    f"token sum {total} != n {self._n}"
                )
        occupied = np.flatnonzero(counts)
        if (meta["tokens"][occupied] < 0).any() or (
            meta["tokens"][occupied] > self._token_cap
        ).any():
            raise InvariantViolation("tokens escaped [0, cap]")
        if (np.abs(meta["ell"][occupied]) > self._token_cap).any():
            raise InvariantViolation("ell escaped [-cap, cap]")
