"""Era-quotiented count models for the unordered/improved algorithms.

This module resolves the ROADMAP open item "quotient the unordered/improved
variants": :class:`UnorderedQuotientModel` and
:class:`ImprovedQuotientModel` render the paper's headline algorithms
(Appendix B and Section 4) as lazily materialized pairwise transition
systems, so ``simulate(..., backend="counts")`` covers all three core
tournament protocols — batched matching mode at n = 10⁵ .. 10⁹ (benchmark
EB5) and a sequential exact mode that replays the agent backend
bit-for-bit, leader-election coin flips and initialization re-rolls
included (``tests/test_era_quotient.py``).

What the phase quotient of :mod:`repro.core.quotient` could not cover is
the *era machinery* these variants add: the leader-election coin race
records absolute round numbers, and the selection epidemics
(``cand_*`` / ``ann_*`` / ``found_tag`` / ``finish_tag``) tag values with
the absolute phase of their era.  The quotient here splits a run into two
regimes:

Pre-tournament (phases ``< origin = R + selection_phases``)
    Kept **absolute**.  The leader-election rounds and the defender
    selection live in phases ``0 .. origin − 1`` — an O(log n) range that
    the lazily interning :class:`~repro.engine.backends.model.
    DynamicCountModel` absorbs without any lumping, so coin rounds,
    ``le_seen_round`` counters (which are capped at ``R`` and therefore
    finite even for agents that outlive the race), and the selection era
    are represented exactly.

Post-origin (tournament windows)
    Quotiented like SimpleAlgorithm's phases: ``phase ↦ (pm, w)`` with
    ``pm`` the phase within the tournament and ``w`` the window modulo
    :data:`~repro.core.quotient.WINDOW_MOD` (no saturated tournament
    counter is needed — the unordered variants terminate via the leader's
    ``finish_tag``, never via a ``k − 1`` crowning predicate).

Era tags become **holder-relative ages**: a tag whose era is the holder's
current era has age 0, the previous era age 1, and so on; era indices are
``−1`` for the selection era and the tournament number afterwards.  Ages
are exact in ``{−1, 0, 1, 2}`` (−1 arises when a fresher tag is copied
from one window ahead of a lagging holder) and collapse to ``STALE``
beyond: an older tag can never again equal any in-band holder's current
era (eras only advance, and a handover lowers the holder-relative age by
at most the in-band window gap of 1), so it can neither be sampled, nor
mark a challenger, nor out-rank a younger tag — and the *payloads* of
stale tags (``cand_op`` / ``ann_op``) are erased by the projection, which
makes the spurious stale-versus-stale copies the representative lift can
introduce observably invisible.  ``found_tag`` is never copied between
agents and is only ever compared against the holder's own era, so it
collapses to a single freshness boolean.

Transitions are not re-implemented: pairs are lifted to concrete
representatives (pre-origin phases verbatim; post-origin windows placed
at ``LIFT_BASE`` + recovered signed offset, or at their literal window
when the partner is pre-origin so that cross-regime comparisons stay
absolute), the production ``interact`` of the algorithm runs on the pair,
and the outcome is projected back with the same section used on real
agent states — bit-faithful by construction, exactly as in
:mod:`repro.core.quotient`.

The :class:`ImprovedQuotientModel` adds the pruning stage (Section 4):
agents start as collectors at phase ``−c`` driving per-subpopulation
junta clocks.  Junta levels are O(log log n) and clock positions are
bounded by ``c · m = O(log n)`` while an agent is still pruning (an agent
whose position reaches ``c·m`` starts in the same interaction), so the
entire pruning state is kept **verbatim** — the pruning stage, like the
pre-tournament regime, is exact.

Out-of-band trajectories — post-origin windows spanning more than two
consecutive tournaments, a pre-origin straggler surviving into tournament
window 1, or a mid-race tracker surviving until winners exist — are not
represented faithfully.  Each requires an agent to dodge every
interaction for Θ(log n) parallel time (probability ``n · 2^−Ω(Ψn)``);
the model's ``failure`` hook reports ``"era_window_overflow"`` at the
next check, so the dominant failure class is loud, never a silently
wrong trajectory — the same trade-off :mod:`repro.core.quotient` makes
for SimpleAlgorithm, in the spirit of the paper's title.

Randomness
==========

The variants flip coins at up to five rng call sites per interaction
batch, in fixed code order: the initialization re-roll of a collector
that merged its tokens away (or, for the improved algorithm, completed
its pruning hours without tokens), the two sides of the improved
algorithm's phase-0 release, and the two sides' leader-election coin
flips.  Each site consumes one uniform per affected agent, in batch
order, through shared thresholds (:data:`~repro.core.common.
ROLE_REROLL_CUM`, :data:`~repro.leader.coin_race.LE_COIN_CUM`).  A pair
that hits several sites (e.g. a pruning release on one side and a coin
flip on the other) becomes a multi-factor
:class:`~repro.engine.backends.model.RandomEntry` whose factors name the
call sites; the dynamic count model consumes one uniform per factor in
``(call site, pair)`` order, which is exactly the agent path's
consumption order — that alignment is what makes the sequential exact
mode's replay bit-for-bit.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from ..cache.signature import signature_of
from ..engine.backends.model import (
    DynamicCountModel,
    RandomEntry,
    window_band_failure,
)
from ..engine.errors import (
    BackendUnsupported,
    ConfigurationError,
    InvariantViolation,
)
from ..engine.population import BasePopulation, PopulationConfig, is_count_native
from ..leader.coin_race import LE_COIN_CUM
from .common import (
    CLOCK,
    COLLECTOR,
    PHASES_PER_TOURNAMENT,
    PLAYER,
    POP_U,
    ROLE_REROLL_CUM,
    TRACKER,
)
from .quotient import (
    MAX_EXACT_AGE,
    TAG_NONE,
    TAG_STALE,
    WINDOW_MOD,
    _GuardRng,
    _ScriptedRng,
    relative_clock_spread,
    signed_window_offset,
)

#: Base window of lifted post-origin representatives (multiple of
#: WINDOW_MOD so that ``window mod 4`` survives the round trip).
LIFT_BASE = 8
#: Holder-relative age used to lift ``TAG_STALE`` tags in the
#: representative frame; ± the in-band window offset this stays ≥ 3.
LIFT_STALE_AGE = 6
#: Absolute era value used to lift a stale tag when the pair is in the
#: absolute (pre-origin / mixed) frame, where no representative window
#: ``LIFT_STALE_AGE`` eras back exists.  0 is below every real era value
#: (the selection era sits at ``rounds > 8``, tournament eras at
#: ``origin + 10t``) while still counting as a *set* tag for the
#: ``finish_tag ≥ 0`` predicates; the era-index arithmetic maps it back
#: to a very old era, so staleness survives the round trip.
STALE_SENTINEL = 0

# Tuple kind markers (first element of every quotient state tuple).
INIT_COLLECTOR = "ic"
INIT_CLOCK = "icl"
INIT_TRACKER = "itr"
INIT_PLAYER = "ipl"
PRUNING = "pr"
Q_COLLECTOR = "co"
Q_CLOCK = "cl"
Q_TRACKER = "tr"
Q_PLAYER = "pl"

_STARTED_KINDS = (Q_COLLECTOR, Q_CLOCK, Q_TRACKER, Q_PLAYER)
_ROLE_OF_KIND = {
    INIT_COLLECTOR: COLLECTOR,
    INIT_CLOCK: CLOCK,
    INIT_TRACKER: TRACKER,
    INIT_PLAYER: PLAYER,
    PRUNING: COLLECTOR,
    Q_COLLECTOR: COLLECTOR,
    Q_CLOCK: CLOCK,
    Q_TRACKER: TRACKER,
    Q_PLAYER: PLAYER,
}

#: Phase encodings inside started tuples: ("p", absolute phase) before
#: the tournament origin, ("w", pm, window mod 4) afterwards.
PH_PRE = "p"
PH_WINDOW = "w"

# Rng call sites of the agent path, in code order (= factor groups).
G_INIT_RELEASE = 0
G_ADOPT_U = 1
G_ADOPT_V = 2
G_FLIP_U = 3
G_FLIP_V = 4


class _Factor(NamedTuple):
    """One independent draw of a randomized pair: call site + thresholds.

    ``arms`` holds one (representative uniform, probability) per outcome;
    the representative is scripted into the production ``interact`` to
    realize that arm during derivation.
    """

    group: int
    cum: np.ndarray
    arms: Tuple[Tuple[float, float], ...]


_REROLL_ARMS = ((1.0 / 6.0, 1.0 / 3.0), (0.5, 1.0 / 3.0), (5.0 / 6.0, 1.0 / 3.0))
_COIN_ARMS = ((0.25, 0.5), (0.75, 0.5))


def _reroll_factor(group: int) -> _Factor:
    return _Factor(group, ROLE_REROLL_CUM, _REROLL_ARMS)


def _flip_factor(group: int) -> _Factor:
    return _Factor(group, LE_COIN_CUM, _COIN_ARMS)


class UnorderedQuotientModel(DynamicCountModel):
    """Era-quotient table for UnorderedAlgorithm (Appendix B).

    See the module docstring for the construction.  States are interned
    tuples; pair transitions are derived on demand by lifting the pair to
    concrete agents and running the production ``interact`` on them, and
    are memoized for the lifetime of the model.

    ``absolute=True`` disables the quotient entirely: *every* phase is
    kept absolute (the ``(PH_PRE, phase)`` encoding extends past the
    origin) and era tags keep their raw absolute values, so the
    projection is injective on the observable per-agent state and the
    lift is its literal inverse — no lumping argument needed, and none
    of the out-of-band guards apply.  The state space then grows with
    the trajectory length instead of staying bounded, which is exactly
    right for the populations *below the tournament-origin gate*
    (``tournament_phase_offset(n) ≤ 10``, n ≲ 26 at the default
    ``le_factor``): their runs are short, and the absolute model serves
    them where the windowed quotient's lift frame would alias.
    """

    def __init__(self, algorithm, config: BasePopulation, absolute: bool = False):
        super().__init__()
        if config.n < 4:
            raise ConfigurationError("the tournament algorithms need n >= 4")
        params = algorithm.params
        if params.counting_agents or params.init_decrement < 1.0:
            raise ConfigurationError(
                "the era quotient does not cover the Appendix C "
                "parameterizations (counting_agents / fractional "
                "init_decrement)"
            )
        self._absolute = bool(absolute)
        self._algo = algorithm
        self._n = int(config.n)
        self._k = int(config.k)
        self._rounds = int(params.rounds(self._n))
        self._origin = int(params.tournament_phase_offset(self._n))
        if not self._absolute and self._origin <= PHASES_PER_TOURNAMENT:
            # The windowed frame separates "one era before tournament 0"
            # (origin − 10) from the stale sentinel and the unset tag only
            # when origin − 10 is positive; below that (n ≲ 26 with the
            # default le_factor) the fully-absolute model serves instead.
            raise ConfigurationError(
                "the windowed era quotient needs tournament_phase_offset(n)"
                f" > {PHASES_PER_TOURNAMENT} (got {self._origin}); use "
                "absolute=True for populations below the origin gate"
            )
        self._psi = params.psi(self._n)
        self._init_threshold = params.init_threshold(self._n)
        self._token_cap = params.token_cap
        self._max_level = params.max_level(self._n)
        #: Intern the k initial states first so ids 0..k−1 are the initial
        #: agents of opinions 1..k, in order.
        self._initial_state_ids = np.array(
            [
                self.intern(self._initial_tuple(opinion))
                for opinion in range(1, self._k + 1)
            ],
            dtype=np.int64,
        )
        self._meta_cache: Dict[str, np.ndarray] = {}
        self._meta_watermark = 0

    def _initial_tuple(self, opinion: int):
        """Quotient tuple of a fresh agent holding ``opinion``."""
        return (INIT_COLLECTOR, opinion, 1)

    # ------------------------------------------------------------------
    # Era arithmetic
    # ------------------------------------------------------------------
    def _era_index(self, tau: int) -> int:
        """Era index of an absolute era value: −1 = selection era.

        Values below the selection era (only the stale sentinel lives
        there) count in single phases so even the smallest sentinel maps
        to a very old era.
        """
        if tau >= self._origin:
            return (tau - self._origin) // PHASES_PER_TOURNAMENT
        if tau >= self._rounds:
            return -1
        return -1 - (self._rounds - tau)

    def _era_of_phase(self, phase: int) -> int:
        return (
            -1
            if phase < self._origin
            else (phase - self._origin) // PHASES_PER_TOURNAMENT
        )

    def _era_key(self, e: int) -> int:
        """Canonical era-start value of era index ``e ≥ −1``."""
        if e >= 0:
            return self._origin + PHASES_PER_TOURNAMENT * e
        return self._rounds

    def _tag_age(self, tau: int, e_h: int) -> int:
        """Holder-relative age of the tag era value ``tau`` (π direction).

        The absolute model keeps the raw era value instead of an age —
        the identity map, inverted verbatim by :meth:`_tag_value`.
        """
        if self._absolute:
            return int(tau)
        if tau < 0:
            return TAG_NONE
        age = e_h - self._era_index(tau)
        if age > MAX_EXACT_AGE:
            return TAG_STALE
        # Ages below −1 cannot occur in band (a tag is at most one era
        # ahead of any holder); clamp for the abstract configurations the
        # overflow guard is about to reject anyway.
        return max(age, -1)

    def _tag_value(self, age: int, e_h: int) -> int:
        """Representative era value of a tag age (lift direction)."""
        if self._absolute:
            return int(age)
        if age == TAG_NONE:
            return -1
        if age == TAG_STALE:
            e_t = e_h - LIFT_STALE_AGE
            if e_t >= 0:
                return self._origin + PHASES_PER_TOURNAMENT * e_t
            return STALE_SENTINEL
        e_t = e_h - age
        return self._era_key(max(e_t, -1))

    @property
    def _tag_unset(self) -> int:
        """The 'no tag' encoding: raw −1 absolute, TAG_NONE quotiented."""
        return -1 if self._absolute else TAG_NONE

    def _tag_op(self, op: int, age: int) -> int:
        """Tag payload, erased when the age says it is unobservable.

        In the windowed quotient a payload behind an unset or stale tag
        can never be read again, so the projection erases it (keeping
        spurious stale copies invisible).  The absolute model keeps the
        raw payload — its projection is injective, erasure would discard
        real state.
        """
        if self._absolute:
            return int(op)
        return int(op) if age not in (TAG_NONE, TAG_STALE) else 0

    # ------------------------------------------------------------------
    # Projection π: concrete UnorderedState → quotient tuples
    # ------------------------------------------------------------------
    def _init_tuple_of(self, s, a: int):
        role = int(s.role[a])
        if role == COLLECTOR:
            return (INIT_COLLECTOR, int(s.opinion[a]), int(s.tokens[a]))
        if role == CLOCK:
            return (INIT_CLOCK, int(s.count[a]))
        if role == TRACKER:
            return (INIT_TRACKER,)
        if role == PLAYER:
            return (INIT_PLAYER,)
        raise ConfigurationError(
            "counting agents are outside the era quotient"
        )

    def _tuple_of(self, s, a: int):
        """Quotient tuple of agent ``a`` in (real or lifted) state ``s``."""
        phase = int(s.phase[a])
        if phase < 0:
            return self._init_tuple_of(s, a)
        role = int(s.role[a])
        if self._absolute or phase < self._origin:
            ph = (PH_PRE, phase)
            e_h = self._era_of_phase(phase)
        else:
            window, pm = divmod(phase - self._origin, PHASES_PER_TOURNAMENT)
            ph = (PH_WINDOW, pm, window % WINDOW_MOD)
            e_h = window
        own_key = self._era_key(e_h)
        bwin = self._tag_age(int(s.bwin_tag[a]), e_h)
        ann_age = self._tag_age(int(s.ann_tag[a]), e_h)
        ann_op = self._tag_op(int(s.ann_op[a]), ann_age)
        fin = self._tag_age(int(s.finish_tag[a]), e_h)
        tags = (bwin, ann_op, ann_age, fin)
        if role == COLLECTOR:
            lblock = None
            if bool(s.leader[a]):
                cand_age = self._tag_age(int(s.cand_tag[a]), e_h)
                cand_op = self._tag_op(int(s.cand_op[a]), cand_age)
                lblock = (
                    cand_op,
                    cand_age,
                    bool(int(s.found_tag[a]) == own_key),
                )
            return (
                Q_COLLECTOR,
                ph,
                int(s.opinion[a]),
                int(s.tokens[a]),
                bool(s.defender[a]),
                bool(s.challenger[a]),
                int(s.ell[a]),
                bool(int(s.concl_done[a]) == own_key),
                bool(s.winner[a]),
                bool(s.played[a]),
                tags,
                lblock,
            )
        if role == CLOCK:
            return (Q_CLOCK, ph, int(s.count[a]), tags)
        if role == TRACKER:
            cand_age = self._tag_age(int(s.cand_tag[a]), e_h)
            cand_op = self._tag_op(int(s.cand_op[a]), cand_age)
            return (
                Q_TRACKER,
                ph,
                int(s.le_seen_round[a]),
                bool(s.le_cand[a]),
                int(s.le_coin[a]),
                int(s.le_seen_max[a]),
                bool(s.leader[a]),
                bool(int(s.found_tag[a]) == own_key),
                cand_op,
                cand_age,
                tags,
            )
        if role == PLAYER:
            return (
                Q_PLAYER,
                ph,
                int(s.popinion[a]),
                int(s.msign[a]),
                int(s.mexpo[a]),
                int(s.mout[a]),
                bool(int(s.reset_done[a]) == own_key),
                tags,
            )
        raise ConfigurationError(f"unknown role {role}")

    def project(self, agent_state) -> np.ndarray:
        """Per-agent quotient ids of a real agent-array state."""
        s = agent_state
        n = s.phase.shape[0]
        return np.fromiter(
            (self.intern(self._tuple_of(s, a)) for a in range(n)),
            dtype=np.int64,
            count=n,
        )

    # ------------------------------------------------------------------
    # Section: quotient tuples → concrete representatives
    # ------------------------------------------------------------------
    def _state_arrays(self, size: int) -> Dict[str, object]:
        """Field dict of a blank lifted state (subclasses extend)."""
        return dict(
            role=np.zeros(size, dtype=np.int8),
            phase=np.full(size, -1, dtype=np.int64),
            winner=np.zeros(size, dtype=bool),
            opinion=np.zeros(size, dtype=np.int64),
            tokens=np.zeros(size, dtype=np.int64),
            defender=np.zeros(size, dtype=bool),
            challenger=np.zeros(size, dtype=bool),
            ell=np.zeros(size, dtype=np.int64),
            concl_done=np.full(size, -1, dtype=np.int64),
            bwin_tag=np.full(size, -1, dtype=np.int64),
            count=np.zeros(size, dtype=np.int64),
            tcnt=np.zeros(size, dtype=np.int64),
            tcnt_done=np.full(size, -1, dtype=np.int64),
            popinion=np.full(size, POP_U, dtype=np.int8),
            msign=np.zeros(size, dtype=np.int8),
            mexpo=np.zeros(size, dtype=np.int64),
            mout=np.zeros(size, dtype=np.int8),
            reset_done=np.full(size, -1, dtype=np.int64),
            has_initiated=np.zeros(size, dtype=bool),
            met_same=np.zeros(size, dtype=bool),
            aftermath_live=True,
            origin=self._origin,
            n=self._n,
            k=self._k,
            psi=self._psi,
            init_threshold=self._init_threshold,
            token_cap=self._token_cap,
            max_level=self._max_level,
            le_cand=np.zeros(size, dtype=bool),
            le_coin=np.zeros(size, dtype=np.int8),
            le_seen_max=np.zeros(size, dtype=np.int8),
            le_seen_round=np.full(size, -1, dtype=np.int64),
            leader=np.zeros(size, dtype=bool),
            played=np.zeros(size, dtype=bool),
            cand_op=np.zeros(size, dtype=np.int64),
            cand_tag=np.full(size, -1, dtype=np.int64),
            ann_op=np.zeros(size, dtype=np.int64),
            ann_tag=np.full(size, -1, dtype=np.int64),
            found_tag=np.full(size, -1, dtype=np.int64),
            finish_tag=np.full(size, -1, dtype=np.int64),
            rounds=self._rounds,
        )

    def _blank_state(self, size: int):
        from .unordered import UnorderedState

        return UnorderedState(**self._state_arrays(size))

    @staticmethod
    def _stage(state) -> str:
        kind = state[0]
        if kind in _STARTED_KINDS:
            return "post" if state[1][0] == PH_WINDOW else "pre"
        return "init"

    def _post_phase(self, state, window: int) -> int:
        """Absolute representative phase of a post-origin tuple."""
        return self._origin + PHASES_PER_TOURNAMENT * window + state[1][1]

    def _assign_phases(self, sa, sb) -> Tuple[Optional[int], Optional[int]]:
        """Representative phases of a pair (None = initializing).

        Both post-origin: windows placed at ``LIFT_BASE`` + the recovered
        signed offset (era ages are relative, so any base works — the
        lift-base invariance test moves it).  A post-origin agent paired
        with a *pre-origin* one is placed at its literal mod-4 window so
        that absolute cross-regime comparisons (phase broadcast order,
        tag eras against the selection era) come out right; in band such
        mixes only occur in window 0, which the era guard enforces.
        Pre-origin phases are representatives of themselves.
        """
        stage_a, stage_b = self._stage(sa), self._stage(sb)
        pa: Optional[int] = None
        pb: Optional[int] = None
        if stage_a == "pre":
            pa = sa[1][1]
        if stage_b == "pre":
            pb = sb[1][1]
        if stage_a == "post" and stage_b == "post":
            win_b = LIFT_BASE + sb[1][2]
            win_a = win_b + signed_window_offset(sa[1][2], sb[1][2])
            pa = self._post_phase(sa, win_a)
            pb = self._post_phase(sb, win_b)
        elif stage_a == "post":
            base = sa[1][2] if stage_b == "pre" else LIFT_BASE + sa[1][2]
            pa = self._post_phase(sa, base)
        elif stage_b == "post":
            base = sb[1][2] if stage_a == "pre" else LIFT_BASE + sb[1][2]
            pb = self._post_phase(sb, base)
        return pa, pb

    def _lift_init(self, s, a: int, state) -> None:
        kind = state[0]
        s.role[a] = _ROLE_OF_KIND[kind]
        if kind == INIT_COLLECTOR:
            s.opinion[a] = state[1]
            s.tokens[a] = state[2]
        elif kind == INIT_CLOCK:
            s.count[a] = state[1]
        elif kind == INIT_TRACKER:
            # Released trackers always enroll as candidates (see
            # UnorderedAlgorithm._on_new_trackers) with the race not yet
            # entered; tcnt is dead in the unordered variants.
            s.le_cand[a] = True
            s.tcnt[a] = 1
        elif kind != INIT_PLAYER:
            raise ConfigurationError(f"unknown init kind {kind!r}")

    def _lift_agent(self, s, a: int, state, phase: Optional[int]) -> None:
        kind = state[0]
        if kind not in _STARTED_KINDS:
            self._lift_init(s, a, state)
            return
        s.role[a] = _ROLE_OF_KIND[kind]
        s.phase[a] = phase
        s.has_initiated[a] = True
        e_h = self._era_of_phase(phase)
        own_key = self._era_key(e_h)
        not_done = -1 if e_h < 0 else own_key - PHASES_PER_TOURNAMENT
        tags = state[10] if kind == Q_COLLECTOR else state[-1]
        bwin, ann_op, ann_age, fin = tags
        s.bwin_tag[a] = self._tag_value(bwin, e_h)
        s.ann_op[a] = ann_op
        s.ann_tag[a] = self._tag_value(ann_age, e_h)
        s.finish_tag[a] = self._tag_value(fin, e_h)
        if kind == Q_COLLECTOR:
            (_, _, op, tokens, dfn, chal, ell, concl, win, played, _, lblock) = state
            s.opinion[a] = op
            s.tokens[a] = tokens
            s.defender[a] = dfn
            s.challenger[a] = chal
            s.ell[a] = ell
            s.concl_done[a] = own_key if concl else not_done
            s.winner[a] = win
            s.played[a] = played
            if lblock is not None:
                cand_op, cand_age, found = lblock
                s.leader[a] = True
                s.cand_op[a] = cand_op
                s.cand_tag[a] = self._tag_value(cand_age, e_h)
                s.found_tag[a] = own_key if found else -1
        elif kind == Q_CLOCK:
            s.count[a] = state[2]
        elif kind == Q_TRACKER:
            (_, _, seen, cand, coin, mx, leader, found, cand_op, cand_age, _) = state
            s.le_seen_round[a] = seen
            s.le_cand[a] = cand
            s.le_coin[a] = coin
            s.le_seen_max[a] = mx
            s.leader[a] = leader
            s.found_tag[a] = own_key if found else -1
            s.cand_op[a] = cand_op
            s.cand_tag[a] = self._tag_value(cand_age, e_h)
            s.tcnt[a] = 1
        else:  # Q_PLAYER
            (_, _, pop, msign, mexpo, mout, reset, _) = state
            s.popinion[a] = pop
            s.msign[a] = msign
            s.mexpo[a] = mexpo
            s.mout[a] = mout
            s.reset_done[a] = own_key if reset else not_done

    def _lift_pairs(self, pairs: Sequence[Tuple[int, int]]):
        """Concrete representatives for a batch of state-id pairs.

        Returns ``(state, u, v)``: slot ``m`` holds the initiator of pair
        ``m`` and slot ``M + m`` its responder.
        """
        m_pairs = len(pairs)
        s = self._blank_state(2 * m_pairs)
        for m, (i, j) in enumerate(pairs):
            sa, sb = self.labels[i], self.labels[j]
            pa, pb = self._assign_phases(sa, sb)
            self._lift_agent(s, m, sa, pa)
            self._lift_agent(s, m_pairs + m, sb, pb)
        u = np.arange(m_pairs, dtype=np.int64)
        v = np.arange(m_pairs, dtype=np.int64) + m_pairs
        return s, u, v

    # ------------------------------------------------------------------
    # Derivation: lift → interact → project back
    # ------------------------------------------------------------------
    def _simulate_pairs(self, pairs: Sequence[Tuple[int, int]], rng):
        """Run the production transition on lifted pairs; project back."""
        s, u, v = self._lift_pairs(pairs)
        self._algo.interact(s, u, v, rng)
        return [
            (
                self.intern(self._tuple_of(s, int(u[m]))),
                self.intern(self._tuple_of(s, int(v[m]))),
            )
            for m in range(len(pairs))
        ]

    def _flip_pending(self, state) -> bool:
        """Whether this tuple flips a leader-election coin when it acts.

        Mirrors the ``behind``/``flipping`` predicates of ``_le_rules`` /
        ``le_enter_round``: a started tracker whose phase entered a coin
        round it has not flipped for yet.  Post-origin trackers finalize
        without flipping; the guard rng turns any drift into a loud
        assertion.
        """
        if state[0] != Q_TRACKER or state[1][0] != PH_PRE:
            return False
        phase = state[1][1]
        return state[2] < phase < self._rounds

    def _init_release_factors(self, sa, sb) -> List[_Factor]:
        """Factors of the initialization call sites (subclasses override)."""
        if (
            sa[0] == INIT_COLLECTOR
            and sb[0] == INIT_COLLECTOR
            and sa[1] == sb[1]
            and sa[1] > 0
            and sa[2] + sb[2] <= self._token_cap
        ):
            # Token merge: the initiator hands its tokens over and
            # re-rolls into a non-collector role.
            return [_reroll_factor(G_INIT_RELEASE)]
        return []

    def _random_factors(self, i: int, j: int) -> List[_Factor]:
        """The rng call sites pair (i, j) consumes, in call order."""
        sa, sb = self.labels[i], self.labels[j]
        factors = self._init_release_factors(sa, sb)
        if self._flip_pending(sa):
            factors.append(_flip_factor(G_FLIP_U))
        if self._flip_pending(sb):
            factors.append(_flip_factor(G_FLIP_V))
        return factors

    def _derive_pairs(self, pairs: Sequence[Tuple[int, int]]) -> None:
        # Pairs are processed strictly in the order given (the canonical
        # sorted order fixed by _ensure_pairs): consecutive deterministic
        # pairs flush as one batched _simulate_pairs call (batch interning
        # is per-pair, so id assignment matches pair-by-pair derivation),
        # and each randomized pair expands its joint arms in place.
        # Warm-start replay reproduces exactly this per-pair interning
        # sequence — that equality is the bit-identity contract.
        det_run: List[Tuple[int, int]] = []

        def flush() -> None:
            if det_run:
                for (i, j), (out_i, out_j) in zip(
                    det_run, self._simulate_pairs(det_run, _GuardRng())
                ):
                    self._record_det(i, j, out_i, out_j)
                det_run.clear()

        for pair in pairs:
            factors = self._random_factors(*pair)
            if not factors:
                det_run.append(pair)
                continue
            flush()
            i, j = pair
            out_u: List[int] = []
            out_v: List[int] = []
            probs: List[float] = []
            # One pass per joint arm, the production interact scripted
            # with that arm's representative uniforms (call-site order).
            for combo in itertools.product(*(f.arms for f in factors)):
                scripted = _ScriptedRng([value for value, _ in combo])
                ((o_u, o_v),) = self._simulate_pairs([(i, j)], scripted)
                scripted.assert_exhausted()
                out_u.append(o_u)
                out_v.append(o_v)
                prob = 1.0
                for _, p in combo:
                    prob *= p
                probs.append(prob)
            self._record_random(
                i,
                j,
                RandomEntry(
                    probs=probs,
                    out_u=out_u,
                    out_v=out_v,
                    factors=[(f.group, f.cum) for f in factors],
                ),
            )
        flush()

    def quotient_signature(self) -> Optional[str]:
        """Signature over the era-quotient shape (never ``n`` or seed).

        Transitions depend on ``n`` only through the derived quantities
        hashed here (Ψ, thresholds, rounds, the tournament origin); the
        raw algorithm parameters ride along as a conservative superset of
        anything the production ``interact`` could consult.  The frame
        (windowed vs fully-absolute) changes the lift and the labels, so
        it is part of the shape.
        """
        return signature_of(self._signature_kind(), self._signature_params())

    def _signature_kind(self) -> str:
        return "era_quotient"

    def _signature_params(self) -> Dict[str, object]:
        return {
            "params": dataclasses.asdict(self._algo.params),
            "absolute": bool(self._absolute),
            "k": int(self._k),
            "rounds": int(self._rounds),
            "origin": int(self._origin),
            "psi": int(self._psi),
            "init_threshold": int(self._init_threshold),
            "token_cap": int(self._token_cap),
            "max_level": int(self._max_level),
        }

    # ------------------------------------------------------------------
    # Initial configuration
    # ------------------------------------------------------------------
    def initial_ids(self, config: PopulationConfig) -> np.ndarray:
        if is_count_native(config):
            raise BackendUnsupported(
                f"count-native config {config.name!r} has no per-agent "
                f"layout to encode; use initial_counts() (batched mode) "
                f"or materialize() the config first"
            )
        lut = np.full(self._k + 1, -1, dtype=np.int64)
        lut[1:] = self._initial_state_ids
        return lut[np.asarray(config.opinions, dtype=np.int64)]

    def initial_counts(self, config: BasePopulation) -> np.ndarray:
        counts = np.zeros(self.num_states, dtype=np.int64)
        counts[self._initial_state_ids] = config.counts()
        return counts

    # ------------------------------------------------------------------
    # Per-state metadata for the count-level hooks
    # ------------------------------------------------------------------
    def _meta_fields(self, total: int) -> Dict[str, np.ndarray]:
        return {
            "role": np.zeros(total, dtype=np.int8),
            "started": np.zeros(total, dtype=bool),
            "pre": np.zeros(total, dtype=bool),
            "post": np.zeros(total, dtype=bool),
            "pruning": np.zeros(total, dtype=bool),
            "w": np.zeros(total, dtype=np.int64),
            "pm": np.zeros(total, dtype=np.int64),
            "pre_phase": np.full(total, -1, dtype=np.int64),
            "winner": np.zeros(total, dtype=bool),
            "opinion": np.zeros(total, dtype=np.int64),
            "tokens": np.zeros(total, dtype=np.int64),
            "ell": np.zeros(total, dtype=np.int64),
            "leader": np.zeros(total, dtype=bool),
            "seen": np.full(total, -1, dtype=np.int64),
            "finish": np.zeros(total, dtype=bool),
            "played_collector": np.zeros(total, dtype=bool),
        }

    def _meta_of_state(self, fields: Dict[str, np.ndarray], sid: int) -> None:
        state = self.labels[sid]
        kind = state[0]
        fields["role"][sid] = _ROLE_OF_KIND[kind]
        if kind == INIT_COLLECTOR:
            fields["opinion"][sid] = state[1]
            fields["tokens"][sid] = state[2]
            return
        if kind == PRUNING:
            fields["pruning"][sid] = True
            fields["opinion"][sid] = state[2]
            fields["tokens"][sid] = state[3]
            return
        if kind not in _STARTED_KINDS:
            return
        fields["started"][sid] = True
        ph = state[1]
        if ph[0] == PH_PRE:
            fields["pre"][sid] = True
            fields["pre_phase"][sid] = ph[1]
        else:
            fields["post"][sid] = True
            fields["pm"][sid] = ph[1]
            fields["w"][sid] = ph[2]
        tags = state[10] if kind == Q_COLLECTOR else state[-1]
        fields["finish"][sid] = tags[3] != self._tag_unset
        if kind == Q_COLLECTOR:
            fields["opinion"][sid] = state[2]
            fields["tokens"][sid] = state[3]
            fields["ell"][sid] = state[6]
            fields["winner"][sid] = state[8]
            fields["played_collector"][sid] = state[9]
            fields["leader"][sid] = state[11] is not None
        elif kind == Q_TRACKER:
            fields["seen"][sid] = state[2]
            fields["leader"][sid] = state[6]

    def _meta(self) -> Dict[str, np.ndarray]:
        total = self.num_states
        if self._meta_watermark < total:
            fields = self._meta_fields(total)
            for name, arr in fields.items():
                old = self._meta_cache.get(name)
                if old is not None:
                    arr[: old.shape[0]] = old
            for sid in range(self._meta_watermark, total):
                self._meta_of_state(fields, sid)
            self._meta_cache = fields
            self._meta_watermark = total
        return self._meta_cache

    # ------------------------------------------------------------------
    # Count-level protocol hooks
    # ------------------------------------------------------------------
    def converged(self, counts: np.ndarray) -> bool:
        counts = self.ensure_capacity(counts)
        meta = self._meta()
        occupied = np.flatnonzero(counts)
        return occupied.size > 0 and bool(meta["winner"][occupied].all())

    def output_opinion(self, counts: np.ndarray) -> Optional[int]:
        counts = self.ensure_capacity(counts)
        meta = self._meta()
        opinions = np.unique(meta["opinion"][np.flatnonzero(counts)])
        if opinions.size == 1 and opinions[0] != 0:
            return int(opinions[0])
        return None

    def _clock_spread(self, meta, clocks: np.ndarray) -> int:
        """Started-clock phase spread, exact across the regime boundary."""
        pre = clocks[meta["pre"][clocks]]
        post = clocks[meta["post"][clocks]]
        if pre.size and post.size:
            if (meta["w"][post] != 0).any():
                # A pre-origin clock next to clocks past tournament 0:
                # over any desync bound (and out of band — the era guard
                # reports that separately).
                return PHASES_PER_TOURNAMENT
            phases = np.concatenate(
                [meta["pre_phase"][pre], self._origin + meta["pm"][post]]
            )
            return int(phases.max() - phases.min())
        if pre.size:
            phases = meta["pre_phase"][pre]
            return int(phases.max() - phases.min())
        return relative_clock_spread(meta["w"][post], meta["pm"][post])

    def failure(self, counts: np.ndarray) -> Optional[str]:
        counts = self.ensure_capacity(counts)
        meta = self._meta()
        occupied = np.flatnonzero(counts)
        clocks = occupied[
            (meta["role"][occupied] == CLOCK) & meta["started"][occupied]
        ]
        if clocks.size and self._clock_spread(meta, clocks) > 2:
            return "clock_desync"
        post = occupied[meta["post"][occupied]]
        if window_band_failure(meta["w"][post], WINDOW_MOD):
            # Post-origin windows escaped the 2-consecutive-window band:
            # mod-4 offset recovery (and era-age arithmetic) is no longer
            # faithful — fail loudly instead of silently diverging.
            return "era_window_overflow"
        pre = occupied[meta["pre"][occupied]]
        if pre.size and post.size and (meta["w"][post] != 0).any():
            # A pre-origin straggler while tournament 1+ is occupied: the
            # absolute mixed-frame lift (and era ages on the straggler)
            # would alias.
            return "era_window_overflow"
        if not self._absolute:
            trackers = occupied[
                (meta["role"][occupied] == TRACKER) & meta["started"][occupied]
            ]
            mid_race = trackers[meta["seen"][trackers] < self._rounds]
            if counts[meta["winner"]].any() and mid_race.size:
                # A tracker still racing when winners exist: a conversion
                # by the winner epidemic would drop live coin-race state.
                # (The absolute model represents such configurations
                # exactly, so it never needs this guard.)
                return "era_window_overflow"
        all_trackers = occupied[meta["role"][occupied] == TRACKER]
        if all_trackers.size and (
            meta["seen"][all_trackers] >= self._rounds
        ).all():
            leaders = int(counts[meta["leader"]].sum())
            if leaders == 0:
                return "no_leader"
            if leaders > 1:
                return "multiple_leaders"
        return None

    def progress(self, counts: np.ndarray) -> Dict[str, float]:
        counts = self.ensure_capacity(counts)
        meta = self._meta()
        stats: Dict[str, float] = {}
        for value, name in (
            (COLLECTOR, "collector"),
            (CLOCK, "clock"),
            (TRACKER, "tracker"),
            (PLAYER, "player"),
        ):
            stats[f"role_{name}"] = float(counts[meta["role"] == value].sum())
        stats["winners"] = float(counts[meta["winner"]].sum())
        stats["leaders"] = float(counts[meta["leader"]].sum())
        stats["played_collectors"] = float(
            counts[meta["played_collector"]].sum()
        )
        stats["finished"] = float(counts[meta["finish"]].sum())
        stats["states_materialized"] = float(self.num_states)
        stats["pairs_derived"] = float(self.derived_pairs)
        return stats

    def _check_count_bounds(self, counts: np.ndarray, meta) -> None:
        """The per-state invariants shared by both variants."""
        if (counts < 0).any():
            raise InvariantViolation("negative state count")
        occupied = np.flatnonzero(counts)
        if (meta["tokens"][occupied] < 0).any() or (
            meta["tokens"][occupied] > self._token_cap
        ).any():
            raise InvariantViolation("tokens escaped [0, cap]")
        if (np.abs(meta["ell"][occupied]) > self._token_cap).any():
            raise InvariantViolation("ell escaped [-cap, cap]")

    def check_invariants(self, counts: np.ndarray) -> None:
        counts = self.ensure_capacity(counts)
        meta = self._meta()
        self._check_count_bounds(counts, meta)
        if not counts[meta["winner"]].any():
            total = int((meta["tokens"] * counts).sum())
            if total != self._n:
                raise InvariantViolation(f"token sum {total} != n {self._n}")


class ImprovedQuotientModel(UnorderedQuotientModel):
    """Era-quotient table for ImprovedAlgorithm (Section 4).

    Extends the unordered model with the pruning stage: agents start as
    collectors at phase ``−c`` running per-subpopulation junta clocks.
    Junta levels (≤ ℓ_max = O(log log n)) and clock positions (≤ c·m =
    O(log n) while pruning — reaching ``c·m`` starts the agent in the
    same interaction) are finite, so pruning tuples keep the full
    sub-state verbatim and the stage is exact; from phase 0 on the
    protocol *is* the unordered algorithm and everything is inherited.
    """

    def __init__(self, algorithm, config: BasePopulation, absolute: bool = False):
        params = algorithm.params
        self._floor_c = int(params.phase_floor_c)
        super().__init__(algorithm, config, absolute=absolute)
        from ..clocks.junta import junta_max_level

        self._hour_m = int(params.hour_m(self._n))
        self._ell_max = int(
            junta_max_level(self._n, params.junta_level_offset)
        )

    def _initial_tuple(self, opinion: int):
        # Fresh agents: phase −c, one token, junta level 0, active, not
        # in the junta, clock position 0.
        return (PRUNING, -self._floor_c, opinion, 1, 0, True, False, 0)

    def _signature_kind(self) -> str:
        return "improved_era_quotient"

    def _signature_params(self) -> Dict[str, object]:
        params = super()._signature_params()
        params.update(
            floor_c=int(self._floor_c),
            hour_m=int(self._hour_m),
            ell_max=int(self._ell_max),
        )
        return params

    # -- Projection / lift of the pruning stage -------------------------
    def _init_tuple_of(self, s, a: int):
        if int(s.role[a]) != COLLECTOR:
            raise ConfigurationError(
                "non-collector with negative phase outside the pruning "
                "stage"
            )
        return (
            PRUNING,
            int(s.phase[a]),
            int(s.opinion[a]),
            int(s.tokens[a]),
            int(s.jlevel[a]),
            bool(s.jactive[a]),
            bool(s.junta[a]),
            int(s.jposition[a]),
        )

    def _lift_init(self, s, a: int, state) -> None:
        if state[0] != PRUNING:
            raise ConfigurationError(
                f"unexpected init kind {state[0]!r} in the improved "
                f"quotient"
            )
        _, phase, op, tokens, jlevel, jactive, junta, jpos = state
        s.role[a] = COLLECTOR
        s.phase[a] = phase
        s.opinion[a] = op
        s.tokens[a] = tokens
        s.jlevel[a] = jlevel
        s.jactive[a] = jactive
        s.junta[a] = junta
        s.jposition[a] = jpos

    def _state_arrays(self, size: int) -> Dict[str, object]:
        fields = super()._state_arrays(size)
        fields.update(
            jlevel=np.zeros(size, dtype=np.int64),
            jactive=np.ones(size, dtype=bool),
            junta=np.zeros(size, dtype=bool),
            jposition=np.zeros(size, dtype=np.int64),
            ell_max=self._ell_max,
            hour_m=self._hour_m,
            floor_c=self._floor_c,
        )
        return fields

    def _blank_state(self, size: int):
        from .improved import ImprovedState

        return ImprovedState(**self._state_arrays(size))

    # -- Randomized-pair predicates of the modified initialization ------
    def _init_release_factors(self, sa, sb) -> List[_Factor]:
        a_pruning = sa[0] == PRUNING
        b_pruning = sb[0] == PRUNING
        if a_pruning and b_pruning:
            # Meaningful interaction: replay the junta election step, the
            # clock tick, and the token merge to decide whether the
            # initiator completes its c-th hour with no tokens left
            # (Line 9: released immediately).
            if sa[2] != sb[2] or sa[2] <= 0:
                return []
            _, phase_a, _, tokens_a, level_a, active_a, junta_a, jpos_a = sa
            # FormJunta first (mirroring form_junta_step): an active
            # initiator may crown into the junta in this very
            # interaction, and the clock bump below reads the
            # *post-crowning* junta bit.
            if active_a:
                if sb[4] >= level_a:
                    level_a += 1
                    if level_a >= self._ell_max:
                        junta_a = True
            new_jpos = max(jpos_a, sb[7] + (1 if junta_a else 0))
            ticked = min(-self._floor_c + new_jpos // self._hour_m, 0)
            new_phase = max(phase_a, ticked)
            merge = tokens_a > 0 and tokens_a + sb[3] <= self._token_cap
            new_tokens = 0 if merge else tokens_a
            if new_phase == 0 and new_tokens == 0:
                return [_reroll_factor(G_INIT_RELEASE)]
            return []
        if a_pruning and sb[0] in _STARTED_KINDS:
            # Phase-0 receipt (Lines 8-11): pruned joiners re-roll.
            if sa[1] == -self._floor_c or sa[3] == 0:
                return [_reroll_factor(G_ADOPT_U)]
            return []
        if b_pruning and sa[0] in _STARTED_KINDS:
            if sb[1] == -self._floor_c or sb[3] == 0:
                return [_reroll_factor(G_ADOPT_V)]
            return []
        return []

    # -- Count-level hooks ----------------------------------------------
    def progress(self, counts: np.ndarray) -> Dict[str, float]:
        stats = super().progress(counts)
        counts = self.ensure_capacity(counts)
        meta = self._meta()
        occupied = np.flatnonzero(counts)
        collectors = occupied[
            (meta["role"][occupied] == COLLECTOR)
            & (meta["tokens"][occupied] > 0)
        ]
        surviving = np.unique(meta["opinion"][collectors])
        stats["surviving_opinions"] = float((surviving > 0).sum())
        stats["tokens_total"] = float((meta["tokens"] * counts).sum())
        return stats

    def check_invariants(self, counts: np.ndarray) -> None:
        # Token conservation holds only until pruning destroys tokens, so
        # the unordered invariant is relaxed: the total may only decrease.
        counts = self.ensure_capacity(counts)
        meta = self._meta()
        self._check_count_bounds(counts, meta)
        total = int((meta["tokens"] * counts).sum())
        if total > self._n:
            raise InvariantViolation(
                f"token sum {total} exceeds n {self._n}"
            )
