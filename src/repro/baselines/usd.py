"""Undecided-state dynamics (USD) — the approximate plurality baseline.

The paper contrasts its *exact* protocols with approximate consensus
dynamics such as [7] (and the classic 3-state protocol [4] for k = 2):
those are fast and tiny-state but only identify the plurality when the
initial bias is Ω(√(n log n)).  This module implements the classic
k-opinion undecided-state dynamics:

* two agents with different opinions meet → the responder becomes
  undecided;
* an opinionated initiator meets an undecided responder → the responder
  adopts the initiator's opinion.

Benchmark E9 demonstrates the paper's motivation: USD converges quickly
but picks the *wrong* opinion roughly half the time at bias 1, while the
paper's protocols stay exact.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..engine.backends.model import CountModel, identity_tables
from ..engine.population import PopulationConfig
from ..engine.protocol import Protocol

UNDECIDED = 0


def usd_step(opinion: np.ndarray, u: np.ndarray, v: np.ndarray) -> None:
    """One-way undecided-state transition on (u, v) pairs."""
    ou, ov = opinion[u], opinion[v]
    clash = (ou != UNDECIDED) & (ov != UNDECIDED) & (ou != ov)
    adopt = (ou != UNDECIDED) & (ov == UNDECIDED)
    opinion[v[clash]] = UNDECIDED
    opinion[v[adopt]] = ou[adopt]


class UndecidedStateDynamics(Protocol):
    """Approximate plurality consensus via undecided-state dynamics."""

    name = "undecided_state_dynamics"

    def init_state(
        self, config: PopulationConfig, rng: np.random.Generator
    ) -> np.ndarray:
        return config.opinions.astype(np.int64).copy()

    def interact(
        self,
        state: np.ndarray,
        u: np.ndarray,
        v: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        usd_step(state, u, v)

    def has_converged(self, state: np.ndarray) -> bool:
        first = state[0]
        return first != UNDECIDED and bool((state == first).all())

    def output(self, state: np.ndarray) -> np.ndarray:
        return state.copy()

    def progress(self, state: np.ndarray) -> Dict[str, float]:
        return {
            "undecided": float((state == UNDECIDED).sum()),
            "distinct_opinions": float(np.unique(state[state != UNDECIDED]).size),
        }

    def count_model(self, config: PopulationConfig) -> CountModel:
        """Export the k-opinion USD transition table for the count backend.

        State ids are the opinions themselves (0 = undecided), so the
        projection is the identity.
        """
        num_states = config.k + 1
        delta_u, delta_v = identity_tables(num_states)
        for i in range(1, num_states):
            for j in range(1, num_states):
                if i != j:
                    delta_v[i, j] = UNDECIDED
            delta_v[i, UNDECIDED] = i

        def progress(counts: np.ndarray) -> Dict[str, float]:
            return {
                "undecided": float(counts[UNDECIDED]),
                "distinct_opinions": float((counts[1:] > 0).sum()),
            }

        def encode_counts(cfg: PopulationConfig) -> np.ndarray:
            # State ids are the opinions (0 = undecided, initially empty).
            return np.concatenate(
                [np.zeros(1, dtype=np.int64), cfg.counts().astype(np.int64)]
            )

        return CountModel(
            labels=["undecided"] + [f"opinion_{i}" for i in range(1, num_states)],
            delta_u=delta_u,
            delta_v=delta_v,
            encode=lambda cfg: cfg.opinions,
            encode_counts=encode_counts,
            output_map=np.arange(num_states),
            progress=progress,
            project=lambda state: state.astype(np.int64),
        )
