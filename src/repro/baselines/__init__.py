"""Baselines the paper positions itself against."""

from .oracle_tournament import OracleTournamentResult, oracle_tournament
from .usd import UNDECIDED, UndecidedStateDynamics, usd_step

__all__ = [
    "OracleTournamentResult",
    "UNDECIDED",
    "UndecidedStateDynamics",
    "oracle_tournament",
    "usd_step",
]
