"""Oracle-synchronized tournament baseline.

An idealization of SimpleAlgorithm used to *decompose* its running time:
the same k − 1 defender/challenger matches, but with perfect global
synchronization — no initialization, no phase clock, no roles; each match
runs the cancel/split exact majority on a dedicated sub-population until
one sign is extinct.  The gap between this baseline and the full protocol
measures the price of distributed synchronization (clock + roles +
phases), which the ablation benchmark reports.

This is a harness-level baseline (it uses global knowledge), not a
population protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..engine.population import PopulationConfig
from ..engine.rng import RngLike, make_rng
from ..engine.scheduler import Scheduler, SequentialScheduler
from ..majority.cancel_split import cancel_split_step, majority_levels


@dataclass
class OracleTournamentResult:
    """Outcome of an oracle-synchronized tournament sequence."""

    winner: int
    interactions: int
    parallel_time: float
    match_times: List[float]
    correct: Optional[bool]


def _run_match(
    x_a: int,
    x_b: int,
    level_slack: int,
    rng: np.random.Generator,
    scheduler: Scheduler,
    max_parallel_time: float,
) -> tuple:
    """One match: returns (a_won, interactions spent)."""
    n_players = x_a + x_b
    if x_b == 0:
        return True, 0
    if x_a == 0:
        return False, 0
    if n_players < 2:
        return x_a >= x_b, 0
    sign = np.zeros(n_players, dtype=np.int8)
    sign[:x_a] = 1
    sign[x_a:] = -1
    rng.shuffle(sign)
    expo = np.zeros(n_players, dtype=np.int64)
    max_level = majority_levels(n_players, level_slack)
    spent = 0
    budget = int(max_parallel_time * n_players)
    for u, v in scheduler.batches(n_players, rng):
        cancel_split_step(sign, expo, u, v, max_level)
        spent += int(u.size)
        if spent % n_players < u.size:
            positives = int((sign > 0).sum())
            negatives = int((sign < 0).sum())
            if positives == 0 or negatives == 0:
                # Ties (both extinct) go to the defender, as in Lemma 11.
                return negatives == 0, spent
        if spent >= budget:
            return int((sign > 0).sum()) >= int((sign < 0).sum()), spent


def oracle_tournament(
    config: PopulationConfig,
    *,
    seed: RngLike = None,
    level_slack: int = 2,
    max_parallel_time_per_match: float = 500.0,
) -> OracleTournamentResult:
    """Run k − 1 perfectly synchronized tournaments on ``config``.

    Parallel time is normalized to the full population ``n`` (a match
    among m players that takes I interactions contributes I/n), making
    the result directly comparable to the protocols' parallel times.
    """
    rng = make_rng(seed)
    scheduler = SequentialScheduler()
    counts = config.counts()
    defender = 1
    total_interactions = 0
    match_times: List[float] = []
    for challenger in range(2, config.k + 1):
        a_won, spent = _run_match(
            int(counts[defender - 1]),
            int(counts[challenger - 1]),
            level_slack,
            rng,
            scheduler,
            max_parallel_time_per_match,
        )
        total_interactions += spent
        match_times.append(spent / config.n)
        if not a_won:
            defender = challenger
    expected = config.plurality_opinion if config.has_unique_plurality else None
    return OracleTournamentResult(
        winner=defender,
        interactions=total_interactions,
        parallel_time=total_interactions / config.n,
        match_times=match_times,
        correct=None if expected is None else defender == expected,
    )
