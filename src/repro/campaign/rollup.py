"""Aggregate a checkpointed campaign into one machine-readable report.

A rollup is a single JSON document with two disjoint parts:

* ``results`` — a *deterministic* digest: per-cell outcomes keyed by
  cell hash, per-(protocol, n, k, workload) group summaries, theory
  fits, and shape checks.  It is a pure function of the grid and the
  seeds, so an interrupted-and-resumed campaign produces a ``results``
  block bit-identical to an uninterrupted one (the crash tests and the
  CI smoke job assert exactly this).
* timing — top-level ``elapsed_seconds`` (summed worker wall time) and
  per-cell ``elapsed_seconds`` under ``cells``, keyed by the same
  hashes.  ``benchmarks/perf_diff.py`` diffs both across CI runs.

The top-level ``experiment``/``elapsed_seconds``/``scale`` fields match
the per-experiment reports written by ``benchmarks/conftest.py``, so a
rollup dropped into ``benchmarks/reports/`` rides the existing
perf-trajectory pipeline unchanged.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any, Callable, Dict, List, Tuple

import numpy as np

from .. import telemetry as telemetry_module
from ..analysis import fitting, theory
from ..engine.errors import ConfigurationError
from .checkpoint import CheckpointStore, atomic_write_json
from .grid import CampaignGrid, CellSpec, cell_hash

ROLLUP_SCHEMA_VERSION = 1

#: Theory drivers a campaign may declare (``CampaignGrid.driver``); the
#: rollup fits mean converged parallel time against ``driver(n, k)`` per
#: protocol, over the campaign's (n, k) points.
DRIVERS: Dict[str, Callable[[int, int], float]] = {
    "usd_time": theory.usd_time_driver,
    "simple_time": theory.simple_time_driver,
    "unordered_time": theory.unordered_time_driver,
}


class IncompleteCampaign(ConfigurationError):
    """Rollup requested for a campaign with unfinished cells."""


def build_rollup(
    grid: CampaignGrid,
    directory: os.PathLike,
    *,
    allow_partial: bool = False,
) -> Dict[str, Any]:
    """Fold every checkpointed cell of ``grid`` into one report dict."""
    store = CheckpointStore(directory)
    manifest = store.read_manifest()
    if manifest is not None:
        store.ensure_manifest(grid)

    cell_payloads: Dict[str, Dict[str, Any]] = {}
    missing: List[str] = []
    for cell in grid.cells:
        h = cell_hash(cell)
        payload = store.read_cell(h)
        if payload is None:
            missing.append(h)
        else:
            cell_payloads[h] = payload
    if missing and not allow_partial:
        raise IncompleteCampaign(
            f"campaign {grid.name!r} has {len(missing)}/{len(grid.cells)} "
            f"cells without checkpoints (first: {missing[0]}); run it to "
            f"completion or pass allow_partial=True"
        )

    results = _deterministic_results(grid, cell_payloads)
    timing = {
        h: {
            "elapsed_seconds": float(payload["elapsed_seconds"]),
            "attempts": int(payload.get("attempts", 1)),
        }
        for h, payload in sorted(cell_payloads.items())
    }
    # Merged telemetry rides OUTSIDE ``results``: checkpoints written by
    # telemetry-enabled runs carry a per-cell "metrics" block beside
    # "result", and folding them here must not perturb the deterministic
    # digest (``deterministic_block`` compares only ``results``).
    metrics = telemetry_module.merge_blocks(
        payload.get("metrics") for _, payload in sorted(cell_payloads.items())
    )
    return {
        "schema_version": ROLLUP_SCHEMA_VERSION,
        "kind": "campaign",
        "experiment": f"CAMPAIGN_{grid.name}",
        "campaign": grid.name,
        "title": grid.description,
        "scale": grid.scale,
        "fingerprint": grid.fingerprint(),
        "total_cells": len(grid.cells),
        "completed_cells": len(cell_payloads),
        "elapsed_seconds": sum(t["elapsed_seconds"] for t in timing.values()),
        "cells": timing,
        "metrics": metrics,
        "results": results,
        "passed": all(results["checks"].values()),
    }


def _deterministic_results(
    grid: CampaignGrid, cell_payloads: Dict[str, Dict[str, Any]]
) -> Dict[str, Any]:
    cells: Dict[str, Dict[str, Any]] = {}
    for h, payload in sorted(cell_payloads.items()):
        cell = CellSpec.from_dict(payload["cell"])
        cells[h] = {"label": cell.label(), **payload["result"]}

    groups = _group_summaries(grid, cell_payloads)
    fits = _driver_fits(grid, groups)
    all_complete = len(cell_payloads) == len(grid.cells)
    converged = [entry["converged"] for entry in cells.values()]
    checks = {
        "all_cells_completed": all_complete,
        "all_converged": all_complete and all(converged),
    }
    return {"cells": cells, "groups": groups, "fits": fits, "checks": checks}


def _group_summaries(
    grid: CampaignGrid, cell_payloads: Dict[str, Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """Per-(protocol, workload, n, k, workload_args) seed aggregates."""
    buckets: Dict[Tuple, List[Dict[str, Any]]] = {}
    specs: Dict[Tuple, CellSpec] = {}
    for cell in grid.cells:
        h = cell_hash(cell)
        if h not in cell_payloads:
            continue
        key = (
            cell.protocol,
            cell.workload,
            cell.n,
            cell.k,
            tuple(sorted(cell.workload_args.items())),
        )
        buckets.setdefault(key, []).append(cell_payloads[h]["result"])
        specs.setdefault(key, cell)
    groups: List[Dict[str, Any]] = []
    for key in sorted(buckets, key=repr):
        protocol, workload, n, k, args = key
        results = buckets[key]
        times = [r["parallel_time"] for r in results if r["converged"]]
        judged = [r["correct"] for r in results if r["correct"] is not None]
        groups.append(
            {
                "protocol": protocol,
                "workload": workload,
                "n": n,
                "k": k,
                "workload_args": dict(args),
                "cells": len(results),
                "converged": sum(1 for r in results if r["converged"]),
                "success_rate": (
                    float(sum(judged) / len(judged)) if judged else None
                ),
                "mean_parallel_time": float(np.mean(times)) if times else None,
                "std_parallel_time": float(np.std(times)) if times else None,
            }
        )
    return groups


def _driver_fits(
    grid: CampaignGrid, groups: List[Dict[str, Any]]
) -> Dict[str, Dict[str, float]]:
    """Fit mean converged time against the declared theory driver.

    One fit per protocol over its distinct (n, k) points (seed replicas
    are already averaged by the group pass); fewer than two points with
    distinct driver values fit nothing.
    """
    if grid.driver is None:
        return {}
    driver_fn = DRIVERS.get(grid.driver)
    if driver_fn is None:
        raise ConfigurationError(
            f"campaign {grid.name!r} names unknown driver {grid.driver!r}; "
            f"available: {', '.join(sorted(DRIVERS))}"
        )
    points: Dict[str, Dict[Tuple[int, int], List[float]]] = {}
    for group in groups:
        if group["mean_parallel_time"] is None:
            continue
        per_nk = points.setdefault(group["protocol"], {})
        per_nk.setdefault((group["n"], group["k"]), []).append(
            group["mean_parallel_time"]
        )
    fits: Dict[str, Dict[str, float]] = {}
    for protocol, per_nk in sorted(points.items()):
        drivers = [driver_fn(n, k) for n, k in sorted(per_nk)]
        measured = [float(np.mean(per_nk[nk])) for nk in sorted(per_nk)]
        if len(set(drivers)) < 2:
            continue
        fit = fitting.slope_against_driver(drivers, measured)
        fits[protocol] = {
            "driver": grid.driver,
            "slope": fit.slope,
            "r_squared": fit.r_squared,
            "points": len(drivers),
        }
    return fits


def write_rollup(rollup: Dict[str, Any], out_path: os.PathLike) -> pathlib.Path:
    """Atomically write a rollup report (same discipline as checkpoints)."""
    path = pathlib.Path(out_path)
    atomic_write_json(path, rollup)
    return path


def render_rollup(rollup: Dict[str, Any]) -> str:
    """Human-readable rollup summary for the CLI."""
    lines = [
        f"== {rollup['experiment']}: {rollup['title']} ==",
        (
            f"cells: {rollup['completed_cells']}/{rollup['total_cells']} "
            f"complete, {rollup['elapsed_seconds']:.1f}s total work "
            f"[{rollup['scale']}]"
        ),
    ]
    for group in rollup["results"]["groups"]:
        mean = group["mean_parallel_time"]
        args = ", ".join(f"{k}={v}" for k, v in sorted(group["workload_args"].items()))
        lines.append(
            f"  {group['protocol']}/{group['workload']}"
            f"{' (' + args + ')' if args else ''} n={group['n']} k={group['k']}: "
            f"{group['converged']}/{group['cells']} converged, "
            f"time={'n/a' if mean is None else f'{mean:.1f}'}"
        )
    for protocol, fit in sorted(rollup["results"]["fits"].items()):
        lines.append(
            f"  fit[{protocol}] vs {fit['driver']}: slope={fit['slope']:.2f} "
            f"r2={fit['r_squared']:.3f} ({fit['points']} points)"
        )
    cache_line = _cache_summary(rollup.get("metrics") or {})
    if cache_line:
        lines.append(cache_line)
    checks = ", ".join(
        f"{name}: {'PASS' if ok else 'FAIL'}"
        for name, ok in rollup["results"]["checks"].items()
    )
    lines.append(f"checks: {checks}")
    return "\n".join(lines)


def _cache_summary(metrics: Dict[str, Any]) -> str:
    """One table-cache line when the merged metrics carry cache counters."""
    counters = metrics.get("counters") or {}
    hits = counters.get("cache.hit", 0)
    misses = counters.get("cache.miss", 0)
    if not hits and not misses:
        return ""
    line = f"table cache: {int(hits)} hits, {int(misses)} misses"
    derivations = counters.get("count_model.derivations")
    if derivations is not None:
        line += f", {int(derivations)} cold pair derivations"
    timers = metrics.get("timers") or {}
    derive = timers.get("count_model.derive_seconds")
    if derive:
        line += f" ({derive['seconds']:.2f}s deriving)"
    return line


def deterministic_block(rollup: Dict[str, Any]) -> str:
    """Canonical JSON of the deterministic part (what crash tests compare)."""
    return json.dumps(rollup["results"], sort_keys=True, separators=(",", ":"))
