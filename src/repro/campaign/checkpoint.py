"""Per-cell JSON checkpoints: atomic, schema-versioned, crash-tolerant.

Layout of a campaign checkpoint directory::

    <dir>/campaign.json          manifest: name, scale, grid fingerprint
    <dir>/cells/<hash>.json      one file per *completed* cell
    <dir>/cells/<hash>.json.tmp  in-flight write (ignored; an os.replace
                                 that never happened)

Writes go through a temp file in the same directory followed by
``os.replace``, so a cell checkpoint is either absent or complete —
a SIGKILL mid-write leaves a ``.tmp`` orphan, never a truncated
``.json``.  Reads treat anything unparseable, schema-mismatched, or
inconsistent with its filename as *absent*: the runner then simply
re-runs that cell, which is always safe because cells are pure
functions of their spec.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any, Dict, Iterable, Mapping, Optional, Set

from ..engine.errors import ConfigurationError
from .grid import CampaignGrid

#: Bump when the checkpoint payload layout changes; mismatched files are
#: treated as absent (re-run), never misinterpreted.
CHECKPOINT_SCHEMA_VERSION = 1

MANIFEST_NAME = "campaign.json"
CELLS_DIRNAME = "cells"


class CheckpointMismatch(ConfigurationError):
    """A checkpoint directory belongs to a different campaign grid."""


def atomic_write_json(path: pathlib.Path, payload: Mapping[str, Any]) -> None:
    """Write JSON durably: temp file in the same dir, then ``os.replace``."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)


class CheckpointStore:
    """The on-disk state of one campaign run."""

    def __init__(self, directory: os.PathLike) -> None:
        self.directory = pathlib.Path(directory)
        self.cells_dir = self.directory / CELLS_DIRNAME

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> pathlib.Path:
        return self.directory / MANIFEST_NAME

    def read_manifest(self) -> Optional[Dict[str, Any]]:
        try:
            payload = json.loads(self.manifest_path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        return payload if isinstance(payload, dict) else None

    def ensure_manifest(self, grid: CampaignGrid) -> Dict[str, Any]:
        """Create the manifest, or verify an existing one matches ``grid``.

        Resuming into a directory whose manifest pins a different grid
        fingerprint raises :class:`CheckpointMismatch` — checkpoints are
        keyed by cell hash, so mixing grids would silently reuse cells
        that mean something else.
        """
        manifest = self.read_manifest()
        if manifest is None:
            manifest = {
                "schema_version": CHECKPOINT_SCHEMA_VERSION,
                "campaign": grid.name,
                "scale": grid.scale,
                "fingerprint": grid.fingerprint(),
                "total_cells": len(grid.cells),
            }
            atomic_write_json(self.manifest_path, manifest)
            return manifest
        if manifest.get("schema_version") != CHECKPOINT_SCHEMA_VERSION:
            raise CheckpointMismatch(
                f"{self.manifest_path} has checkpoint schema "
                f"{manifest.get('schema_version')!r}, expected "
                f"{CHECKPOINT_SCHEMA_VERSION}"
            )
        if manifest.get("fingerprint") != grid.fingerprint():
            raise CheckpointMismatch(
                f"{self.directory} holds checkpoints for campaign "
                f"{manifest.get('campaign')!r} (fingerprint "
                f"{manifest.get('fingerprint')!r}), not for "
                f"{grid.name!r} ({grid.fingerprint()!r}); use a fresh "
                f"directory per grid"
            )
        return manifest

    # ------------------------------------------------------------------
    # Cells
    # ------------------------------------------------------------------
    def cell_path(self, cell_hash: str) -> pathlib.Path:
        return self.cells_dir / f"{cell_hash}.json"

    def write_cell(self, cell_hash: str, payload: Mapping[str, Any]) -> None:
        """Atomically persist one completed cell."""
        record = {
            "schema_version": CHECKPOINT_SCHEMA_VERSION,
            "hash": cell_hash,
            **payload,
        }
        atomic_write_json(self.cell_path(cell_hash), record)

    def read_cell(self, cell_hash: str) -> Optional[Dict[str, Any]]:
        """Load one cell checkpoint, or None when absent/corrupt/stale.

        Every invalid shape maps to None on purpose: the caller's only
        recovery is to re-run the cell, and cells are re-runnable.
        """
        try:
            payload = json.loads(self.cell_path(cell_hash).read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("schema_version") != CHECKPOINT_SCHEMA_VERSION:
            return None
        if payload.get("hash") != cell_hash:
            return None
        if not isinstance(payload.get("result"), dict):
            return None
        if not isinstance(payload.get("elapsed_seconds"), (int, float)):
            return None
        return payload

    def completed(self, hashes: Iterable[str]) -> Set[str]:
        """The subset of ``hashes`` with a valid checkpoint on disk."""
        return {h for h in hashes if self.read_cell(h) is not None}
