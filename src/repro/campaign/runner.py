"""Campaign execution: shard cells over processes, checkpoint, resume.

The runner takes a :class:`~repro.campaign.grid.CampaignGrid` and a
checkpoint directory and drives every cell that does not already have a
valid checkpoint to completion:

* cells fan out over a ``ProcessPoolExecutor`` (``workers=1`` runs
  inline, which the crash tests and tiny grids use);
* each completed cell is written *by the parent* as one atomic JSON
  file, so a killed run leaves exactly the set of finished cells behind
  and a restart re-runs only the remainder;
* transient failures are retried in rounds with capped exponential
  backoff; cells still failing after the retry budget are reported in
  the returned status (the campaign keeps going — one bad cell must not
  waste the other shards' work);
* per-cell wall time is recorded as ``elapsed_seconds`` inside the
  worker, so rollups feed the existing ``benchmarks/reports`` +
  ``perf_diff.py`` trajectory pipeline.

Determinism: a cell's config rng and simulation rng are both derived
from ``cell.seed`` via ``np.random.SeedSequence``, so any schedule of
crashes, retries, and pool shapes reproduces identical results.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .. import telemetry as telemetry_module
from ..analysis.sweep import _default_budget
from ..cache.store import TABLE_CACHE_ENV, resolve_store
from ..engine.simulation import RunResult, simulate
from .checkpoint import CheckpointStore
from .grid import PROTOCOLS, WORKLOADS, CampaignGrid, CellSpec, cell_hash

#: Test/CI knob: sleep this many seconds inside every cell before it
#: runs.  The campaign-smoke CI job and the SIGKILL recovery tests use
#: it to make "interrupted mid-run" deterministic for grids whose cells
#: would otherwise finish faster than the kill can land.
CELL_DELAY_ENV = "REPRO_CAMPAIGN_CELL_DELAY"

#: Telemetry plumbing to pool workers.  Cell specs (and their hashes)
#: must not change when telemetry is toggled, so the flag and the shared
#: events path travel via the environment instead of the payload:
#: ``run_campaign(telemetry=True)`` sets both around its rounds and the
#: workers pick them up in :func:`execute_cell`.
TELEMETRY_ENV = "REPRO_CAMPAIGN_TELEMETRY"
EVENTS_ENV = "REPRO_CAMPAIGN_EVENTS"

#: Events file kept next to the checkpoints (``<directory>/events.jsonl``).
EVENTS_FILENAME = "events.jsonl"

#: Retry pacing: round ``r`` sleeps ``min(backoff * 2**r, cap)`` seconds.
DEFAULT_BACKOFF_SECONDS = 0.1
DEFAULT_BACKOFF_CAP_SECONDS = 2.0


def result_to_dict(result: RunResult) -> Dict[str, Any]:
    """JSON-safe form of a :class:`RunResult` (numpy scalars coerced)."""
    return {
        "protocol": result.protocol,
        "n": int(result.n),
        "k": int(result.k),
        "interactions": int(result.interactions),
        "parallel_time": float(result.parallel_time),
        "converged": bool(result.converged),
        "output_opinion": _opt_int(result.output_opinion),
        "expected_opinion": _opt_int(result.expected_opinion),
        "correct": None if result.correct is None else bool(result.correct),
        "failure": result.failure,
        "extras": {key: float(value) for key, value in result.extras.items()},
    }


def _opt_int(value) -> Optional[int]:
    return None if value is None else int(value)


def execute_cell(cell_payload: Mapping[str, Any]) -> Dict[str, Any]:
    """Run one cell to completion (module-level: pool workers pickle this).

    Returns the checkpoint payload minus the schema envelope: the cell
    spec, its hash, the serialized result, and the measured wall time.
    When campaign telemetry is live (:data:`TELEMETRY_ENV` /
    :data:`EVENTS_ENV`), the run is metered into a fresh per-cell
    registry whose snapshot rides *beside* ``"result"`` as ``"metrics"``
    — never inside it, so rollup ``results`` blocks stay bit-identical
    with telemetry on or off — and cell_start/cell_end plus in-run
    heartbeats stream to the shared events file.
    """
    cell = CellSpec.from_dict(cell_payload)
    tel = _cell_telemetry(cell)
    # cell_start goes out before the CI slow-down sleep: a worker killed
    # mid-delay must already be visible as in-flight to `campaign status`.
    tel.event("cell_start", label=cell.label())
    delay = float(os.environ.get(CELL_DELAY_ENV, "0") or 0)
    if delay > 0:
        time.sleep(delay)
    started = time.perf_counter()
    result = _simulate_cell(cell, tel)
    elapsed = time.perf_counter() - started
    tel.event(
        "cell_end",
        label=cell.label(),
        converged=result.converged,
        failure=result.failure,
        elapsed_seconds=elapsed,
    )
    if tel.events is not None:
        tel.events.close()
    payload = {
        "cell": cell.to_dict(),
        "result": result_to_dict(result),
        "elapsed_seconds": elapsed,
    }
    if tel.enabled:
        payload["metrics"] = tel.metrics_block()
    return payload


def execute_cell_group(
    cell_payloads: Sequence[Mapping[str, Any]],
) -> List[Dict[str, Any]]:
    """Run same-point cells as one ensemble stack (module-level: picklable).

    The payloads must agree on everything but ``seed`` (the grouping in
    :func:`run_campaign` guarantees this); each cell's config/run seed
    pair is derived exactly as :func:`_simulate_cell` derives it, so the
    per-cell results match per-cell execution at the law level
    (docs/ENSEMBLE.md).  ``elapsed_seconds`` is the group wall time
    split evenly across the cells — the rollup's per-cell timings stay
    comparable, and their sum still measures the campaign.  When
    campaign telemetry is live the stack-wide metrics snapshot rides on
    the *first* cell's payload only (ensemble counters are shared, not
    per cell); lifecycle events carry each cell's own hash.
    """
    from ..engine.ensemble import run_ensemble

    cells = [CellSpec.from_dict(payload) for payload in cell_payloads]
    tel = _cell_telemetry(cells[0])
    for cell in cells:
        tel.event(
            "cell_start",
            cell=cell_hash(cell),
            label=cell.label(),
            group=len(cells),
        )
    delay = float(os.environ.get(CELL_DELAY_ENV, "0") or 0)
    if delay > 0:
        time.sleep(delay)
    started = time.perf_counter()
    run_seeds: List[int] = []
    configs = []
    for cell in cells:
        config_seed, run_seed = (
            int(s) for s in np.random.SeedSequence(cell.seed).generate_state(2)
        )
        run_seeds.append(run_seed)
        configs.append(WORKLOADS[cell.workload](cell, config_seed))
    results = run_ensemble(
        PROTOCOLS[cells[0].protocol],
        lambda index: configs[index],
        seeds=run_seeds,
        scheduler=cells[0].scheduler,
        sampler=cells[0].sampler,
        max_parallel_time=cells[0].max_parallel_time,
        telemetry=tel if tel is not telemetry_module.NULL else False,
    )
    per_cell = (time.perf_counter() - started) / len(cells)
    payloads: List[Dict[str, Any]] = []
    for position, (cell, result) in enumerate(zip(cells, results)):
        tel.event(
            "cell_end",
            cell=cell_hash(cell),
            label=cell.label(),
            converged=result.converged,
            failure=result.failure,
            elapsed_seconds=per_cell,
        )
        payload = {
            "cell": cell.to_dict(),
            "result": result_to_dict(result),
            "elapsed_seconds": per_cell,
        }
        if tel.enabled and position == 0:
            payload["metrics"] = tel.metrics_block()
        payloads.append(payload)
    if tel.events is not None:
        tel.events.close()
    return payloads


def _cell_telemetry(cell: CellSpec) -> telemetry_module.Telemetry:
    """Per-cell registry from the campaign env vars (NULL when unset)."""
    enabled = os.environ.get(TELEMETRY_ENV, "") == "1"
    events_path = os.environ.get(EVENTS_ENV, "")
    if not enabled and not events_path:
        return telemetry_module.NULL
    events = telemetry_module.EventLog(events_path) if events_path else None
    return telemetry_module.Telemetry(
        enabled=enabled, events=events, context={"cell": cell_hash(cell)}
    )


def _simulate_cell(
    cell: CellSpec, telemetry: Optional[telemetry_module.Telemetry] = None
) -> RunResult:
    # Two independent deterministic streams from the one logged seed:
    # the workload shuffle and the run itself (mirrors the
    # config_factory(rng=...)/simulate(seed=...) split in the sweeps).
    config_seed, run_seed = (
        int(s) for s in np.random.SeedSequence(cell.seed).generate_state(2)
    )
    protocol = PROTOCOLS[cell.protocol]()
    config = WORKLOADS[cell.workload](cell, config_seed)
    budget = cell.max_parallel_time
    if budget is None:
        budget = _default_budget(protocol, config)
    return simulate(
        protocol,
        config,
        seed=run_seed,
        scheduler=cell.scheduler,
        backend=cell.backend,
        sampler=cell.sampler,
        max_parallel_time=budget,
        telemetry=telemetry if telemetry is not None else False,
    )


@dataclass
class CampaignStatus:
    """Where a campaign stands after a runner or status call."""

    campaign: str
    scale: str
    total: int
    completed: int
    ran: int = 0
    failed: Dict[str, str] = field(default_factory=dict)
    #: Cell hash -> seconds since that cell's last event record, for
    #: *unfinished* cells seen in the events stream (the liveness view
    #: ``campaign status`` prints mid-flight).
    heartbeats: Dict[str, float] = field(default_factory=dict)

    @property
    def pending(self) -> int:
        return self.total - self.completed

    @property
    def done(self) -> bool:
        return self.completed == self.total

    def describe(self) -> str:
        line = (
            f"campaign {self.campaign} [{self.scale}]: "
            f"{self.completed}/{self.total} cells complete"
        )
        if self.ran:
            line += f" ({self.ran} run now)"
        if self.failed:
            line += f", {len(self.failed)} FAILED"
        for h, age in sorted(self.heartbeats.items(), key=lambda kv: kv[1]):
            line += f"\n  in flight: {h} last heartbeat {age:.1f}s ago"
        return line


def _cell_heartbeats(
    directory: os.PathLike, unfinished: set, now: Optional[float] = None
) -> Dict[str, float]:
    """Age of the last event per unfinished cell, from the events file."""
    events = telemetry_module.read_events(
        os.path.join(os.fspath(directory), EVENTS_FILENAME)
    )
    last_seen: Dict[str, float] = {}
    for record in events:
        cell = record.get("cell")
        ts = record.get("ts")
        if cell in unfinished and isinstance(ts, (int, float)):
            last_seen[cell] = max(last_seen.get(cell, 0.0), float(ts))
    now = time.time() if now is None else now
    return {cell: max(now - ts, 0.0) for cell, ts in last_seen.items()}


def campaign_status(grid: CampaignGrid, directory: os.PathLike) -> CampaignStatus:
    """Inspect a checkpoint directory without running anything.

    When the campaign ran with telemetry, the events stream yields a
    liveness view of cells that have started but not checkpointed:
    ``status.heartbeats`` maps each such cell hash to the age of its
    last event (cell_start, in-run heartbeat, ...), so a watcher can
    tell a working shard from a hung one mid-flight.
    """
    store = CheckpointStore(directory)
    manifest = store.read_manifest()
    if manifest is not None:
        # Same-grid guard as the runner, raising on a foreign directory.
        store.ensure_manifest(grid)
    hashes = grid.hashes()
    completed = store.completed(hashes)
    return CampaignStatus(
        campaign=grid.name,
        scale=grid.scale,
        total=len(grid.cells),
        completed=len(completed),
        heartbeats=_cell_heartbeats(directory, set(hashes) - set(completed)),
    )


def run_campaign(
    grid: CampaignGrid,
    directory: os.PathLike,
    *,
    workers: Optional[int] = None,
    max_cells: Optional[int] = None,
    retries: int = 2,
    backoff_seconds: float = DEFAULT_BACKOFF_SECONDS,
    backoff_cap_seconds: float = DEFAULT_BACKOFF_CAP_SECONDS,
    progress: Optional[Callable[[str], None]] = None,
    cell_runner: Optional[Callable[[Mapping[str, Any]], Dict[str, Any]]] = None,
    telemetry: bool = False,
    table_cache=None,
    ensemble_size: Optional[int] = None,
) -> CampaignStatus:
    """Drive every unfinished cell of ``grid`` to a checkpoint.

    Args:
        workers: process-pool width; ``None`` lets the executor pick,
            ``1`` (or a single pending cell) runs inline.
        max_cells: stop after checkpointing this many cells (an orderly
            partial run — the deterministic cousin of a crash; tests and
            the CI smoke job use it to exercise resume).
        retries: extra attempts per failing cell (so ``retries=2`` means
            at most 3 attempts).
        backoff_seconds / backoff_cap_seconds: retry-round pacing.
        progress: optional line sink (the CLI passes ``print``).
        cell_runner: test seam; replaces :func:`execute_cell` (must stay
            picklable for pooled runs).
        telemetry: meter every cell (per-cell ``"metrics"`` beside each
            checkpoint's ``"result"``, merged into the rollup) and
            stream lifecycle events plus in-run heartbeats to
            ``events.jsonl`` in the campaign directory.  Cell hashes and
            the rollup ``results`` block are unaffected — the flag
            travels via :data:`TELEMETRY_ENV` / :data:`EVENTS_ENV`, not
            the cell specs.
        table_cache: shared transition-table store reused across cells
            and restarts (see docs/CACHING.md) — a
            :class:`~repro.cache.TableStore`, a directory, ``True`` for
            the default ``cache/`` location, ``False`` to disable, or
            None to follow ``REPRO_TABLE_CACHE``.  Like the telemetry
            flag it travels to pool workers via the environment
            (:data:`~repro.cache.TABLE_CACHE_ENV`), so cell hashes are
            unaffected and results stay bit-identical warm or cold.
        ensemble_size: stack up to this many pending cells that differ
            only in ``seed`` into one pool job through the vectorized
            ensemble engine (counts-backend cells whose scheduler has a
            batched count law; everything else keeps the per-cell path).
            First pass only — retry rounds always fall back to per-cell
            execution so one bad replica cannot re-fail its whole group.
            Checkpoint payloads, hashes, and resume semantics are
            unchanged; per-cell results are law-equivalent (but not
            bit-identical) to an ungrouped run, see docs/ENSEMBLE.md.

    Returns:
        The final :class:`CampaignStatus`; ``status.failed`` maps cell
        hashes to the last error message for cells that exhausted their
        retry budget.
    """
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    runner = cell_runner or execute_cell
    store = CheckpointStore(directory)
    store.ensure_manifest(grid)
    say = progress or (lambda line: None)

    events = None
    saved_env: Dict[str, Optional[str]] = {}
    if telemetry:
        events_path = os.path.join(os.fspath(directory), EVENTS_FILENAME)
        events = telemetry_module.EventLog(events_path)
        saved_env = {
            TELEMETRY_ENV: os.environ.get(TELEMETRY_ENV),
            EVENTS_ENV: os.environ.get(EVENTS_ENV),
        }
        os.environ[TELEMETRY_ENV] = "1"
        os.environ[EVENTS_ENV] = events_path
    if table_cache is not None:
        # Same env-travel pattern as telemetry: cell specs (and hashes)
        # must not change with caching on or off, so the store directory
        # rides in REPRO_TABLE_CACHE for pool workers to pick up.
        # ``table_cache=False`` pins it empty, overriding an inherited
        # ambient store; ``None`` leaves any inherited value untouched.
        table_store = resolve_store(table_cache)
        saved_env[TABLE_CACHE_ENV] = os.environ.get(TABLE_CACHE_ENV)
        os.environ[TABLE_CACHE_ENV] = (
            str(table_store.directory) if table_store is not None else ""
        )
    parent = telemetry_module.Telemetry(
        enabled=False, events=events, context={"campaign": grid.name}
    )

    by_hash = {cell_hash(cell): cell for cell in grid.cells}
    completed = store.completed(by_hash)
    pending = [h for h in by_hash if h not in completed]
    if completed:
        say(f"resume: {len(completed)} cells already checkpointed, skipping")
    if max_cells is not None:
        pending = pending[:max_cells]

    ran = 0
    failed: Dict[str, str] = {}
    attempt = 0
    try:
        parent.event(
            "campaign_start",
            scale=grid.scale,
            total=len(grid.cells),
            pending=len(pending),
        )
        while pending and attempt <= retries:
            if attempt > 0:
                pause = min(
                    backoff_seconds * (2 ** (attempt - 1)), backoff_cap_seconds
                )
                say(
                    f"retry round {attempt}/{retries}: {len(pending)} cells, "
                    f"backing off {pause:.2f}s"
                )
                parent.event(
                    "retry_round", round=attempt, cells=len(pending), pause=pause
                )
                time.sleep(pause)
            failures: Dict[str, str] = {}
            groups: List[List[str]] = []
            round_pending = pending
            if (
                ensemble_size is not None
                and ensemble_size > 1
                and cell_runner is None
                and attempt == 0
            ):
                groups, round_pending = _ensemble_groups(
                    by_hash, pending, ensemble_size
                )
                if groups:
                    stacked = sum(len(group) for group in groups)
                    say(
                        f"ensemble: {stacked} cells stacked into "
                        f"{len(groups)} groups, {len(round_pending)} solo"
                    )
            for h, outcome in _run_round(
                by_hash, round_pending, runner, workers, groups=groups
            ):
                if isinstance(outcome, Exception):
                    failures[h] = f"{type(outcome).__name__}: {outcome}"
                    parent.event("cell_failed", cell=h, error=failures[h])
                    continue
                store.write_cell(h, {**outcome, "attempts": attempt + 1})
                ran += 1
                say(f"cell {h} done: {by_hash[h].label()}")
                parent.event("checkpoint", cell=h, attempts=attempt + 1)
            pending = [h for h in pending if h in failures]
            failed = failures
            attempt += 1

        for h, message in failed.items():
            say(f"cell {h} FAILED after {retries + 1} attempts: {message}")
        completed = store.completed(by_hash)
        parent.event(
            "campaign_end",
            completed=len(completed),
            ran=ran,
            failed=len(failed),
        )
    finally:
        for key, value in saved_env.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        if events is not None:
            events.close()
    return CampaignStatus(
        campaign=grid.name,
        scale=grid.scale,
        total=len(grid.cells),
        completed=len(completed),
        ran=ran,
        failed=failed,
        heartbeats={},
    )


def _ensemble_groups(
    by_hash: Mapping[str, CellSpec],
    pending: List[str],
    ensemble_size: int,
) -> Tuple[List[List[str]], List[str]]:
    """Partition pending hashes into stacked groups and per-cell leftovers.

    Cells are groupable when they run the count backend under a
    scheduler with a batched count law and agree on every spec field but
    ``seed`` — i.e. they are seeded replicas of one experimental point.
    Chunks are capped at ``ensemble_size``; chunks of one go back to the
    ordinary per-cell path (a one-replica stack buys nothing).
    """
    from ..engine import scheduler as scheduler_module

    keyed: Dict[str, List[str]] = {}
    singles: List[str] = []
    for h in pending:
        cell = by_hash[h]
        try:
            batched = (
                cell.backend == "counts"
                and cell.scheduler is not None
                and scheduler_module.get(cell.scheduler).count_semantics
                == "batched"
            )
        except Exception:
            batched = False
        if not batched:
            singles.append(h)
            continue
        payload = cell.to_dict()
        payload.pop("seed", None)
        keyed.setdefault(json.dumps(payload, sort_keys=True), []).append(h)
    groups: List[List[str]] = []
    for hashes in keyed.values():
        for start in range(0, len(hashes), ensemble_size):
            chunk = hashes[start : start + ensemble_size]
            if len(chunk) == 1:
                singles.append(chunk[0])
            else:
                groups.append(chunk)
    return groups, singles


def _run_round(
    by_hash: Mapping[str, CellSpec],
    pending: List[str],
    runner: Callable[[Mapping[str, Any]], Dict[str, Any]],
    workers: Optional[int],
    groups: Sequence[List[str]] = (),
):
    """Yield ``(hash, payload-or-exception)`` as cells of one pass finish.

    Results are yielded as they complete so the parent checkpoints each
    cell immediately — a crash between two completions loses at most the
    cells still in flight.  ``groups`` are stacked ensemble jobs (lists
    of same-point cell hashes, see :func:`_ensemble_groups`); a group
    that fails reports the same exception for every member, and the
    caller's retry round re-runs those cells individually.
    """
    if len(pending) + len(groups) == 1 or (workers is not None and workers <= 1):
        for hashes in groups:
            payloads = [by_hash[h].to_dict() for h in hashes]
            try:
                outcomes = execute_cell_group(payloads)
            except Exception as exc:  # checked and retried by the caller
                for h in hashes:
                    yield h, exc
            else:
                for h, outcome in zip(hashes, outcomes):
                    yield h, outcome
        for h in pending:
            try:
                yield h, runner(by_hash[h].to_dict())
            except Exception as exc:  # checked and retried by the caller
                yield h, exc
        return
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures: Dict[Any, Any] = {}
        for hashes in groups:
            future = pool.submit(
                execute_cell_group, [by_hash[h].to_dict() for h in hashes]
            )
            futures[future] = list(hashes)
        for h in pending:
            futures[pool.submit(runner, by_hash[h].to_dict())] = h
        remaining = set(futures)
        while remaining:
            done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
            for future in done:
                target = futures[future]
                exc = future.exception()
                if isinstance(target, list):
                    if exc is not None:
                        for h in target:
                            yield h, exc
                    else:
                        for h, outcome in zip(target, future.result()):
                            yield h, outcome
                else:
                    yield target, (exc if exc is not None else future.result())
