"""Declarative campaign grids: cells, content hashes, and the registry.

A *campaign* is a grid of independent simulation cells — one cell per
(protocol × workload × n × k × seed × backend × scheduler × sampler)
point — declared up front so that the runner (:mod:`repro.campaign.runner`)
can shard them across processes, checkpoint each one as it completes
(:mod:`repro.campaign.checkpoint`), and aggregate the survivors into one
report (:mod:`repro.campaign.rollup`).

Every cell is keyed by a *stable content hash* of its full
parameterization (:func:`cell_hash`): the hash is the checkpoint
filename, the resume key, and the per-cell identity in rollup reports,
so two campaigns that share a cell agree on its name and a cell whose
parameters change gets a fresh identity (stale checkpoints are simply
never referenced again).

Named campaign definitions live in :mod:`repro.experiments.campaigns`
and register themselves here via :func:`register_campaign`, mirroring
how experiments register in :mod:`repro.experiments.base`.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .. import workloads
from ..baselines.usd import UndecidedStateDynamics
from ..core.improved import ImprovedAlgorithm
from ..core.simple import SimpleAlgorithm
from ..core.unordered import UnorderedAlgorithm
from ..engine import backends as backend_registry
from ..engine import sampling as sampler_registry
from ..engine import scheduler as scheduler_registry
from ..engine.errors import ConfigurationError
from ..engine.population import BasePopulation
from ..engine.protocol import Protocol
from ..majority.three_state import ThreeStateMajority

#: Bump when the meaning of a cell's parameterization changes in a way
#: that invalidates old checkpoints; the version participates in the
#: content hash, so old checkpoint files are ignored, not misread.
CELL_SCHEMA_VERSION = 1

#: Hex digits kept from the sha256 digest — 64 bits of identity, short
#: enough for filenames and report keys, long enough that grid-sized
#: collections (thousands of cells) never collide in practice.
CELL_HASH_LENGTH = 16


# ----------------------------------------------------------------------
# Protocol and workload registries (picklable, name-keyed)
# ----------------------------------------------------------------------
#: Campaign cells name their protocol; factories are zero-argument and
#: module-level so cells stay picklable across the process pool.
PROTOCOLS: Dict[str, Callable[[], Protocol]] = {
    "three_state": ThreeStateMajority,
    "usd": UndecidedStateDynamics,
    "simple": SimpleAlgorithm,
    "unordered": UnorderedAlgorithm,
    "improved": ImprovedAlgorithm,
}

#: Workload builders accepted in cells.  Each maps
#: ``(cell, rng_seed) -> BasePopulation``; ``cell.workload_args`` carries
#: the workload-specific keywords (``bias``, ``plurality_fraction``, ...).
WORKLOADS: Dict[str, Callable[["CellSpec", int], BasePopulation]] = {
    "bias_one": lambda cell, rng: workloads.bias_one(
        cell.n, cell.k, rng=rng, counts_only=cell.counts_only, **cell.workload_args
    ),
    "uniform_with_bias": lambda cell, rng: workloads.uniform_with_bias(
        cell.n, cell.k, rng=rng, counts_only=cell.counts_only, **cell.workload_args
    ),
    "one_large_many_small": lambda cell, rng: workloads.one_large_many_small(
        cell.n, cell.k, rng=rng, counts_only=cell.counts_only, **cell.workload_args
    ),
    "two_block": lambda cell, rng: workloads.two_block(
        cell.n, cell.k, rng=rng, counts_only=cell.counts_only, **cell.workload_args
    ),
    "zipf": lambda cell, rng: workloads.zipf(
        cell.n, cell.k, rng=rng, counts_only=cell.counts_only, **cell.workload_args
    ),
    "majority_counts": lambda cell, rng: workloads.majority_counts(
        cell.n, rng=rng, counts_only=cell.counts_only, **cell.workload_args
    ),
}


@dataclass(frozen=True)
class CellSpec:
    """One point of a campaign grid: a fully parameterized replicate run.

    A cell is a *pure function of its fields*: the runner derives the
    config rng and the simulation rng deterministically from ``seed``,
    so re-running a cell anywhere (serial, pooled, after a crash)
    reproduces the same :class:`~repro.engine.simulation.RunResult`
    bit-for-bit.  ``backend`` / ``scheduler`` / ``sampler`` are registry
    *names* (or None for the defaults) so cells serialize to JSON and
    pickle across the pool.
    """

    protocol: str
    workload: str
    n: int
    k: int
    seed: int
    backend: Optional[str] = None
    scheduler: Optional[str] = None
    sampler: Optional[str] = None
    counts_only: bool = False
    workload_args: Mapping[str, Any] = field(default_factory=dict)
    max_parallel_time: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form (the checkpoint and manifest representation)."""
        return {
            "protocol": self.protocol,
            "workload": self.workload,
            "n": int(self.n),
            "k": int(self.k),
            "seed": int(self.seed),
            "backend": self.backend,
            "scheduler": self.scheduler,
            "sampler": self.sampler,
            "counts_only": bool(self.counts_only),
            "workload_args": dict(self.workload_args),
            "max_parallel_time": self.max_parallel_time,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CellSpec":
        return cls(
            protocol=payload["protocol"],
            workload=payload["workload"],
            n=int(payload["n"]),
            k=int(payload["k"]),
            seed=int(payload["seed"]),
            backend=payload.get("backend"),
            scheduler=payload.get("scheduler"),
            sampler=payload.get("sampler"),
            counts_only=bool(payload.get("counts_only", False)),
            workload_args=dict(payload.get("workload_args", {})),
            max_parallel_time=payload.get("max_parallel_time"),
        )

    def label(self) -> str:
        """Short human-readable cell description for status lines."""
        parts = [f"{self.protocol}/{self.workload}", f"n={self.n}", f"k={self.k}"]
        for key, value in sorted(self.workload_args.items()):
            parts.append(f"{key}={value}")
        parts.append(f"seed={self.seed}")
        if self.backend:
            parts.append(self.backend)
        if self.scheduler:
            parts.append(self.scheduler)
        if self.sampler:
            parts.append(self.sampler)
        return " ".join(parts)

    def validate(self) -> None:
        """Reject cells that name unknown registries before any run starts."""
        if self.protocol not in PROTOCOLS:
            raise ConfigurationError(
                f"unknown protocol {self.protocol!r}; "
                f"available: {', '.join(sorted(PROTOCOLS))}"
            )
        if self.workload not in WORKLOADS:
            raise ConfigurationError(
                f"unknown workload {self.workload!r}; "
                f"available: {', '.join(sorted(WORKLOADS))}"
            )
        if self.backend is not None and self.backend not in backend_registry.available():
            raise ConfigurationError(f"unknown backend {self.backend!r}")
        if (
            self.scheduler is not None
            and self.scheduler not in scheduler_registry.available()
        ):
            raise ConfigurationError(f"unknown scheduler {self.scheduler!r}")
        if self.sampler is not None and self.sampler not in sampler_registry.available():
            raise ConfigurationError(f"unknown sampler {self.sampler!r}")
        if self.n < 1:
            raise ConfigurationError(f"n must be >= 1, got {self.n}")
        if self.k < 1:
            raise ConfigurationError(f"k must be >= 1, got {self.k}")


def cell_hash(cell: CellSpec) -> str:
    """Stable content hash of a cell's full parameterization.

    Canonical JSON (sorted keys, no whitespace) over the cell fields
    plus :data:`CELL_SCHEMA_VERSION`, sha256, truncated to
    :data:`CELL_HASH_LENGTH` hex digits.  Stable across processes,
    platforms, and sessions — unlike ``hash()``, which is salted.
    """
    canonical = json.dumps(
        {"cell_schema": CELL_SCHEMA_VERSION, **cell.to_dict()},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:CELL_HASH_LENGTH]


@dataclass
class CampaignGrid:
    """A named, ordered collection of cells plus rollup metadata.

    ``driver`` optionally names a theory driver (see
    :data:`repro.campaign.rollup.DRIVERS`) that the rollup fits measured
    parallel times against, per (n, k) group.
    """

    name: str
    cells: List[CellSpec]
    scale: str = "quick"
    description: str = ""
    driver: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.cells:
            raise ConfigurationError(f"campaign {self.name!r} has no cells")
        hashes = [cell_hash(cell) for cell in self.cells]
        duplicates = {h for h in hashes if hashes.count(h) > 1}
        if duplicates:
            raise ConfigurationError(
                f"campaign {self.name!r} declares duplicate cells: "
                f"{', '.join(sorted(duplicates))}"
            )

    def validate(self) -> None:
        for cell in self.cells:
            cell.validate()

    def hashes(self) -> List[str]:
        """Cell hashes in declaration order."""
        return [cell_hash(cell) for cell in self.cells]

    def fingerprint(self) -> str:
        """Identity of the whole grid: hash over the sorted cell hashes.

        The checkpoint manifest pins this so a checkpoint directory can
        never silently be resumed with a different grid.
        """
        canonical = json.dumps(
            {"name": self.name, "scale": self.scale, "cells": sorted(self.hashes())},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:CELL_HASH_LENGTH]

    @classmethod
    def from_axes(
        cls,
        name: str,
        *,
        protocols: Sequence[str],
        ns: Sequence[int],
        ks: Sequence[int],
        seeds: Sequence[int],
        workload: str = "bias_one",
        workload_axes: Sequence[Mapping[str, Any]] = ({},),
        backend: Optional[str] = None,
        scheduler: Optional[str] = None,
        sampler: Optional[str] = None,
        counts_only: bool = False,
        max_parallel_time: Optional[float] = None,
        scale: str = "quick",
        description: str = "",
        driver: Optional[str] = None,
        pair_n_k: bool = False,
    ) -> "CampaignGrid":
        """Cross-product grid builder.

        ``workload_axes`` is a sequence of workload-kwarg dicts (one axis
        point each, e.g. ``({"bias": 1}, {"bias": 1000})``).  With
        ``pair_n_k=True``, ``ns`` and ``ks`` are zipped instead of
        crossed — the shape of k ≈ √n sweeps where k is a function of n.
        """
        if pair_n_k:
            if len(ns) != len(ks):
                raise ConfigurationError(
                    f"pair_n_k needs len(ns) == len(ks), got {len(ns)} != {len(ks)}"
                )
            nk_points: Iterable[Tuple[int, int]] = list(zip(ns, ks))
        else:
            nk_points = list(itertools.product(ns, ks))
        cells = [
            CellSpec(
                protocol=protocol,
                workload=workload,
                n=n,
                k=k,
                seed=seed,
                backend=backend,
                scheduler=scheduler,
                sampler=sampler,
                counts_only=counts_only,
                workload_args=dict(args),
                max_parallel_time=max_parallel_time,
            )
            for protocol, (n, k), args, seed in itertools.product(
                protocols, nk_points, workload_axes, seeds
            )
        ]
        return cls(
            name=name,
            cells=cells,
            scale=scale,
            description=description,
            driver=driver,
        )


def sqrt_k(n: int) -> int:
    """k ≈ √n, floored at 2 (the paper's insignificant-opinion regime)."""
    return max(2, math.isqrt(n))


# ----------------------------------------------------------------------
# Named-campaign registry (definitions in repro.experiments.campaigns)
# ----------------------------------------------------------------------
CampaignFactory = Callable[[str], CampaignGrid]

_REGISTRY: Dict[str, CampaignFactory] = {}
_DESCRIPTIONS: Dict[str, str] = {}


def register_campaign(name: str, description: str):
    """Decorator: add a ``(scale) -> CampaignGrid`` factory to the registry."""

    def wrap(fn: CampaignFactory) -> CampaignFactory:
        if name in _REGISTRY:
            raise ValueError(f"duplicate campaign {name}")
        _REGISTRY[name] = fn
        _DESCRIPTIONS[name] = description
        return fn

    return wrap


def get_campaign(name: str, scale: str = "quick") -> CampaignGrid:
    """Build a registered campaign's grid at the given scale."""
    _ensure_loaded()
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown campaign {name!r}; available: {', '.join(campaign_names())}"
        )
    grid = _REGISTRY[name](scale)
    grid.validate()
    return grid


def campaign_names() -> List[str]:
    """All registered campaign names, sorted."""
    _ensure_loaded()
    return sorted(_REGISTRY)


def campaign_descriptions() -> Dict[str, str]:
    _ensure_loaded()
    return dict(_DESCRIPTIONS)


def _ensure_loaded() -> None:
    # Campaign definitions register themselves on import (same pattern
    # as the experiment registry in repro.experiments.base).
    from ..experiments import campaigns  # noqa: F401
