"""Campaign orchestration: sharded, checkpointed, resumable sweeps.

The campaign layer turns the engine's cheap single runs (n = 10^9 in
minutes, see ROADMAP) into *grids*: declare a cross product of
(protocol × workload × n × k × seed × backend × scheduler × sampler)
cells (:mod:`repro.campaign.grid`), shard it over a process pool with
one atomic JSON checkpoint per completed cell
(:mod:`repro.campaign.runner`, :mod:`repro.campaign.checkpoint`), and
aggregate into a rollup report that rides the benchmarks/perf-trajectory
pipeline (:mod:`repro.campaign.rollup`).

Campaigns are resumable and incremental: rerunning skips every cell
whose checkpoint is already on disk, so a crashed (even SIGKILLed)
campaign continues where it stopped and its final rollup is
bit-identical (modulo timing) to an uninterrupted run with the same
seeds.  See docs/CAMPAIGNS.md for the workflow and
``repro-experiments campaign --help`` for the CLI.
"""

from .checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointMismatch,
    CheckpointStore,
)
from .grid import (
    PROTOCOLS,
    WORKLOADS,
    CampaignGrid,
    CellSpec,
    campaign_descriptions,
    campaign_names,
    cell_hash,
    get_campaign,
    register_campaign,
    sqrt_k,
)
from .rollup import (
    DRIVERS,
    IncompleteCampaign,
    build_rollup,
    deterministic_block,
    render_rollup,
    write_rollup,
)
from .runner import (
    EVENTS_FILENAME,
    CampaignStatus,
    campaign_status,
    execute_cell,
    result_to_dict,
    run_campaign,
)

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "CheckpointMismatch",
    "CheckpointStore",
    "PROTOCOLS",
    "WORKLOADS",
    "CampaignGrid",
    "CellSpec",
    "campaign_descriptions",
    "campaign_names",
    "cell_hash",
    "get_campaign",
    "register_campaign",
    "sqrt_k",
    "DRIVERS",
    "IncompleteCampaign",
    "build_rollup",
    "deterministic_block",
    "render_rollup",
    "write_rollup",
    "CampaignStatus",
    "EVENTS_FILENAME",
    "campaign_status",
    "execute_cell",
    "result_to_dict",
    "run_campaign",
]
