"""Junta election (FormJunta) and the junta-driven phase clock of [11].

Paper, Section 4: every subpopulation (opinion) runs its own phase clock in
*meaningful* interactions only (both agents share the opinion).  The clock
is the O(log log n)-state construction of Berenbrink, Elsässer, Friedetzky,
Kaaser, Kling, and Radzik [11]:

1.  **FormJunta** — agents carry a ``level`` (initially 0) and an ``active``
    bit.  An active initiator meeting an agent on the same or higher level
    increments its level; meeting a lower level makes it inactive.  Agents
    reaching the maximum level ``ℓ_max = ⌊log₂ log₂ n⌋ − 2`` join the junta
    (the paper deliberately uses the *population-wide* ``n`` here because
    agents do not know their subpopulation size x_j; Claim 8 shows the
    junta is still non-empty and of size ≤ x_j^0.98 when x_j ≥ √n).

2.  **Clock** — every agent has a position ``p``.  A junta initiator sets
    ``p[u] = max(p[u], p[v] + 1)``; a non-junta initiator sets
    ``p[u] = max(p[u], p[v])``.  The *hour* of an agent is ``⌊p / m⌋`` for
    a constant ``m``; each completed hour is one tick ("passing through
    zero") of the phase clock.

Lemma 7's content — subpopulation hour length Θ((n²/x_j) log n) global
interactions, junta size bounds — is measured by benchmark E7 via the
standalone protocol below.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..engine.population import PopulationConfig
from ..engine.protocol import Protocol


def junta_max_level(n: int, offset: int = 2) -> int:
    """``ℓ_max = ⌊log₂ log₂ n⌋ − offset``, clamped to at least 1."""
    if n < 4:
        return 1
    return max(1, int(np.floor(np.log2(np.log2(n)))) - offset)


def form_junta_step(
    level: np.ndarray,
    active: np.ndarray,
    junta: np.ndarray,
    u: np.ndarray,
    v: np.ndarray,
    ell_max: int,
) -> None:
    """Apply one FormJunta transition to (already filtered) pairs.

    Only the initiator ``u`` updates.  The caller filters to meaningful
    pairs (same opinion, still in the pre-tournament part of the protocol).
    """
    if u.size == 0:
        return
    acting = active[u]
    up = acting & (level[v] >= level[u])
    down = acting & ~up
    climbers = u[up]
    level[climbers] += 1
    active[u[down]] = False
    crowned = climbers[level[climbers] >= ell_max]
    if crowned.size:
        level[crowned] = ell_max
        active[crowned] = False
        junta[crowned] = True


def junta_clock_step(
    position: np.ndarray,
    junta: np.ndarray,
    u: np.ndarray,
    v: np.ndarray,
) -> None:
    """Apply one clock transition to (already filtered) pairs.

    Junta initiators push the maximum forward by one; everyone else only
    copies the maximum (a max-epidemic with a self-advancing frontier).
    """
    if u.size == 0:
        return
    bump = junta[u].astype(position.dtype)
    position[u] = np.maximum(position[u], position[v] + bump)


def hours(position: np.ndarray, m: int) -> np.ndarray:
    """Completed hours (clock ticks) for each agent: ``⌊p / m⌋``."""
    return position // m


@dataclass
class JuntaClockState:
    """State of the standalone per-subpopulation junta clock."""

    opinion: np.ndarray
    level: np.ndarray
    active: np.ndarray
    junta: np.ndarray
    position: np.ndarray
    ell_max: int
    m: int
    target_hours: int
    k: int


class JuntaPhaseClock(Protocol):
    """Standalone protocol: each opinion runs FormJunta + clock.

    The population's opinion assignment defines the subpopulations.
    Convergence: the *first* agent (of any opinion) completes
    ``target_hours`` hours — mirroring how the ImprovedAlgorithm uses the
    clocks (the first agent to reach phase 0 freezes everyone else).
    """

    name = "junta_phase_clock"

    def __init__(
        self,
        m: int = 2,
        target_hours: int = 4,
        level_offset: int = 2,
    ):
        if m < 1:
            raise ValueError("m must be >= 1")
        if target_hours < 1:
            raise ValueError("target_hours must be >= 1")
        self._m = m
        self._target = target_hours
        self._offset = level_offset

    def init_state(
        self, config: PopulationConfig, rng: np.random.Generator
    ) -> JuntaClockState:
        n = config.n
        return JuntaClockState(
            opinion=config.opinions.copy(),
            level=np.zeros(n, dtype=np.int64),
            active=np.ones(n, dtype=bool),
            junta=np.zeros(n, dtype=bool),
            position=np.zeros(n, dtype=np.int64),
            ell_max=junta_max_level(n, self._offset),
            m=self._m,
            target_hours=self._target,
            k=config.k,
        )

    def interact(
        self,
        state: JuntaClockState,
        u: np.ndarray,
        v: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        meaningful = state.opinion[u] == state.opinion[v]
        mu, mv = u[meaningful], v[meaningful]
        if mu.size == 0:
            return
        form_junta_step(state.level, state.active, state.junta, mu, mv, state.ell_max)
        junta_clock_step(state.position, state.junta, mu, mv)

    def has_converged(self, state: JuntaClockState) -> bool:
        return bool(hours(state.position, state.m).max() >= state.target_hours)

    def output(self, state: JuntaClockState) -> np.ndarray:
        return np.ones_like(state.position)

    def progress(self, state: JuntaClockState) -> Dict[str, float]:
        agent_hours = hours(state.position, state.m)
        stats: Dict[str, float] = {
            "junta_total": float(state.junta.sum()),
            "max_hour": float(agent_hours.max()),
        }
        for j in range(1, state.k + 1):
            members = state.opinion == j
            if not members.any():
                continue
            stats[f"junta_{j}"] = float(state.junta[members].sum())
            stats[f"hour_max_{j}"] = float(agent_hours[members].max())
            stats[f"hour_min_{j}"] = float(agent_hours[members].min())
        return stats


def subpopulation_summary(state: JuntaClockState) -> Dict[int, Tuple[int, int, int]]:
    """Per-opinion (size, junta size, max hour) snapshot for tests/benches."""
    agent_hours = hours(state.position, state.m)
    out: Dict[int, Tuple[int, int, int]] = {}
    for j in range(1, state.k + 1):
        members = state.opinion == j
        if not members.any():
            continue
        out[j] = (
            int(members.sum()),
            int(state.junta[members].sum()),
            int(agent_hours[members].max()),
        )
    return out
