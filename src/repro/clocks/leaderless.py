"""The leaderless phase clock of Alistarh, Aspnes, and Gelashvili [1].

Paper, Section 3.1: every clock agent keeps a counter ``count`` used modulo
``Ψ = Θ(log n)``.  When two clock agents interact, the one with the lower
counter value w.r.t. the circular order modulo ``Ψ`` increments its count
(ties broken arbitrarily — here: the initiator increments).  When a counter
passes through zero the agent increments its ``phase``.

The simulator stores ``phase`` as an *absolute* integer (DESIGN.md §4.2);
the state-complexity accounting uses the true Θ(log n)-value counter plus
the mod-10 phase, exactly as the paper's Figure 1 does.

The advance rate: every clock–clock interaction increments exactly one
counter, so with ``c`` clock agents the per-agent tick rate is ``c / n²``
per interaction and one phase (one full wrap of ``Ψ``) takes about
``Ψ · n² / c`` interactions, i.e. ``Θ(log n)`` parallel time for
``c = Θ(n)``.  Tests verify both the skew bound and this duration scaling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

import numpy as np

from ..engine.population import PopulationConfig
from ..engine.protocol import Protocol


def clock_psi(n: int, gamma: float = 1.0) -> int:
    """The counter period ``Ψ = ceil(gamma * log2 n)``, floored at 8.

    The floor keeps the circular order readable: an agent more than ``Ψ/2``
    ticks behind is mistaken for being ahead, so ``Ψ`` must comfortably
    exceed the natural counter spread even for small ``n``.
    """
    return max(8, int(np.ceil(gamma * np.log2(max(n, 2)))))


def leaderless_clock_step(
    count: np.ndarray,
    phase: np.ndarray,
    u: np.ndarray,
    v: np.ndarray,
    psi: int,
) -> None:
    """Apply the clock transition to clock–clock pairs ``(u, v)``.

    The caller is responsible for filtering ``u``/``v`` down to pairs where
    both agents run the clock.  Counters live in ``[0, psi)``; a wrap
    increments the agent's absolute ``phase``.
    """
    if u.size == 0:
        return
    half = psi // 2
    diff = (count[u] - count[v]) % psi
    # diff == 0: tie -> initiator u increments.  diff > half: u is behind.
    u_ticks = (diff == 0) | (diff > half)
    tick_u = u[u_ticks]
    tick_v = v[~u_ticks]
    for ticked in (tick_u, tick_v):
        if ticked.size == 0:
            continue
        count[ticked] += 1
        wrapped = ticked[count[ticked] >= psi]
        if wrapped.size:
            count[wrapped] = 0
            phase[wrapped] += 1


@dataclass
class LeaderlessClockState:
    """State of the standalone clock protocol (all agents are clocks)."""

    count: np.ndarray
    phase: np.ndarray
    psi: int
    target_phases: int


class LeaderlessPhaseClock(Protocol):
    """Standalone clock: every agent is a clock agent.

    Converges once every agent completed ``target_phases`` phases; tests
    and benchmark E-clock measure the per-phase duration and the skew
    (max − min phase), which stays ≤ 1 w.h.p.
    """

    name = "leaderless_phase_clock"

    def __init__(self, gamma: float = 1.0, target_phases: int = 8):
        if target_phases < 1:
            raise ValueError("target_phases must be >= 1")
        self._gamma = gamma
        self._target = target_phases

    def init_state(
        self, config: PopulationConfig, rng: np.random.Generator
    ) -> LeaderlessClockState:
        n = config.n
        return LeaderlessClockState(
            count=np.zeros(n, dtype=np.int64),
            phase=np.zeros(n, dtype=np.int64),
            psi=clock_psi(n, self._gamma),
            target_phases=self._target,
        )

    def interact(
        self,
        state: LeaderlessClockState,
        u: np.ndarray,
        v: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        leaderless_clock_step(state.count, state.phase, u, v, state.psi)

    def has_converged(self, state: LeaderlessClockState) -> bool:
        return bool(state.phase.min() >= state.target_phases)

    def output(self, state: LeaderlessClockState) -> np.ndarray:
        return np.ones_like(state.phase)

    def progress(self, state: LeaderlessClockState) -> Dict[str, float]:
        return {
            "phase_min": float(state.phase.min()),
            "phase_max": float(state.phase.max()),
            "skew": float(state.phase.max() - state.phase.min()),
        }

    def check_invariants(self, state: Any) -> None:
        from ..engine.errors import InvariantViolation

        if (state.count < 0).any() or (state.count >= state.psi).any():
            raise InvariantViolation("clock counter escaped [0, psi)")
