"""Phase clocks: the leaderless clock of [1] and the junta clock of [11]."""

from .junta import (
    JuntaClockState,
    JuntaPhaseClock,
    form_junta_step,
    hours,
    junta_clock_step,
    junta_max_level,
    subpopulation_summary,
)
from .leaderless import (
    LeaderlessClockState,
    LeaderlessPhaseClock,
    clock_psi,
    leaderless_clock_step,
)

__all__ = [
    "JuntaClockState",
    "JuntaPhaseClock",
    "LeaderlessClockState",
    "LeaderlessPhaseClock",
    "clock_psi",
    "form_junta_step",
    "hours",
    "junta_clock_step",
    "junta_max_level",
    "leaderless_clock_step",
    "subpopulation_summary",
]
