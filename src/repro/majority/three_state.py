"""The 3-state approximate majority protocol of Angluin et al. [4].

The paper cites this as the classic contrast to exact majority: with only
three states (A, B, blank) it converges in O(log n) parallel time w.h.p.,
but it identifies the majority only when the initial bias is
Ω(√(n log n)).  Benchmark E10 reproduces this contrast: near-certain
failure at bias 1, near-certain success at bias ≫ √n.

Transitions (one-way, responder updates):
    A ← B  →  A ← blank        (an A initiator blanks a B responder)
    B ← A  →  B ← blank
    A ← blank → A ← A          (initiators recruit blanks)
    B ← blank → B ← B
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..engine.backends.model import CountModel, identity_tables
from ..engine.errors import ConfigurationError
from ..engine.population import PopulationConfig
from ..engine.protocol import Protocol

BLANK = 0
STATE_A = 1
STATE_B = 2


def three_state_step(state: np.ndarray, u: np.ndarray, v: np.ndarray) -> None:
    """One-way approximate-majority transition on (u, v) pairs."""
    su, sv = state[u], state[v]
    clash = (su != BLANK) & (sv != BLANK) & (su != sv)
    recruit = (su != BLANK) & (sv == BLANK)
    state[v[clash]] = BLANK
    state[v[recruit]] = su[recruit]


class ThreeStateMajority(Protocol):
    """Standalone approximate-majority baseline (k = 2 populations)."""

    name = "three_state_majority"

    def init_state(self, config: PopulationConfig, rng: np.random.Generator):
        if config.k > 2:
            raise ConfigurationError("ThreeStateMajority needs a k <= 2 population")
        return np.where(config.opinions == 1, STATE_A, STATE_B).astype(np.int8)

    def interact(
        self,
        state: np.ndarray,
        u: np.ndarray,
        v: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        three_state_step(state, u, v)

    def has_converged(self, state: np.ndarray) -> bool:
        return bool((state == STATE_A).all() or (state == STATE_B).all())

    def output(self, state: np.ndarray) -> np.ndarray:
        if (state == STATE_A).all():
            return np.ones(state.shape, dtype=np.int64)
        if (state == STATE_B).all():
            return np.full(state.shape, 2, dtype=np.int64)
        return np.zeros(state.shape, dtype=np.int64)

    def progress(self, state: np.ndarray) -> Dict[str, float]:
        return {
            "a": float((state == STATE_A).sum()),
            "b": float((state == STATE_B).sum()),
            "blank": float((state == BLANK).sum()),
        }

    def count_model(self, config: PopulationConfig) -> CountModel:
        """Export the three-state transition table for the count backend.

        State ids coincide with the per-agent encoding (blank/A/B), so the
        projection is the identity and the count backend's exact mode
        reproduces the agent-array trajectory bit-for-bit.
        """
        if config.k > 2:
            raise ConfigurationError("ThreeStateMajority needs a k <= 2 population")
        delta_u, delta_v = identity_tables(3)
        delta_v[STATE_A, STATE_B] = BLANK
        delta_v[STATE_B, STATE_A] = BLANK
        delta_v[STATE_A, BLANK] = STATE_A
        delta_v[STATE_B, BLANK] = STATE_B

        def encode_counts(cfg: PopulationConfig) -> np.ndarray:
            support = cfg.counts()
            x_b = int(support[1]) if cfg.k == 2 else 0
            return np.array([0, int(support[0]), x_b], dtype=np.int64)

        def progress(counts: np.ndarray) -> Dict[str, float]:
            return {
                "a": float(counts[STATE_A]),
                "b": float(counts[STATE_B]),
                "blank": float(counts[BLANK]),
            }

        return CountModel(
            labels=["blank", "A", "B"],
            delta_u=delta_u,
            delta_v=delta_v,
            encode=lambda cfg: np.where(cfg.opinions == 1, STATE_A, STATE_B),
            encode_counts=encode_counts,
            output_map=[0, 1, 2],
            progress=progress,
            project=lambda state: state.astype(np.int64),
        )
