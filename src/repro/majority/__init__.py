"""Majority subprotocols: exact cancel/split and the 3-state approximate baseline."""

from .cancel_split import (
    CancelSplitMajority,
    CancelSplitState,
    cancel_split_step,
    majority_levels,
    resolve_step,
    signed_sum,
)
from .three_state import BLANK, STATE_A, STATE_B, ThreeStateMajority, three_state_step

__all__ = [
    "BLANK",
    "CancelSplitMajority",
    "CancelSplitState",
    "STATE_A",
    "STATE_B",
    "ThreeStateMajority",
    "cancel_split_step",
    "majority_levels",
    "resolve_step",
    "signed_sum",
    "three_state_step",
]
