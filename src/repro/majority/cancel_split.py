"""Exact-majority substrate: the cancel/split token protocol.

This is the documented substitution for the stable majority protocol of
Doty et al. [20] (DESIGN.md §4.3).  The paper's match phase runs [20]
*without* its slow always-correct backup; what remains is a synchronized
cancel/split (cancel–double) process over signed dyadic tokens, which we
implement directly:

* every active agent holds a token ``sign · 2^(−expo)`` with
  ``expo ∈ {0, .., L}``, ``L = ⌈log₂ n⌉ + slack``;
* **cancel**: opposite signs at equal exponents annihilate;
* **partial cancel**: opposite signs at adjacent exponents leave one token
  one level down (``+2^(−e) − 2^(−e−1) = +2^(−e−1)``) — sum-preserving;
* **split**: an active token meeting a token-free agent splits one level
  down onto both;
* **merge**: two same-sign tokens at the same exponent ``e >= 1`` combine
  into one token at ``e − 1`` (the reverse of split, also sum-preserving).

The merge rule replaces the level synchronization that [20] obtains from
its phase clock: without it, token exponents can drift apart until no rule
applies even though both signs survive (opposite signs more than one level
apart cannot react and no token-free agents remain to split on).  With
merging, any configuration of more than ``2 (L + 1)`` active tokens always
admits a reaction, so the process cannot quiesce before the minority sign
is extinct.

The signed sum ``Σ sign · 2^(−expo)`` is invariant and equals the initial
bias ``x_A − x_B``, so the majority sign can never go extinct, and since
``|bias| · 2^L > n`` whenever ``bias ≠ 0`` the process cannot quiesce with
all tokens at the bottom level until the minority sign is extinct — the
max-level argument of [2, 20].  Exactness at bias 1 and the time scaling
are measured by benchmark E10.

The ``resolve`` step (output dissemination after the match) lives here too:
active agents stamp their sign into ``out``; token-free agents adopt any
non-zero ``out`` they encounter.  In the tournament this runs in its own
(clock-delimited) phase, after minority extinction w.h.p.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..engine.backends.model import CountModel, identity_tables
from ..engine.errors import ConfigurationError, InvariantViolation
from ..engine.population import PopulationConfig
from ..engine.protocol import Protocol


def majority_levels(n: int, slack: int = 2) -> int:
    """Maximum exponent ``L = ⌈log₂ n⌉ + slack``."""
    return int(np.ceil(np.log2(max(n, 2)))) + slack


def cancel_split_step(
    sign: np.ndarray,
    expo: np.ndarray,
    u: np.ndarray,
    v: np.ndarray,
    max_level: int,
    enable_merge: bool = True,
) -> None:
    """Apply cancel / partial-cancel / merge / split to (filtered) pairs.

    Exactly one rule applies per pair; all reads use the pre-interaction
    state (pairs are disjoint, so masked writes cannot interfere).
    ``enable_merge=False`` disables the merge rule — only used by the
    ablation experiment EA2, which demonstrates the deadlock it prevents.
    """
    if u.size == 0:
        return
    su, sv = sign[u], sign[v]
    eu, ev = expo[u], expo[v]
    opposite = su * sv == -1

    equal_cancel = opposite & (eu == ev)
    # Partial cancel: the lower-exponent (heavier) token survives one level
    # down; the lighter token is annihilated.
    u_heavier = opposite & (ev - eu == 1)
    v_heavier = opposite & (eu - ev == 1)
    same_sign = (su == sv) & (su != 0)
    merge = same_sign & (eu == ev) & (eu >= 1) & enable_merge
    split_from_u = (su != 0) & (sv == 0) & (eu < max_level)
    split_from_v = (sv != 0) & (su == 0) & (ev < max_level)

    both = u[equal_cancel]
    sign[both] = 0
    expo[both] = 0
    both = v[equal_cancel]
    sign[both] = 0
    expo[both] = 0

    heavy = u[u_heavier]
    expo[heavy] += 1
    light = v[u_heavier]
    sign[light] = 0
    expo[light] = 0

    heavy = v[v_heavier]
    expo[heavy] += 1
    light = u[v_heavier]
    sign[light] = 0
    expo[light] = 0

    keeper = u[merge]
    expo[keeper] -= 1
    freed = v[merge]
    sign[freed] = 0
    expo[freed] = 0

    src, dst = u[split_from_u], v[split_from_u]
    sign[dst] = sign[src]
    expo[src] += 1
    expo[dst] = expo[src]

    src, dst = v[split_from_v], u[split_from_v]
    sign[dst] = sign[src]
    expo[src] += 1
    expo[dst] = expo[src]


def resolve_step(
    out: np.ndarray,
    sign: np.ndarray,
    u: np.ndarray,
    v: np.ndarray,
) -> None:
    """Output dissemination after (or overlapping with) the match.

    Active agents always advertise their own sign.  A token-free agent
    adopts the sign of any *active* partner it meets — overwriting a stale
    claim, so that a late minority extinction self-corrects — and fills an
    empty ``out`` from token-free partners too (plain epidemic among the
    cancelled majority's witnesses).
    """
    if u.size == 0:
        return
    su, sv = sign[u], sign[v]
    ou, ov = out[u].copy(), out[v].copy()
    for side, s_own in ((u, su), (v, sv)):
        active = side[s_own != 0]
        out[active] = sign[active]
    from_active_u = (su == 0) & (sv != 0)
    from_active_v = (sv == 0) & (su != 0)
    out[u[from_active_u]] = sv[from_active_u]
    out[v[from_active_v]] = su[from_active_v]
    fill_u = (su == 0) & (sv == 0) & (ou == 0) & (ov != 0)
    fill_v = (sv == 0) & (su == 0) & (ov == 0) & (ou != 0)
    out[u[fill_u]] = ov[fill_u]
    out[v[fill_v]] = ou[fill_v]


def signed_sum(sign: np.ndarray, expo: np.ndarray, max_level: int) -> int:
    """Exact signed token sum in units of ``2^(−L)`` (Python ints, no overflow)."""
    total = 0
    for e in range(int(max_level) + 1):
        at_level = expo == e
        total += int(sign[at_level].sum()) * (1 << (max_level - e))
    return total


@dataclass
class CancelSplitState:
    sign: np.ndarray
    expo: np.ndarray
    out: np.ndarray
    max_level: int
    initial_sum: int


class CancelSplitMajority(Protocol):
    """Standalone exact-majority protocol over a k = 2 population.

    Opinion 1 maps to sign +1, opinion 2 to −1.  Convergence: one sign is
    extinct among active tokens (the core event the tournament's match
    phase waits for); ties (bias 0) converge when *all* tokens are gone and
    resolve to opinion 1, matching Lemma 11's defender-wins-ties
    convention.
    """

    name = "cancel_split_majority"

    def __init__(self, level_slack: int = 2):
        if level_slack < 0:
            raise ConfigurationError("level_slack must be >= 0")
        self._slack = level_slack

    def init_state(
        self, config: PopulationConfig, rng: np.random.Generator
    ) -> CancelSplitState:
        if config.k > 2:
            raise ConfigurationError("CancelSplitMajority needs a k <= 2 population")
        sign = np.where(config.opinions == 1, 1, -1).astype(np.int8)
        expo = np.zeros(config.n, dtype=np.int16)
        max_level = majority_levels(config.n, self._slack)
        state = CancelSplitState(
            sign=sign,
            expo=expo,
            out=np.zeros(config.n, dtype=np.int8),
            max_level=max_level,
            initial_sum=0,
        )
        state.initial_sum = signed_sum(sign, expo, max_level)
        return state

    def interact(
        self,
        state: CancelSplitState,
        u: np.ndarray,
        v: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        cancel_split_step(state.sign, state.expo, u, v, state.max_level)

    def has_converged(self, state: CancelSplitState) -> bool:
        positives = int((state.sign > 0).sum())
        negatives = int((state.sign < 0).sum())
        return positives == 0 or negatives == 0

    def output(self, state: CancelSplitState) -> np.ndarray:
        positives = int((state.sign > 0).sum())
        negatives = int((state.sign < 0).sum())
        if positives and negatives:
            return np.zeros_like(state.sign, dtype=np.int64)
        winner = 2 if negatives else 1  # ties (no tokens) go to opinion 1
        return np.full(state.sign.shape, winner, dtype=np.int64)

    def progress(self, state: CancelSplitState) -> Dict[str, float]:
        return {
            "positives": float((state.sign > 0).sum()),
            "negatives": float((state.sign < 0).sum()),
            "max_expo": float(state.expo.max()),
        }

    def check_invariants(self, state: CancelSplitState) -> None:
        current = signed_sum(state.sign, state.expo, state.max_level)
        if current != state.initial_sum:
            raise InvariantViolation(
                f"signed sum changed: {state.initial_sum} -> {current}"
            )
        if (state.expo < 0).any() or (state.expo > state.max_level).any():
            raise InvariantViolation("exponent escaped [0, L]")

    def count_model(self, config: PopulationConfig) -> CountModel:
        """Export the cancel/split token system for the count backend.

        State space: id 0 is token-free; ids ``1 .. L+1`` hold a +1 token
        at exponent ``id - 1``; ids ``L+2 .. 2L+2`` hold a −1 token at
        exponent ``id - (L + 2)``.  The ``out`` dissemination array of the
        agent path is not part of the export because the standalone
        protocol's convergence and output depend on token signs only.
        """
        if config.k > 2:
            raise ConfigurationError("CancelSplitMajority needs a k <= 2 population")
        levels = majority_levels(config.n, self._slack)
        pos0, neg0 = 1, levels + 2
        num_states = 2 * levels + 3

        def sign_of(state: int) -> int:
            if state == 0:
                return 0
            return 1 if state < neg0 else -1

        def expo_of(state: int) -> int:
            if state == 0:
                return 0
            return state - pos0 if state < neg0 else state - neg0

        def make(sign: int, expo: int) -> int:
            return (pos0 if sign > 0 else neg0) + expo

        delta_u, delta_v = identity_tables(num_states)
        for a in range(num_states):
            for b in range(num_states):
                sa, sb = sign_of(a), sign_of(b)
                ea, eb = expo_of(a), expo_of(b)
                if sa * sb == -1:
                    if ea == eb:  # cancel
                        delta_u[a, b] = delta_v[a, b] = 0
                    elif eb - ea == 1:  # partial cancel, initiator heavier
                        delta_u[a, b] = make(sa, ea + 1)
                        delta_v[a, b] = 0
                    elif ea - eb == 1:  # partial cancel, responder heavier
                        delta_u[a, b] = 0
                        delta_v[a, b] = make(sb, eb + 1)
                elif sa != 0 and sa == sb and ea == eb and ea >= 1:  # merge
                    delta_u[a, b] = make(sa, ea - 1)
                    delta_v[a, b] = 0
                elif sa != 0 and sb == 0 and ea < levels:  # split onto v
                    delta_u[a, b] = delta_v[a, b] = make(sa, ea + 1)
                elif sb != 0 and sa == 0 and eb < levels:  # split onto u
                    delta_u[a, b] = delta_v[a, b] = make(sb, eb + 1)

        signs = np.array([sign_of(s) for s in range(num_states)], dtype=np.int64)
        expos = np.array([expo_of(s) for s in range(num_states)], dtype=np.int64)
        # Exact dyadic weights in units of 2^(−L), as Python ints.
        weights = [
            int(signs[s]) * (1 << int(levels - expos[s])) if signs[s] else 0
            for s in range(num_states)
        ]

        def encode(cfg: PopulationConfig) -> np.ndarray:
            return np.where(cfg.opinions == 1, pos0, neg0)

        def encode_counts(cfg: PopulationConfig) -> np.ndarray:
            support = cfg.counts()
            counts = np.zeros(num_states, dtype=np.int64)
            counts[pos0] = int(support[0])
            counts[neg0] = int(support[1]) if cfg.k == 2 else 0
            return counts

        # O(k) — the signed-sum invariant only needs the support counts.
        initial_sum = sum(
            weights[s] * int(c) for s, c in enumerate(encode_counts(config))
        )

        def totals(counts: np.ndarray):
            positives = int(counts[pos0:neg0].sum())
            negatives = int(counts[neg0:].sum())
            return positives, negatives

        def converged(counts: np.ndarray) -> bool:
            positives, negatives = totals(counts)
            return positives == 0 or negatives == 0

        def output_opinion(counts: np.ndarray):
            positives, negatives = totals(counts)
            if positives and negatives:
                return None
            return 2 if negatives else 1  # ties (no tokens) go to opinion 1

        def progress(counts: np.ndarray) -> Dict[str, float]:
            active = np.flatnonzero(counts * (signs != 0))
            return {
                "positives": float(totals(counts)[0]),
                "negatives": float(totals(counts)[1]),
                "max_expo": float(expos[active].max()) if active.size else 0.0,
            }

        def check_invariants(counts: np.ndarray) -> None:
            current = sum(weights[s] * int(c) for s, c in enumerate(counts))
            if current != initial_sum:
                raise InvariantViolation(
                    f"signed sum changed: {initial_sum} -> {current}"
                )

        def project(state: CancelSplitState) -> np.ndarray:
            ids = np.zeros(state.sign.size, dtype=np.int64)
            positive, negative = state.sign > 0, state.sign < 0
            ids[positive] = pos0 + state.expo[positive]
            ids[negative] = neg0 + state.expo[negative]
            return ids

        labels = ["free"]
        labels += [f"+2^-{e}" for e in range(levels + 1)]
        labels += [f"-2^-{e}" for e in range(levels + 1)]
        return CountModel(
            labels=labels,
            delta_u=delta_u,
            delta_v=delta_v,
            encode=encode,
            encode_counts=encode_counts,
            converged=converged,
            output_opinion=output_opinion,
            progress=progress,
            check_invariants=check_invariants,
            project=project,
        )
