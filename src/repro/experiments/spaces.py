"""State-space experiments E3 and E14 — Theorem 1/2 space bounds, Figure 1."""

from __future__ import annotations

from typing import Any

from .. import workloads
from ..analysis import fitting, theory
from ..analysis.state_space import (
    StateSpaceObserver,
    improved_state_breakdown,
    simple_state_breakdown,
    unordered_state_breakdown,
)
from ..core.simple import SimpleAlgorithm
from ..engine.recorder import Recorder
from ..engine.scheduler import MatchingScheduler
from ..engine.simulation import simulate
from .base import ExperimentReport, register


class _ObserverRecorder(Recorder):
    """Recorder adapter feeding run snapshots to a StateSpaceObserver."""

    def __init__(self, observer: StateSpaceObserver, every_parallel_time: float = 4.0):
        self.observer = observer
        self.every_parallel_time = every_parallel_time

    def on_start(self, state: Any, n: int) -> None:
        self.observer.observe(state)

    def on_sample(self, interactions: int, state: Any) -> None:
        self.observer.observe(state)

    def on_end(self, interactions: int, state: Any) -> None:
        self.observer.observe(state)


@register("E3", "State complexity: O(k+log n) vs the Ω(k²) stable bound")
def e3_state_growth(scale: str) -> ExperimentReport:
    points = (
        [(256, 4), (256, 16), (256, 64), (4096, 4), (4096, 64)]
        if scale == "quick"
        else [(256, 4), (256, 16), (256, 64), (4096, 4), (4096, 64), (65536, 64)]
    )
    rows = []
    for n, k in points:
        simple = simple_state_breakdown(n, k)
        improved = improved_state_breakdown(n, k)
        driver = theory.simple_states_driver(n, k)
        lower = theory.always_correct_lower_bound(k)
        rows.append(
            [n, k, simple["total"], improved["total"], driver, lower,
             theory.natale_ramezani_upper_bound(k)]
        )
    # The paper's point is growth: Θ(k) states for the whp protocols versus
    # the Ω(k²) lower bound for always-correct ones.  Fit the k-exponent at
    # the largest fixed n present in the sweep.  The log n term of Theorem 1
    # lives inside the clock/player roles (the max is collector-dominated),
    # so it is checked on the clock role directly.
    n_big = max(p[0] for p in points)
    k_sweep = sorted({p[1] for p in points if p[0] == n_big})
    k_totals = [simple_state_breakdown(n_big, k)["total"] for k in k_sweep]
    k_fit = fitting.fit_loglog(k_sweep, k_totals)
    n_sweep = sorted({p[0] for p in points})
    clock_counts = [
        simple_state_breakdown(n, k_sweep[0])["clock"] for n in n_sweep
    ]
    log_fit = fitting.fit_loglog(
        [theory.log2n(n) for n in n_sweep], clock_counts
    )
    return ExperimentReport(
        experiment="E3",
        title="analytic state counts (Figure 1 formula) vs related work",
        headers=[
            "n",
            "k",
            "simple",
            "improved",
            "k+log2 n",
            "k² (lower bd [29])",
            "k¹¹ (upper bd [29])",
        ],
        rows=rows,
        stats={"k_exponent": k_fit.slope, "clock_log_exponent": log_fit.slope},
        checks={
            "linear_in_k_not_quadratic": k_fit.slope <= 1.5,
            "clock_linear_in_log_n": abs(log_fit.slope - 1.0) <= 0.5,
        },
        notes=(
            "Growth in k is linear (exponent ≈ 1) while any always-correct "
            "protocol is forced to exponent ≥ 2 [29]; concrete constants "
            "(Figure 1's 10·2³·21 collector factor) are visible in the "
            "absolute numbers."
        ),
    )


@register("E14", "Figure 1: per-role state table, analytic and observed")
def e14_figure1(scale: str) -> ExperimentReport:
    n = 256 if scale == "quick" else 512
    k = 4
    analytic = simple_state_breakdown(n, k)
    observer = StateSpaceObserver()
    config = workloads.bias_one(n, k, rng=1)
    algo = SimpleAlgorithm()
    result = simulate(
        algo,
        config,
        seed=141,
        scheduler=MatchingScheduler(0.25),
        max_parallel_time=algo.params.default_max_time(n, k),
        recorder=_ObserverRecorder(observer, every_parallel_time=2.0),
    )
    observed = observer.totals
    rows = []
    checks = {"run_succeeded": result.succeeded}
    for role in ("clock", "tracker", "collector", "player"):
        seen = observed.get(role, 0)
        # The analytic count excludes the shared phase factor; observed
        # signatures include phase mod 10, so compare against role × shared.
        bound = analytic[role] * analytic["shared"]
        rows.append([role, analytic[role], seen, bound])
        checks[f"observed_within_bound[{role}]"] = seen <= bound
    rows.append(["total (shared × max role)", analytic["total"], "-", "-"])
    rows.append(
        ["unordered total", unordered_state_breakdown(n, k)["total"], "-", "-"]
    )
    rows.append(
        ["improved total", improved_state_breakdown(n, k)["total"], "-", "-"]
    )
    return ExperimentReport(
        experiment="E14",
        title=f"Figure 1 state table at n={n}, k={k}",
        headers=["role", "analytic", "observed distinct", "observed bound"],
        rows=rows,
        checks=checks,
        notes=(
            "Observed counts are unions over sampled snapshots of one run "
            "(phase taken mod 10, counters mod Ψ, per Figure 1's encoding)."
        ),
    )
