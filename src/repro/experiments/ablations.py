"""Ablation experiments EA2, EA3 — design choices DESIGN.md calls out."""

from __future__ import annotations

import numpy as np

from .. import workloads
from ..analysis import stats
from ..analysis.sweep import replicate
from ..core.improved import ImprovedAlgorithm
from ..core.simple import SimpleAlgorithm
from ..engine.rng import make_rng
from ..engine.scheduler import MatchingScheduler, SequentialScheduler
from ..majority.cancel_split import cancel_split_step, majority_levels
from .base import ExperimentReport, register


def _extinction_time(
    n_players: int,
    positives: int,
    negatives: int,
    seed: int,
    enable_merge: bool,
    max_pt: float,
) -> float:
    """Player-parallel time until one sign is extinct; inf on stall."""
    rng = make_rng(seed)
    sign = np.zeros(n_players, dtype=np.int8)
    sign[:positives] = 1
    sign[positives : positives + negatives] = -1
    rng.shuffle(sign)
    expo = np.zeros(n_players, dtype=np.int64)
    max_level = majority_levels(n_players)
    done = 0
    for u, v in SequentialScheduler().batches(n_players, rng):
        cancel_split_step(sign, expo, u, v, max_level, enable_merge=enable_merge)
        done += int(u.size)
        if done % n_players < u.size:
            if (sign > 0).sum() == 0 or (sign < 0).sum() == 0:
                return done / n_players
        if done > max_pt * n_players:
            return float("inf")


@register("EA2", "Ablation: the merge rule prevents cancel/split deadlock")
def ea2_merge_ablation(scale: str) -> ExperimentReport:
    n_players = 80 if scale == "quick" else 160
    seeds = 15 if scale == "quick" else 40
    budget = 400.0
    rows = []
    stall = {}
    for enable_merge in (True, False):
        times = [
            _extinction_time(
                n_players,
                n_players // 2 + 1,
                n_players // 2 - 1,
                seed=1000 + s,
                enable_merge=enable_merge,
                max_pt=budget,
            )
            for s in range(seeds)
        ]
        finished = [t for t in times if np.isfinite(t)]
        stalled = seeds - len(finished)
        stall[enable_merge] = stalled
        rows.append(
            [
                "with merge" if enable_merge else "without merge",
                seeds,
                stalled,
                float(np.median(finished)) if finished else float("inf"),
            ]
        )
    return ExperimentReport(
        experiment="EA2",
        title=f"minority extinction with/without merging ({n_players} players)",
        headers=["variant", "runs", "stalled", "median time"],
        rows=rows,
        checks={
            "merge_never_stalls": stall[True] == 0,
            "ablation_stalls_sometimes": stall[False] > 0,
        },
        notes=(
            "Without merging, token exponents drift apart until opposite "
            "signs cannot react and no token-free agents remain: the match "
            "deadlocks with both signs alive (DESIGN.md §4.3)."
        ),
    )


def _prune_until_cut(algo, config, seed):
    """Run the ImprovedAlgorithm until every agent reached phase >= 0."""
    rng = make_rng(seed)
    state = algo.init_state(config, rng)
    budget = int(algo.params.default_max_time(config.n, config.k) * config.n)
    done = 0
    for u, v in SequentialScheduler().batches(config.n, rng):
        algo.interact(state, u, v, rng)
        done += int(u.size)
        if done % config.n < u.size and bool((state.phase >= 0).all()):
            return state
        if done >= budget:
            return state


@register("EA4", "Pruning threshold: survival vs x_j / x_max (Lemma 10)")
def ea4_pruning_threshold(scale: str) -> ExperimentReport:
    """Locate the empirical significance constant c_s.

    A cascade of probe opinions at fixed fractions of the plurality runs
    through the pruning phase; Lemma 10 predicts a sharp threshold: above
    x_max / c_s an opinion survives with all tokens, below it vanishes.
    """
    n = 1024 if scale == "quick" else 2048
    reps = 3 if scale == "quick" else 6
    x_max = n // 4
    fractions = [0.9, 0.7, 0.5, 0.35, 0.25, 0.15, 0.08]
    probes = [max(2, int(round(f * x_max))) for f in fractions]
    filler = n - x_max - sum(probes)
    assert filler >= 0
    counts = [x_max] + probes + ([filler] if filler else [])
    algo_params = ImprovedAlgorithm().params
    survival = {f: 0 for f in fractions}
    plurality_kept = True
    for r in range(reps):
        config = workloads.exact(counts, rng=8800 + r, name="threshold_probe")
        algo = ImprovedAlgorithm()
        state = _prune_until_cut(algo, config, seed=881 + r)
        survivors = set(algo.surviving_opinions(state))
        tokens_by_op = np.bincount(
            state.opinion, weights=state.tokens, minlength=len(counts) + 1
        )
        plurality_kept &= tokens_by_op[1] == x_max
        for i, f in enumerate(fractions, start=2):
            survival[f] += i in survivors
    rows = [
        [f, probes[i], survival[f] / reps]
        for i, f in enumerate(fractions)
    ]
    rates = [survival[f] / reps for f in fractions]
    implied = algo_params.significance_threshold()
    return ExperimentReport(
        experiment="EA4",
        title=f"opinion survival vs size fraction (n={n}, x_max={x_max})",
        headers=["x_j / x_max", "x_j", "survival rate"],
        rows=rows,
        stats={"implied_c_s": implied},
        checks={
            "plurality_tokens_kept": plurality_kept,
            "largest_probe_survives": rates[0] == 1.0,
            "smallest_probe_pruned": rates[-1] == 0.0,
            "monotone_threshold": all(
                a >= b - 1e-9 for a, b in zip(rates, rates[1:])
            ),
        },
        notes=(
            "Lemma 10 predicts a sharp survival threshold at x_max / c_s "
            f"(parameters imply c_s ≈ {implied:.0f}, i.e. fraction "
            f"{1 / implied:.2f}); the measured survival curve should be a "
            "monotone step around that fraction."
        ),
    )


@register("EA3", "Ablation: scheduler fidelity (exact vs matching batches)")
def ea3_scheduler_ablation(scale: str) -> ExperimentReport:
    n, k = (128, 3) if scale == "quick" else (256, 3)
    reps = 4 if scale == "quick" else 8
    rows = []
    checks = {}
    times = {}
    for name, factory in [
        ("sequential (exact)", SequentialScheduler),
        ("matching 1/8", lambda: MatchingScheduler(0.125)),
        ("matching 1/4", lambda: MatchingScheduler(0.25)),
        ("matching 1/2", lambda: MatchingScheduler(0.5)),
    ]:
        results = replicate(
            SimpleAlgorithm,
            lambda s: workloads.bias_one(n, k, rng=7000 + s),
            replications=reps,
            base_seed=31,
            scheduler_factory=factory,
        )
        rate = stats.success_rate(results)
        summary = stats.time_summary(results, successful_only=True)
        rows.append([name, rate, summary.mean])
        times[name] = summary.mean
        checks[f"correct[{name}]"] = rate >= 0.75
    drift = max(times.values()) / min(times.values())
    checks["parallel_times_agree"] = drift <= 1.5
    return ExperimentReport(
        experiment="EA3",
        title=f"SimpleAlgorithm under different schedulers (n={n}, k={k})",
        headers=["scheduler", "success", "parallel time"],
        rows=rows,
        stats={"max_time_drift": drift},
        checks=checks,
        notes=(
            "MatchingScheduler approximates the sequential model with "
            "disjoint batches.  Correctness is unaffected at any batch "
            "fraction; measured parallel times run ~20% faster under "
            "matching batches (each agent interacts at most once per batch, "
            "which evens out participation and speeds the phase clock by a "
            "constant factor) — acceptable for Θ-shape sweeps, and the "
            "exact scheduler remains available for distribution-critical "
            "measurements."
        ),
    )
