"""Substrate experiments E6, E7, E10–E13, EB1 — the lemmas' shapes."""

from __future__ import annotations

import numpy as np

from .. import workloads
from ..analysis import fitting, stats, theory
from ..analysis.random_walk import (
    lemma16_lower_bound,
    lemma16_upper_bound,
    simulate_hitting_times,
)
from ..analysis.sweep import replicate
from ..broadcast.epidemic import OneWayEpidemic
from ..clocks.junta import JuntaPhaseClock
from ..core.common import COLLECTOR, ROLE_NAMES
from ..core.simple import SimpleAlgorithm
from ..engine.recorder import ProbeRecorder
from ..engine.rng import make_rng
from ..engine.scheduler import MatchingScheduler, SequentialScheduler
from ..engine.simulation import simulate
from ..leader.coin_race import CoinRaceLeaderElection
from ..majority.cancel_split import CancelSplitMajority
from ..majority.three_state import ThreeStateMajority
from ..balancing.averaging import LoadBalancingProtocol
from .base import ExperimentReport, register

SLOPE_TOL = 0.45


def _run_until(protocol, config, seed, predicate, max_parallel_time):
    """Drive a protocol until ``predicate(state)`` holds; returns (t, state)."""
    rng = make_rng(seed)
    state = protocol.init_state(config, rng)
    scheduler = SequentialScheduler()
    budget = int(max_parallel_time * config.n)
    check = max(1, config.n // 2)
    done = 0
    for u, v in scheduler.batches(config.n, rng):
        protocol.interact(state, u, v, rng)
        done += int(u.size)
        if done % check < u.size and predicate(state):
            return done / config.n, state
        if done >= budget:
            return None, state


@register("E6", "Initialization: Lemma 3 (duration, role balance, defenders)")
def e6_initialization(scale: str) -> ExperimentReport:
    points = (
        [(128, 4), (256, 4), (256, 8)]
        if scale == "quick"
        else [(128, 4), (256, 4), (512, 4), (512, 16), (1024, 8)]
    )
    reps = 3 if scale == "quick" else 5
    rows = []
    checks = {}
    for n, k in points:
        durations, balance_ok, defender_ok = [], True, True
        for r in range(reps):
            config = workloads.bias_one(n, k, rng=6000 + r)
            algo = SimpleAlgorithm()
            t, state = _run_until(
                algo,
                config,
                seed=61 + r,
                predicate=lambda s: bool((s.phase >= 0).any()),
                max_parallel_time=80.0 * (k + np.log2(n)),
            )
            if t is None:
                balance_ok = False
                continue
            durations.append(t * n)  # interactions
            counts = {
                name: int((state.role == role).sum())
                for role, name in ROLE_NAMES.items()
            }
            balance_ok &= all(c >= n / 10 for c in counts.values())
            opinion1 = (state.opinion == 1) & (state.role == COLLECTOR)
            defender_ok &= bool(state.defender[opinion1].all())
        driver = theory.init_interactions_driver(n, k)
        mean_i = float(np.mean(durations)) if durations else float("nan")
        rows.append([n, k, mean_i, driver, mean_i / driver])
        checks[f"roles_ge_n10[{n},{k}]"] = balance_ok
        checks[f"defenders_set[{n},{k}]"] = defender_ok
    ratios = [row[4] for row in rows if np.isfinite(row[4])]
    checks["bounded_ratio"] = bool(
        ratios and max(ratios) / min(ratios) < 6.0
    )
    return ExperimentReport(
        experiment="E6",
        title="initialization interactions vs O(n(k + log n))",
        headers=["n", "k", "interactions", "n(k+log2 n)", "ratio"],
        rows=rows,
        checks=checks,
        notes="Lemma 3: t̂ = O(n(k+log n)); every role holds ≥ n/10 agents.",
    )


@register("E7", "Junta clock: Lemma 7 (hour length vs subpopulation size)")
def e7_junta_clock(scale: str) -> ExperimentReport:
    n = 2048 if scale == "quick" else 4096
    sizes = [n // 2, n // 4, n // 8]
    filler = n - sum(sizes)
    counts = sizes + [filler]
    reps = 2 if scale == "quick" else 4
    first_tick = {x: [] for x in sizes}
    junta_ok = True
    # The hour constant follows ImprovedParams: m = Θ(log n) keeps one hour
    # at Θ((n²/x_j) log n) interactions in the large-junta regime.
    hour_m = int(4 * np.log2(n))
    for r in range(reps):
        config = workloads.exact(counts, rng=6500 + r, name="junta_sweep")
        protocol = JuntaPhaseClock(m=hour_m, target_hours=50)
        probes = {}
        rec = ProbeRecorder(probes, protocol=protocol, every_parallel_time=1.0)
        simulate(
            protocol,
            config,
            seed=71 + r,
            scheduler=MatchingScheduler(0.25),
            max_parallel_time=400.0 * np.log2(n),
            recorder=rec,
            state_out=(out := []),
        )
        arrays = rec.as_arrays()
        for j, x in enumerate(sizes, start=1):
            series = arrays.get(f"hour_max_{j}")
            if series is None:
                continue
            crossed = np.flatnonzero(series >= 1)
            if crossed.size:
                first_tick[x].append(arrays["time"][crossed[0]] * n)
        state = out[0]
        for j, x in enumerate(sizes, start=1):
            members = state.opinion == j
            junta = int(state.junta[members].sum())
            junta_ok &= 0 < junta <= x
    rows, drivers, means = [], [], []
    for x in sizes:
        if not first_tick[x]:
            continue
        mean_i = float(np.mean(first_tick[x]))
        driver = theory.subpopulation_hour_driver(n, x)
        rows.append([n, x, mean_i, driver, mean_i / driver])
        drivers.append(driver)
        means.append(mean_i)
    fit = fitting.fit_loglog([n / x for x in sizes[: len(means)]], means)
    return ExperimentReport(
        experiment="E7",
        title=f"first clock tick vs subpopulation size (n={n})",
        headers=["n", "x_j", "interactions", "(n²/x)log2 n", "ratio"],
        rows=rows,
        stats={"alpha_vs_inverse_size": fit.slope},
        checks={
            "all_measured": len(means) == len(sizes),
            "monotone_in_size": means == sorted(means),
            "alpha_in_range": 0.5 <= fit.slope <= 2.5,
            "junta_nonempty_and_bounded": junta_ok,
        },
        notes=(
            "Lemma 7(3): hour length Θ((n²/x_j) log n) — larger subpopulations "
            "tick first; alpha is the fitted exponent of time vs n/x_j "
            "(paper: 1; our large-junta regime is recorded in EXPERIMENTS.md)."
        ),
    )


@register("E10", "Majority substrate: exact at bias 1, approximate fails")
def e10_majority(scale: str) -> ExperimentReport:
    ns = [128, 512, 2048] if scale == "quick" else [128, 512, 2048, 8192]
    reps = 10 if scale == "quick" else 25
    rows = []
    checks = {}
    drivers, means = [], []
    for n in ns:
        exact_results = replicate(
            CancelSplitMajority,
            lambda s, n=n: workloads.majority_counts(n, bias=2 - (n % 2), rng=s),
            replications=reps,
            base_seed=101,
            max_parallel_time=300.0 * np.log2(n),
        )
        rate = stats.success_rate(exact_results)
        summary = stats.time_summary(exact_results)
        driver = theory.log2n(n)
        rows.append(["cancel_split", n, 2 - (n % 2), rate, summary.mean])
        checks[f"exact_at_bias1[n={n}]"] = rate >= 0.95
        drivers.append(driver)
        means.append(summary.mean)
    n = ns[-1]
    for bias, expect_high in [
        (2 - (n % 2), False),
        (int(theory.approximate_bias_threshold(n)) * 2, True),
    ]:
        if (n - bias) % 2:
            bias += 1
        approx = replicate(
            ThreeStateMajority,
            lambda s, bias=bias: workloads.majority_counts(n, bias=bias, rng=s),
            replications=reps,
            base_seed=103,
            max_parallel_time=300.0 * np.log2(n),
        )
        rate = stats.success_rate(approx)
        rows.append(["three_state", n, bias, rate, stats.time_summary(approx).mean])
        if expect_high:
            checks["approx_ok_at_large_bias"] = rate >= 0.9
        else:
            checks["approx_unreliable_at_bias1"] = rate <= 0.8
    fit = fitting.slope_against_driver(drivers, means)
    return ExperimentReport(
        experiment="E10",
        title="exact vs approximate majority",
        headers=["protocol", "n", "bias", "success", "time"],
        rows=rows,
        stats={"exact_slope_vs_log_n": fit.slope},
        checks=checks,
        notes=(
            "The cancel/split substrate must be exact at bias 1 (it replaces "
            "[20] in the match phase); the 3-state protocol [4] is fast but "
            "needs bias Ω(√(n log n))."
        ),
    )


@register("E11", "Leader election: unique leader in O(log² n) time")
def e11_leader_election(scale: str) -> ExperimentReport:
    ns = [128, 512] if scale == "quick" else [128, 512, 2048]
    reps = 10 if scale == "quick" else 20
    rows, drivers, means = [], [], []
    checks = {}
    for n in ns:
        results = replicate(
            CoinRaceLeaderElection,
            lambda s, n=n: workloads.single_opinion(n),
            replications=reps,
            base_seed=107,
            max_parallel_time=200.0 * np.log2(n) ** 2,
        )
        unique = stats.success_rate(results)
        summary = stats.time_summary(results, successful_only=True)
        driver = theory.leader_election_time_driver(n)
        rows.append([n, unique, summary.mean, driver, summary.mean / driver])
        checks[f"unique_leader[n={n}]"] = unique >= 0.9
        drivers.append(driver)
        means.append(summary.mean)
    fit = fitting.slope_against_driver(drivers, means)
    return ExperimentReport(
        experiment="E11",
        title="coin-race leader election",
        headers=["n", "unique rate", "time", "log2² n", "ratio"],
        rows=rows,
        stats={"slope_vs_log2_squared": fit.slope},
        checks={**checks, "slope_near_1": abs(fit.slope - 1.0) <= SLOPE_TOL},
        notes="Interface of [23]: unique leader w.h.p., Θ(log² n) parallel time.",
    )


@register("E12", "Load balancing: discrepancy ≤ 1 in Θ(log n) time")
def e12_load_balancing(scale: str) -> ExperimentReport:
    ns = [256, 1024] if scale == "quick" else [256, 1024, 4096]
    reps = 5 if scale == "quick" else 10
    rows, drivers, means = [], [], []
    checks = {}
    for n in ns:
        results = replicate(
            LoadBalancingProtocol,
            lambda s, n=n: workloads.majority_counts(n, bias=0 if n % 2 == 0 else 1, rng=s),
            replications=reps,
            base_seed=109,
            max_parallel_time=200.0 * np.log2(n),
        )
        converged = sum(r.converged for r in results) / len(results)
        sums_ok = all(r.extras.get("sum", 1) == 0 for r in results)
        summary = stats.time_summary(
            [r for r in results if r.converged], successful_only=False
        )
        driver = theory.log2n(n)
        rows.append([n, converged, summary.mean, driver, summary.mean / driver])
        checks[f"converged[n={n}]"] = converged == 1.0
        checks[f"sum_preserved[n={n}]"] = sums_ok
        drivers.append(driver)
        means.append(summary.mean)
    fit = fitting.slope_against_driver(drivers, means)
    return ExperimentReport(
        experiment="E12",
        title="pairwise averaging (cancellation phase substrate)",
        headers=["n", "converged", "time", "log2 n", "ratio"],
        rows=rows,
        stats={"slope_vs_log_n": fit.slope},
        checks={**checks, "slope_near_1": abs(fit.slope - 1.0) <= 0.6},
        notes="[12, 28]: ±cap loads average to constant discrepancy in Θ(log n).",
    )


@register("E13", "Random walks: Lemma 16 hitting-time bounds")
def e13_random_walk(scale: str) -> ExperimentReport:
    walkers = 300 if scale == "quick" else 1000
    target = 12
    rows = []
    checks = {}
    # Statement (1): rightward drift p=2/3 hits N fast.
    sample = simulate_hitting_times(
        2 / 3, target, walkers, max_steps=100_000, rng=113
    )
    upper = lemma16_upper_bound(2 / 3, target)
    frac_within = float((sample.times <= upper).mean())
    rows.append(["p=2/3 (up)", target, sample.quantile(0.5), upper, frac_within])
    checks["upper_bound_holds"] = frac_within >= 1 - np.exp(-target) - 0.05
    # Statement (2): leftward drift p=1/3 takes exponentially long.
    sample = simulate_hitting_times(
        1 / 3, target, walkers, max_steps=int(lemma16_lower_bound(1 / 3, target)) * 4,
        rng=127,
    )
    lower = lemma16_lower_bound(1 / 3, target)
    frac_early = float((sample.times < lower).mean())
    rows.append(["p=1/3 (down)", target, sample.quantile(0.5), lower, 1 - frac_early])
    checks["lower_bound_holds"] = frac_early <= (1 / 2) ** (target / 2) + 0.05
    return ExperimentReport(
        experiment="E13",
        title="biased random-walk hitting times (Appendix D)",
        headers=["walk", "N", "median steps", "bound", "frac respecting bound"],
        rows=rows,
        checks=checks,
        notes=(
            "Lemma 16: with upward drift the walk hits N within (2/(p−q))²N "
            "w.p. ≥ 1−e^{−N}; with downward drift it needs ≥ (q/p)^{N/2} "
            "steps w.p. ≥ 1−(p/q)^{N/2}."
        ),
    )


@register("EB1", "Broadcast: one-way epidemic completes in Θ(log n)")
def eb1_broadcast(scale: str) -> ExperimentReport:
    ns = [256, 1024, 4096] if scale == "quick" else [256, 1024, 4096, 16384]
    reps = 10 if scale == "quick" else 20
    rows, drivers, means = [], [], []
    for n in ns:
        results = replicate(
            OneWayEpidemic,
            lambda s, n=n: workloads.single_opinion(n),
            replications=reps,
            base_seed=131,
            max_parallel_time=80.0 * np.log2(n),
        )
        summary = stats.time_summary(
            [r for r in results if r.converged], successful_only=False
        )
        driver = theory.broadcast_time_driver(n)
        rows.append([n, summary.mean, driver, summary.mean / driver])
        drivers.append(driver)
        means.append(summary.mean)
    fit = fitting.slope_against_driver(drivers, means)
    return ExperimentReport(
        experiment="EB1",
        title="one-way epidemic broadcast time",
        headers=["n", "time", "log2 n", "ratio"],
        rows=rows,
        stats={"slope_vs_log_n": fit.slope},
        checks={"slope_near_1": abs(fit.slope - 1.0) <= SLOPE_TOL},
        notes="[5]: the broadcast primitive behind every dissemination step.",
    )
