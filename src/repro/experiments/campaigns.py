"""Named campaign definitions (see docs/CAMPAIGNS.md).

Each campaign is a ``(scale) -> CampaignGrid`` factory registered with
:func:`repro.campaign.register_campaign`, the grid analogue of the
experiment registry in :mod:`repro.experiments.base`.  Three ship here:

* ``smoke`` — a 2 × 2 × 2 grid of sub-second cells.  CI's
  ``campaign-smoke`` job SIGKILLs it mid-run and resumes it to prove
  checkpoint recovery on every PR; the crash tests drive the same grid.
* ``sqrt_k_sweep`` — the source paper's insignificant-opinion regime:
  k ≈ √n opinions, one dominant plurality, many tiny opinions
  (Section 4's motivating workload) across the tournament algorithms.
* ``usd_lower_bound`` — an empirical test of the USD lower bound
  (El-Hayek & Elsässer, arXiv:2505.02765): undecided-state dynamics
  convergence time versus n, k, and initial bias on the count backend,
  fitted against :func:`repro.analysis.theory.usd_time_driver`.  Full
  scale reaches n = 10⁹ — the regime none of the papers could run.
* ``table_cache_smoke`` — tournament quotients on the counts backend,
  sized so every cell derives the same per-(protocol, k) transition
  table.  CI's cache-reuse leg runs it twice against one shared store
  and asserts the second pass re-derives nothing (see docs/CACHING.md).
"""

from __future__ import annotations

from ..campaign.grid import CampaignGrid, register_campaign, sqrt_k


def _check_scale(scale: str) -> None:
    if scale not in ("quick", "full"):
        raise ValueError(f"scale must be quick|full, got {scale!r}")


@register_campaign(
    "smoke",
    "2x2x2 end-to-end pipeline check: three-state + USD at tiny n",
)
def smoke(scale: str) -> CampaignGrid:
    """Protocols × n × seeds, every cell sub-second at either scale."""
    _check_scale(scale)
    return CampaignGrid.from_axes(
        "smoke",
        protocols=["three_state", "usd"],
        ns=[64, 128],
        ks=[2],
        seeds=[0, 1],
        workload="majority_counts",
        workload_axes=({"bias": 2},),
        scale=scale,
        description="2x2x2 smoke grid (three_state + usd, n=64/128, 2 seeds)",
    )


@register_campaign(
    "sqrt_k_sweep",
    "k ~ sqrt(n) insignificant-opinion sweep (paper Section 4 regime)",
)
def sqrt_k_sweep(scale: str) -> CampaignGrid:
    """One dominant opinion, k ≈ √n tiny ones, tournament algorithms."""
    _check_scale(scale)
    if scale == "quick":
        ns = [256, 512]
        protocols = ["simple", "unordered"]
        seeds = [0, 1]
    else:
        ns = [1024, 4096]
        protocols = ["simple", "unordered", "improved"]
        seeds = [0, 1, 2]
    return CampaignGrid.from_axes(
        "sqrt_k_sweep",
        protocols=protocols,
        ns=ns,
        ks=[sqrt_k(n) for n in ns],
        pair_n_k=True,
        seeds=seeds,
        workload="one_large_many_small",
        workload_axes=({"plurality_fraction": 0.5},),
        scheduler="matching",
        scale=scale,
        description="k ~ sqrt(n) opinion sweep, one_large_many_small workload",
        driver="simple_time",
    )


@register_campaign(
    "table_cache_smoke",
    "tournament quotients on counts: exercises the shared table cache",
)
def table_cache_smoke(scale: str) -> CampaignGrid:
    """Small tournament-quotient grid for the shared transition-table cache.

    Each (protocol, n, k) point has one quotient signature (thresholds
    derive from n, so signatures differ across n) and two seeds sharing
    it: a first pass against an empty store derives each table once and
    its seed sibling starts warm; a second pass into a fresh checkpoint
    directory must be all cache hits with zero derivations.  This
    campaign checks cache behaviour, not convergence — tiny tournament
    runs may time out, and that is fine.
    """
    _check_scale(scale)
    ns = [64, 96] if scale == "quick" else [128, 256]
    return CampaignGrid.from_axes(
        "table_cache_smoke",
        protocols=["simple", "unordered"],
        ns=ns,
        ks=[2],
        seeds=[0, 1],
        workload="majority_counts",
        workload_axes=({"bias": 8},),
        backend="counts",
        scheduler="matching",
        scale=scale,
        description="table-cache smoke: simple + unordered quotients on counts",
    )


@register_campaign(
    "failure_probability",
    "w.h.p. failure rates vs n and initial bias: three-state + unordered",
)
def failure_probability(scale: str) -> CampaignGrid:
    """Empirical failure probability against population size and bias.

    The paper's guarantees are with-high-probability statements: the
    failure modes (wrong-consensus for three-state majority,
    plurality pruning for the unordered tournament) must decay as n
    grows and as the initial bias widens.  This campaign measures both
    rates directly: many seeds per (protocol, n, bias) point, rolled up
    into per-group ``success_rate`` entries (failure rate = 1 −
    success_rate).  Cells are replicas of one experimental point per
    group, so ``campaign run --ensemble-size R`` stacks each group
    through the ensemble engine (see docs/ENSEMBLE.md).

    Small biases sit deliberately close to the coin-flip regime —
    wrong-consensus outcomes still *converge*, so the rollup's
    ``all_converged`` check stays meaningful while ``success_rate``
    carries the measurement.
    """
    _check_scale(scale)
    if scale == "quick":
        three_ns, three_biases, three_seeds = [256, 1024], [2, 16], range(8)
        unordered_ns, unordered_biases, unordered_seeds = [64, 96], [2, 8], range(4)
    else:
        three_ns, three_biases, three_seeds = [4096, 16384], [2, 64], range(16)
        unordered_ns, unordered_biases, unordered_seeds = [128, 256], [2, 16], range(8)
    common = dict(
        ks=[2],
        workload="majority_counts",
        backend="counts",
        scheduler="matching",
        sampler="auto",
        counts_only=True,
        scale=scale,
    )
    three = CampaignGrid.from_axes(
        "failure_probability",
        protocols=["three_state"],
        ns=three_ns,
        seeds=list(three_seeds),
        workload_axes=tuple({"bias": bias} for bias in three_biases),
        **common,
    )
    unordered = CampaignGrid.from_axes(
        "failure_probability",
        protocols=["unordered"],
        ns=unordered_ns,
        seeds=list(unordered_seeds),
        workload_axes=tuple({"bias": bias} for bias in unordered_biases),
        **common,
    )
    return CampaignGrid(
        "failure_probability",
        three.cells + unordered.cells,
        scale=scale,
        description=(
            "failure rates vs n and initial bias (three_state wrong-"
            "consensus, unordered plurality pruning)"
        ),
    )


@register_campaign(
    "usd_lower_bound",
    "USD lower-bound study vs n, k, bias (arXiv:2505.02765), counts backend",
)
def usd_lower_bound(scale: str) -> CampaignGrid:
    """Convergence time of undecided-state dynamics against k · log n.

    The bias axis brackets the approximate-consensus correctness
    threshold Ω(√(n log n)): bias 1 is the paper's hard exact-consensus
    case (USD converges fast but picks the wrong opinion ~half the
    time), the large bias is comfortably above the threshold at every
    full-scale n, where USD is both fast and correct.  Count-native
    configs keep cell construction O(k) at n = 10⁹.
    """
    _check_scale(scale)
    if scale == "quick":
        ns = [4096, 65536]
        ks = [2, 4]
        biases = [1, 256]
        seeds = [0, 1]
    else:
        ns = [10**7, 10**8, 10**9]
        ks = [2, 4, 8]
        biases = [1, 262144]
        seeds = [0, 1]
    return CampaignGrid.from_axes(
        "usd_lower_bound",
        protocols=["usd"],
        ns=ns,
        ks=ks,
        seeds=seeds,
        workload="uniform_with_bias",
        workload_axes=tuple({"bias": bias} for bias in biases),
        backend="counts",
        scheduler="matching",
        sampler="auto",
        counts_only=True,
        scale=scale,
        description="USD convergence time vs n, k, initial bias at n up to 1e9",
        driver="usd_time",
    )
