"""Experiment registry (E1-E15 + ablations) — see DESIGN.md §5."""

from .base import (
    ExperimentReport,
    get,
    names,
    run,
    supports_backend,
    supports_ensemble,
    supports_sampler,
    supports_scheduler,
    titles,
)

__all__ = [
    "ExperimentReport",
    "get",
    "names",
    "run",
    "supports_backend",
    "supports_ensemble",
    "supports_sampler",
    "supports_scheduler",
    "titles",
]
