"""Scaling experiments E1, E2, E4, E5, EB2–EB7 — runtime shapes and backends."""

from __future__ import annotations

import time
from functools import partial
from typing import Optional

from .. import workloads
from ..analysis import fitting, stats, theory
from ..engine.errors import BackendUnsupported, SamplerUnsupported
from ..analysis.sweep import replicate
from ..baselines.oracle_tournament import oracle_tournament
from ..core.improved import ImprovedAlgorithm
from ..core.simple import SimpleAlgorithm
from ..core.unordered import UnorderedAlgorithm
from ..engine import sampling
from ..engine import scheduler as schedulers
from ..engine.population import CountConfig, PopulationConfig
from ..engine.scheduler import MatchingScheduler
from ..engine.simulation import simulate
from ..majority.three_state import ThreeStateMajority
from .base import ExperimentReport, register

#: Fitted log-log slope tolerance for shape checks (DESIGN.md §5).
SLOPE_TOL = 0.35
#: Minimum per-point success rate for the timing fits to be meaningful.
MIN_SUCCESS = 0.65


@register("E1", "SimpleAlgorithm: time vs n at bias 1 (Theorem 1(1))")
def e1_simple_time_vs_n(
    scale: str,
    backend: Optional[str] = None,
    sampler: Optional[str] = None,
    scheduler: Optional[str] = None,
) -> ExperimentReport:
    ns = [128, 256, 512] if scale == "quick" else [128, 256, 512, 1024, 2048]
    reps = 5 if scale == "quick" else 10
    k = 3
    rows, drivers, means = [], [], []
    ok = True
    for i, n in enumerate(ns):
        results = replicate(
            SimpleAlgorithm,
            lambda s, n=n: workloads.bias_one(n, k, rng=1000 + s),
            replications=reps,
            base_seed=11 * (i + 1),
            scheduler=scheduler,
            backend=backend,
            sampler=sampler,
        )
        rate = stats.success_rate(results)
        ok &= rate >= MIN_SUCCESS
        summary = stats.time_summary(results)
        driver = theory.simple_time_driver(n, k)
        rows.append(
            [n, k, rate, summary.mean, summary.std, driver, summary.mean / driver]
        )
        drivers.append(driver)
        means.append(summary.mean)
    fit = fitting.slope_against_driver(drivers, means)
    return ExperimentReport(
        experiment="E1",
        title=f"parallel time vs n (k={k}, bias 1)",
        headers=["n", "k", "success", "time", "std", "k*log2(n)", "ratio"],
        rows=rows,
        stats={"slope_vs_driver": fit.slope, "r2": fit.r_squared},
        checks={
            "success_rate": ok,
            "slope_near_1": abs(fit.slope - 1.0) <= SLOPE_TOL,
        },
        notes=(
            "Theorem 1(1) predicts Θ(k log n); the ratio column should be "
            "roughly flat and the fitted slope near 1."
        ),
    )


@register("E2", "SimpleAlgorithm: time vs k at bias 1 (Theorem 1(1))")
def e2_simple_time_vs_k(
    scale: str,
    backend: Optional[str] = None,
    sampler: Optional[str] = None,
    scheduler: Optional[str] = None,
) -> ExperimentReport:
    ks = [2, 4, 8] if scale == "quick" else [2, 4, 8, 16]
    reps = 4 if scale == "quick" else 8
    n = 256 if scale == "quick" else 512
    rows, drivers, means = [], [], []
    ok = True
    for i, k in enumerate(ks):
        results = replicate(
            SimpleAlgorithm,
            lambda s, k=k: workloads.bias_one(n, k, rng=2000 + s),
            replications=reps,
            base_seed=13 * (i + 1),
            scheduler=scheduler,
            backend=backend,
            sampler=sampler,
        )
        rate = stats.success_rate(results)
        ok &= rate >= MIN_SUCCESS
        summary = stats.time_summary(results)
        # The protocol runs exactly k − 1 tournaments, so the clean linear
        # driver is (k − 1) log n; the theorem states it as O(k log n).
        driver = max(k - 1, 1) * theory.log2n(n)
        rows.append(
            [n, k, rate, summary.mean, summary.std, driver, summary.mean / driver]
        )
        drivers.append(driver)
        means.append(summary.mean)
    fit = fitting.slope_against_driver(drivers, means)
    return ExperimentReport(
        experiment="E2",
        title=f"parallel time vs k (n={n}, bias 1)",
        headers=["n", "k", "success", "time", "std", "(k-1)*log2(n)", "ratio"],
        rows=rows,
        stats={"slope_vs_driver": fit.slope, "r2": fit.r_squared},
        checks={
            "success_rate": ok,
            "slope_near_1": abs(fit.slope - 1.0) <= SLOPE_TOL,
        },
        notes="Time should grow linearly with the number of tournaments (k−1).",
    )


@register("E4", "UnorderedAlgorithm: time vs n (Theorem 1(2))")
def e4_unordered_time(
    scale: str,
    backend: Optional[str] = None,
    sampler: Optional[str] = None,
    scheduler: Optional[str] = None,
) -> ExperimentReport:
    # Since the era quotient (repro.core.era_quotient) the unordered
    # variant exports a count model, so --backend counts runs this sweep
    # on batched count-space simulation instead of skipping.  Note the
    # count path is *slower* than agents at these small n (~30 s per
    # replication: per-batch work scales with occupied state pairs, not
    # n) — its payoff is the n = 10^5 .. 10^9 regime benchmarked in EB5.
    ns = [128, 256, 512] if scale == "quick" else [128, 256, 512, 1024]
    reps = 4 if scale == "quick" else 8
    k = 3
    rows, drivers, means = [], [], []
    ok = True
    for i, n in enumerate(ns):
        results = replicate(
            UnorderedAlgorithm,
            lambda s, n=n: workloads.bias_one(n, k, rng=3000 + s),
            replications=reps,
            base_seed=17 * (i + 1),
            scheduler=scheduler,
            backend=backend,
            sampler=sampler,
        )
        rate = stats.success_rate(results)
        ok &= rate >= MIN_SUCCESS
        summary = stats.time_summary(results)
        driver = theory.unordered_time_driver(n, k)
        rows.append(
            [n, k, rate, summary.mean, summary.std, driver, summary.mean / driver]
        )
        drivers.append(driver)
        means.append(summary.mean)
    fit = fitting.slope_against_driver(drivers, means)
    spread = fitting.ratio_spread(means, drivers)
    return ExperimentReport(
        experiment="E4",
        title=f"unordered variant: parallel time vs n (k={k}, bias 1)",
        headers=["n", "k", "success", "time", "std", "k*log2+log2^2", "ratio"],
        rows=rows,
        stats={"slope_vs_driver": fit.slope, "ratio_spread": spread},
        checks={
            "success_rate": ok,
            # The driver mixes two terms, so the Θ-shape test is the ratio
            # spread over the sweep rather than a single fitted exponent.
            "theta_shape": spread <= 2.5,
        },
        notes=(
            "Theorem 1(2): O(k log n + log² n); the log² n term comes from "
            "the leader election and dominates at small k."
        ),
    )


@register("E5", "ImprovedAlgorithm: pruning speedup (Theorem 2)")
def e5_improved_speedup(scale: str) -> ExperimentReport:
    n = 512 if scale == "quick" else 1024
    k = 16
    reps = 3 if scale == "quick" else 6
    rows = []
    checks = {}
    times = {}
    for name, algo_factory, config_factory in [
        (
            "improved/one_large",
            ImprovedAlgorithm,
            lambda s: workloads.one_large_many_small(
                n, k, plurality_fraction=0.55, rng=4000 + s
            ),
        ),
        (
            "improved/two_block",
            ImprovedAlgorithm,
            lambda s: workloads.two_block(n, k, big_fraction=0.8, rng=4100 + s),
        ),
        (
            "unordered/one_large",
            UnorderedAlgorithm,
            lambda s: workloads.one_large_many_small(
                n, k, plurality_fraction=0.55, rng=4000 + s
            ),
        ),
        (
            "simple/one_large",
            SimpleAlgorithm,
            lambda s: workloads.one_large_many_small(
                n, k, plurality_fraction=0.55, rng=4000 + s
            ),
        ),
    ]:
        results = replicate(
            algo_factory, config_factory, replications=reps, base_seed=23
        )
        rate = stats.success_rate(results)
        summary = stats.time_summary(results)
        config = config_factory(0)
        driver = theory.improved_time_driver(n, config.x_max)
        tournaments = [r.extras.get("tournament", -1) for r in results]
        rows.append(
            [
                name,
                config.x_max,
                rate,
                summary.mean,
                max(tournaments),
                driver,
            ]
        )
        times[name] = summary.mean
        checks[f"correct[{name}]"] = rate >= MIN_SUCCESS
    # Who-wins ordering: with one dominant opinion and many small ones,
    # pruning must beat running all k − 1 tournaments.
    checks["improved_beats_simple"] = (
        times["improved/one_large"] < times["simple/one_large"]
    )
    checks["improved_beats_unordered"] = (
        times["improved/one_large"] < times["unordered/one_large"]
    )
    return ExperimentReport(
        experiment="E5",
        title=f"pruning speedup at n={n}, k={k}",
        headers=["setting", "x_max", "success", "time", "tournaments", "driver"],
        rows=rows,
        checks=checks,
        stats={
            "speedup_vs_simple": times["simple/one_large"]
            / times["improved/one_large"],
        },
        notes=(
            "Theorem 2: the improved algorithm needs O(n/x_max) tournaments "
            "instead of k−1, so it wins exactly when x_max is large and "
            "insignificant opinions are many."
        ),
    )


@register("EB2", "Backend scaling: count vector vs agent arrays")
def eb2_backend_scaling(
    scale: str,
    backend: Optional[str] = None,
    sampler: Optional[str] = None,
    scheduler: Optional[str] = None,
) -> ExperimentReport:
    """Wall-clock comparison of the execution backends at large n.

    Runs the three-state majority protocol under matching-scheduler
    semantics on the agent-array and the count backend with the same seed
    and sizing, and checks the count path's O(|states|²)-per-batch
    simulation delivers at least a 10× speedup.  ``backend`` restricts
    the sweep to one backend (then no speedup check applies); ``sampler``
    picks the count backend's sampler policy.
    """
    n = 1_000_000 if scale == "quick" else 10_000_000
    run_scheduler = schedulers.resolve(scheduler or MatchingScheduler(0.25))
    seed = 71
    config = PopulationConfig.from_counts(
        [int(0.6 * n), n - int(0.6 * n)], rng=7, name="backend_scaling"
    )
    backends = [backend] if backend else ["agents", "counts"]
    rows = []
    seconds = {}
    outcomes = {}
    for name in backends:
        started = time.perf_counter()
        result = simulate(
            ThreeStateMajority(),
            config,
            seed=seed,
            scheduler=run_scheduler,
            backend=name,
            sampler=sampler if name == "counts" else None,
            max_parallel_time=500.0,
            check_every_parallel_time=1.0,
        )
        elapsed = time.perf_counter() - started
        seconds[name] = elapsed
        outcomes[name] = result
        rows.append(
            [
                name,
                n,
                elapsed,
                result.parallel_time,
                result.output_opinion,
                "yes" if result.succeeded else "no",
            ]
        )
    checks = {
        f"correct[{name}]": outcomes[name].succeeded for name in backends
    }
    report_stats = {f"seconds[{name}]": seconds[name] for name in backends}
    if len(backends) == 2:
        speedup = seconds["agents"] / max(seconds["counts"], 1e-9)
        report_stats["speedup"] = speedup
        checks["speedup_ge_10"] = speedup >= 10.0
    return ExperimentReport(
        experiment="EB2",
        title=f"three-state majority at n={n}: backend wall-clock",
        headers=["backend", "n", "seconds", "parallel time", "output", "ok"],
        rows=rows,
        checks=checks,
        stats=report_stats,
        notes=(
            "Same protocol, scheduler semantics, and seed; the count "
            "backend simulates each batch by multivariate-hypergeometric "
            "sampling over the 3-state count vector instead of touching "
            "O(n) agent entries."
        ),
    )


@register("EB3", "Large-population batched count mode: n = 10^8 .. 10^10")
def eb3_large_population(
    scale: str,
    backend: Optional[str] = None,
    sampler: Optional[str] = None,
    scheduler: Optional[str] = None,
) -> ExperimentReport:
    """The lifted population cap: batched count runs at n up to 10^10.

    Three-state majority on count-native :class:`CountConfig` populations
    (O(k) build — no per-agent array ever exists) at n = 10^8, 10^9 and
    10^10 under matching-scheduler semantics.  The two larger sizes sit
    beyond numpy's multivariate-hypergeometric limit, so this is the
    regime only the ``"splitting"`` / ``"auto"`` sampler policies reach —
    the n >= 10^9 territory the USD lower-bound experiments
    (arXiv:2505.02765) and the paper's k ≈ √n headline regime need.
    ``sampler`` forces a policy (the default ``auto`` dispatches per
    draw); ``backend`` must resolve to a count-space backend.
    """
    ns = [10**8, 10**9, 10**10]
    reps = 1 if scale == "quick" else 3
    backend = backend or "counts"
    run_scheduler = schedulers.resolve(scheduler or MatchingScheduler(0.25))
    policy = sampling.resolve(sampler)
    # Only count-space backends take a sampler; letting a non-count
    # backend reject the count-native config (a skip) is more useful
    # than erroring on the sampler argument first.
    sampler_arg = policy if backend == "counts" else None
    rows = []
    checks = {}
    report_stats = {}
    for n in ns:
        label = f"1e{len(str(n)) - 1}"
        config = CountConfig.from_counts(
            [int(0.6 * n), n - int(0.6 * n)], name=f"large_pop_{label}"
        )
        elapsed = []
        ok = True
        result = None
        for rep in range(reps):
            started = time.perf_counter()
            result = simulate(
                ThreeStateMajority(),
                config,
                seed=1000 + rep,
                scheduler=run_scheduler,
                backend=backend,
                sampler=sampler_arg,
                max_parallel_time=300.0,
                check_every_parallel_time=1.0,
            )
            elapsed.append(time.perf_counter() - started)
            ok &= result.succeeded
        seconds = sum(elapsed) / len(elapsed)
        rows.append(
            [
                n,
                policy.name,
                seconds,
                result.parallel_time,
                result.output_opinion,
                "yes" if ok else "no",
            ]
        )
        checks[f"correct[n={label}]"] = ok
        report_stats[f"seconds[n={label}]"] = seconds
    # "Seconds, not minutes" — generous bound so slow CI hosts still pass.
    checks["n=1e10_under_120s"] = report_stats["seconds[n=1e10]"] < 120.0
    return ExperimentReport(
        experiment="EB3",
        title=f"batched count mode at n = 10^8 .. 10^10 (sampler={policy.name})",
        headers=["n", "sampler", "seconds", "parallel time", "output", "ok"],
        rows=rows,
        checks=checks,
        stats=report_stats,
        notes=(
            "Count-native configs build in O(k); every batch draw routes "
            "through the sampler policy, so nothing in the run allocates "
            "O(n) memory.  numpy's 10^9 sampler limit no longer applies."
        ),
    )


@register("EB4", "Tournament count mode: SimpleAlgorithm at n = 10^5 .. 10^10")
def eb4_tournament_counts(
    scale: str,
    backend: Optional[str] = None,
    sampler: Optional[str] = None,
    scheduler: Optional[str] = None,
) -> ExperimentReport:
    """The phase-quotiented count model at population scale.

    SimpleAlgorithm (k = 2, bias 0.6/0.4) on count-native
    :class:`CountConfig` populations through the batched count backend —
    the regime the quotient construction (:mod:`repro.core.quotient`)
    unlocks, since the agent-array path would need O(n) memory per run.
    Two kinds of legs:

    * *convergence* legs run to plurality consensus and must be correct
      (n = 10^5, 10^6 at quick scale; 10^9 added at full scale, whose
      margin draws route through the splitting sampler);
    * *budget* legs run a fixed parallel-time slice at a size where full
      convergence would be minutes (n = 10^9 with the ``"splitting"``
      sampler forced — every draw on the custom color-splitting path —
      and n = 10^10 at full scale), recording throughput
      (batches/second) and the materialized quotient-state count for the
      perf trajectory.

    ``sampler`` overrides the per-leg policies; ``backend`` must resolve
    to a count-space backend (anything else raises BackendUnsupported,
    which ``experiments.run`` reports as a skip).
    """
    backend = backend or "counts"
    if backend != "counts":
        raise BackendUnsupported(
            f"EB4 measures the count backend; backend {backend!r} has no "
            f"count-space tournament path"
        )
    run_scheduler = schedulers.resolve(scheduler or MatchingScheduler(0.5))
    # (n, sampler, max_parallel_time or None for run-to-convergence)
    legs = [
        (10**5, "auto", None),
        (10**6, "auto", None),
        (10**9, "splitting", 25.0),
    ]
    if scale == "full":
        legs.append((10**9, "auto", None))
        legs.append((10**10, "auto", 25.0))
    rows = []
    checks = {}
    report_stats = {}
    for n, policy_name, budget in legs:
        policy = sampling.resolve(sampler or policy_name)
        label = f"1e{len(str(n)) - 1}"
        mode = "converge" if budget is None else f"budget({budget:g}pt)"
        tag = f"n={label},{policy.name},{mode}"
        config = CountConfig.from_counts(
            [int(0.6 * n), n - int(0.6 * n)], name=f"eb4_{label}"
        )
        out: list = []
        started = time.perf_counter()
        result = simulate(
            SimpleAlgorithm(),
            config,
            seed=7,
            scheduler=run_scheduler,
            backend=backend,
            sampler=policy,
            max_parallel_time=budget if budget is not None else 3.0e4,
            check_every_parallel_time=10.0,
            state_out=out,
        )
        seconds = time.perf_counter() - started
        batches = result.interactions / max(n // 2, 1)
        states = result.extras.get("states_materialized", 0.0)
        rows.append(
            [
                n,
                policy.name,
                mode,
                seconds,
                result.parallel_time,
                int(states),
                result.output_opinion,
                "yes" if (result.succeeded or budget is not None) else "no",
            ]
        )
        if budget is None:
            checks[f"correct[{tag}]"] = result.succeeded
        else:
            # A budget leg "passes" when it executes its full slice with
            # the population conserved and no protocol failure.
            (state,) = out
            conserved = int(state.counts.sum()) == n
            checks[f"ran[{tag}]"] = (
                result.failure == "timeout" and conserved
            )
        report_stats[f"seconds[{tag}]"] = seconds
        report_stats[f"batches_per_second[{tag}]"] = batches / max(
            seconds, 1e-9
        )
    return ExperimentReport(
        experiment="EB4",
        title="SimpleAlgorithm on the count backend (phase-quotient model)",
        headers=[
            "n",
            "sampler",
            "mode",
            "seconds",
            "parallel time",
            "|states|",
            "output",
            "ok",
        ],
        rows=rows,
        checks=checks,
        stats=report_stats,
        notes=(
            "Batched count-space tournaments via the lazily materialized "
            "phase-quotient table: per batch two margin draws plus one "
            "level-batched contingency table over the occupied quotient "
            "states, O(|occupied|^2) work independent of n.  The exact-"
            "mode parity evidence lives in tests/test_quotient_counts.py."
        ),
    )


@register("EB5", "Era-quotient count mode: unordered/improved at n = 10^5 .. 10^9")
def eb5_era_quotient_counts(
    scale: str,
    backend: Optional[str] = None,
    sampler: Optional[str] = None,
    scheduler: Optional[str] = None,
) -> ExperimentReport:
    """The era-quotiented count models at population scale.

    The paper's headline algorithms (UnorderedAlgorithm, Appendix B, and
    ImprovedAlgorithm, Section 4; k = 2, bias 0.6/0.4) on count-native
    :class:`CountConfig` populations through the batched count backend —
    the regime the era quotient (:mod:`repro.core.era_quotient`) unlocks:
    leader election, era-tagged selection, tournaments, and termination
    all in count space, at populations the agent-array path cannot touch.
    Mirrors EB4's leg structure:

    * *convergence* legs run to plurality consensus and must be correct
      (both variants at n = 10^5 at quick scale; the unordered variant at
      n = 10^6 and n = 10^9 — margin draws beyond numpy's multivariate-
      hypergeometric cap, routed through the splitting sampler by
      ``"auto"`` — at full scale);
    * *budget* legs run a fixed parallel-time slice (n = 10^9 for both
      variants, every draw beyond the numpy cap), recording throughput
      and the materialized quotient-state count for the perf trajectory.

    ``sampler`` overrides the per-leg policies; ``backend`` must resolve
    to a count-space backend (anything else raises BackendUnsupported,
    which ``experiments.run`` reports as a skip).
    """
    backend = backend or "counts"
    if backend != "counts":
        raise BackendUnsupported(
            f"EB5 measures the count backend; backend {backend!r} has no "
            f"count-space tournament path"
        )
    run_scheduler = schedulers.resolve(scheduler or MatchingScheduler(0.5))
    # (algorithm, n, sampler, max_parallel_time or None for convergence)
    legs = [
        (UnorderedAlgorithm, 10**5, "auto", None),
        (ImprovedAlgorithm, 10**5, "auto", None),
        (UnorderedAlgorithm, 10**9, "auto", 15.0),
        (ImprovedAlgorithm, 10**9, "auto", 15.0),
    ]
    if scale == "full":
        legs.append((UnorderedAlgorithm, 10**6, "auto", None))
        legs.append((UnorderedAlgorithm, 10**9, "auto", None))
    rows = []
    checks = {}
    report_stats = {}
    for factory, n, policy_name, budget in legs:
        policy = sampling.resolve(sampler or policy_name)
        protocol = factory()
        short = protocol.name.split("_")[0]
        label = f"1e{len(str(n)) - 1}"
        mode = "converge" if budget is None else f"budget({budget:g}pt)"
        tag = f"{short},n={label},{policy.name},{mode}"
        config = CountConfig.from_counts(
            [int(0.6 * n), n - int(0.6 * n)], name=f"eb5_{short}_{label}"
        )
        out: list = []
        started = time.perf_counter()
        result = simulate(
            protocol,
            config,
            seed=7,
            scheduler=run_scheduler,
            backend=backend,
            sampler=policy,
            max_parallel_time=budget if budget is not None else 1.0e5,
            check_every_parallel_time=10.0,
            state_out=out,
        )
        seconds = time.perf_counter() - started
        batches = result.interactions / max(n // 2, 1)
        states = result.extras.get("states_materialized", 0.0)
        rows.append(
            [
                short,
                n,
                policy.name,
                mode,
                seconds,
                result.parallel_time,
                int(states),
                result.output_opinion,
                "yes" if (result.succeeded or budget is not None) else "no",
            ]
        )
        if budget is None:
            checks[f"correct[{tag}]"] = result.succeeded
        else:
            # A budget leg "passes" when it executes its full slice with
            # the population conserved and no protocol failure.
            (state,) = out
            conserved = int(state.counts.sum()) == n
            checks[f"ran[{tag}]"] = result.failure == "timeout" and conserved
        report_stats[f"seconds[{tag}]"] = seconds
        report_stats[f"batches_per_second[{tag}]"] = batches / max(
            seconds, 1e-9
        )
    return ExperimentReport(
        experiment="EB5",
        title="Unordered/Improved on the count backend (era-quotient models)",
        headers=[
            "algorithm",
            "n",
            "sampler",
            "mode",
            "seconds",
            "parallel time",
            "|states|",
            "output",
            "ok",
        ],
        rows=rows,
        checks=checks,
        stats=report_stats,
        notes=(
            "Batched count-space runs of the paper's headline algorithms "
            "via the lazily materialized era-quotient tables: pre-"
            "tournament phases absolute, tournament windows mod 4, era "
            "tags as holder-relative ages.  The exact-mode parity "
            "evidence lives in tests/test_era_quotient.py."
        ),
    )


#: Run-noise tolerance for EB6's dominance checks: the adaptive auto
#: policy must land within this factor of the best rival policy's wall
#: time in every (scheduler × scale) cell it shares with one.
EB6_DOMINANCE_NOISE = 1.5


@register("EB6", "Scheduler × sampler grid: adaptive-dispatch dominance")
def eb6_scheduler_sampler_grid(
    scale: str,
    backend: Optional[str] = None,
    sampler: Optional[str] = None,
    scheduler: Optional[str] = None,
) -> ExperimentReport:
    """The (scheduler × scale) grid, now swept across sampler policies.

    Every leg runs once per sampler policy in its grid — ``auto`` first,
    rivals after — and the ``auto_dominates[...]`` checks assert the
    adaptive policy's wall time is within :data:`EB6_DOMINANCE_NOISE` of
    the *best* rival in that cell:

    * **birthday legs** — the exact sequential law natively in count
      space (:class:`~repro.engine.scheduler.BirthdayScheduler`): the
      three-state majority runs to convergence at n = 10⁶ (batches of
      Θ(√n) interactions at O(|occupied states|²) each) and the
      era-quotiented unordered variant runs a fixed exact-semantics
      slice at the same size, under every in-range policy;
    * **forced-large-n legs** — the n = 10⁹ matching-scheduler budget
      slices where the contingency pool is out of numpy's range for the
      ``numpy`` policy (recorded as ``unsupported``) and the adaptive
      policy splits each table: the few largest rows level-batched,
      the leftover pool on numpy's C generator (the per-row mix is
      visible in the ``sampler.dispatch.*`` counters of a
      telemetry-enabled run);
    * at **full scale**, the headline: UnorderedAlgorithm k = 2 at
      n = 10⁹ to *full convergence* with a ≤ 600 s shape check, plus
      the improved variant's budget slice.

    ``scheduler`` / ``sampler`` force one scheduler or policy across all
    legs (a forced sampler collapses each grid to that policy and skips
    the dominance checks); ``backend`` must resolve to a count-space
    backend (anything else raises BackendUnsupported, which
    ``experiments.run`` reports as a skip).
    """
    backend = backend or "counts"
    if backend != "counts":
        raise BackendUnsupported(
            f"EB6 measures the count backend; backend {backend!r} has no "
            f"count-space scheduler grid"
        )
    # (protocol, n, scheduler, max_parallel_time or None, sampler grid)
    legs = [
        (ThreeStateMajority, 10**6, "birthday", None,
         ("auto", "numpy", "rejection")),
        (UnorderedAlgorithm, 10**6, "birthday", 2.0,
         ("auto", "numpy", "rejection")),
        (UnorderedAlgorithm, 10**9, MatchingScheduler(0.5), 15.0,
         ("auto", "rejection", "splitting", "numpy")),
        (SimpleAlgorithm, 10**9, MatchingScheduler(0.5), 25.0,
         ("auto", "rejection")),
    ]
    if scale == "full":
        legs.append(
            (UnorderedAlgorithm, 10**9, MatchingScheduler(0.5), None,
             ("auto", "rejection"))
        )
        legs.append(
            (ImprovedAlgorithm, 10**9, MatchingScheduler(0.5), 15.0,
             ("auto", "rejection"))
        )
    rows = []
    checks = {}
    report_stats = {}
    for factory, n, leg_scheduler, budget, grid in legs:
        run_scheduler = schedulers.resolve(scheduler or leg_scheduler)
        protocol = factory()
        short = protocol.name.split("_")[0]
        label = f"1e{len(str(n)) - 1}"
        mode = "converge" if budget is None else f"budget({budget:g}pt)"
        group = f"{short},n={label},{run_scheduler.name},{mode}"
        cell_seconds: dict = {}
        for policy_name in (grid if sampler is None else (sampler,)):
            policy = sampling.resolve(policy_name)
            tag = (
                f"{short},n={label},{run_scheduler.name},{policy.name},{mode}"
            )
            config = CountConfig.from_counts(
                [int(0.6 * n), n - int(0.6 * n)], name=f"eb6_{short}_{label}"
            )
            out: list = []
            started = time.perf_counter()
            try:
                result = simulate(
                    protocol,
                    config,
                    seed=7,
                    scheduler=run_scheduler,
                    backend=backend,
                    sampler=policy,
                    max_parallel_time=budget if budget is not None else 1.0e5,
                    check_every_parallel_time=1.0 if n <= 10**6 else 10.0,
                    state_out=out,
                )
            except SamplerUnsupported:
                # The policy's population range excludes this cell (the
                # numpy policy beyond 10^9 pools); it cannot compete and
                # is excluded from the dominance minimum.
                rows.append(
                    [short, n, run_scheduler.name, policy.name, mode,
                     float("nan"), float("nan"), 0, None, "unsupported"]
                )
                continue
            seconds = time.perf_counter() - started
            cell_seconds[policy.name] = seconds
            states = result.extras.get("states_materialized", 0.0)
            rows.append(
                [
                    short,
                    n,
                    run_scheduler.name,
                    policy.name,
                    mode,
                    seconds,
                    result.parallel_time,
                    int(states),
                    result.output_opinion,
                    "yes" if (result.succeeded or budget is not None) else "no",
                ]
            )
            if budget is None:
                checks[f"correct[{tag}]"] = result.succeeded
            else:
                # A budget leg "passes" when it executes its full slice
                # with the population conserved and no protocol failure.
                (state,) = out
                conserved = int(state.counts.sum()) == n
                checks[f"ran[{tag}]"] = (
                    result.failure == "timeout" and conserved
                )
            report_stats[f"seconds[{tag}]"] = seconds
            report_stats[f"interactions_per_second[{tag}]"] = (
                result.interactions / max(seconds, 1e-9)
            )
            if budget is None and n >= 10**9 and policy.name == "auto":
                # The headline acceptance: minutes, not hours, at n=10^9.
                checks[f"under_600s[{tag}]"] = seconds <= 600.0
        rivals = {
            name: s for name, s in cell_seconds.items() if name != "auto"
        }
        if "auto" in cell_seconds and rivals:
            best = min(rivals.values())
            report_stats[f"auto_vs_best[{group}]"] = (
                cell_seconds["auto"] / max(best, 1e-9)
            )
            checks[f"auto_dominates[{group}]"] = (
                cell_seconds["auto"] <= EB6_DOMINANCE_NOISE * best
            )
    return ExperimentReport(
        experiment="EB6",
        title="scheduler × sampler grid on the count backend",
        headers=[
            "algorithm",
            "n",
            "scheduler",
            "sampler",
            "mode",
            "seconds",
            "parallel time",
            "|states|",
            "output",
            "ok",
        ],
        rows=rows,
        checks=checks,
        stats=report_stats,
        notes=(
            "Birthday legs: exact sequential semantics as count-space "
            "batches (size ~ the disjoint-prefix law, prefix-terminating "
            "pair carried exactly).  Forced-large-n legs: contingency "
            "pools beyond numpy's 10^9 bound, adaptively split between "
            "the level-batched construction and numpy's C generator.  "
            "auto_dominates[...] asserts the adaptive policy matches the "
            "best rival per cell within run noise "
            f"(x{EB6_DOMINANCE_NOISE:g})."
        ),
    )


def _eb7_config(index: int, *, n: int) -> CountConfig:
    """EB7's fixed experimental point (module-level: pool jobs pickle it)."""
    return CountConfig.from_counts(
        [int(0.6 * n), n - int(0.6 * n)], name=f"eb7_{n}"
    )


@register("EB7", "Ensemble throughput: stacked replicate fleets vs serial runs")
def eb7_ensemble_throughput(
    scale: str,
    backend: Optional[str] = None,
    sampler: Optional[str] = None,
    ensemble: Optional[int] = None,
) -> ExperimentReport:
    """Replicas/second of the stacked ensemble engine vs its serial twin.

    One experimental point (three-state majority, 60/40 split, matching
    batches, the adaptive sampler), three execution strategies over the
    same seeds:

    * **serial** — :func:`replicate`: one full count-backend run per
      replica, the baseline every fleet sweep pays today;
    * **ensemble** — ``replicate(mode="ensemble")``: every replica in
      one lockstep ``(R, states)`` stack, per-batch dispatch overhead
      shared across the whole fleet;
    * **parallel** — :func:`replicate_parallel` with ``ensemble_size``:
      the two-level form (process pool × ensemble stack).  Recorded for
      the stats trail only — no shape check, since CI machines with one
      core cannot demonstrate pool speedups.

    The headline check at full scale (n = 10⁶, R = 64) is
    ``ensemble_speedup_ge_3``: stacked throughput at least 3× the serial
    replica throughput on a single core.  Convergence-law equivalence of
    the two modes is asserted distributionally in
    ``tests/test_ensemble.py`` (law-level, not bit-level — see
    docs/ENSEMBLE.md); here each leg just has to converge correctly.

    ``ensemble`` overrides the fleet size R; ``sampler`` forces a
    policy; ``backend`` must resolve to the count backend.
    """
    from ..analysis.parallel import replicate_parallel

    backend = backend or "counts"
    if backend != "counts":
        raise BackendUnsupported(
            f"EB7 measures the count backend's ensemble mode; backend "
            f"{backend!r} has no stacked execution path"
        )
    n, replicas = (10**6, 64) if scale == "full" else (20_000, 16)
    if ensemble is not None:
        replicas = int(ensemble)
    policy = sampler or "auto"
    kwargs = dict(
        replications=replicas,
        base_seed=11,
        scheduler="matching",
        sampler=policy,
        max_parallel_time=200.0,
        check_every_parallel_time=1.0,
    )
    config_factory = partial(_eb7_config, n=n)

    legs = []
    started = time.perf_counter()
    results = replicate(
        ThreeStateMajority, config_factory, backend=backend, **kwargs
    )
    legs.append(("serial", time.perf_counter() - started, results))
    started = time.perf_counter()
    results = replicate(
        ThreeStateMajority, config_factory, backend=backend,
        mode="ensemble", **kwargs
    )
    legs.append(("ensemble", time.perf_counter() - started, results))
    started = time.perf_counter()
    results = replicate_parallel(
        ThreeStateMajority, config_factory, backend=backend, workers=2,
        ensemble_size=max(replicas // 2, 1), **kwargs
    )
    legs.append(("parallel", time.perf_counter() - started, results))

    rows = []
    checks = {}
    report_stats = {}
    throughput = {}
    for leg, seconds, leg_results in legs:
        rate = len(leg_results) / max(seconds, 1e-9)
        throughput[leg] = rate
        ok = sum(1 for r in leg_results if r.succeeded)
        rows.append(
            [leg, n, len(leg_results), seconds, rate,
             sum(r.converged for r in leg_results), ok]
        )
        report_stats[f"replicas_per_second[{leg}]"] = rate
        report_stats[f"seconds[{leg}]"] = seconds
        if leg != "parallel":
            checks[f"all_correct[{leg}]"] = ok == len(leg_results)
    speedup = throughput["ensemble"] / max(throughput["serial"], 1e-9)
    report_stats["ensemble_speedup"] = speedup
    if scale == "full":
        checks["ensemble_speedup_ge_3"] = speedup >= 3.0
    else:
        # Quick sizing keeps CI honest without demanding the full-scale
        # margin: at n = 2·10⁴ the stacked loop's savings are smaller
        # because per-replica rng calls are a larger share of each batch.
        checks["ensemble_speedup_ge"] = speedup >= 1.3
    return ExperimentReport(
        experiment="EB7",
        title=f"ensemble vs serial replicate at n={n}, R={replicas}",
        headers=[
            "mode", "n", "replicas", "seconds", "replicas/s",
            "converged", "correct",
        ],
        rows=rows,
        checks=checks,
        stats=report_stats,
        notes=(
            "serial = replicate(); ensemble = replicate(mode='ensemble') "
            "(one vectorized (R, states) stack); parallel = "
            "replicate_parallel(ensemble_size=R/2) (process pool × "
            "stack, stats-only on single-core CI).  Same seeds per leg; "
            "equivalence of the laws is asserted in "
            "tests/test_ensemble.py."
        ),
    )


@register("EA1", "Ablation: synchronization cost vs oracle tournaments")
def ea1_oracle_ablation(scale: str) -> ExperimentReport:
    """Compare SimpleAlgorithm with the oracle-synchronized baseline."""
    n = 256 if scale == "quick" else 512
    k = 4
    reps = 3 if scale == "quick" else 6
    results = replicate(
        SimpleAlgorithm,
        lambda s: workloads.bias_one(n, k, rng=5000 + s),
        replications=reps,
        base_seed=29,
    )
    summary = stats.time_summary(results)
    oracle_times = []
    oracle_ok = 0
    for s in range(reps):
        res = oracle_tournament(workloads.bias_one(n, k, rng=5000 + s), seed=s)
        oracle_times.append(res.parallel_time)
        oracle_ok += bool(res.correct)
    oracle_mean = sum(oracle_times) / len(oracle_times)
    overhead = summary.mean / max(oracle_mean, 1e-9)
    rows = [
        ["simple_algorithm", stats.success_rate(results), summary.mean],
        ["oracle_tournaments", oracle_ok / reps, oracle_mean],
    ]
    return ExperimentReport(
        experiment="EA1",
        title=f"synchronization overhead at n={n}, k={k}",
        headers=["system", "success", "parallel time"],
        rows=rows,
        stats={"overhead_factor": overhead},
        checks={
            "oracle_correct": oracle_ok == reps,
            "oracle_faster": oracle_mean < summary.mean,
        },
        notes=(
            "The oracle baseline removes initialization, the phase clock and "
            "role overhead; the overhead factor is the price of distributed "
            "synchronization."
        ),
    )
