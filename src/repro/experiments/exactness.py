"""Exactness and pruning experiments E8, E9, E15 — the paper's headline."""

from __future__ import annotations

import numpy as np

from .. import workloads
from ..analysis import stats
from ..analysis.sweep import replicate
from ..baselines.usd import UndecidedStateDynamics
from ..core.improved import ImprovedAlgorithm
from ..core.simple import SimpleAlgorithm
from ..core.unordered import UnorderedAlgorithm
from ..engine.rng import make_rng
from ..engine.scheduler import SequentialScheduler
from .base import ExperimentReport, register


@register("E8", "Pruning: Lemmas 9 + 10 (insignificant opinions vanish)")
def e8_pruning(scale: str) -> ExperimentReport:
    n = 512 if scale == "quick" else 1024
    k = 16
    reps = 3 if scale == "quick" else 6
    rows = []
    checks = {}
    for wl_name, factory in [
        (
            "one_large",
            lambda s: workloads.one_large_many_small(
                n, k, plurality_fraction=0.55, rng=8000 + s
            ),
        ),
        (
            "two_block",
            lambda s: workloads.two_block(n, k, big_fraction=0.8, rng=8100 + s),
        ),
    ]:
        survivors_list, plurality_kept, second_kept = [], True, True
        for r in range(reps):
            config = factory(r)
            algo = ImprovedAlgorithm()
            rng = make_rng(811 + r)
            state = algo.init_state(config, rng)
            scheduler = SequentialScheduler()
            budget = int(algo.params.default_max_time(n, k) * n)
            done = 0
            for u, v in scheduler.batches(n, rng):
                algo.interact(state, u, v, rng)
                done += int(u.size)
                if done % n < u.size and bool((state.phase >= 0).all()):
                    break
                if done >= budget:
                    break
            survivors = algo.surviving_opinions(state)
            survivors_list.append(survivors.size)
            counts = config.counts()
            plurality = config.plurality_opinion
            tokens_by_op = np.bincount(
                state.opinion, weights=state.tokens, minlength=k + 1
            )
            plurality_kept &= tokens_by_op[plurality] == counts[plurality - 1]
            if wl_name == "two_block":
                second = int(np.argsort(counts)[-2]) + 1
                second_kept &= second in survivors
        config = factory(0)
        c_s = ImprovedAlgorithm().params.significance_threshold()
        significant = config.significant_opinions(c_s).size
        rows.append(
            [
                wl_name,
                config.x_max,
                significant,
                float(np.mean(survivors_list)),
                max(survivors_list),
            ]
        )
        checks[f"plurality_tokens_kept[{wl_name}]"] = plurality_kept
        checks[f"few_survivors[{wl_name}]"] = max(survivors_list) <= max(
            2 * significant, 4
        )
        if wl_name == "two_block":
            checks["runner_up_survives"] = second_kept
    return ExperimentReport(
        experiment="E8",
        title=f"pruning phase at n={n}, k={k}",
        headers=["workload", "x_max", "significant", "survivors (mean)", "max"],
        rows=rows,
        checks=checks,
        notes=(
            "Lemma 10: when the first agent reaches phase 0, the plurality "
            "still owns all its tokens, insignificant opinions own none, and "
            "at most O(n/x_max) opinions survive."
        ),
    )


@register("E9", "Exactness at bias 1: the paper's protocols vs USD")
def e9_exactness(scale: str) -> ExperimentReport:
    n = 256 if scale == "quick" else 512
    k = 4
    reps = 8 if scale == "quick" else 20
    rows = []
    checks = {}
    rates = {}
    for name, factory in [
        ("simple", SimpleAlgorithm),
        ("unordered", UnorderedAlgorithm),
        ("improved", ImprovedAlgorithm),
        ("usd_baseline", UndecidedStateDynamics),
    ]:
        results = replicate(
            factory,
            lambda s: workloads.bias_one(n, k, rng=9000 + s),
            replications=reps,
            base_seed=911,
            max_parallel_time=(
                60.0 * np.log2(n)
                if name == "usd_baseline"
                else None
            ),
        )
        rate = stats.success_rate(results)
        rates[name] = rate
        summary = stats.time_summary(results, successful_only=True) if any(
            r.succeeded for r in results
        ) else None
        rows.append(
            [
                name,
                rate,
                summary.mean if summary else float("nan"),
                str(stats.failure_breakdown(results) or "-"),
            ]
        )
    for name in ("simple", "unordered", "improved"):
        checks[f"exact[{name}]"] = rates[name] >= 0.75
    checks["usd_fails_at_bias1"] = rates["usd_baseline"] <= 0.7
    return ExperimentReport(
        experiment="E9",
        title=f"correctness at bias 1 (n={n}, k={k})",
        headers=["protocol", "success", "time", "failures"],
        rows=rows,
        checks=checks,
        notes=(
            "The exact protocols identify the plurality even at bias 1; the "
            "approximate USD baseline picks an essentially random large "
            "opinion (the paper's motivation for exactness)."
        ),
    )


@register("E15", "Failure probability shrinks with n (the w.h.p. headline)")
def e15_failure_rate(scale: str) -> ExperimentReport:
    ns = [64, 128, 256] if scale == "quick" else [64, 128, 256, 512]
    reps = 20 if scale == "quick" else 60
    k = 3
    rows = []
    rates = []
    for n in ns:
        results = replicate(
            SimpleAlgorithm,
            lambda s, n=n: workloads.bias_one(n, k, rng=9500 + s),
            replications=reps,
            base_seed=151,
        )
        rate = stats.success_rate(results)
        lo, hi = stats.wilson_interval(
            sum(r.succeeded for r in results), len(results)
        )
        rows.append([n, k, reps, rate, f"[{lo:.2f}, {hi:.2f}]"])
        rates.append(rate)
    checks = {
        "large_n_reliable": rates[-1] >= 0.9,
        "no_degradation_with_n": rates[-1] >= rates[0] - 0.1,
    }
    return ExperimentReport(
        experiment="E15",
        title="success rate vs n at bias 1 (SimpleAlgorithm)",
        headers=["n", "k", "runs", "success", "wilson 95%"],
        rows=rows,
        checks=checks,
        notes=(
            "The protocols trade the Ω(k²) state lower bound for a failure "
            "probability that vanishes as n grows (w.h.p. = 1 − n^{−Ω(1)})."
        ),
    )
