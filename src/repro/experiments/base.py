"""Experiment registry and report type.

Every experiment from DESIGN.md §5 (E1–E15) is a function
``(scale) -> ExperimentReport``; benchmarks under ``benchmarks/`` and the
``repro-experiments`` CLI both call through this registry, so a table in
EXPERIMENTS.md can always be regenerated two ways.

Scales:
    * ``quick`` — minutes-for-the-whole-suite sizing (default in benches);
    * ``full``  — the sizing recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..analysis.sweep import format_table

SCALES = ("quick", "full")


@dataclass
class ExperimentReport:
    """A rendered experiment: one table plus named shape checks."""

    experiment: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence]
    checks: Dict[str, bool] = field(default_factory=dict)
    stats: Dict[str, float] = field(default_factory=dict)
    notes: str = ""

    @property
    def passed(self) -> bool:
        """All shape checks hold."""
        return all(self.checks.values())

    def render(self) -> str:
        lines = [f"== {self.experiment}: {self.title} =="]
        lines.append(format_table(self.headers, self.rows))
        if self.stats:
            stats = ", ".join(f"{k}={v:.3g}" for k, v in self.stats.items())
            lines.append(f"stats: {stats}")
        if self.checks:
            checks = ", ".join(
                f"{name}: {'PASS' if ok else 'FAIL'}"
                for name, ok in self.checks.items()
            )
            lines.append(f"checks: {checks}")
        if self.notes:
            lines.append(self.notes)
        return "\n".join(lines)


ExperimentFn = Callable[[str], ExperimentReport]

_REGISTRY: Dict[str, ExperimentFn] = {}
_TITLES: Dict[str, str] = {}


def register(name: str, title: str):
    """Decorator: add an experiment to the registry."""

    def wrap(fn: ExperimentFn) -> ExperimentFn:
        if name in _REGISTRY:
            raise ValueError(f"duplicate experiment {name}")
        _REGISTRY[name] = fn
        _TITLES[name] = title
        return fn

    return wrap


def get(name: str) -> ExperimentFn:
    """Look up an experiment by id (e.g. "E1")."""
    _ensure_loaded()
    return _REGISTRY[name]


def names() -> List[str]:
    """All registered experiment ids, sorted numerically."""
    _ensure_loaded()
    return sorted(_REGISTRY, key=lambda s: (len(s), s))


def titles() -> Dict[str, str]:
    _ensure_loaded()
    return dict(_TITLES)


def supports_backend(name: str) -> bool:
    """Whether an experiment accepts a ``backend=`` override."""
    return "backend" in inspect.signature(get(name)).parameters


def run(
    name: str, scale: str = "quick", backend: Optional[str] = None
) -> ExperimentReport:
    """Run one experiment at the given scale.

    ``backend`` forwards an execution-backend override to experiments
    whose function accepts a ``backend=`` keyword (e.g. EB2); passing it
    to any other experiment raises ValueError.
    """
    if scale not in SCALES:
        raise ValueError(f"scale must be one of {SCALES}, got {scale!r}")
    fn = get(name)
    if backend is not None:
        if not supports_backend(name):
            raise ValueError(
                f"experiment {name} does not support a backend override"
            )
        return fn(scale, backend=backend)
    return fn(scale)


def _ensure_loaded() -> None:
    # Experiment modules register themselves on import.
    from . import ablations, exactness, scaling, spaces, substrates  # noqa: F401
