"""Experiment registry and report type.

Every experiment from DESIGN.md §5 (E1–E15) is a function
``(scale) -> ExperimentReport``; benchmarks under ``benchmarks/`` and the
``repro-experiments`` CLI both call through this registry, so a table in
EXPERIMENTS.md can always be regenerated two ways.

Scales:
    * ``quick`` — minutes-for-the-whole-suite sizing (default in benches);
    * ``full``  — the sizing recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from .. import telemetry as telemetry_module
from ..analysis.sweep import format_table
from ..engine.errors import BackendUnsupported

SCALES = ("quick", "full")


@dataclass
class ExperimentReport:
    """A rendered experiment: one table plus named shape checks."""

    experiment: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence]
    checks: Dict[str, bool] = field(default_factory=dict)
    stats: Dict[str, float] = field(default_factory=dict)
    notes: str = ""
    #: True when the experiment could not run on the requested
    #: backend/sampler combination (a skip, not a failure).
    skipped: bool = False
    #: Schema-versioned telemetry snapshot (``Telemetry.metrics_block``)
    #: when the run was telemetry-enabled; None otherwise.
    metrics: Optional[Dict[str, Any]] = None
    #: Always-on run metadata (``Telemetry.meta`` sums): count-model
    #: derivation/warm-start accounting and anything else the run
    #: reports without full telemetry being enabled.
    metadata: Dict[str, float] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        """All shape checks hold (vacuously true for skipped runs)."""
        return all(self.checks.values())

    def render(self) -> str:
        if self.skipped:
            return (
                f"== {self.experiment}: {self.title} ==\n"
                f"SKIPPED: {self.notes}"
            )
        lines = [f"== {self.experiment}: {self.title} =="]
        lines.append(format_table(self.headers, self.rows))
        if self.stats:
            stats = ", ".join(f"{k}={v:.3g}" for k, v in self.stats.items())
            lines.append(f"stats: {stats}")
        if self.checks:
            checks = ", ".join(
                f"{name}: {'PASS' if ok else 'FAIL'}"
                for name, ok in self.checks.items()
            )
            lines.append(f"checks: {checks}")
        if self.metadata:
            meta = ", ".join(
                f"{k}={v:.4g}" for k, v in sorted(self.metadata.items())
            )
            lines.append(f"meta: {meta}")
        if self.notes:
            lines.append(self.notes)
        return "\n".join(lines)


ExperimentFn = Callable[[str], ExperimentReport]

_REGISTRY: Dict[str, ExperimentFn] = {}
_TITLES: Dict[str, str] = {}


def register(name: str, title: str):
    """Decorator: add an experiment to the registry."""

    def wrap(fn: ExperimentFn) -> ExperimentFn:
        if name in _REGISTRY:
            raise ValueError(f"duplicate experiment {name}")
        _REGISTRY[name] = fn
        _TITLES[name] = title
        return fn

    return wrap


def get(name: str) -> ExperimentFn:
    """Look up an experiment by id (e.g. "E1")."""
    _ensure_loaded()
    return _REGISTRY[name]


def names() -> List[str]:
    """All registered experiment ids, sorted numerically."""
    _ensure_loaded()
    return sorted(_REGISTRY, key=lambda s: (len(s), s))


def titles() -> Dict[str, str]:
    _ensure_loaded()
    return dict(_TITLES)


def supports_backend(name: str) -> bool:
    """Whether an experiment accepts a ``backend=`` override."""
    return "backend" in inspect.signature(get(name)).parameters


def supports_sampler(name: str) -> bool:
    """Whether an experiment accepts a ``sampler=`` override."""
    return "sampler" in inspect.signature(get(name)).parameters


def supports_scheduler(name: str) -> bool:
    """Whether an experiment accepts a ``scheduler=`` override."""
    return "scheduler" in inspect.signature(get(name)).parameters


def supports_ensemble(name: str) -> bool:
    """Whether an experiment accepts an ``ensemble=`` size override."""
    return "ensemble" in inspect.signature(get(name)).parameters


def run(
    name: str,
    scale: str = "quick",
    backend: Optional[str] = None,
    sampler: Optional[str] = None,
    scheduler: Optional[str] = None,
    ensemble: Optional[int] = None,
    telemetry: "telemetry_module.TelemetryLike" = None,
) -> ExperimentReport:
    """Run one experiment at the given scale.

    ``backend`` / ``sampler`` / ``scheduler`` / ``ensemble`` forward
    execution-backend, sampler-policy, scheduler, and ensemble-size
    overrides to experiments whose function accepts the matching keyword
    (e.g. EB2/EB3/EB6/EB7); passing one to any
    other experiment raises ValueError.  A run the *chosen* combination
    cannot execute (it raised :class:`BackendUnsupported`) comes back as
    a *skipped* report carrying the reason, not a traceback, so sweeps
    over experiments keep going.  Default runs (no overrides) propagate
    the error: an experiment that cannot execute its own default
    configuration is a regression, not a skip.

    ``telemetry`` (instance / True / the ambient registry) is installed
    as the ambient registry for the duration of the run — experiment
    functions never mention telemetry, yet every ``simulate`` /
    ``replicate`` call underneath collects into it — and an enabled
    run's snapshot lands on ``report.metrics``.
    """
    if scale not in SCALES:
        raise ValueError(f"scale must be one of {SCALES}, got {scale!r}")
    fn = get(name)
    kwargs = {}
    if backend is not None:
        if not supports_backend(name):
            raise ValueError(
                f"experiment {name} does not support a backend override"
            )
        kwargs["backend"] = backend
    if sampler is not None:
        if not supports_sampler(name):
            raise ValueError(
                f"experiment {name} does not support a sampler override"
            )
        kwargs["sampler"] = sampler
    if scheduler is not None:
        if not supports_scheduler(name):
            raise ValueError(
                f"experiment {name} does not support a scheduler override"
            )
        kwargs["scheduler"] = scheduler
    if ensemble is not None:
        if not supports_ensemble(name):
            raise ValueError(
                f"experiment {name} does not support an ensemble override"
            )
        kwargs["ensemble"] = ensemble
    tel = telemetry_module.resolve(telemetry)
    if tel is telemetry_module.NULL:
        # The shared NULL singleton must stay write-free, but the
        # always-on meta channel (count-model derivation accounting)
        # should land on the report even without --telemetry: swap in a
        # fresh disabled registry — falsy like NULL, so every
        # ``if tel:`` guard underneath behaves identically.
        tel = telemetry_module.Telemetry(enabled=False)
    try:
        with telemetry_module.use(tel):
            report = fn(scale, **kwargs)
    except BackendUnsupported as exc:
        if not kwargs:
            raise
        return ExperimentReport(
            experiment=name,
            title=_TITLES[name],
            headers=[],
            rows=[],
            notes=str(exc),
            skipped=True,
        )
    if tel.enabled:
        report.metrics = tel.metrics_block()
    if tel.meta:
        report.metadata = dict(sorted(tel.meta.items()))
    return report


def _ensure_loaded() -> None:
    # Experiment modules register themselves on import.
    from . import ablations, exactness, scaling, spaces, substrates  # noqa: F401
