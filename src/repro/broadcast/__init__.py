"""Epidemic (rumor spreading) primitives."""

from .epidemic import (
    OneWayEpidemic,
    max_broadcast,
    one_way_infect,
    two_way_infect,
    value_broadcast,
)

__all__ = [
    "OneWayEpidemic",
    "max_broadcast",
    "one_way_infect",
    "two_way_infect",
    "value_broadcast",
]
