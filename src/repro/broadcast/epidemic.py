"""One-way epidemic broadcast (rumor spreading).

The paper uses one-way epidemics [5] pervasively: spreading ``phase = 0`` at
the end of initialization, disseminating the winner bit, announcing the
challenger opinion, and max-propagation of phase numbers.  This module
provides the reusable vectorized step functions and a standalone protocol
whose broadcast time (Θ(log n) parallel time w.h.p.) is measured in tests
and benchmarks.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..engine.backends.model import CountModel, identity_tables
from ..engine.population import PopulationConfig
from ..engine.protocol import Protocol


def one_way_infect(informed: np.ndarray, u: np.ndarray, v: np.ndarray) -> None:
    """Responder ``v`` becomes informed when initiator ``u`` is informed."""
    informed[v] |= informed[u]


def two_way_infect(informed: np.ndarray, u: np.ndarray, v: np.ndarray) -> None:
    """Both agents become informed if either one is (symmetric epidemic)."""
    either = informed[u] | informed[v]
    informed[u] = either
    informed[v] = either


def max_broadcast(values: np.ndarray, u: np.ndarray, v: np.ndarray) -> None:
    """Both agents adopt the pairwise maximum (max-epidemic)."""
    peak = np.maximum(values[u], values[v])
    values[u] = peak
    values[v] = peak


def tagged_value_broadcast(
    values: np.ndarray,
    tags: np.ndarray,
    fw: np.ndarray,
    bw: np.ndarray,
) -> None:
    """One-way freshness-tagged value epidemic: newer tags win.

    The receiving side ``fw`` adopts ``(value, tag)`` from ``bw`` exactly
    when the sender's tag is strictly larger.  This is the paper's
    era-tagged announcement/candidate epidemic (Appendix B): tags carry
    the absolute phase of the era a value belongs to, so a stale value
    can never displace a fresher one, while equal tags never overwrite
    (the first value of an era wins locally — ties only occur between
    observations of the same era, any of which is valid).

    Pass the doubled ``fw``/``bw`` orientation arrays to evaluate both
    directions of each pair in one call; all reads are snapshots taken
    before either direction writes, so a symmetric swap is resolved on
    the pre-interaction state like every other rule.
    """
    tags_fw = tags[fw]
    tags_bw = tags[bw]
    values_bw = values[bw]
    newer = tags_bw > tags_fw
    if newer.any():
        takers = fw[newer]
        values[takers] = values_bw[newer]
        tags[takers] = tags_bw[newer]


def value_broadcast(
    values: np.ndarray,
    u: np.ndarray,
    v: np.ndarray,
    empty: int = 0,
) -> None:
    """Spread any non-``empty`` value to agents still holding ``empty``.

    Used for opinion announcements: once an agent carries a value it never
    changes it, so with a single source value the spread is a plain epidemic.
    """
    vu = values[u]
    vv = values[v]
    take_u = (vu == empty) & (vv != empty)
    take_v = (vv == empty) & (vu != empty)
    values[u[take_u]] = vv[take_u]
    values[v[take_v]] = vu[take_v]


class OneWayEpidemic(Protocol):
    """Standalone broadcast protocol: one informed source, spread to all.

    Converges when every agent is informed.  The source is agent 0 (the
    model is anonymous, so the choice is irrelevant).  With ``two_way=True``
    both interaction directions infect, halving the completion-time
    constant; the paper's broadcasts are one-way, which is the default.
    """

    def __init__(self, two_way: bool = False):
        self._two_way = two_way
        self.name = "two_way_epidemic" if two_way else "one_way_epidemic"

    def init_state(self, config: PopulationConfig, rng: np.random.Generator) -> Any:
        informed = np.zeros(config.n, dtype=bool)
        informed[0] = True
        return informed

    def interact(
        self,
        state: np.ndarray,
        u: np.ndarray,
        v: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        if self._two_way:
            two_way_infect(state, u, v)
        else:
            one_way_infect(state, u, v)

    def has_converged(self, state: np.ndarray) -> bool:
        return bool(state.all())

    def output(self, state: np.ndarray) -> np.ndarray:
        return state.astype(np.int64)

    def progress(self, state: np.ndarray):
        return {"informed": float(state.sum())}

    def count_model(self, config: PopulationConfig) -> CountModel:
        """Export the two-state infection table for the count backend."""
        delta_u, delta_v = identity_tables(2)
        delta_v[1, 0] = 1
        if self._two_way:
            delta_u[0, 1] = 1

        def encode(cfg: PopulationConfig) -> np.ndarray:
            ids = np.zeros(cfg.n, dtype=np.int64)
            ids[0] = 1
            return ids

        def encode_counts(cfg: PopulationConfig) -> np.ndarray:
            # One informed source agent, everyone else susceptible.
            return np.array([cfg.n - 1, 1], dtype=np.int64)

        return CountModel(
            labels=["susceptible", "informed"],
            delta_u=delta_u,
            delta_v=delta_v,
            encode=encode,
            encode_counts=encode_counts,
            output_map=[0, 1],
            progress=lambda counts: {"informed": float(counts[1])},
            project=lambda state: state.astype(np.int64),
        )
