"""Tests for the telemetry layer (repro.telemetry) and its threading.

Three levels: the instruments and registry in isolation, the engine
integration (simulate / replicate / experiments.run), and the campaign
integration (per-cell metrics beside checkpoints, merged rollup block,
heartbeat ages in ``campaign status``).  The campaign tests double as
the guard for PR 6's core promise: telemetry on or off, the rollup
``results`` block stays bit-identical.
"""

import json
import pickle

import pytest

from repro import telemetry
from repro.analysis.parallel import replicate_parallel
from repro.analysis.sweep import replicate
from repro.campaign import (
    EVENTS_FILENAME,
    CheckpointStore,
    build_rollup,
    campaign_status,
    deterministic_block,
    run_campaign,
)
from repro.cli import main as cli_main
from repro.engine.population import PopulationConfig
from repro.engine.simulation import simulate
from repro.experiments import base as experiments_base
from repro.majority import ThreeStateMajority
from tests.test_campaign import tiny_grid


def run_tiny(telemetry_arg, n=400, seed=3, **kwargs):
    config = PopulationConfig.from_counts(
        [int(n * 0.7), n - int(n * 0.7)], shuffle=False
    )
    return simulate(
        ThreeStateMajority(),
        config,
        seed=seed,
        backend=kwargs.pop("backend", "counts"),
        scheduler=kwargs.pop("scheduler", "birthday"),
        max_parallel_time=500.0,
        telemetry=telemetry_arg,
        **kwargs,
    )


# ----------------------------------------------------------------------
# Instruments
# ----------------------------------------------------------------------
class TestInstruments:
    def test_counter(self):
        counter = telemetry.Counter()
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_gauge_keeps_last_value(self):
        gauge = telemetry.Gauge()
        gauge.set(3.0)
        gauge.set(1.5)
        assert gauge.value == 1.5

    def test_histogram_log2_buckets(self):
        hist = telemetry.Histogram()
        for value in (0.25, 1, 3, 8, 9):
            hist.observe(value)
        assert hist.count == 5
        assert hist.total == pytest.approx(21.25)
        assert hist.min == 0.25
        assert hist.max == 9
        # <1 → bucket 0; 1 → 0; 3 → 1; 8, 9 → 3.
        assert hist.buckets == {0: 2, 1: 1, 3: 2}

    def test_timer_accumulates(self):
        timer = telemetry.Timer()
        with timer:
            pass
        with timer:
            pass
        assert timer.count == 2
        assert timer.seconds >= 0.0

    def test_null_singletons_are_falsy_noops(self):
        assert not telemetry.NULL_COUNTER
        assert not telemetry.NULL_GAUGE
        assert not telemetry.NULL_HISTOGRAM
        assert not telemetry.NULL_TIMER
        telemetry.NULL_COUNTER.inc(3)
        telemetry.NULL_GAUGE.set(1.0)
        telemetry.NULL_HISTOGRAM.observe(2.0)
        with telemetry.NULL_TIMER:
            pass
        # Real instruments are truthy so `if handle:` guards work.
        assert telemetry.Counter() and telemetry.Gauge()
        assert telemetry.Histogram() and telemetry.Timer()


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_disabled_hands_out_null_singletons(self):
        tel = telemetry.Telemetry(enabled=False)
        assert tel.counter("x") is telemetry.NULL_COUNTER
        assert tel.gauge("x") is telemetry.NULL_GAUGE
        assert tel.histogram("x") is telemetry.NULL_HISTOGRAM
        assert tel.timer("x") is telemetry.NULL_TIMER
        tel.count("x", 5)
        assert tel.metrics_block()["counters"] == {}

    def test_enabled_caches_handles(self):
        tel = telemetry.Telemetry()
        assert tel.counter("a") is tel.counter("a")
        assert tel.histogram("h") is tel.histogram("h")
        tel.count("a", 2)
        tel.count("a")
        assert tel.metrics_block()["counters"] == {"a": 3}

    def test_bool_tracks_channels(self):
        assert not telemetry.Telemetry(enabled=False)
        assert telemetry.Telemetry(enabled=True)
        assert not telemetry.NULL

    def test_metrics_block_shape(self, tmp_path):
        tel = telemetry.Telemetry()
        tel.count("c", 2)
        tel.gauge("g").set(4.5)
        tel.histogram("h").observe(6)
        with tel.timer("t"):
            pass
        block = tel.metrics_block()
        assert block["schema_version"] == telemetry.METRICS_SCHEMA_VERSION
        assert block["counters"] == {"c": 2}
        assert block["gauges"] == {"g": 4.5}
        hist = block["histograms"]["h"]
        assert hist["count"] == 1 and hist["min"] == 6.0 and hist["max"] == 6.0
        assert hist["buckets"] == {"2": 1}
        assert block["timers"]["t"]["count"] == 1
        json.dumps(block)  # must be JSON-safe as-is

    def test_empty_histogram_snapshot_has_null_bounds(self):
        tel = telemetry.Telemetry()
        tel.histogram("h")
        hist = tel.metrics_block()["histograms"]["h"]
        assert hist["count"] == 0
        assert hist["min"] is None and hist["max"] is None

    def test_merge_block_semantics(self):
        a = telemetry.Telemetry()
        a.count("c", 1)
        a.gauge("g").set(1.0)
        a.histogram("h").observe(2)
        b = telemetry.Telemetry()
        b.count("c", 4)
        b.gauge("g").set(9.0)
        b.histogram("h").observe(64)
        with b.timer("t"):
            pass
        a.merge_block(b.metrics_block())
        block = a.metrics_block()
        assert block["counters"] == {"c": 5}  # counters add
        assert block["gauges"] == {"g": 9.0}  # gauges: last writer wins
        hist = block["histograms"]["h"]
        assert hist["count"] == 2
        assert hist["min"] == 2.0 and hist["max"] == 64.0
        assert hist["buckets"] == {"1": 1, "6": 1}
        assert block["timers"]["t"]["count"] == 1

    def test_merge_skips_unknown_schema_and_none(self):
        tel = telemetry.Telemetry()
        tel.merge_block(None)
        tel.merge_block({"schema_version": 999, "counters": {"c": 7}})
        assert tel.metrics_block()["counters"] == {}

    def test_merge_into_disabled_is_noop(self):
        source = telemetry.Telemetry()
        source.count("c")
        disabled = telemetry.Telemetry(enabled=False)
        disabled.merge_block(source.metrics_block())
        assert disabled.metrics_block()["counters"] == {}

    def test_merge_blocks_helper(self):
        tel = telemetry.Telemetry()
        tel.count("c", 2)
        merged = telemetry.merge_blocks(
            [None, tel.metrics_block(), tel.metrics_block()]
        )
        assert merged["counters"] == {"c": 4}
        assert telemetry.merge_blocks([None, "junk"]) is None
        assert telemetry.merge_blocks([]) is None

    def test_render_metrics(self):
        tel = telemetry.Telemetry()
        tel.count("engine.batches", 3)
        tel.gauge("engine.occupied_states").set(2)
        tel.histogram("engine.batch_size").observe(10)
        text = telemetry.render_metrics(tel.metrics_block())
        assert "engine.batches=3" in text
        assert "engine.occupied_states=2" in text
        assert "engine.batch_size: count=1" in text

    def test_catalog_lists_core_metrics(self):
        names = {info.name for info in telemetry.CATALOG}
        assert {
            "engine.interactions",
            "engine.batch_size",
            "count_model.derivations",
            "sampler.draws.numpy",
            "scheduler.prefix_length",
        } <= names
        assert "heartbeat" in telemetry.EVENT_KINDS


# ----------------------------------------------------------------------
# Events
# ----------------------------------------------------------------------
class TestEvents:
    def test_emit_read_roundtrip(self, tmp_path):
        log = telemetry.EventLog(tmp_path / "events.jsonl")
        log.emit("run_start", protocol="p", n=10)
        log.emit("run_end", converged=True)
        log.close()
        events = telemetry.read_events(tmp_path / "events.jsonl")
        assert [e["event"] for e in events] == ["run_start", "run_end"]
        assert events[0]["protocol"] == "p" and events[0]["n"] == 10
        assert all("ts" in e and "pid" in e for e in events)

    def test_kinds_filter_and_torn_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = telemetry.EventLog(path)
        log.emit("cell_start", cell="abc")
        log.emit("checkpoint", cell="abc")
        log.close()
        with open(path, "a") as fh:
            fh.write('{"event": "cell_end", "trunc')  # SIGKILL mid-append
        events = telemetry.read_events(path, kinds={"cell_start"})
        assert [e["event"] for e in events] == ["cell_start"]

    def test_read_missing_file(self, tmp_path):
        assert telemetry.read_events(tmp_path / "absent.jsonl") == []

    def test_context_stamped_on_events(self, tmp_path):
        log = telemetry.EventLog(tmp_path / "events.jsonl")
        tel = telemetry.Telemetry(
            enabled=False, events=log, context={"cell": "h123"}
        )
        assert tel  # events channel makes a disabled registry truthy
        tel.event("cell_start", label="x")
        log.close()
        (event,) = telemetry.read_events(log.path)
        assert event["cell"] == "h123" and event["label"] == "x"

    def test_event_without_sink_is_noop(self):
        telemetry.Telemetry().event("run_start")  # must not raise

    def test_pickle_carries_path_not_handle(self, tmp_path):
        log = telemetry.EventLog(tmp_path / "events.jsonl")
        log.emit("run_start")
        clone = pickle.loads(pickle.dumps(log))
        assert clone.path == log.path
        clone.emit("run_end")
        log.close()
        clone.close()
        assert len(telemetry.read_events(log.path)) == 2


# ----------------------------------------------------------------------
# resolve / ambient registry
# ----------------------------------------------------------------------
class TestResolve:
    def test_resolve_values(self):
        tel = telemetry.Telemetry()
        assert telemetry.resolve(tel) is tel
        assert telemetry.resolve(False) is telemetry.NULL
        assert telemetry.resolve(True).enabled
        assert telemetry.resolve(None) is telemetry.NULL  # ambient default
        with pytest.raises(TypeError, match="telemetry"):
            telemetry.resolve("yes")

    def test_use_installs_and_restores(self):
        tel = telemetry.Telemetry()
        assert telemetry.current() is telemetry.NULL
        with telemetry.use(tel) as installed:
            assert installed is tel
            assert telemetry.current() is tel
            assert telemetry.resolve(None) is tel
        assert telemetry.current() is telemetry.NULL

    def test_use_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with telemetry.use(telemetry.Telemetry()):
                raise RuntimeError("boom")
        assert telemetry.current() is telemetry.NULL


# ----------------------------------------------------------------------
# Engine threading
# ----------------------------------------------------------------------
class TestSimulateTelemetry:
    def test_counts_run_collects_engine_metrics(self):
        tel = telemetry.Telemetry()
        result = run_tiny(tel)
        assert result.converged
        block = tel.metrics_block()
        counters = block["counters"]
        assert counters["engine.interactions"] == result.interactions
        assert counters["engine.batches"] > 0
        assert sum(
            v for k, v in counters.items() if k.startswith("sampler.draws.")
        ) > 0
        assert block["histograms"]["engine.batch_size"]["count"] > 0
        assert block["histograms"]["scheduler.prefix_length"]["count"] > 0
        assert block["gauges"]["engine.occupied_states"] >= 1

    def test_agent_run_counts_interactions_too(self):
        tel = telemetry.Telemetry()
        result = run_tiny(tel, backend="agents", scheduler="sequential")
        assert tel.metrics_block()["counters"]["engine.interactions"] == (
            result.interactions
        )

    def test_results_identical_with_and_without_telemetry(self):
        plain = run_tiny(False)
        metered = run_tiny(telemetry.Telemetry())
        assert plain.interactions == metered.interactions
        assert plain.parallel_time == metered.parallel_time
        assert plain.output_opinion == metered.output_opinion

    def test_run_events_and_heartbeats(self, tmp_path):
        log = telemetry.EventLog(tmp_path / "events.jsonl")
        # heartbeat_seconds=0 → one heartbeat per convergence check.
        tel = telemetry.Telemetry(events=log, heartbeat_seconds=0.0)
        run_tiny(tel)
        log.close()
        events = telemetry.read_events(log.path)
        kinds = [e["event"] for e in events]
        assert kinds[0] == "run_start" and kinds[-1] == "run_end"
        assert "heartbeat" in kinds
        start = events[0]
        assert start["backend"] == "counts" and start["scheduler"] == "birthday"
        assert events[-1]["converged"] is True

    def test_disabled_run_emits_no_metrics_and_no_events(self):
        tel = telemetry.Telemetry(enabled=False)
        run_tiny(tel)
        assert tel.metrics_block()["counters"] == {}


class TestReplicateTelemetry:
    def test_replicate_accumulates_across_replications(self):
        single = telemetry.Telemetry()
        run_tiny(single, seed=0)
        triple = telemetry.Telemetry()
        replicate(
            ThreeStateMajority,
            lambda i: PopulationConfig.from_counts([280, 120], shuffle=False),
            replications=3,
            backend="counts",
            scheduler="birthday",
            max_parallel_time=500.0,
            telemetry=triple,
        )
        assert (
            triple.metrics_block()["counters"]["engine.batches"]
            > single.metrics_block()["counters"]["engine.batches"]
        )

    def test_parallel_snapshots_merge_like_serial(self):
        kwargs = dict(
            replications=2,
            backend="counts",
            scheduler="birthday",
            max_parallel_time=500.0,
        )
        config_factory = _tiny_config
        serial_tel = telemetry.Telemetry()
        serial = replicate(
            ThreeStateMajority, config_factory, telemetry=serial_tel, **kwargs
        )
        parallel_tel = telemetry.Telemetry()
        parallel = replicate_parallel(
            ThreeStateMajority,
            config_factory,
            workers=1,
            telemetry=parallel_tel,
            **kwargs,
        )
        assert [r.interactions for r in serial] == [
            r.interactions for r in parallel
        ]
        assert (
            serial_tel.metrics_block()["counters"]
            == parallel_tel.metrics_block()["counters"]
        )

    def test_parallel_without_telemetry_unchanged(self):
        results = replicate_parallel(
            ThreeStateMajority,
            _tiny_config,
            replications=2,
            workers=1,
            backend="counts",
            scheduler="birthday",
            max_parallel_time=500.0,
        )
        assert all(r.converged for r in results)


def _tiny_config(index):
    return PopulationConfig.from_counts([280, 120], shuffle=False)


# ----------------------------------------------------------------------
# experiments.run
# ----------------------------------------------------------------------
def _tiny_experiment(scale):
    result = run_tiny(None)  # None → the ambient registry from run()
    return experiments_base.ExperimentReport(
        experiment="TTEL",
        title="telemetry test",
        headers=["interactions"],
        rows=[[result.interactions]],
        checks={"converged": result.converged},
    )


@pytest.fixture
def tiny_experiment(monkeypatch):
    monkeypatch.setitem(experiments_base._REGISTRY, "TTEL", _tiny_experiment)
    monkeypatch.setitem(experiments_base._TITLES, "TTEL", "telemetry test")
    return "TTEL"


class TestExperimentTelemetry:
    def test_run_attaches_metrics_block(self, tiny_experiment):
        report = experiments_base.run(tiny_experiment, telemetry=True)
        assert report.passed
        assert report.metrics is not None
        assert report.metrics["counters"]["engine.interactions"] > 0

    def test_run_without_telemetry_has_no_block(self, tiny_experiment):
        report = experiments_base.run(tiny_experiment)
        assert report.metrics is None

    def test_ambient_registry_restored_after_run(self, tiny_experiment):
        experiments_base.run(tiny_experiment, telemetry=True)
        assert telemetry.current() is telemetry.NULL


# ----------------------------------------------------------------------
# Campaign integration
# ----------------------------------------------------------------------
class TestCampaignTelemetry:
    def test_checkpoints_carry_metrics_beside_result(self, tmp_path):
        grid = tiny_grid(ns=(48,), seeds=(0,))
        status = run_campaign(grid, tmp_path, workers=1, telemetry=True)
        assert status.done and not status.failed
        store = CheckpointStore(tmp_path)
        for h in grid.hashes():
            payload = store.read_cell(h)
            assert payload["metrics"]["counters"]["engine.interactions"] > 0
            assert "metrics" not in payload["result"]

    def test_telemetry_env_restored(self, tmp_path):
        import os

        from repro.campaign.runner import EVENTS_ENV, TELEMETRY_ENV

        grid = tiny_grid(ns=(48,), seeds=(0,))
        run_campaign(grid, tmp_path, workers=1, telemetry=True)
        assert TELEMETRY_ENV not in os.environ
        assert EVENTS_ENV not in os.environ

    def test_lifecycle_events_streamed(self, tmp_path):
        grid = tiny_grid(ns=(48,), seeds=(0, 1))
        run_campaign(grid, tmp_path, workers=1, telemetry=True)
        events = telemetry.read_events(tmp_path / EVENTS_FILENAME)
        kinds = [e["event"] for e in events]
        assert kinds[0] == "campaign_start" and kinds[-1] == "campaign_end"
        assert kinds.count("cell_start") == 2
        assert kinds.count("cell_end") == 2
        assert kinds.count("checkpoint") == 2

    def test_rollup_metrics_merged_outside_results(self, tmp_path):
        grid = tiny_grid(ns=(48,), seeds=(0, 1))
        run_campaign(grid, tmp_path, workers=1, telemetry=True)
        rollup = build_rollup(grid, tmp_path)
        assert rollup["passed"]
        assert rollup["metrics"]["counters"]["engine.interactions"] > 0
        assert "metrics" not in rollup["results"]

    def test_results_bit_identical_with_and_without_telemetry(self, tmp_path):
        grid = tiny_grid()
        run_campaign(grid, tmp_path / "plain", workers=1)
        run_campaign(grid, tmp_path / "metered", workers=1, telemetry=True)
        plain = build_rollup(grid, tmp_path / "plain")
        metered = build_rollup(grid, tmp_path / "metered")
        assert deterministic_block(plain) == deterministic_block(metered)
        assert plain["metrics"] is None
        assert metered["metrics"] is not None

    def test_status_reports_heartbeats_for_unfinished_cells(self, tmp_path):
        grid = tiny_grid(ns=(48, 64), seeds=(0,))
        run_campaign(grid, tmp_path, workers=1, max_cells=1, telemetry=True)
        status = campaign_status(grid, tmp_path)
        assert status.completed == 1
        # Completed cells never show as in-flight, even though their
        # events are in the stream.
        assert status.heartbeats == {}
        # A cell_start without a checkpoint (a worker killed mid-cell)
        # surfaces with the age of its last event.
        unfinished = [
            h for h in grid.hashes()
            if CheckpointStore(tmp_path).read_cell(h) is None
        ]
        log = telemetry.EventLog(tmp_path / EVENTS_FILENAME)
        log.emit("cell_start", cell=unfinished[0])
        log.close()
        status = campaign_status(grid, tmp_path)
        assert list(status.heartbeats) == [unfinished[0]]
        assert 0.0 <= status.heartbeats[unfinished[0]] < 60.0
        assert "in flight" in status.describe()

    def test_status_without_events_file(self, tmp_path):
        grid = tiny_grid(ns=(48,), seeds=(0,))
        run_campaign(grid, tmp_path, workers=1)  # no telemetry
        status = campaign_status(grid, tmp_path)
        assert status.heartbeats == {}


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_telemetry_listing(self, capsys):
        assert cli_main(["telemetry"]) == 0
        out = capsys.readouterr().out
        assert "engine.interactions" in out
        assert "sampler.draws.rejection" in out
        assert "heartbeat" in out

    def test_run_with_telemetry_flags(self, tiny_experiment, capsys, tmp_path):
        events_path = tmp_path / "events.jsonl"
        code = cli_main(
            ["run", "TTEL", "--telemetry", "--events-out", str(events_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "metrics:" in out
        assert "engine.interactions" in out
        kinds = {e["event"] for e in telemetry.read_events(events_path)}
        assert {"run_start", "run_end"} <= kinds

    def test_run_without_telemetry_prints_no_metrics(
        self, tiny_experiment, capsys
    ):
        assert cli_main(["run", "TTEL"]) == 0
        assert "metrics:" not in capsys.readouterr().out
