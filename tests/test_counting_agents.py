"""Appendix C's counting-agent mode (k arbitrarily close to n)."""

import numpy as np

from repro.core import COLLECTOR, SimpleAlgorithm, SimpleParams
from repro.core.common import COUNTING
from repro.engine import MatchingScheduler, make_rng, simulate
from repro.engine.scheduler import SequentialScheduler
from repro.workloads import exact


def arr(*xs):
    return np.array(xs, dtype=np.int64)


def counting_params(**overrides):
    defaults = dict(counting_agents=True, init_decrement=0.25, token_cap=20)
    defaults.update(overrides)
    return SimpleParams(**defaults)


class TestCountingRules:
    def test_single_token_duel_creates_counting_agent(self):
        algo = SimpleAlgorithm(counting_params())
        state = algo.init_state(exact([2, 2], rng=0, shuffle=False), make_rng(0))
        same = np.flatnonzero(state.opinion == 1)[:2]
        algo.interact(state, arr(same[0]), arr(same[1]), make_rng(1))
        assert state.role[same[0]] == COUNTING
        assert state.tokens[same[1]] == 2
        assert state.opinion[same[0]] == 0

    def test_multi_token_merge_releases_normally(self):
        algo = SimpleAlgorithm(counting_params())
        state = algo.init_state(exact([8, 2], rng=0, shuffle=False), make_rng(0))
        same = np.flatnonzero(state.opinion == 1)[:2]
        state.tokens[same[0]] = 2
        algo.interact(state, arr(same[0]), arr(same[1]), make_rng(2))
        assert state.role[same[0]] != COUNTING
        assert state.role[same[0]] != COLLECTOR

    def test_met_same_tracked(self):
        algo = SimpleAlgorithm(counting_params(token_cap=2))
        state = algo.init_state(exact([3, 3], rng=0, shuffle=False), make_rng(0))
        ones = np.flatnonzero(state.opinion == 1)
        twos = np.flatnonzero(state.opinion == 2)
        algo.interact(state, arr(ones[0]), arr(twos[0]), make_rng(3))
        assert not state.met_same[ones[0]]
        # Same-opinion contact that cannot merge (cap) still sets the flag.
        state.tokens[ones[1]] = 2
        state.tokens[ones[2]] = 2
        algo.interact(state, arr(ones[1]), arr(ones[2]), make_rng(3))
        assert state.met_same[ones[1]] and state.met_same[ones[2]]

    def test_counting_agent_triggers_phase_zero(self):
        algo = SimpleAlgorithm(counting_params())
        state = algo.init_state(exact([2, 2], rng=0, shuffle=False), make_rng(0))
        state.role[0] = COUNTING
        state.opinion[0] = 0
        state.tokens[0] = 0
        state.count[0] = state.init_threshold - 1
        # Force the 1/n tick by trying until the coin lands (bounded loop).
        for attempt in range(4000):
            algo.interact(state, arr(0), arr(1), make_rng(100 + attempt))
            if state.phase[0] == 0:
                break
        assert state.phase[0] == 0
        assert state.role[0] != COUNTING  # converted on trigger

    def test_phase_zero_converts_counting_and_lonely_collectors(self):
        algo = SimpleAlgorithm(counting_params())
        state = algo.init_state(exact([2, 2, 1], rng=0, shuffle=False), make_rng(0))
        informed = 0
        state.phase[informed] = 0
        counting = 1
        state.role[counting] = COUNTING
        state.opinion[counting] = 0
        state.tokens[counting] = 0
        algo.interact(state, arr(counting), arr(informed), make_rng(5))
        assert state.role[counting] != COUNTING
        assert state.phase[counting] == 0
        lonely = int(np.flatnonzero(state.opinion == 3)[0])
        assert not state.met_same[lonely]
        algo.interact(state, arr(lonely), arr(informed), make_rng(6))
        assert state.role[lonely] != COLLECTOR
        assert state.tokens[lonely] == 0

    def test_met_collector_survives_phase_zero(self):
        algo = SimpleAlgorithm(counting_params())
        state = algo.init_state(exact([2, 2], rng=0, shuffle=False), make_rng(0))
        informed, survivor = 0, 1
        state.phase[informed] = 0
        state.met_same[survivor] = True
        algo.interact(state, arr(survivor), arr(informed), make_rng(7))
        assert state.role[survivor] == COLLECTOR
        assert state.tokens[survivor] == 1


class TestEndToEnd:
    def test_init_completes_with_mostly_singleton_opinions(self):
        # k = 0.75n: three quarters of the opinions have support 1; the
        # plurality has support 4.  Without counting agents the clock
        # deadline is unreachable (nothing to merge for most agents).
        n = 120
        counts = [4, 2, 2] + [1] * (n - 8)
        config = exact(counts, rng=1)
        algo = SimpleAlgorithm(counting_params())
        rng = make_rng(11)
        state = algo.init_state(config, rng)
        done = 0
        finished = False
        for u, v in SequentialScheduler().batches(n, rng):
            algo.interact(state, u, v, rng)
            done += int(u.size)
            if done % n < u.size and (state.phase >= 0).any():
                finished = True
                break
            if done > 4000 * n:
                break
        assert finished, "counting agents should force the deadline"

    def test_full_run_small_k_unaffected(self):
        config = exact([20, 19, 18], rng=2)
        algo = SimpleAlgorithm(counting_params())
        result = simulate(
            algo,
            config,
            seed=12,
            scheduler=MatchingScheduler(0.25),
            max_parallel_time=algo.params.default_max_time(57, 3),
        )
        assert result.succeeded, result.describe()
