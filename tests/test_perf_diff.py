"""Tests for the CI perf-trajectory diff (benchmarks/perf_diff.py)."""

import importlib.util
import json
import pathlib

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "perf_diff",
    pathlib.Path(__file__).parent.parent / "benchmarks" / "perf_diff.py",
)
perf_diff = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(perf_diff)


def write_report(directory, name, elapsed, scale="quick"):
    directory.mkdir(parents=True, exist_ok=True)
    (directory / f"{name}.json").write_text(
        json.dumps(
            {
                "experiment": name,
                "scale": scale,
                "elapsed_seconds": elapsed,
                "checks": {},
                "stats": {},
                "passed": True,
            }
        )
    )


class TestDiffReports:
    def test_flags_regressions_beyond_threshold(self):
        previous = {
            "E1": {"experiment": "E1", "scale": "quick", "elapsed_seconds": 2.0},
            "E2": {"experiment": "E2", "scale": "quick", "elapsed_seconds": 2.0},
        }
        current = {
            "E1": {"experiment": "E1", "scale": "quick", "elapsed_seconds": 4.0},
            "E2": {"experiment": "E2", "scale": "quick", "elapsed_seconds": 2.5},
        }
        regressions = perf_diff.diff_reports(previous, current, threshold=1.5)
        assert [r["experiment"] for r in regressions] == ["E1"]
        assert regressions[0]["ratio"] == pytest.approx(2.0)

    def test_ignores_scale_mismatch_and_missing_experiments(self):
        previous = {
            "E1": {"experiment": "E1", "scale": "full", "elapsed_seconds": 1.0},
            "E3": {"experiment": "E3", "scale": "quick", "elapsed_seconds": 1.0},
        }
        current = {
            "E1": {"experiment": "E1", "scale": "quick", "elapsed_seconds": 9.0},
            "E4": {"experiment": "E4", "scale": "quick", "elapsed_seconds": 9.0},
        }
        assert perf_diff.diff_reports(previous, current) == []

    def test_ignores_sub_noise_baselines(self):
        previous = {
            "E1": {"experiment": "E1", "scale": "quick", "elapsed_seconds": 0.01}
        }
        current = {
            "E1": {"experiment": "E1", "scale": "quick", "elapsed_seconds": 0.09}
        }
        assert perf_diff.diff_reports(previous, current) == []

    def test_threshold_validation(self):
        with pytest.raises(ValueError, match="threshold"):
            perf_diff.diff_reports({}, {}, threshold=1.0)


def campaign_report(cells, total=None, scale="quick"):
    return {
        "experiment": "CAMPAIGN_smoke",
        "kind": "campaign",
        "scale": scale,
        "elapsed_seconds": (
            total if total is not None
            else sum(c["elapsed_seconds"] for c in cells.values())
        ),
        "cells": cells,
    }


class TestCampaignDiff:
    def test_flags_per_cell_regressions_keyed_by_hash(self):
        previous = {
            "CAMPAIGN_smoke": campaign_report(
                {
                    "aaaa": {"elapsed_seconds": 2.0},
                    "bbbb": {"elapsed_seconds": 2.0},
                },
                total=100.0,
            )
        }
        current = {
            "CAMPAIGN_smoke": campaign_report(
                {
                    "aaaa": {"elapsed_seconds": 8.0},
                    "bbbb": {"elapsed_seconds": 2.1},
                },
                total=100.0,
            )
        }
        regressions = perf_diff.diff_reports(previous, current, threshold=1.5)
        assert [r["experiment"] for r in regressions] == ["CAMPAIGN_smoke[aaaa]"]
        assert regressions[0]["ratio"] == pytest.approx(4.0)

    def test_total_and_cells_both_compared(self):
        previous = {
            "CAMPAIGN_smoke": campaign_report(
                {"aaaa": {"elapsed_seconds": 2.0}}, total=10.0
            )
        }
        current = {
            "CAMPAIGN_smoke": campaign_report(
                {"aaaa": {"elapsed_seconds": 8.0}}, total=40.0
            )
        }
        regressions = perf_diff.diff_reports(previous, current, threshold=1.5)
        assert [r["experiment"] for r in regressions] == [
            "CAMPAIGN_smoke",
            "CAMPAIGN_smoke[aaaa]",
        ]

    def test_cells_unique_to_one_run_are_skipped(self):
        previous = {
            "CAMPAIGN_smoke": campaign_report(
                {"aaaa": {"elapsed_seconds": 2.0}}, total=2.0
            )
        }
        current = {
            "CAMPAIGN_smoke": campaign_report(
                {"cccc": {"elapsed_seconds": 9.0}}, total=2.0
            )
        }
        assert perf_diff.diff_reports(previous, current) == []

    def test_sub_noise_cells_and_malformed_entries_are_skipped(self):
        previous = {
            "CAMPAIGN_smoke": campaign_report(
                {
                    "aaaa": {"elapsed_seconds": 0.01},
                    "bbbb": "not-a-dict",
                    "cccc": {"elapsed_seconds": "fast"},
                },
                total=1.0,
            )
        }
        current = {
            "CAMPAIGN_smoke": campaign_report(
                {
                    "aaaa": {"elapsed_seconds": 0.09},
                    "bbbb": {"elapsed_seconds": 9.0},
                    "cccc": {"elapsed_seconds": 9.0},
                },
                total=1.0,
            )
        }
        assert perf_diff.diff_reports(previous, current) == []

    def test_scale_mismatch_skips_cells_too(self):
        previous = {
            "CAMPAIGN_smoke": campaign_report(
                {"aaaa": {"elapsed_seconds": 2.0}}, scale="full"
            )
        }
        current = {
            "CAMPAIGN_smoke": campaign_report(
                {"aaaa": {"elapsed_seconds": 9.0}}, scale="quick"
            )
        }
        assert perf_diff.diff_reports(previous, current) == []


def metrics_report(name, draws, scale="quick", total_seconds=5.0):
    return {
        "experiment": name,
        "scale": scale,
        "elapsed_seconds": total_seconds,
        "metrics": {
            "schema_version": 1,
            "counters": {
                f"sampler.draws.{method}": count
                for method, count in draws.items()
            },
        },
    }


class TestDrawMix:
    def test_mix_extracted_from_metrics_block(self):
        report = metrics_report("EB6", {"numpy": 750, "rejection": 250})
        assert perf_diff.draw_mix(report) == {"numpy": 0.75, "rejection": 0.25}

    def test_mix_none_without_metrics_or_enough_draws(self):
        assert perf_diff.draw_mix({"experiment": "E1"}) is None
        assert perf_diff.draw_mix({"metrics": {"counters": {}}}) is None
        tiny = metrics_report("EB6", {"numpy": 5})
        assert perf_diff.draw_mix(tiny) is None  # below MIN_MIX_DRAWS

    def test_flags_share_shift_beyond_threshold(self):
        previous = {"EB6": metrics_report("EB6", {"numpy": 900, "rejection": 100})}
        current = {"EB6": metrics_report("EB6", {"numpy": 500, "rejection": 500})}
        shifts = perf_diff.diff_draw_mix(previous, current, mix_threshold=0.1)
        assert {(s["method"], s["experiment"]) for s in shifts} == {
            ("numpy", "EB6"),
            ("rejection", "EB6"),
        }
        by_method = {s["method"]: s for s in shifts}
        assert by_method["numpy"]["before_share"] == pytest.approx(0.9)
        assert by_method["numpy"]["after_share"] == pytest.approx(0.5)

    def test_method_appearing_from_zero_counts(self):
        previous = {"EB6": metrics_report("EB6", {"numpy": 1000})}
        current = {
            "EB6": metrics_report("EB6", {"numpy": 800, "splitting": 200})
        }
        shifts = perf_diff.diff_draw_mix(previous, current, mix_threshold=0.1)
        assert {s["method"] for s in shifts} == {"numpy", "splitting"}

    def test_small_shift_and_scale_mismatch_ignored(self):
        previous = {
            "EB6": metrics_report("EB6", {"numpy": 950, "rejection": 50}),
            "EB3": metrics_report(
                "EB3", {"numpy": 1000}, scale="full"
            ),
        }
        current = {
            "EB6": metrics_report("EB6", {"numpy": 920, "rejection": 80}),
            "EB3": metrics_report("EB3", {"rejection": 1000}, scale="quick"),
        }
        assert perf_diff.diff_draw_mix(previous, current, mix_threshold=0.1) == []

    def test_mix_threshold_validation(self):
        with pytest.raises(ValueError, match="mix threshold"):
            perf_diff.diff_draw_mix({}, {}, mix_threshold=0.0)

    def test_main_emits_notice_annotation(self, tmp_path, capsys):
        for directory, draws in (
            ("prev", {"numpy": 1000}),
            ("curr", {"rejection": 1000}),
        ):
            (tmp_path / directory).mkdir()
            (tmp_path / directory / "EB6.json").write_text(
                json.dumps(metrics_report("EB6", draws))
            )
        code = perf_diff.main([str(tmp_path / "prev"), str(tmp_path / "curr")])
        out = capsys.readouterr().out
        assert code == 0  # mix shifts are advisory, never failures
        assert "::notice title=Draw-mix shift in EB6::" in out

    def test_main_reports_clean_mix(self, tmp_path, capsys):
        write_report(tmp_path / "prev", "EB2", 2.0)
        write_report(tmp_path / "curr", "EB2", 2.0)
        perf_diff.main([str(tmp_path / "prev"), str(tmp_path / "curr")])
        assert "no draw-mix shifts" in capsys.readouterr().out


def dispatch_report(name, draws, dispatch, scale="quick"):
    report = metrics_report(name, draws, scale=scale)
    report["metrics"]["counters"].update(
        {
            f"sampler.dispatch.{target}": count
            for target, count in dispatch.items()
        }
    )
    return report


class TestDispatchMix:
    def test_mix_extracted_with_dispatch_prefix(self):
        report = dispatch_report(
            "EB6", {"numpy": 1000}, {"numpy": 600, "batched": 400}
        )
        mix = perf_diff.draw_mix(report, prefix=perf_diff.DISPATCH_PREFIX)
        assert mix == {"numpy": 0.6, "batched": 0.4}
        # the default draw family ignores the dispatch counters
        assert perf_diff.draw_mix(report) == {"numpy": 1.0}

    def test_dispatch_shift_flagged_with_label(self):
        previous = {
            "EB6": dispatch_report(
                "EB6", {"numpy": 1000}, {"numpy": 900, "batched": 100}
            )
        }
        current = {
            "EB6": dispatch_report(
                "EB6", {"numpy": 1000}, {"numpy": 500, "batched": 500}
            )
        }
        shifts = perf_diff.diff_draw_mix(previous, current, mix_threshold=0.1)
        assert {s["method"] for s in shifts} == {
            "dispatch:numpy",
            "dispatch:batched",
        }

    def test_families_diffed_independently(self):
        # The dispatch family only exists on one side: its shift is
        # skipped, while the draw family still flags its own shift.
        previous = {
            "EB6": metrics_report("EB6", {"numpy": 900, "rejection": 100})
        }
        current = {
            "EB6": dispatch_report(
                "EB6",
                {"numpy": 500, "rejection": 500},
                {"numpy": 600, "batched": 400},
            )
        }
        shifts = perf_diff.diff_draw_mix(previous, current, mix_threshold=0.1)
        assert {s["method"] for s in shifts} == {"numpy", "rejection"}


class TestLoadReports:
    def test_reads_only_valid_reports(self, tmp_path):
        write_report(tmp_path, "E1", 1.5)
        (tmp_path / "broken.json").write_text("{not json")
        (tmp_path / "no_elapsed.json").write_text(json.dumps({"experiment": "X"}))
        reports = perf_diff.load_reports(tmp_path)
        assert set(reports) == {"E1"}
        assert reports["E1"]["elapsed_seconds"] == 1.5

    def test_missing_directory_is_empty(self, tmp_path):
        assert perf_diff.load_reports(tmp_path / "absent") == {}


class TestMain:
    def test_warns_on_regression_but_exits_zero(self, tmp_path, capsys):
        write_report(tmp_path / "prev", "EB2", 2.0)
        write_report(tmp_path / "curr", "EB2", 6.0)
        code = perf_diff.main([str(tmp_path / "prev"), str(tmp_path / "curr")])
        out = capsys.readouterr().out
        assert code == 0
        assert "::warning title=Perf regression in EB2::" in out
        assert "3.00x > 1.50x" in out

    def test_fail_on_regression_flag(self, tmp_path):
        write_report(tmp_path / "prev", "EB2", 2.0)
        write_report(tmp_path / "curr", "EB2", 6.0)
        code = perf_diff.main(
            [
                str(tmp_path / "prev"),
                str(tmp_path / "curr"),
                "--fail-on-regression",
            ]
        )
        assert code == 1

    def test_no_previous_reports_is_a_noop(self, tmp_path, capsys):
        write_report(tmp_path / "curr", "EB2", 6.0)
        code = perf_diff.main([str(tmp_path / "prev"), str(tmp_path / "curr")])
        assert code == 0
        assert "nothing to diff" in capsys.readouterr().out

    def test_clean_run_reports_no_regressions(self, tmp_path, capsys):
        write_report(tmp_path / "prev", "EB2", 2.0)
        write_report(tmp_path / "curr", "EB2", 2.1)
        code = perf_diff.main([str(tmp_path / "prev"), str(tmp_path / "curr")])
        assert code == 0
        assert "no elapsed_seconds regressions" in capsys.readouterr().out


def throughput_report(name="EB7", scale="quick", elapsed=5.0, **legs):
    return {
        "experiment": name,
        "scale": scale,
        "elapsed_seconds": elapsed,
        "checks": {},
        "stats": {f"replicas_per_second[{leg}]": v for leg, v in legs.items()},
        "passed": True,
    }


class TestDiffThroughput:
    def test_flags_drops_beyond_threshold(self):
        previous = {"EB7": throughput_report(ensemble=300.0, serial=60.0)}
        current = {"EB7": throughput_report(ensemble=150.0, serial=58.0)}
        drops = perf_diff.diff_throughput(previous, current, threshold=1.5)
        assert len(drops) == 1
        assert drops[0]["leg"] == "replicas_per_second[ensemble]"
        assert drops[0]["ratio"] == pytest.approx(2.0)

    def test_ignores_gains_scale_mismatch_and_tiny_baselines(self):
        previous = {
            "EB7": throughput_report(ensemble=150.0, crawl=0.5),
            "EB8": throughput_report(name="EB8", scale="quick", ensemble=300.0),
        }
        current = {
            "EB7": throughput_report(ensemble=300.0, crawl=0.1),
            "EB8": throughput_report(name="EB8", scale="full", ensemble=10.0),
        }
        assert perf_diff.diff_throughput(previous, current) == []

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            perf_diff.diff_throughput({}, {}, threshold=1.0)

    def test_annotation_mentions_the_leg_and_rates(self):
        drop = {
            "experiment": "EB7",
            "leg": "replicas_per_second[ensemble]",
            "before_rps": 300.0,
            "after_rps": 150.0,
            "ratio": 2.0,
        }
        text = perf_diff.format_throughput_annotation(drop, 1.5)
        assert "replicas_per_second[ensemble]" in text
        assert "150.0 replicas/s" in text
        assert text.startswith("::notice")
