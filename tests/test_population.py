"""Tests for repro.engine.population."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import ConfigurationError, PopulationConfig


class TestConstruction:
    def test_from_counts_basic(self):
        config = PopulationConfig.from_counts([5, 3, 2], shuffle=False)
        assert config.n == 10
        assert config.k == 3
        assert list(config.counts()) == [5, 3, 2]

    def test_from_counts_shuffles_with_rng(self):
        a = PopulationConfig.from_counts([50, 50], rng=1)
        b = PopulationConfig.from_counts([50, 50], rng=1)
        c = PopulationConfig.from_counts([50, 50], rng=2)
        assert (a.opinions == b.opinions).all()
        assert not (a.opinions == c.opinions).all()

    def test_zero_support_opinion_allowed(self):
        config = PopulationConfig.from_counts([4, 0, 2])
        assert config.k == 3
        assert config.counts()[1] == 0

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            PopulationConfig.from_counts([])

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            PopulationConfig.from_counts([3, -1])

    def test_rejects_all_zero(self):
        with pytest.raises(ConfigurationError):
            PopulationConfig.from_counts([0, 0])

    def test_rejects_out_of_range_opinions(self):
        with pytest.raises(ConfigurationError):
            PopulationConfig(opinions=np.array([1, 5]), k=3)

    def test_rejects_opinion_zero(self):
        with pytest.raises(ConfigurationError):
            PopulationConfig(opinions=np.array([0, 1]), k=2)


class TestDerivedQuantities:
    def test_plurality_and_bias(self):
        config = PopulationConfig.from_counts([7, 4, 4], shuffle=False)
        assert config.plurality_opinion == 1
        assert config.x_max == 7
        assert config.bias == 3
        assert config.has_unique_plurality

    def test_bias_one(self):
        config = PopulationConfig.from_counts([5, 4, 4])
        assert config.bias == 1

    def test_tie_detected(self):
        config = PopulationConfig.from_counts([5, 5, 2])
        assert not config.has_unique_plurality
        assert config.bias == 0

    def test_single_opinion_bias_is_full_support(self):
        config = PopulationConfig.from_counts([9])
        assert config.bias == 9
        assert config.has_unique_plurality

    def test_single_supported_opinion_among_many(self):
        config = PopulationConfig.from_counts([9, 0, 0])
        assert config.bias == 9
        assert config.num_present_opinions == 1

    def test_plurality_not_first_opinion(self):
        config = PopulationConfig.from_counts([2, 9, 3])
        assert config.plurality_opinion == 2

    def test_significant_opinions(self):
        config = PopulationConfig.from_counts([100, 60, 10, 5])
        significant = config.significant_opinions(c_s=4.0)
        assert list(significant) == [1, 2]

    def test_significant_requires_cs_above_one(self):
        config = PopulationConfig.from_counts([4, 2])
        with pytest.raises(ConfigurationError):
            config.significant_opinions(1.0)

    def test_describe_mentions_key_fields(self):
        text = PopulationConfig.from_counts([3, 2], name="demo").describe()
        assert "demo" in text
        assert "n=5" in text


@settings(max_examples=50, deadline=None)
@given(
    counts=st.lists(st.integers(min_value=0, max_value=40), min_size=1, max_size=8)
)
def test_counts_roundtrip(counts):
    if sum(counts) == 0:
        counts[0] = 1
    config = PopulationConfig.from_counts(counts, rng=0)
    assert list(config.counts()) == counts
    assert config.n == sum(counts)
    sorted_desc = sorted(counts, reverse=True)
    expected_bias = (
        sorted_desc[0]
        if len(sorted_desc) == 1 or sorted_desc[1] == 0
        else sorted_desc[0] - sorted_desc[1]
    )
    assert config.bias == expected_bias
