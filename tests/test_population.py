"""Tests for repro.engine.population (per-agent and count-native)."""

import hashlib
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import ConfigurationError, CountConfig, PopulationConfig, is_count_native


class TestConstruction:
    def test_from_counts_basic(self):
        config = PopulationConfig.from_counts([5, 3, 2], shuffle=False)
        assert config.n == 10
        assert config.k == 3
        assert list(config.counts()) == [5, 3, 2]

    def test_from_counts_shuffles_with_rng(self):
        a = PopulationConfig.from_counts([50, 50], rng=1)
        b = PopulationConfig.from_counts([50, 50], rng=1)
        c = PopulationConfig.from_counts([50, 50], rng=2)
        assert (a.opinions == b.opinions).all()
        assert not (a.opinions == c.opinions).all()

    def test_zero_support_opinion_allowed(self):
        config = PopulationConfig.from_counts([4, 0, 2])
        assert config.k == 3
        assert config.counts()[1] == 0

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            PopulationConfig.from_counts([])

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            PopulationConfig.from_counts([3, -1])

    def test_rejects_all_zero(self):
        with pytest.raises(ConfigurationError):
            PopulationConfig.from_counts([0, 0])

    def test_rejects_out_of_range_opinions(self):
        with pytest.raises(ConfigurationError):
            PopulationConfig(opinions=np.array([1, 5]), k=3)

    def test_rejects_opinion_zero(self):
        with pytest.raises(ConfigurationError):
            PopulationConfig(opinions=np.array([0, 1]), k=2)


class TestDerivedQuantities:
    def test_plurality_and_bias(self):
        config = PopulationConfig.from_counts([7, 4, 4], shuffle=False)
        assert config.plurality_opinion == 1
        assert config.x_max == 7
        assert config.bias == 3
        assert config.has_unique_plurality

    def test_bias_one(self):
        config = PopulationConfig.from_counts([5, 4, 4])
        assert config.bias == 1

    def test_tie_detected(self):
        config = PopulationConfig.from_counts([5, 5, 2])
        assert not config.has_unique_plurality
        assert config.bias == 0

    def test_single_opinion_bias_is_full_support(self):
        config = PopulationConfig.from_counts([9])
        assert config.bias == 9
        assert config.has_unique_plurality

    def test_single_supported_opinion_among_many(self):
        config = PopulationConfig.from_counts([9, 0, 0])
        assert config.bias == 9
        assert config.num_present_opinions == 1

    def test_plurality_not_first_opinion(self):
        config = PopulationConfig.from_counts([2, 9, 3])
        assert config.plurality_opinion == 2

    def test_significant_opinions(self):
        config = PopulationConfig.from_counts([100, 60, 10, 5])
        significant = config.significant_opinions(c_s=4.0)
        assert list(significant) == [1, 2]

    def test_significant_requires_cs_above_one(self):
        config = PopulationConfig.from_counts([4, 2])
        with pytest.raises(ConfigurationError):
            config.significant_opinions(1.0)

    def test_describe_mentions_key_fields(self):
        text = PopulationConfig.from_counts([3, 2], name="demo").describe()
        assert "demo" in text
        assert "n=5" in text


class TestFromCountsDeterminism:
    """Same seed → same shuffled opinions, in-process and cross-process.

    The digest is computed at runtime rather than pinned: numpy only
    guarantees stream stability within a numpy version (NEP 19), and the
    property ``replicate_parallel`` needs is in-process == cross-process
    for the *same* environment, which is exactly what is asserted.
    """

    @staticmethod
    def _digest(config: PopulationConfig) -> str:
        return hashlib.sha256(
            config.opinions.astype("<i8").tobytes()
        ).hexdigest()

    def test_repeated_builds_identical(self):
        a = PopulationConfig.from_counts([30, 20, 10], rng=123)
        b = PopulationConfig.from_counts([30, 20, 10], rng=123)
        assert self._digest(a) == self._digest(b)
        assert a == b

    def test_cross_process_digest(self):
        import os

        import repro

        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [src_dir, env.get("PYTHONPATH")])
        )
        script = (
            "import hashlib\n"
            "from repro.engine import PopulationConfig\n"
            "c = PopulationConfig.from_counts([30, 20, 10], rng=123)\n"
            "print(hashlib.sha256(c.opinions.astype('<i8').tobytes())"
            ".hexdigest())\n"
        )
        digest = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            env=env,
        ).stdout.strip()
        here = PopulationConfig.from_counts([30, 20, 10], rng=123)
        assert digest == self._digest(here)

    def test_different_seeds_differ(self):
        a = PopulationConfig.from_counts([30, 20, 10], rng=123)
        b = PopulationConfig.from_counts([30, 20, 10], rng=124)
        assert self._digest(a) != self._digest(b)


class TestCountConfig:
    def test_basic_construction(self):
        config = CountConfig.from_counts([5, 3, 2], name="demo")
        assert config.n == 10
        assert config.k == 3
        assert list(config.counts()) == [5, 3, 2]
        assert is_count_native(config)
        assert not is_count_native(PopulationConfig.from_counts([5, 3, 2]))

    def test_derived_quantities_match_materialized(self):
        counts = [100, 60, 10, 5]
        native = CountConfig.from_counts(counts)
        dense = PopulationConfig.from_counts(counts, rng=0)
        assert native.x_max == dense.x_max
        assert native.bias == dense.bias
        assert native.plurality_opinion == dense.plurality_opinion
        assert native.has_unique_plurality == dense.has_unique_plurality
        assert native.num_present_opinions == dense.num_present_opinions
        assert list(native.significant_opinions(4.0)) == list(
            dense.significant_opinions(4.0)
        )

    def test_validation_mirrors_from_counts(self):
        for bad in ([], [3, -1], [0, 0]):
            with pytest.raises(ConfigurationError):
                CountConfig.from_counts(bad)

    def test_opinions_access_raises_with_guidance(self):
        config = CountConfig.from_counts([4, 2], name="native")
        with pytest.raises(ConfigurationError, match="materialize"):
            config.opinions

    def test_materialize_roundtrip(self):
        native = CountConfig.from_counts([7, 4, 4], name="rt")
        dense = native.materialize(rng=3)
        assert isinstance(dense, PopulationConfig)
        assert dense.name == "rt"
        assert list(dense.counts()) == [7, 4, 4]

    def test_never_materializes_length_n_arrays(self):
        """Acceptance criterion: O(k) memory at n = 10^10.

        Building the config, every derived quantity, and describe() must
        work without ever allocating an array of length n — anything
        O(n) at this size would need ~80 GB and crash outright, but we
        also assert no internal array outgrows k.
        """
        n = 10**10
        config = CountConfig.from_counts([n - 3, 1, 2], name="tenbillion")
        assert config.n == n
        assert config.bias == n - 5
        assert config.plurality_opinion == 1
        assert config.x_max == n - 3
        assert config.describe()
        arrays = [
            value
            for value in vars(config).values()
            if isinstance(value, np.ndarray)
        ]
        assert arrays and all(arr.size <= config.k for arr in arrays)

    def test_counts_returns_defensive_copy(self):
        config = CountConfig.from_counts([5, 5])
        config.counts()[0] = 99
        assert list(config.counts()) == [5, 5]

    def test_does_not_alias_caller_buffer(self):
        buffer = np.array([60, 40], dtype=np.int64)
        config = CountConfig.from_counts(buffer)
        buffer[0] = 0  # caller reuses its buffer after construction
        assert config.n == 100
        assert list(config.counts()) == [60, 40]

    def test_stored_support_is_read_only(self):
        config = CountConfig.from_counts([60, 40])
        with pytest.raises(ValueError, match="read-only"):
            config.support[0] = 0

    def test_value_equality_and_hash(self):
        a = CountConfig.from_counts([60, 40], name="a")
        b = CountConfig.from_counts([60, 40], name="b")
        c = CountConfig.from_counts([60, 41])
        assert a == b and hash(a) == hash(b)  # name excluded, like before
        assert a != c
        assert a != PopulationConfig.from_counts([60, 40])
        assert len({a, b, c}) == 2

    def test_population_config_equality_and_hash(self):
        a = PopulationConfig.from_counts([5, 3], rng=1)
        b = PopulationConfig.from_counts([5, 3], rng=1)
        c = PopulationConfig.from_counts([5, 3], rng=2)
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert len({a, b, c}) == 2


@settings(max_examples=50, deadline=None)
@given(
    counts=st.lists(st.integers(min_value=0, max_value=40), min_size=1, max_size=8)
)
def test_counts_roundtrip(counts):
    if sum(counts) == 0:
        counts[0] = 1
    config = PopulationConfig.from_counts(counts, rng=0)
    assert list(config.counts()) == counts
    assert config.n == sum(counts)
    sorted_desc = sorted(counts, reverse=True)
    expected_bias = (
        sorted_desc[0]
        if len(sorted_desc) == 1 or sorted_desc[1] == 0
        else sorted_desc[0] - sorted_desc[1]
    )
    assert config.bias == expected_bias
