"""Tests for the protocol parameter dataclasses and role helpers."""

import numpy as np
import pytest

from repro.core import (
    COLLECTOR,
    ImprovedParams,
    SimpleParams,
    UnorderedParams,
    role_counts,
    with_params,
)
from repro.engine import ConfigurationError


class TestSimpleParams:
    def test_derived_quantities_scale(self):
        params = SimpleParams()
        assert params.psi(1024) > params.psi(64)
        assert params.init_threshold(1024) > params.init_threshold(64)
        assert params.max_level(1024) == int(np.ceil(np.log2(1024))) + 2

    def test_default_budget_grows_with_k_and_n(self):
        params = SimpleParams()
        assert params.default_max_time(256, 8) > params.default_max_time(256, 2)
        assert params.default_max_time(1024, 4) > params.default_max_time(128, 4)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SimpleParams(clock_gamma=0)
        with pytest.raises(ConfigurationError):
            SimpleParams(init_threshold_factor=-1)
        with pytest.raises(ConfigurationError):
            SimpleParams(token_cap=1)

    def test_frozen(self):
        params = SimpleParams()
        with pytest.raises(Exception):
            params.token_cap = 5  # type: ignore[misc]

    def test_with_params_copies(self):
        params = SimpleParams()
        other = with_params(params, clock_gamma=4.0)
        assert other.clock_gamma == 4.0
        assert params.clock_gamma != 4.0
        assert other.token_cap == params.token_cap


class TestUnorderedParams:
    def test_rounds_and_offset(self):
        params = UnorderedParams()
        rounds = params.rounds(256)
        assert rounds >= 10
        assert params.tournament_phase_offset(256) == rounds + params.selection_phases

    def test_budget_exceeds_simple(self):
        assert UnorderedParams().default_max_time(256, 4) > SimpleParams(
        ).default_max_time(256, 4)


class TestImprovedParams:
    def test_hour_m_scales_with_log_n(self):
        params = ImprovedParams()
        assert params.hour_m(2**16) == 16
        assert params.hour_m(4) >= 2

    def test_significance_threshold(self):
        params = ImprovedParams(phase_floor_c=6)
        assert params.significance_threshold() == 8.0

    def test_inherits_unordered_machinery(self):
        params = ImprovedParams()
        assert params.rounds(256) == UnorderedParams(
            le_factor=params.le_factor, le_slack=params.le_slack
        ).rounds(256)


def test_role_counts():
    roles = np.array([COLLECTOR, COLLECTOR, 1, 2, 3, 3], dtype=np.int8)
    counts = role_counts(roles)
    assert counts == {"collector": 2, "clock": 1, "tracker": 1, "player": 2}
