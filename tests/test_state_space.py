"""Tests for the state-space accounting (Figure 1 reproduction)."""

from repro.analysis.state_space import (
    StateSpaceObserver,
    improved_state_breakdown,
    observed_state_counts,
    simple_state_breakdown,
    unordered_state_breakdown,
)
from repro.core import SimpleAlgorithm
from repro.engine import MatchingScheduler, simulate
from repro.workloads import bias_one


class TestAnalyticBreakdowns:
    def test_simple_structure(self):
        breakdown = simple_state_breakdown(1024, 8)
        for role in ("shared", "clock", "tracker", "collector", "player", "total"):
            assert breakdown[role] > 0
        roles = [breakdown[r] for r in ("clock", "tracker", "collector", "player")]
        assert breakdown["total"] == breakdown["shared"] * max(roles)

    def test_growth_in_k_is_linear(self):
        small = simple_state_breakdown(1024, 8)["total"]
        large = simple_state_breakdown(1024, 16)["total"]
        assert large / small < 2.5  # linear, not quadratic

    def test_growth_in_n_is_logarithmic(self):
        small = simple_state_breakdown(2**10, 4)["clock"]
        large = simple_state_breakdown(2**20, 4)["clock"]
        assert large / small < 2.5

    def test_variants_cost_at_least_simple(self):
        n, k = 4096, 8
        assert (
            unordered_state_breakdown(n, k)["tracker"]
            >= simple_state_breakdown(n, k)["tracker"]
        )
        assert (
            improved_state_breakdown(n, k)["collector"]
            > simple_state_breakdown(n, k)["collector"]
        )


class TestObservedCounts:
    def run_state(self):
        algo = SimpleAlgorithm()
        config = bias_one(96, 3, rng=1)
        out = []
        simulate(
            algo,
            config,
            seed=11,
            scheduler=MatchingScheduler(0.25),
            max_parallel_time=300,
            state_out=out,
        )
        return out[0]

    def test_snapshot_counts_positive_and_bounded(self):
        state = self.run_state()
        counts = observed_state_counts(state)
        breakdown = simple_state_breakdown(96, 3)
        for role, seen in counts.items():
            if seen:
                assert seen <= breakdown[role] * breakdown["shared"]

    def test_observer_accumulates_monotonically(self):
        state = self.run_state()
        observer = StateSpaceObserver()
        observer.observe(state)
        first = dict(observer.totals)
        observer.observe(state)
        assert observer.totals == first  # same snapshot adds nothing
        assert observer.max_per_agent >= max(first.values())

    def test_empty_observer(self):
        observer = StateSpaceObserver()
        assert observer.totals == {}
        assert observer.max_per_agent == 0
