"""Tests for the phase-quotiented count model of SimpleAlgorithm.

The load-bearing guarantees:

* **bit-exact replay** — under the sequential scheduler and one seed, the
  count backend reproduces the agent backend's quotient-count trajectory
  frame for frame (including through the randomized initialization
  re-rolls), and the RunResults agree;
* **section/projection consistency** — lifting a quotient state to a
  concrete representative and projecting back is the identity, and the
  derived transitions do not depend on the representative (the lumping
  property, checked by moving the lift base);
* **batched mode** — matching-scheduler count runs converge to the right
  plurality and agree statistically with the agent backend;
* **guards** — out-of-band configurations (window overflow, clock
  desync) surface as loud failures, and the count-level invariant hooks
  mirror the agent-level ones.
"""

import numpy as np
import pytest

from repro.core import quotient as quotient_module
from repro.core.quotient import SimpleQuotientModel
from repro.core.simple import SimpleAlgorithm
from repro.engine import (
    CountConfig,
    MatchingScheduler,
    PopulationConfig,
    SequentialScheduler,
    simulate,
)
from repro.engine.backends import CountState
from repro.engine.errors import InvariantViolation
from repro.engine.recorder import Recorder


class QuotientTrajectory(Recorder):
    """Frames as {quotient tuple: count} dicts, on either backend.

    Keying by the state *tuple* (not the interned id) makes frames
    comparable across model instances: the backend's own model and the
    recorder's projection model intern states in different orders.
    """

    def __init__(self, model: SimpleQuotientModel, every_parallel_time=2.0):
        self.model = model
        self.every_parallel_time = every_parallel_time
        self.frames = []

    def _frame(self, state):
        if isinstance(state, CountState):
            counts = state.refresh().counts
            labels = state.model.labels
        else:
            ids = self.model.project(state)
            counts = np.bincount(ids, minlength=self.model.num_states)
            labels = self.model.labels
        return {labels[s]: int(c) for s, c in enumerate(counts) if c}

    def on_start(self, state, n):
        self.frames.append((0, self._frame(state)))

    def on_sample(self, interactions, state):
        self.frames.append((interactions, self._frame(state)))

    def on_end(self, interactions, state):
        self.frames.append((interactions, self._frame(state)))


def run_both_backends(counts, seed, budget=8000.0, rng=11):
    """One seeded run per backend; returns {backend: (result, frames)}."""
    config = PopulationConfig.from_counts(counts, rng=rng)
    protocol = SimpleAlgorithm()
    runs = {}
    for backend in ("agents", "counts"):
        recorder = QuotientTrajectory(protocol.count_model(config))
        runs[backend] = (
            simulate(
                protocol,
                config,
                seed=seed,
                scheduler=SequentialScheduler(),
                backend=backend,
                max_parallel_time=budget,
                recorder=recorder,
                check_invariants=True,
            ),
            recorder.frames,
        )
    return runs


#: Defender-wins and challenger-wins workloads: the latter exercise the
#: verdict-tag seeding/aging/application machinery.
PARITY_CASES = [
    ("k3_defender_wins", [30, 18, 12], 97),
    ("k2_challenger_wins", [38, 44], 21),
    ("k3_middle_wins", [30, 45, 25], 7),
    ("k4_last_wins", [10, 12, 14, 40], 5),
]


class TestExactReplay:
    """Sequential scheduler + same seed → bit-identical trajectories."""

    @pytest.mark.parametrize(
        "name,counts,seed",
        PARITY_CASES,
        ids=[case[0] for case in PARITY_CASES],
    )
    def test_trajectories_bit_identical(self, name, counts, seed):
        runs = run_both_backends(counts, seed)
        agent_result, agent_frames = runs["agents"]
        count_result, count_frames = runs["counts"]

        assert len(agent_frames) == len(count_frames)
        for (ia, fa), (ic, fc) in zip(agent_frames, count_frames):
            assert ia == ic
            assert fa == fc

        assert agent_result.interactions == count_result.interactions
        assert agent_result.parallel_time == count_result.parallel_time
        assert agent_result.converged and count_result.converged
        assert agent_result.output_opinion == count_result.output_opinion
        assert agent_result.output_opinion == agent_result.expected_opinion
        assert agent_result.failure == count_result.failure
        # Extras overlap (role counts, winners) must agree; the agent path
        # additionally reports absolute-phase stats the quotient cannot.
        shared = set(agent_result.extras) & set(count_result.extras)
        assert {"winners", "role_collector", "role_clock"} <= shared
        for key in shared:
            assert agent_result.extras[key] == count_result.extras[key], key

    def test_replay_is_independent_of_the_lift_base(self, monkeypatch):
        """Lumping check: transitions can't depend on the representative."""
        reference = run_both_backends([26, 30], 3, budget=5000.0)
        monkeypatch.setattr(quotient_module, "LIFT_BASE", 12)
        shifted = run_both_backends([26, 30], 3, budget=5000.0)
        assert reference["counts"][1] == shifted["counts"][1]
        assert (
            reference["counts"][0].interactions
            == shifted["counts"][0].interactions
        )


class TestSectionProjection:
    def test_lift_then_project_is_identity(self):
        """π ∘ lift = id on every state materialized by a real run."""
        config = PopulationConfig.from_counts([24, 20, 16], rng=2)
        protocol = SimpleAlgorithm()
        model = protocol.count_model(config)
        # Projecting at every sample materializes the run's reachable
        # states (initialization, tournament, and aftermath alike).
        recorder = QuotientTrajectory(model, every_parallel_time=5.0)
        simulate(
            protocol,
            config,
            seed=8,
            scheduler=SequentialScheduler(),
            backend="agents",
            max_parallel_time=1500.0,
            recorder=recorder,
        )
        assert model.num_states > 100
        ids = list(range(model.num_states))
        for i in ids:
            state, u, v, pre_phase, pre_t = model._lift_pairs([(i, i)])
            for slot in (int(u[0]), int(v[0])):
                assert (
                    model._tuple_of(state, slot, int(pre_t[slot]))
                    == model.labels[i]
                ), model.labels[i]

    def test_projection_is_deterministic_across_instances(self):
        config = PopulationConfig.from_counts([30, 30], rng=5)
        protocol = SimpleAlgorithm()
        out = []
        simulate(
            protocol,
            config,
            seed=4,
            backend="agents",
            max_parallel_time=400.0,
            state_out=out,
        )
        a = protocol.count_model(config)
        b = protocol.count_model(config)
        tuples_a = [a.labels[i] for i in a.project(out[0])]
        tuples_b = [b.labels[i] for i in b.project(out[0])]
        assert tuples_a == tuples_b


class TestBatchedMode:
    def test_batched_run_converges_correctly(self):
        config = PopulationConfig.from_counts([120, 80], rng=3)
        result = simulate(
            SimpleAlgorithm(),
            config,
            seed=9,
            scheduler=MatchingScheduler(0.5),
            backend="counts",
            max_parallel_time=8000.0,
            check_invariants=True,
        )
        assert result.succeeded
        assert result.output_opinion == 1

    def test_batched_count_native_config(self):
        """CountConfig + quotient model: no per-agent array anywhere."""
        n = 50_000
        config = CountConfig.from_counts([int(0.6 * n), n - int(0.6 * n)])
        out = []
        result = simulate(
            SimpleAlgorithm(),
            config,
            seed=2,
            scheduler=MatchingScheduler(0.5),
            backend="counts",
            max_parallel_time=50.0,  # a slice of initialization, not convergence
            check_invariants=True,
            state_out=out,
        )
        assert result.failure == "timeout"
        (state,) = out
        assert state.ids is None
        assert int(state.counts.sum()) == n

    def test_batched_statistics_match_agents(self):
        """Convergence times agree across backends at the mean level."""
        times = {}
        for backend in ("agents", "counts"):
            results = [
                simulate(
                    SimpleAlgorithm(),
                    PopulationConfig.from_counts([70, 58], rng=s),
                    seed=100 + s,
                    scheduler=MatchingScheduler(0.25),
                    backend=backend,
                    max_parallel_time=8000.0,
                )
                for s in range(6)
            ]
            assert all(r.succeeded for r in results), backend
            times[backend] = np.mean([r.parallel_time for r in results])
        assert times["counts"] == pytest.approx(times["agents"], rel=0.35)

    def test_encode_counts_agrees_with_per_agent_encoding(self):
        config = PopulationConfig.from_counts([18, 12, 10], rng=7)
        model = SimpleAlgorithm().count_model(config)
        via_ids = np.bincount(
            model.initial_ids(config), minlength=model.num_states
        )
        np.testing.assert_array_equal(model.initial_counts(config), via_ids)


class TestGuardsAndHooks:
    def _model(self, counts=(20, 20)):
        config = PopulationConfig.from_counts(list(counts), rng=0)
        return SimpleAlgorithm().count_model(config), config

    def test_initial_counts_pass_hooks(self):
        model, config = self._model()
        counts = model.initial_counts(config)
        assert model.failure(counts) is None
        assert not model.converged(counts)
        model.check_invariants(counts)

    def test_window_overflow_is_loud(self):
        """Occupancy across ≥ 3 mod-4 windows must fail, not alias."""
        model, _ = self._model()
        ids = [
            model.intern(("cl", 0, w, 0, 0, quotient_module.TAG_NONE))
            for w in (0, 1, 2)
        ]
        counts = np.zeros(model.num_states, dtype=np.int64)
        counts[ids] = [10, 10, 20]
        assert model.failure(counts) == "clock_desync"
        # Non-clock roles spanning three windows: the quotient-specific
        # guard (the agent backend has no equivalent check).
        tr = [
            model.intern(("tr", 0, w, 0, 1, False, quotient_module.TAG_NONE))
            for w in (0, 1, 2)
        ]
        counts = np.zeros(model.num_states, dtype=np.int64)
        counts[tr] = [10, 10, 20]
        assert model.failure(counts) == "phase_window_overflow"
        # Two occupied windows with a hole between them ({w, w+2}): the
        # signed pair offset would alias (−2 ≡ +2 mod 4) — also loud.
        counts = np.zeros(model.num_states, dtype=np.int64)
        counts[[tr[0], tr[2]]] = [10, 30]
        assert model.failure(counts) == "phase_window_overflow"
        # Adjacent windows (including the 3 → 0 wrap) stay in band.
        counts = np.zeros(model.num_states, dtype=np.int64)
        counts[[tr[0], tr[1]]] = [10, 30]
        assert model.failure(counts) is None
        wrap = model.intern(("tr", 0, 3, 2, 1, False, quotient_module.TAG_NONE))
        counts = np.zeros(model.num_states, dtype=np.int64)
        counts[[wrap, tr[0]]] = [10, 30]
        assert model.failure(counts) is None

    def test_clock_desync_matches_agent_semantics(self):
        model, _ = self._model()
        none = quotient_module.TAG_NONE
        near = [
            model.intern(("cl", 9, 0, 0, 0, none)),
            model.intern(("cl", 1, 1, 1, 0, none)),
        ]
        counts = np.zeros(model.num_states, dtype=np.int64)
        counts[near] = [5, 5]
        assert model.failure(counts) is None  # spread 2: within bound
        far = [
            model.intern(("cl", 5, 0, 0, 0, none)),
            model.intern(("cl", 9, 0, 0, 0, none)),
        ]
        counts = np.zeros(model.num_states, dtype=np.int64)
        counts[far] = [5, 5]
        assert model.failure(counts) == "clock_desync"

    def test_invariants_catch_token_loss(self):
        model, config = self._model()
        counts = model.initial_counts(config)
        counts[0] -= 1  # one single-token collector vanishes
        with pytest.raises(InvariantViolation, match="token sum"):
            model.check_invariants(counts)

    def test_output_requires_unanimous_winners(self):
        model, config = self._model()
        counts = model.initial_counts(config)
        assert model.output_opinion(counts) is None
        winner = model.intern(
            ("co", 0, 0, 1, 2, 3, True, False, 0, False, True,
             quotient_module.TAG_NONE)
        )
        final = np.zeros(model.num_states, dtype=np.int64)
        final[winner] = int(config.n)
        assert model.converged(final)
        assert model.output_opinion(final) == 2
