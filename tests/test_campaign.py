"""Tests for the campaign layer: grids, checkpoints, runner, rollups.

The crash/resume tests are the heart of this file: a campaign killed at
any point (orderly ``max_cells`` stop, simulated worker death, or a real
SIGKILL of the whole process) must resume by re-running exactly the
unfinished cells and produce a deterministic rollup bit-identical to an
uninterrupted run with the same seeds.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.campaign import (
    CampaignGrid,
    CellSpec,
    CheckpointMismatch,
    CheckpointStore,
    IncompleteCampaign,
    build_rollup,
    campaign_descriptions,
    campaign_names,
    campaign_status,
    cell_hash,
    deterministic_block,
    execute_cell,
    get_campaign,
    render_rollup,
    run_campaign,
    sqrt_k,
    write_rollup,
)
from repro.cli import main as cli_main
from repro.engine.errors import ConfigurationError


def tiny_grid(name="tiny", protocols=("three_state",), ns=(48, 64), seeds=(0, 1)):
    """Sub-second grid used throughout (three_state/usd at n < 100)."""
    return CampaignGrid.from_axes(
        name,
        protocols=list(protocols),
        ns=list(ns),
        ks=[2],
        seeds=list(seeds),
        workload="majority_counts",
        workload_axes=({"bias": 2},),
        description="test grid",
    )


# ----------------------------------------------------------------------
# Grid and cell hashing
# ----------------------------------------------------------------------
class TestGrid:
    def test_from_axes_is_the_full_cross_product(self):
        grid = tiny_grid(protocols=("three_state", "usd"), ns=(48, 64), seeds=(0, 1))
        assert len(grid.cells) == 8
        assert len(set(grid.hashes())) == 8

    def test_pair_n_k_zips_instead_of_crossing(self):
        grid = CampaignGrid.from_axes(
            "paired",
            protocols=["simple"],
            ns=[256, 1024],
            ks=[16, 32],
            pair_n_k=True,
            seeds=[0],
            workload="one_large_many_small",
        )
        assert [(c.n, c.k) for c in grid.cells] == [(256, 16), (1024, 32)]

    def test_pair_n_k_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError, match="pair_n_k"):
            CampaignGrid.from_axes(
                "bad", protocols=["usd"], ns=[10], ks=[2, 3],
                pair_n_k=True, seeds=[0],
            )

    def test_cell_hash_is_stable_and_parameter_sensitive(self):
        cell = CellSpec(
            protocol="usd", workload="bias_one", n=100, k=3, seed=7
        )
        # Pinned: the hash is an on-disk identity (checkpoint filenames,
        # rollup keys); silent drift would orphan every prior checkpoint.
        assert cell_hash(cell) == cell_hash(CellSpec.from_dict(cell.to_dict()))
        assert cell_hash(cell) == "927d62266ec425ed"
        for field, value in [
            ("n", 101), ("k", 4), ("seed", 8), ("protocol", "three_state"),
            ("sampler", "numpy"), ("workload_args", {"bias": 1}),
        ]:
            changed = CellSpec.from_dict({**cell.to_dict(), field: value})
            assert cell_hash(changed) != cell_hash(cell)

    def test_duplicate_cells_rejected(self):
        cell = CellSpec(protocol="usd", workload="bias_one", n=10, k=2, seed=0)
        with pytest.raises(ConfigurationError, match="duplicate"):
            CampaignGrid(name="dup", cells=[cell, cell])

    def test_validate_rejects_unknown_registry_names(self):
        base = dict(workload="bias_one", n=10, k=2, seed=0)
        for bad in [
            CellSpec(protocol="nope", **base),
            CellSpec(protocol="usd", **{**base, "workload": "nope"}),
            CellSpec(protocol="usd", backend="nope", **base),
            CellSpec(protocol="usd", scheduler="nope", **base),
            CellSpec(protocol="usd", sampler="nope", **base),
        ]:
            with pytest.raises(ConfigurationError):
                bad.validate()
        CellSpec(protocol="usd", **base).validate()

    def test_fingerprint_ignores_cell_order(self):
        a = tiny_grid()
        b = tiny_grid()
        b.cells = list(reversed(b.cells))
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != tiny_grid(seeds=(0, 2)).fingerprint()

    def test_sqrt_k(self):
        assert sqrt_k(1024) == 32
        assert sqrt_k(2) == 2  # floored at 2

    def test_registry_lists_shipped_campaigns(self):
        names = campaign_names()
        assert {"smoke", "sqrt_k_sweep", "usd_lower_bound"} <= set(names)
        assert set(campaign_descriptions()) == set(names)
        with pytest.raises(KeyError, match="unknown campaign"):
            get_campaign("nope")

    def test_shipped_campaigns_validate_at_both_scales(self):
        for name in campaign_names():
            for scale in ("quick", "full"):
                grid = get_campaign(name, scale=scale)
                assert grid.cells
        smoke = get_campaign("smoke")
        assert len(smoke.cells) == 8  # the CI 2x2x2 grid

    def test_label_mentions_the_full_selection(self):
        cell = CellSpec(
            protocol="usd", workload="uniform_with_bias", n=100, k=3, seed=7,
            backend="counts", scheduler="matching", sampler="auto",
            workload_args={"bias": 5},
        )
        label = cell.label()
        for token in ["usd", "n=100", "k=3", "bias=5", "seed=7",
                      "counts", "matching", "auto"]:
            assert token in label


# ----------------------------------------------------------------------
# Checkpoint store
# ----------------------------------------------------------------------
class TestCheckpointStore:
    def test_write_then_read_round_trips(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.write_cell("abcd", {"cell": {}, "result": {}, "elapsed_seconds": 1.0})
        payload = store.read_cell("abcd")
        assert payload["hash"] == "abcd"
        assert not list(tmp_path.glob("**/*.tmp"))  # atomic: no temp leftovers

    @pytest.mark.parametrize(
        "content",
        [
            "{truncated",
            json.dumps([1, 2]),
            json.dumps({"schema_version": 999, "hash": "abcd",
                        "result": {}, "elapsed_seconds": 1.0}),
            json.dumps({"schema_version": 1, "hash": "other",
                        "result": {}, "elapsed_seconds": 1.0}),
            json.dumps({"schema_version": 1, "hash": "abcd",
                        "result": "nope", "elapsed_seconds": 1.0}),
            json.dumps({"schema_version": 1, "hash": "abcd",
                        "result": {}, "elapsed_seconds": "slow"}),
        ],
    )
    def test_invalid_checkpoints_read_as_absent(self, tmp_path, content):
        store = CheckpointStore(tmp_path)
        store.cells_dir.mkdir(parents=True)
        store.cell_path("abcd").write_text(content)
        assert store.read_cell("abcd") is None
        assert store.completed(["abcd"]) == set()

    def test_manifest_pins_the_grid_fingerprint(self, tmp_path):
        grid = tiny_grid()
        store = CheckpointStore(tmp_path)
        manifest = store.ensure_manifest(grid)
        assert manifest["fingerprint"] == grid.fingerprint()
        # Same grid resumes fine; a different grid is rejected.
        store.ensure_manifest(grid)
        with pytest.raises(CheckpointMismatch, match="fingerprint"):
            store.ensure_manifest(tiny_grid(seeds=(5, 6)))


# ----------------------------------------------------------------------
# Runner: execution, resume, retries
# ----------------------------------------------------------------------
class TestRunner:
    def test_serial_run_checkpoints_every_cell(self, tmp_path):
        grid = tiny_grid()
        status = run_campaign(grid, tmp_path, workers=1)
        assert status.done and status.ran == len(grid.cells)
        store = CheckpointStore(tmp_path)
        for h in grid.hashes():
            payload = store.read_cell(h)
            assert payload["result"]["converged"] is True
            assert payload["attempts"] == 1
            assert payload["elapsed_seconds"] >= 0

    def test_execute_cell_is_deterministic(self):
        cell = tiny_grid().cells[0].to_dict()
        first = execute_cell(cell)
        second = execute_cell(cell)
        assert first["result"] == second["result"]
        assert first["cell"] == second["cell"]

    def test_resume_skips_completed_cells(self, tmp_path):
        grid = tiny_grid()
        partial = run_campaign(grid, tmp_path, workers=1, max_cells=3)
        assert partial.completed == 3 and not partial.done
        assert campaign_status(grid, tmp_path).pending == len(grid.cells) - 3

        ran = []

        def counting_runner(payload):
            ran.append(payload["seed"])
            return execute_cell(payload)

        resumed = run_campaign(
            grid, tmp_path, workers=1, cell_runner=counting_runner
        )
        assert resumed.done
        assert len(ran) == len(grid.cells) - 3  # only the unfinished cells

    def test_interrupted_resume_matches_uninterrupted_bit_for_bit(self, tmp_path):
        grid = tiny_grid(protocols=("three_state", "usd"))
        # Uninterrupted reference run.
        run_campaign(grid, tmp_path / "straight", workers=1)
        reference = build_rollup(grid, tmp_path / "straight")

        # Crashed run: a few cells done, one checkpoint corrupted (the
        # torn state a dead worker leaves), one in-flight .tmp orphan.
        crashed = tmp_path / "crashed"
        run_campaign(grid, crashed, workers=1, max_cells=5)
        store = CheckpointStore(crashed)
        victim = grid.hashes()[0]
        store.cell_path(victim).write_text("{torn write")
        (store.cells_dir / "deadbeef.json.tmp").write_text("in flight")

        resumed = run_campaign(grid, crashed, workers=1)
        assert resumed.done
        # The corrupted cell was detected and re-run alongside the three
        # never-started ones.
        assert resumed.ran == 4
        after = build_rollup(grid, crashed)
        assert deterministic_block(after) == deterministic_block(reference)

    def test_pool_run_matches_serial_bit_for_bit(self, tmp_path):
        grid = tiny_grid()
        run_campaign(grid, tmp_path / "serial", workers=1)
        run_campaign(grid, tmp_path / "pooled", workers=2)
        assert deterministic_block(
            build_rollup(grid, tmp_path / "serial")
        ) == deterministic_block(build_rollup(grid, tmp_path / "pooled"))

    def test_transient_failures_retry_with_recorded_attempts(self, tmp_path):
        grid = tiny_grid(ns=(48,), seeds=(0,))
        attempts = {"count": 0}

        def flaky(payload):
            attempts["count"] += 1
            if attempts["count"] < 3:
                raise RuntimeError("transient")
            return execute_cell(payload)

        status = run_campaign(
            grid, tmp_path, workers=1, retries=2,
            backoff_seconds=0.001, cell_runner=flaky,
        )
        assert status.done and not status.failed
        payload = CheckpointStore(tmp_path).read_cell(grid.hashes()[0])
        assert payload["attempts"] == 3

    def test_exhausted_retries_reported_not_raised(self, tmp_path):
        grid = tiny_grid(ns=(48,), seeds=(0, 1))

        def poisoned(payload):
            if payload["seed"] == grid.cells[0].seed:
                raise RuntimeError("permanently broken")
            return execute_cell(payload)

        status = run_campaign(
            grid, tmp_path, workers=1, retries=1,
            backoff_seconds=0.001, cell_runner=poisoned,
        )
        assert not status.done
        assert list(status.failed) == [grid.hashes()[0]]
        assert "permanently broken" in status.failed[grid.hashes()[0]]
        # The healthy cell still landed: one failure must not waste the rest.
        assert status.completed == 1

    def test_negative_retries_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="retries"):
            run_campaign(tiny_grid(), tmp_path, retries=-1)

    def test_directory_of_other_grid_is_refused(self, tmp_path):
        run_campaign(tiny_grid(), tmp_path, workers=1, max_cells=1)
        with pytest.raises(CheckpointMismatch):
            run_campaign(tiny_grid(seeds=(7, 8)), tmp_path, workers=1)
        with pytest.raises(CheckpointMismatch):
            campaign_status(tiny_grid(seeds=(7, 8)), tmp_path)


# ----------------------------------------------------------------------
# SIGKILL: a real mid-run kill of a pooled campaign process
# ----------------------------------------------------------------------
class TestSigkillRecovery:
    def test_sigkilled_campaign_resumes_to_identical_rollup(self, tmp_path):
        killed_dir = tmp_path / "killed"
        env = {
            **os.environ,
            "PYTHONPATH": os.pathsep.join(
                [str(p) for p in [os.path.join(os.getcwd(), "src")]]
                + ([os.environ["PYTHONPATH"]] if "PYTHONPATH" in os.environ else [])
            ),
            # Slow every cell down so the kill lands mid-campaign no
            # matter how fast the machine is.
            "REPRO_CAMPAIGN_CELL_DELAY": "0.4",
        }
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "campaign", "run", "smoke",
                "--dir", str(killed_dir), "--workers", "2",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        time.sleep(1.5)
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
        assert proc.returncode == -signal.SIGKILL

        grid = get_campaign("smoke")
        interrupted = campaign_status(grid, killed_dir)
        assert not interrupted.done  # the kill landed mid-campaign

        resumed = run_campaign(grid, killed_dir, workers=1)
        assert resumed.done
        assert resumed.ran == interrupted.pending

        run_campaign(grid, tmp_path / "straight", workers=1)
        assert deterministic_block(
            build_rollup(grid, killed_dir)
        ) == deterministic_block(build_rollup(grid, tmp_path / "straight"))


# ----------------------------------------------------------------------
# Rollup
# ----------------------------------------------------------------------
class TestRollup:
    def test_rollup_shape_and_perf_pipeline_fields(self, tmp_path):
        grid = tiny_grid(protocols=("three_state", "usd"))
        run_campaign(grid, tmp_path, workers=1)
        rollup = build_rollup(grid, tmp_path)
        # The fields benchmarks/perf_diff.py keys on.
        assert rollup["experiment"] == "CAMPAIGN_tiny"
        assert rollup["kind"] == "campaign"
        assert isinstance(rollup["elapsed_seconds"], float)
        assert set(rollup["cells"]) == set(grid.hashes())
        for entry in rollup["cells"].values():
            assert entry["elapsed_seconds"] >= 0
        assert rollup["passed"] is True
        results = rollup["results"]
        assert set(results["cells"]) == set(grid.hashes())
        assert results["checks"] == {
            "all_cells_completed": True,
            "all_converged": True,
        }
        # 2 protocols x 2 ns, seeds folded into groups.
        assert len(results["groups"]) == 4
        for group in results["groups"]:
            assert group["cells"] == 2
            assert group["converged"] == 2
            assert group["mean_parallel_time"] > 0
        rendered = render_rollup(rollup)
        assert "CAMPAIGN_tiny" in rendered and "PASS" in rendered

    def test_incomplete_rollup_raises_unless_partial_allowed(self, tmp_path):
        grid = tiny_grid()
        run_campaign(grid, tmp_path, workers=1, max_cells=2)
        with pytest.raises(IncompleteCampaign, match="without checkpoints"):
            build_rollup(grid, tmp_path)
        partial = build_rollup(grid, tmp_path, allow_partial=True)
        assert partial["completed_cells"] == 2
        assert partial["passed"] is False
        assert partial["results"]["checks"]["all_cells_completed"] is False

    def test_driver_fit_present_for_declared_campaigns(self, tmp_path):
        grid = get_campaign("usd_lower_bound", scale="quick")
        # Shrink to the two cheapest (n, k) points to keep the test fast
        # while leaving two distinct driver values for the fit.
        grid.cells = [
            c for c in grid.cells
            if c.n == 4096 and c.workload_args["bias"] == 1 and c.seed == 0
        ]
        assert len(grid.cells) == 2  # k = 2 and k = 4
        run_campaign(grid, tmp_path, workers=1)
        rollup = build_rollup(grid, tmp_path)
        fit = rollup["results"]["fits"]["usd"]
        assert fit["driver"] == "usd_time"
        assert fit["points"] == 2
        assert "slope" in fit and "r_squared" in fit

    def test_unknown_driver_rejected(self, tmp_path):
        grid = tiny_grid()
        grid.driver = "nope"
        run_campaign(grid, tmp_path, workers=1)
        with pytest.raises(ConfigurationError, match="unknown driver"):
            build_rollup(grid, tmp_path)

    def test_write_rollup_is_atomic_and_readable(self, tmp_path):
        grid = tiny_grid()
        run_campaign(grid, tmp_path, workers=1)
        out = tmp_path / "reports" / "CAMPAIGN_tiny.json"
        write_rollup(build_rollup(grid, tmp_path), out)
        payload = json.loads(out.read_text())
        assert payload["experiment"] == "CAMPAIGN_tiny"
        assert not list(out.parent.glob("*.tmp"))


# ----------------------------------------------------------------------
# CLI plumbing
# ----------------------------------------------------------------------
class TestCampaignCli:
    def test_list_names_every_campaign(self, capsys):
        assert cli_main(["campaign", "list"]) == 0
        out = capsys.readouterr().out
        for name in campaign_names():
            assert name in out

    def test_run_status_rollup_cycle(self, tmp_path, capsys):
        directory = str(tmp_path / "smoke")
        out_path = str(tmp_path / "CAMPAIGN_smoke.json")
        assert cli_main(
            ["campaign", "run", "smoke", "--dir", directory, "--workers", "1"]
        ) == 0
        assert cli_main(["campaign", "status", "smoke", "--dir", directory]) == 0
        assert "8/8" in capsys.readouterr().out
        assert cli_main(
            ["campaign", "rollup", "smoke", "--dir", directory, "--out", out_path]
        ) == 0
        assert json.loads(open(out_path).read())["completed_cells"] == 8

    def test_partial_run_then_rollup_needs_allow_partial(self, tmp_path, capsys):
        directory = str(tmp_path / "smoke")
        assert cli_main(
            [
                "campaign", "run", "smoke", "--dir", directory,
                "--workers", "1", "--max-cells", "2",
            ]
        ) == 0
        assert cli_main(["campaign", "rollup", "smoke", "--dir", directory]) == 1
        capsys.readouterr()
        # Partial rollups render but exit nonzero (checks fail).
        assert cli_main(
            ["campaign", "rollup", "smoke", "--dir", directory, "--allow-partial"]
        ) == 1
        assert "all_cells_completed: FAIL" in capsys.readouterr().out

    def test_unknown_campaign_exits_2(self, capsys):
        assert cli_main(["campaign", "run", "nope"]) == 2
        assert "unknown campaign" in capsys.readouterr().err
