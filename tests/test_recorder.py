"""Edge-case tests for the probe recorder (repro.engine.recorder).

The happy path is covered indirectly by the trajectory tests; these pin
the guards and precedence rules a refactor could silently drop: the
zero-n division guard, probe-over-protocol key precedence, and the
dtype/shape contract of ``as_arrays``.
"""

import numpy as np
import pytest

from repro.engine.recorder import ProbeRecorder, Recorder


class _Progress:
    """Stand-in protocol exposing a progress() dict."""

    def progress(self, state):
        return {"phase": 2.0, "margin": float(state)}


def test_base_recorder_hooks_are_noops():
    recorder = Recorder()
    recorder.on_start(object(), 10)
    recorder.on_sample(5, object())
    recorder.on_end(9, object())


def test_nonpositive_cadence_rejected():
    with pytest.raises(ValueError, match="every_parallel_time"):
        ProbeRecorder(every_parallel_time=0.0)
    with pytest.raises(ValueError, match="every_parallel_time"):
        ProbeRecorder(every_parallel_time=-1.0)


def test_zero_n_guard():
    # on_sample before on_start (or a pathological n=0 run) must not
    # divide by zero: times fall back to 0.0.
    recorder = ProbeRecorder(probes={"x": float})
    recorder.on_sample(7, 1.0)
    assert recorder.times == [0.0]
    recorder.on_start(2.0, 0)
    assert recorder.times == [0.0, 0.0]


def test_times_are_parallel_time():
    recorder = ProbeRecorder(probes={"x": float})
    recorder.on_start(0.0, 4)
    recorder.on_sample(8, 1.0)
    recorder.on_end(10, 2.0)
    assert recorder.times == [0.0, 2.0, 2.5]
    assert recorder.series["x"] == [0.0, 1.0, 2.0]


def test_probe_wins_key_collision_with_protocol():
    # A probe named like a protocol progress key overrides it: probes
    # are applied after protocol.progress() in _sample.
    recorder = ProbeRecorder(
        probes={"margin": lambda state: -1.0}, protocol=_Progress()
    )
    recorder.on_start(3.0, 10)
    assert recorder.series["margin"] == [-1.0]
    assert recorder.series["phase"] == [2.0]


def test_protocol_only_series():
    recorder = ProbeRecorder(protocol=_Progress())
    recorder.on_start(1.5, 10)
    recorder.on_sample(10, 2.5)
    assert recorder.series["margin"] == [1.5, 2.5]


def test_as_arrays_dtype_and_alignment():
    recorder = ProbeRecorder(probes={"x": lambda s: int(s)})
    recorder.on_start(1, 2)
    recorder.on_sample(4, 2)
    arrays = recorder.as_arrays()
    assert set(arrays) == {"time", "x"}
    # Values are coerced to float at sample time, so the arrays come out
    # float64 even for int-returning probes, and stay index-aligned.
    assert arrays["time"].dtype == np.float64
    assert arrays["x"].dtype == np.float64
    assert arrays["time"].shape == arrays["x"].shape == (2,)
    np.testing.assert_allclose(arrays["time"], [0.0, 2.0])
    np.testing.assert_allclose(arrays["x"], [1.0, 2.0])


def test_as_arrays_empty_recorder():
    arrays = ProbeRecorder().as_arrays()
    assert set(arrays) == {"time"}
    assert arrays["time"].size == 0
