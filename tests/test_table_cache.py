"""Tests for the shared transition-table cache (repro.cache).

The load-bearing guarantees:

* **warm ≡ cold** — a seeded matrix over the three tournament quotients
  and both count-mode scheduler families asserts that a run replaying a
  cached table is bit-identical to a cold run (same RunResult, extras
  included), and that a fully warm run performs zero pair derivations;
* **artifact robustness** — round-trips are exact, truncated/corrupt
  entries are quarantined and reported as misses, foreign schema
  versions and mismatched signatures are rejected, never replayed;
* **signatures** — stable across model instances, sensitive to every
  quotient parameter (algorithm params, n-derived thresholds, k);
* **store semantics** — merge unions entries, ``resolve_store`` honours
  env/False/True, the size cap evicts oldest-touched artifacts first;
* **execution layers** — ``replicate_parallel`` reuses a populated
  store with zero derivations, and ``experiments.run`` reports the
  count-model summary as report metadata without telemetry.
"""

import os

import numpy as np
import pytest

from repro import telemetry as telemetry_module
from repro.cache import (
    TABLE_CACHE_ENV,
    TableSchemaError,
    TableSignatureError,
    TableStore,
    TransitionTable,
    resolve_store,
    signature_of,
)
from repro.cache import table as table_module
from repro.core.common import SimpleParams
from repro.core.improved import ImprovedAlgorithm
from repro.core.simple import SimpleAlgorithm
from repro.core.unordered import UnorderedAlgorithm
from repro.engine import (
    MatchingScheduler,
    PopulationConfig,
    SequentialScheduler,
    simulate,
)
from repro.engine.errors import ConfigurationError


def _make_table(signature="sig-a", pair=("x",)):
    table = TransitionTable(signature)
    u = (pair[0], 1, False)
    v = (pair[0], 2, True)
    table.det[(u, v)] = (v, u)
    table.rand[(u, u)] = (
        np.array([0.25, 0.75]),
        (u, v),
        (v, u),
        ((3, np.array([0.25, 1.0])),),
    )
    return table


def _quotient_model(factory=SimpleAlgorithm, counts=(22, 18), rng=1):
    config = PopulationConfig.from_counts(list(counts), rng=rng)
    return factory().count_model(config)


class TestArtifact:
    def test_round_trip_is_exact(self, tmp_path):
        table = _make_table()
        path = tmp_path / "t.npz"
        table.save(path)
        loaded = TransitionTable.load(path, expected_signature="sig-a")
        assert loaded.det == table.det
        assert set(loaded.rand) == set(table.rand)
        probs, out_u, out_v, factors = loaded.rand[next(iter(table.rand))]
        ref = table.rand[next(iter(table.rand))]
        np.testing.assert_array_equal(probs, ref[0])
        assert out_u == ref[1]
        assert out_v == ref[2]
        assert [g for g, _ in factors] == [g for g, _ in ref[3]]
        np.testing.assert_array_equal(factors[0][1], ref[3][0][1])

    def test_derived_table_round_trips(self, tmp_path):
        model = _quotient_model()
        model._ensure_pairs([(i, j) for i in range(2) for j in range(2)])
        table = model.export_table()
        assert len(table) > 0
        path = tmp_path / "t.npz"
        table.save(path)
        loaded = TransitionTable.load(path)
        assert loaded.signature == table.signature
        assert loaded.det == table.det
        assert set(loaded.rand) == set(table.rand)

    def test_schema_version_mismatch_is_rejected(self, tmp_path, monkeypatch):
        path = tmp_path / "t.npz"
        monkeypatch.setattr(table_module, "TABLE_SCHEMA_VERSION", 999)
        _make_table().save(path)
        monkeypatch.undo()
        with pytest.raises(TableSchemaError):
            TransitionTable.load(path)

    def test_signature_mismatch_is_rejected(self, tmp_path):
        path = tmp_path / "t.npz"
        _make_table(signature="sig-a").save(path)
        with pytest.raises(TableSignatureError):
            TransitionTable.load(path, expected_signature="sig-b")

    def test_truncated_artifact_is_quarantined_as_a_miss(self, tmp_path):
        store = TableStore(tmp_path / "store")
        tel = telemetry_module.Telemetry(enabled=True)
        store.attach_telemetry(tel)
        table = _make_table()
        path = store.put(table)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        assert store.get("sig-a") is None
        assert not path.exists()
        assert list(store.quarantine_dir.glob("*.npz"))
        counters = tel.metrics_block()["counters"]
        assert counters["cache.miss"] == 1
        assert counters.get("cache.hit", 0) == 0

    def test_merge_unions_and_guards_signatures(self):
        a = _make_table()
        b = TransitionTable("sig-a")
        b.det[(("z",), ("z",))] = (("z",), ("z",))
        before = len(a)
        a.merge(b)
        assert len(a) == before + 1
        with pytest.raises(TableSignatureError):
            a.merge(_make_table(signature="sig-other"))


class TestSignatures:
    def test_stable_across_instances(self):
        assert (
            _quotient_model().quotient_signature()
            == _quotient_model().quotient_signature()
        )

    @pytest.mark.parametrize(
        "factory", [SimpleAlgorithm, UnorderedAlgorithm, ImprovedAlgorithm],
        ids=["simple", "unordered", "improved"],
    )
    def test_sensitive_to_n_and_k(self, factory):
        base = _quotient_model(factory).quotient_signature()
        other_n = _quotient_model(factory, counts=(30, 26)).quotient_signature()
        other_k = _quotient_model(
            factory, counts=(16, 14, 10)
        ).quotient_signature()
        assert base and other_n and other_k
        assert len({base, other_n, other_k}) == 3

    def test_sensitive_to_algorithm_params(self):
        base = _quotient_model().quotient_signature()
        tweaked = PopulationConfig.from_counts([22, 18], rng=1)
        model = SimpleAlgorithm(
            SimpleParams(majority_level_slack=7)
        ).count_model(tweaked)
        assert model.quotient_signature() != base

    def test_distinct_across_protocol_kinds(self):
        signatures = {
            _quotient_model(factory).quotient_signature()
            for factory in (SimpleAlgorithm, UnorderedAlgorithm, ImprovedAlgorithm)
        }
        assert len(signatures) == 3

    def test_signature_of_orders_keys_canonically(self):
        assert signature_of("kind", {"a": 1, "b": 2}) == signature_of(
            "kind", {"b": 2, "a": 1}
        )
        assert signature_of("kind", {"a": 1}) != signature_of("kind", {"a": 2})

    def test_warm_start_rejects_foreign_table(self):
        model = _quotient_model()
        with pytest.raises(ConfigurationError):
            model.warm_start(_make_table(signature="not-this-model"))


class TestStore:
    def test_resolve_semantics(self, tmp_path, monkeypatch):
        monkeypatch.delenv(TABLE_CACHE_ENV, raising=False)
        assert resolve_store(None) is None
        assert resolve_store(False) is None
        monkeypatch.setenv(TABLE_CACHE_ENV, str(tmp_path / "env-store"))
        via_env = resolve_store(None)
        assert via_env is not None
        assert via_env.directory == tmp_path / "env-store"
        assert resolve_store(False) is None  # False beats the env var
        monkeypatch.setenv(TABLE_CACHE_ENV, "")
        assert resolve_store(None) is None
        explicit = resolve_store(str(tmp_path / "here"))
        assert explicit.directory == tmp_path / "here"
        assert resolve_store(explicit) is explicit
        assert resolve_store(True).directory.name == "cache"

    def test_put_get_round_trip_and_touch(self, tmp_path):
        store = TableStore(tmp_path)
        table = _make_table()
        store.put(table)
        loaded = store.get("sig-a")
        assert loaded is not None
        assert loaded.det == table.det
        assert store.get("missing-signature") is None

    def test_put_merges_concurrent_unions(self, tmp_path):
        store = TableStore(tmp_path)
        store.put(_make_table())
        extra = TransitionTable("sig-a")
        extra.det[(("q",), ("q",))] = (("q",), ("q",))
        store.put(extra)
        merged = store.get("sig-a")
        assert len(merged) == len(_make_table()) + 1

    def test_fully_redundant_put_leaves_artifact_byte_stable(self, tmp_path):
        store = TableStore(tmp_path)
        path = store.put(_make_table())
        stamp = (path.stat().st_mtime_ns, path.read_bytes())
        store.put(_make_table())
        assert (path.stat().st_mtime_ns, path.read_bytes()) == stamp

    def test_eviction_drops_oldest_touched_first(self, tmp_path):
        store = TableStore(tmp_path, max_bytes=1)
        first = store.put(_make_table(signature="sig-old"))
        os.utime(first, (1, 1))  # force a stale mtime
        second = store.put(_make_table(signature="sig-new"))
        assert not first.exists()
        assert second.exists()

    def test_entries_and_info_and_clear(self, tmp_path):
        store = TableStore(tmp_path)
        store.put(_make_table())
        (entry,) = store.entries()
        assert entry["signature"] == "sig-a"
        info = store.info("sig-a")
        assert info["det_entries"] == 1
        assert info["rand_entries"] == 1
        assert store.info("absent") is None
        assert store.clear() == 1
        assert store.entries() == []


#: Warm-vs-cold parity matrix: every dynamically derived quotient family,
#: both count-mode scheduler families (exact sequential, batched
#: matching).  The store is shared per (protocol, scheduler) across the
#: seed sweep, so later seeds genuinely replay persisted tables.
PARITY_MATRIX = [
    ("simple", SimpleAlgorithm, [([22, 18], 97), ([16, 14, 10], 7)]),
    ("unordered", UnorderedAlgorithm, [([22, 18], 11), ([12, 28], 2)]),
    ("improved", ImprovedAlgorithm, [([26, 14], 7), ([14, 26], 4)]),
]

PARITY_SEEDS = range(10)

SCHEDULERS = {
    "sequential": SequentialScheduler,
    "matching": lambda: MatchingScheduler(0.25),
}


@pytest.fixture(scope="module")
def shared_store_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("table-store")


class TestWarmColdParity:
    @pytest.mark.parametrize("scheduler_name", sorted(SCHEDULERS))
    @pytest.mark.parametrize(
        "name,factory,cases",
        PARITY_MATRIX,
        ids=[entry[0] for entry in PARITY_MATRIX],
    )
    @pytest.mark.parametrize("seed", PARITY_SEEDS)
    def test_warm_run_bit_identical_to_cold(
        self, shared_store_dir, scheduler_name, name, factory, cases, seed
    ):
        counts, rng = cases[seed % len(cases)]
        store = TableStore(shared_store_dir)
        results = {}
        for mode, cache in (("cold", False), ("warm", store)):
            results[mode] = simulate(
                factory(),
                PopulationConfig.from_counts(list(counts), rng=rng),
                seed=seed,
                scheduler=SCHEDULERS[scheduler_name](),
                backend="counts",
                max_parallel_time=300.0,
                table_cache=cache,
            )
        assert results["warm"] == results["cold"]

    @pytest.mark.parametrize(
        "name,factory,cases",
        PARITY_MATRIX,
        ids=[entry[0] for entry in PARITY_MATRIX],
    )
    def test_second_run_derives_nothing(self, tmp_path, name, factory, cases):
        counts, rng = cases[0]
        store = TableStore(tmp_path)

        def run(telemetry):
            return simulate(
                factory(),
                PopulationConfig.from_counts(list(counts), rng=rng),
                seed=0,
                scheduler=SequentialScheduler(),
                backend="counts",
                max_parallel_time=200.0,
                table_cache=store,
                telemetry=telemetry,
            )

        first_tel = telemetry_module.Telemetry(enabled=True)
        first = run(first_tel)
        first_counters = first_tel.metrics_block()["counters"]
        assert first_counters["cache.miss"] == 1
        assert first_counters["count_model.derivations"] > 0

        second_tel = telemetry_module.Telemetry(enabled=True)
        second = run(second_tel)
        counters = second_tel.metrics_block()["counters"]
        assert counters["cache.hit"] == 1
        assert counters.get("count_model.derivations", 0) == 0
        timers = second_tel.metrics_block()["timers"]
        assert timers.get(
            "count_model.derive_seconds", {"count": 0}
        )["count"] == 0
        assert second == first

    def test_fully_warm_run_leaves_store_byte_stable(self, tmp_path):
        store = TableStore(tmp_path)

        def run():
            return simulate(
                SimpleAlgorithm(),
                PopulationConfig.from_counts([22, 18], rng=97),
                seed=0,
                scheduler=SequentialScheduler(),
                backend="counts",
                max_parallel_time=200.0,
                table_cache=store,
            )

        run()
        (path,) = store.tables_dir.glob("*.npz")
        stamp = path.read_bytes()
        run()
        # Content is untouched (hits only bump the mtime for LRU).
        assert path.read_bytes() == stamp
        assert [p.name for p in store.tables_dir.glob("*.npz")] == [path.name]


# --- replicate_parallel: module-level factories (pool-picklable) -------


def _parallel_protocol():
    return SimpleAlgorithm()


def _parallel_config(i):
    return PopulationConfig.from_counts([22, 18], rng=100 + i)


class TestExecutionLayers:
    def _replicate(self, store_dir, telemetry=None):
        from repro.analysis.parallel import replicate_parallel

        return replicate_parallel(
            _parallel_protocol,
            _parallel_config,
            replications=3,
            workers=2,
            scheduler="matching",
            backend="counts",
            max_parallel_time=150.0,
            telemetry=telemetry,
            table_cache=str(store_dir),
        )

    def test_replicate_parallel_populates_then_reuses(self, tmp_path):
        store_dir = tmp_path / "store"
        first = self._replicate(store_dir)
        assert list(TableStore(store_dir).tables_dir.glob("*.npz"))
        tel = telemetry_module.Telemetry(enabled=True)
        second = self._replicate(store_dir, telemetry=tel)
        counters = tel.metrics_block()["counters"]
        assert counters["cache.hit"] >= 3
        assert counters.get("count_model.derivations", 0) == 0
        assert second == first

    def test_replicate_serial_honours_store(self, tmp_path):
        from repro.analysis.sweep import replicate

        store_dir = tmp_path / "store"
        first = replicate(
            _parallel_protocol,
            _parallel_config,
            replications=2,
            backend="counts",
            max_parallel_time=150.0,
            table_cache=str(store_dir),
        )
        tel = telemetry_module.Telemetry(enabled=True)
        second = replicate(
            _parallel_protocol,
            _parallel_config,
            replications=2,
            backend="counts",
            max_parallel_time=150.0,
            telemetry=tel,
            table_cache=str(store_dir),
        )
        assert second == first
        counters = tel.metrics_block()["counters"]
        assert counters["cache.hit"] == 2
        assert counters.get("count_model.derivations", 0) == 0

    def test_experiment_run_reports_metadata_without_telemetry(self):
        from repro.experiments import base as experiments_base

        name = "TCACHE_META_PROBE"
        if name not in experiments_base._REGISTRY:

            @experiments_base.register(name, "table-cache metadata probe")
            def _probe(scale):
                simulate(
                    SimpleAlgorithm(),
                    PopulationConfig.from_counts([22, 18], rng=1),
                    seed=3,
                    scheduler=SequentialScheduler(),
                    backend="counts",
                    max_parallel_time=120.0,
                )
                return experiments_base.ExperimentReport(
                    experiment=name,
                    title="probe",
                    headers=["col"],
                    rows=[[1]],
                )

        report = experiments_base.run(name)
        assert report.metrics is None  # telemetry stayed off
        assert report.metadata["count_model.cold_derivations"] > 0
        assert report.metadata["count_model.derived_pairs"] > 0
        assert "meta: " in report.render()
