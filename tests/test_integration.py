"""Cross-module integration tests.

These exercise the public API end-to-end: all three protocols on shared
workloads, agreement between protocols, scheduler equivalence at the
distribution level, and failure-injection paths.
"""

import numpy as np
import pytest

from repro import (
    MatchingScheduler,
    SequentialScheduler,
    SimpleAlgorithm,
    SimpleParams,
    simulate,
    workloads,
)
from repro.baselines import UndecidedStateDynamics
from repro.core.improved import ImprovedAlgorithm
from repro.core.unordered import UnorderedAlgorithm

ALGORITHMS = [
    pytest.param(SimpleAlgorithm, id="simple"),
    pytest.param(UnorderedAlgorithm, id="unordered"),
    pytest.param(ImprovedAlgorithm, id="improved"),
]


@pytest.mark.parametrize("factory", ALGORITHMS)
def test_all_protocols_agree_on_plurality(factory):
    config = workloads.exact([20, 52, 30, 26], rng=7)
    algo = factory()
    result = simulate(
        algo,
        config,
        seed=42,
        scheduler=MatchingScheduler(0.25),
        max_parallel_time=algo.params.default_max_time(config.n, config.k),
    )
    assert result.succeeded, result.describe()
    assert result.output_opinion == 2


@pytest.mark.parametrize("factory", ALGORITHMS)
def test_protocols_work_under_exact_scheduler(factory):
    config = workloads.bias_one(96, 3, rng=3)
    algo = factory()
    # Bias 1 at n = 96 is the hardest workload and the protocols only
    # succeed w.h.p., so the seed is pinned to a succeeding trajectory
    # (re-pinned when the leader-election coin flips moved onto the
    # shared uniform stream; seed 17 now lands in the documented
    # small-failure-probability mode with ~1/12 frequency).
    result = simulate(
        algo,
        config,
        seed=18,
        scheduler=SequentialScheduler(),
        max_parallel_time=algo.params.default_max_time(96, 3),
    )
    assert result.succeeded, result.describe()


def test_simple_beats_usd_on_exactness():
    simple_wins = usd_wins = 0
    for seed in range(6):
        config = workloads.bias_one(96, 3, rng=seed)
        algo = SimpleAlgorithm()
        simple_wins += simulate(
            algo,
            config,
            seed=seed,
            scheduler=MatchingScheduler(0.25),
            max_parallel_time=algo.params.default_max_time(96, 3),
        ).succeeded
        usd_wins += simulate(
            UndecidedStateDynamics(), config, seed=seed, max_parallel_time=500
        ).succeeded
    assert simple_wins >= 5
    assert usd_wins < simple_wins


def test_schedulers_distributionally_similar():
    """Exact vs matching scheduler: broadcast times agree within noise."""
    from repro.broadcast import OneWayEpidemic

    times = {}
    for name, scheduler in [
        ("seq", SequentialScheduler()),
        ("match", MatchingScheduler(0.125)),
    ]:
        sample = [
            simulate(
                OneWayEpidemic(),
                workloads.single_opinion(512),
                seed=s,
                scheduler=scheduler,
                max_parallel_time=500,
            ).parallel_time
            for s in range(8)
        ]
        times[name] = float(np.mean(sample))
    assert times["match"] == pytest.approx(times["seq"], rel=0.3)


def test_deterministic_replay():
    config = workloads.bias_one(96, 3, rng=1)
    algo = SimpleAlgorithm()

    def run():
        return simulate(
            algo,
            config,
            seed=99,
            scheduler=MatchingScheduler(0.25),
            max_parallel_time=algo.params.default_max_time(96, 3),
        )

    a, b = run(), run()
    assert a.interactions == b.interactions
    assert a.output_opinion == b.output_opinion


def test_failure_injection_short_phases():
    """A pathologically short clock makes the protocol fail *detectably*.

    With phases far shorter than the broadcast time, the run must end in a
    detected failure or a wrong-output verdict — never a silent hang.
    """
    params = SimpleParams(clock_gamma=0.1, init_threshold_factor=0.5)
    algo = SimpleAlgorithm(params)
    outcomes = set()
    for seed in range(4):
        config = workloads.bias_one(128, 4, rng=seed)
        result = simulate(
            algo,
            config,
            seed=seed,
            scheduler=MatchingScheduler(0.25),
            max_parallel_time=2000,
        )
        if result.succeeded:
            outcomes.add("ok")
        else:
            assert result.failure in (
                "timeout",
                "clock_desync",
                "divergent_output",
            ) or result.correct is False
            outcomes.add("failed")
    assert "failed" in outcomes or "ok" in outcomes


def test_budget_is_respected():
    algo = SimpleAlgorithm()
    config = workloads.bias_one(96, 8, rng=2)
    result = simulate(
        algo,
        config,
        seed=1,
        scheduler=MatchingScheduler(0.25),
        max_parallel_time=50,
    )
    assert not result.converged
    assert result.failure == "timeout"
    assert result.parallel_time <= 51
